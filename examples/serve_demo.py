"""The offline-fit / online-serve split, end to end (ISSUE: ``repro.serving``).

The paper computes SimRank scores offline and serves rewrites online; this
walkthrough runs that whole loop in one process:

1. **fit** a weighted-SimRank engine on a synthetic Yahoo!-like workload
   (the offline batch job);
2. **save** it as a snapshot directory (what the batch job ships);
3. **serve** it over HTTP behind an :class:`~repro.serving.EngineHolder`,
   querying ``/rewrite`` and ``/stats`` like a front-end would;
4. **refresh** it zero-downtime with a click-graph delta (``POST
   /refresh``) -- traffic keeps flowing while a copy is refit and swapped;
5. **hot-reload** the snapshot from step 2 (``POST /reload``) -- the
   rollback path when a refreshed engine misbehaves.

Everything is stdlib-only.  Run with::

    python examples/serve_demo.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro import EngineConfig, RewriteEngine, SimrankConfig, yahoo_like_workload
from repro.graph.delta import DeltaBuilder
from repro.serving import (
    EngineHolder,
    RewriteServer,
    ServerConfig,
    delta_to_payload,
    request_once,
)


def fit_offline() -> RewriteEngine:
    """Step 1: the offline batch fit (tolerance > 0 so /refresh warm-starts)."""
    workload = yahoo_like_workload("tiny", seed=29)
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=10, tolerance=1e-8),
        cache_size=256,
    )
    return RewriteEngine.from_graph(
        workload.click_graph, config, bid_terms=workload.bid_terms
    ).fit()


def show(label, status, payload) -> None:
    print(f"  {label}: HTTP {status} {payload}")


async def demo(snapshot_dir: Path) -> None:
    engine = fit_offline()
    print(f"1. fitted: {engine.graph.num_queries} queries, {engine.graph.num_ads} ads")

    engine.save(snapshot_dir)
    print(f"2. snapshot saved to {snapshot_dir}")

    query = sorted(str(q) for q in engine.graph.queries())[0]
    holder = EngineHolder(engine)
    async with RewriteServer(holder, ServerConfig(port=0)) as server:
        host, port = server.address
        print(f"3. serving on http://{host}:{port}")
        status, payload = await request_once(
            host, port, "POST", "/rewrite", {"query": query}
        )
        show(f"rewrite {query!r}", status, payload)
        status, payload = await request_once(host, port, "GET", "/healthz")
        show("healthz", status, payload)

        # 4. Zero-downtime refresh: a delta strengthening one live edge.
        sample_query, sample_ad, stats = next(iter(engine.graph.edges()))
        delta = (
            DeltaBuilder(engine.graph)
            .set_edge(
                sample_query,
                sample_ad,
                impressions=stats.impressions + 100,
                clicks=stats.clicks + 20,
            )
            .build()
        )
        status, payload = await request_once(
            host, port, "POST", "/refresh", delta_to_payload(delta)
        )
        print(f"4. refresh: HTTP {status}, now version {payload['version']} "
              f"(refit={payload['refresh']['refit']}, "
              f"{payload['seconds'] * 1000:.0f} ms behind the scenes, "
              "zero requests dropped)")

        # 5. Hot-reload the pristine snapshot -- the rollback path.
        status, payload = await request_once(
            host, port, "POST", "/reload", {"path": str(snapshot_dir)}
        )
        print(f"5. reload: HTTP {status}, rolled back to the snapshot "
              f"as version {payload['version']}")

        status, payload = await request_once(host, port, "GET", "/stats")
        requests_served = payload["requests"]["total"]
        print(f"   served {requests_served} requests across "
              f"{payload['engine']['swaps']} engine swaps; final stats: "
              f"latency p99 {payload['latency_ms']['p99']:.2f} ms")
    print("server drained and stopped")


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        asyncio.run(demo(Path(tmp) / "snapshot"))


if __name__ == "__main__":
    main()
