"""Weighted SimRank as a collaborative-filtering similarity (paper Section 11).

The paper notes that the weighted and evidence-based SimRank schemes "could be
of use in other applications that exploit bi-partite graphs ... including
collaborative filtering".  This example builds a small user-movie rating
graph (users on one side, movies on the other, ratings as edge weights) and
uses the same machinery to find similar users and recommend unseen movies.

Run with::

    python examples/collaborative_filtering.py
"""

from repro import ClickGraph, SimrankConfig, WeightedSimrank
from repro.eval.reporting import format_table

# user -> {movie: rating on a 1-5 scale}
RATINGS = {
    "alice": {"matrix": 5, "inception": 5, "interstellar": 4, "amelie": 2},
    "bob": {"matrix": 5, "inception": 4, "blade runner": 5},
    "carol": {"amelie": 5, "before sunrise": 5, "notting hill": 4, "inception": 2},
    "dave": {"notting hill": 4, "before sunrise": 4, "amelie": 4},
    "erin": {"blade runner": 5, "interstellar": 5, "matrix": 4},
    "frank": {"notting hill": 5, "matrix": 2, "before sunrise": 3},
}


def build_rating_graph() -> ClickGraph:
    """Reuse the click-graph container: users play the role of queries, movies of ads.

    A rating r becomes an edge with r "clicks" out of 5 "impressions", so the
    expected click rate is the normalized rating -- exactly the kind of
    weighted bipartite graph the paper's methods operate on.
    """
    graph = ClickGraph()
    for user, movies in RATINGS.items():
        for movie, rating in movies.items():
            graph.add_edge(user, movie, impressions=5, clicks=rating, expected_click_rate=rating / 5)
    return graph


def main() -> None:
    graph = build_rating_graph()
    config = SimrankConfig(iterations=8, zero_evidence_floor=0.1)
    model = WeightedSimrank(config).fit(graph)

    rows = []
    for user in RATINGS:
        neighbours = model.top_rewrites(user, k=2)
        rows.append(
            {
                "user": user,
                "most similar users": ", ".join(f"{other} ({score:.3f})" for other, score in neighbours),
            }
        )
    print(format_table(rows, title="User-user similarity (weighted SimRank on the rating graph)"))

    # Item-based view: similar movies under the same fixpoint.
    print()
    movie_rows = []
    for movie in ("matrix", "amelie", "interstellar"):
        similar = sorted(
            ((other, model.ad_similarity(movie, other)) for other in _movies() if other != movie),
            key=lambda pair: -pair[1],
        )[:2]
        movie_rows.append(
            {"movie": movie, "most similar movies": ", ".join(f"{m} ({s:.3f})" for m, s in similar)}
        )
    print(format_table(movie_rows, title="Movie-movie similarity"))

    # Recommend unseen movies by aggregating similar users' ratings.
    print()
    recommendation_rows = []
    for user, movies in RATINGS.items():
        scores = {}
        for other, similarity in model.top_rewrites(user, k=3):
            for movie, rating in RATINGS[other].items():
                if movie not in movies:
                    scores[movie] = scores.get(movie, 0.0) + similarity * rating
        best = sorted(scores.items(), key=lambda pair: -pair[1])[:2]
        recommendation_rows.append(
            {
                "user": user,
                "recommendations": ", ".join(f"{movie} ({score:.2f})" for movie, score in best)
                or "(nothing new)",
            }
        )
    print(format_table(recommendation_rows, title="Recommendations from similar users"))


def _movies():
    movies = set()
    for ratings in RATINGS.values():
        movies.update(ratings)
    return sorted(movies)


if __name__ == "__main__":
    main()
