"""End-to-end sponsored-search pipeline on a synthetic workload.

Reproduces the data path of the paper's Figure 2:

1. generate a synthetic advertiser/query universe (ground-truth topics),
2. simulate bootstrap serving: the back-end picks bid ads, users click
   position-biased, no rewriting yet,
3. aggregate the logs into a click graph and persist it in SQLite,
4. fit a weighted-SimRank RewriteEngine on the click graph offline and attach
   it to the system, switching serving to rewrite-expansion mode,
5. grade the rewrites with the simulated editorial judge.

Run with::

    python examples/sponsored_search_pipeline.py
"""

import tempfile
from pathlib import Path

from repro import ClickGraphStore, EngineConfig, RewriteEngine, SimrankConfig
from repro.eval.editorial import EditorialJudge
from repro.eval.reporting import format_table
from repro.search.ads import AdDatabase
from repro.search.backend import Backend
from repro.search.bids import Bid, BidDatabase
from repro.search.click_model import PositionBiasedClickModel
from repro.search.system import SponsoredSearchSystem
from repro.search.user_model import TopicalUserModel
from repro.synth.yahoo_like import yahoo_like_workload


def build_bid_database(workload, ads: AdDatabase) -> BidDatabase:
    """Advertisers bid on queries of their own topic."""
    bids = BidDatabase()
    ads_by_topic = {}
    for ad in ads:
        ads_by_topic.setdefault(ad.topic, []).append(ad.ad_id)
    for index, (query, topic) in enumerate(sorted(workload.query_topics.items())):
        topic_ads = ads_by_topic.get(topic, [])
        for offset in range(3):
            if topic_ads:
                bids.add(
                    Bid(
                        query=query,
                        ad_id=topic_ads[(index + offset) % len(topic_ads)],
                        price=1.0 + 0.25 * offset,
                    )
                )
    return bids


def main() -> None:
    workload = yahoo_like_workload("tiny")
    ads = AdDatabase.from_workload_ads(workload.ad_topics)
    bids = build_bid_database(workload, ads)
    click_model = PositionBiasedClickModel(decay=0.7, max_positions=4)
    backend = Backend(ads, bids, click_model=click_model, num_slots=3)
    users = TopicalUserModel(workload.topic_model, workload.query_topics, workload.ad_topics)
    system = SponsoredSearchSystem(backend, users, click_model=click_model)

    report = system.serve_traffic(workload.traffic)
    print(
        f"bootstrap: served {report.queries_served} queries, {report.impressions} impressions, "
        f"{report.clicks} clicks (CTR {report.click_through_rate:.3f}, "
        f"{report.expanded_queries} expanded)"
    )

    graph = system.build_click_graph()
    print(f"aggregated click graph: {graph}")

    with tempfile.TemporaryDirectory() as tmp:
        store_path = Path(tmp) / "serving.db"
        with ClickGraphStore(store_path) as store:
            store.save_graph("two-week", graph)
            store.save_bid_terms("two-week", bids.bid_terms())
            graph = store.load_graph("two-week")
            bid_terms = store.load_bid_terms("two-week")
        print(f"persisted and reloaded the click graph from {store_path.name}")

    engine_config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=7, zero_evidence_floor=0.1),
        max_rewrites=5,
    )
    engine = RewriteEngine.from_graph(graph, engine_config, bid_terms=bid_terms).fit()
    engine.precompute()  # the paper's offline pass: every query pre-expanded
    system.attach_engine(engine, max_rewrites=3)

    expanded_report = system.serve_traffic(workload.traffic)
    print(
        f"rewrite-expansion mode: served {expanded_report.queries_served} queries, "
        f"{expanded_report.expanded_queries} expanded "
        f"({expanded_report.expansion_rate:.0%}), CTR {expanded_report.click_through_rate:.3f}"
    )
    info = engine.cache_info()
    print(f"engine cache: {info.size} entries, hit rate {info.hit_rate:.0%}")

    judge = EditorialJudge(workload)
    rows = []
    grade_counts = {1: 0, 2: 0, 3: 0, 4: 0}
    sample_queries = sorted(graph.queries())[:12]
    for query in sample_queries:
        rewrites = engine.rewrite(query)
        graded = [(r.rewrite, judge.grade(query, r.rewrite)) for r in rewrites.rewrites]
        for _, grade in graded:
            grade_counts[grade] += 1
        rows.append(
            {
                "query": query,
                "rewrites (grade)": ", ".join(f"{rw} [{g}]" for rw, g in graded) or "(none)",
            }
        )
    print()
    print(format_table(rows, title="Weighted SimRank rewrites from the simulated click graph"))
    total = sum(grade_counts.values()) or 1
    print()
    print(
        "editorial grade distribution: "
        + ", ".join(f"{grade}: {count} ({100 * count / total:.0f}%)" for grade, count in grade_counts.items())
    )


if __name__ == "__main__":
    main()
