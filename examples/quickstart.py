"""Quickstart: query similarity and rewrites from a hand-built click graph.

Builds the paper's running example (cameras, PCs, TVs and flowers), runs all
four similarity methods and prints the top rewrites each one proposes.

Run with::

    python examples/quickstart.py
"""

from repro import ClickGraph, QueryRewriter, SimrankConfig, create_method
from repro.eval.reporting import format_table


def build_click_graph() -> ClickGraph:
    """A small weighted click graph in the spirit of the paper's Figure 3."""
    graph = ClickGraph()
    edges = [
        # query, ad, impressions, clicks, expected click rate
        ("camera", "hp.com/cameras", 1200, 110, 0.11),
        ("camera", "bestbuy.com/cameras", 900, 130, 0.16),
        ("digital camera", "hp.com/cameras", 800, 80, 0.11),
        ("digital camera", "bestbuy.com/cameras", 700, 110, 0.17),
        ("camera battery", "bestbuy.com/cameras", 300, 25, 0.09),
        ("pc", "hp.com/cameras", 400, 12, 0.03),
        ("pc", "dell.com/desktops", 1500, 160, 0.12),
        ("laptop", "dell.com/desktops", 1100, 120, 0.12),
        ("laptop", "bestbuy.com/laptops", 600, 70, 0.13),
        ("tv", "bestbuy.com/tvs", 900, 100, 0.12),
        ("hdtv", "bestbuy.com/tvs", 700, 85, 0.13),
        ("flower", "teleflora.com", 500, 70, 0.15),
        ("flower delivery", "teleflora.com", 450, 68, 0.16),
        ("flower", "orchids.com", 300, 45, 0.16),
        ("orchids", "orchids.com", 280, 47, 0.17),
    ]
    for query, ad, impressions, clicks, ecr in edges:
        graph.add_edge(query, ad, impressions=impressions, clicks=clicks, expected_click_rate=ecr)
    return graph


def main() -> None:
    graph = build_click_graph()
    print(f"click graph: {graph}\n")

    config = SimrankConfig(c1=0.8, c2=0.8, iterations=7, zero_evidence_floor=0.1)
    bid_terms = {str(query) for query in graph.queries()}  # every query has bids in this toy world

    rows = []
    for method_name in ("pearson", "simrank", "evidence_simrank", "weighted_simrank"):
        method = create_method(method_name, config=config)
        rewriter = QueryRewriter(method, bid_terms=bid_terms, max_rewrites=3).fit(graph)
        for query in ("camera", "pc", "flower"):
            rewrites = rewriter.rewrites_for(query)
            rows.append(
                {
                    "method": method_name,
                    "query": query,
                    "rewrites": ", ".join(
                        f"{r.rewrite} ({r.score:.3f})" for r in rewrites.rewrites
                    )
                    or "(none)",
                }
            )
    print(format_table(rows, title="Top rewrites per method"))

    # Direct pairwise similarity lookups are available too.
    weighted = create_method("weighted_simrank", config=config).fit(graph)
    print()
    print("weighted SimRank similarities:")
    for pair in [("camera", "digital camera"), ("camera", "pc"), ("camera", "flower")]:
        print(f"  sim{pair} = {weighted.query_similarity(*pair):.4f}")


if __name__ == "__main__":
    main()
