"""Quickstart: the RewriteEngine serving API on a hand-built click graph.

Builds the paper's running example (cameras, PCs, TVs and flowers), fits one
:class:`~repro.api.engine.RewriteEngine` per similarity method and prints the
top rewrites each one proposes, plus an explanation trace for one decision.

Run with::

    python examples/quickstart.py

Choosing a backend
------------------

The SimRank methods run on five interchangeable backends, selected with
``EngineConfig(backend=...)``; all agree within 1e-6 (``tests/equivalence/``
enforces this):

* ``reference`` -- the paper's node-pair equations, slow but traceable; use
  for tiny graphs and debugging.
* ``matrix`` -- one dense numpy fixpoint over the whole graph; right for a
  single well-connected component.
* ``sharded`` -- whole-graph fixpoints per connected component, stitched
  together; the fast default for realistic (highly disconnected) click
  graphs, with an optional worker pool (``ShardedSimrank(n_jobs=...)``) and
  an inner-backend knob (``ShardedSimrank(inner_backend="sparse")``).
* ``sparse`` -- the fixpoint on scipy.sparse CSR matrices, cost tracking the
  nonzeros instead of n^2; right for huge sparse graphs.  Exact by default;
  ``SimrankConfig(prune_threshold=..., prune_top_k=...)`` trades a bounded
  score perturbation for even less fill-in (truncation is exact only when
  both knobs are off -- serving top-k survives pruning as long as
  prune_top_k comfortably exceeds the rewrite depth).
* ``auto`` -- a planner inspects the graph at fit time (component sizes,
  density, node count) and runs whichever of the above its shape favours,
  per shard when it shards; the decision is inspectable afterwards as
  ``engine.plan_report``.  When in doubt, pick this one.

Sharded and auto fits take ``EngineConfig(n_jobs=N, executor=...)`` to fit
independent components on a worker pool: ``n_jobs=-1`` means one worker per
*available* CPU (cgroup/affinity-aware), and ``executor`` picks threads, a
process pool (true multi-core for heavy shards) or ``"auto"`` to size that
choice from the planned work.

Snapshots and the serving cache
-------------------------------

Whatever the backend, the offline fit survives process restarts:
``engine.save(path)`` persists the score store + config + bid terms and
``RewriteEngine.load(path)`` revives a servable engine without re-running
the fixpoint (identical rewrite lists -- the CI-gated claim of
``benchmarks/bench_engine_snapshot.py``).  Online, the serving cache is
bounded with ``EngineConfig(cache_size=N)`` (LRU eviction, counted in
``cache_info().evictions``; ``None`` keeps every entry for the paper's
full-precompute mode).

Incremental refresh
-------------------

When the click graph moves under a fitted engine (new queries, shifting
click counts), ``engine.refresh(delta)`` brings it forward without a cold
refit: record the changes with :class:`~repro.graph.delta.DeltaBuilder` (or
diff two graphs with ``ClickGraphDelta.between``), and the engine applies
them, refits warm-started from its current scores -- the sharded backend
refits only the touched components -- and invalidates only the cached
rewrite lists that could have changed (the CI-gated claim of
``benchmarks/bench_engine_refresh.py``).

Serving resilience, degraded mode and fault injection
-----------------------------------------------------

The serving tier (``repro.serving``) wraps all of the above in a process
built to keep answering while the refresh path misbehaves.  The pieces:

* every attempted publish is recorded on the
  :class:`~repro.serving.holder.EngineHolder` ledger (``last_error``,
  ``consecutive_failures``, ``staleness_seconds``);
* transient ``/refresh``/``/reload`` failures are retried with exponential
  backoff (``ServerConfig(refresh_retries=...)``), and a circuit breaker
  (``breaker_threshold`` / ``breaker_reset_s``) sheds publish attempts with
  503 once the path looks down -- rewrite traffic keeps being served from
  the stale engine throughout;
* health is a three-state machine surfaced via ``/healthz``: ``healthy``
  (last publish succeeded), ``degraded`` (serving, but the publish path is
  struggling -- one successful refresh recovers), ``draining`` (shutting
  down).  ``ServerConfig(request_timeout_s=...)`` adds per-request
  deadlines (HTTP 504);
* all of it is testable deterministically through :mod:`repro.core.faults`:
  named fault points (snapshot IO, shard-fit workers, delta apply, engine
  refresh, request handling) that are free no-ops until a ``FaultPlan``
  activates them -- demonstrated at the bottom of this script, and gated
  under live traffic by ``benchmarks/bench_chaos_serving.py``.

Static analysis
---------------

The concurrency and reproducibility rules this codebase lives by are
machine-checked: ``PYTHONPATH=src python -m repro.analysis src`` (or the
installed ``repro-lint``) runs repo-aware checkers for lock discipline,
blocking calls on the event loop, pickle safety of process-pool payloads,
fault-point registry integrity and determinism in ``repro.core``.  CI runs
it over ``src tests benchmarks`` as a blocking gate; see the
:mod:`repro.analysis` docstring for the checker catalogue and the
suppression syntax.
"""

import tempfile
from pathlib import Path

from repro import ClickGraph, DeltaBuilder, EngineConfig, RewriteEngine, SimrankConfig
from repro.api.registry import PAPER_METHODS
from repro.core import faults
from repro.eval.reporting import format_table
from repro.serving import CircuitBreaker, EngineHolder, classify_health


def build_click_graph() -> ClickGraph:
    """A small weighted click graph in the spirit of the paper's Figure 3."""
    graph = ClickGraph()
    edges = [
        # query, ad, impressions, clicks, expected click rate
        ("camera", "hp.com/cameras", 1200, 110, 0.11),
        ("camera", "bestbuy.com/cameras", 900, 130, 0.16),
        ("digital camera", "hp.com/cameras", 800, 80, 0.11),
        ("digital camera", "bestbuy.com/cameras", 700, 110, 0.17),
        ("camera battery", "bestbuy.com/cameras", 300, 25, 0.09),
        ("pc", "hp.com/cameras", 400, 12, 0.03),
        ("pc", "dell.com/desktops", 1500, 160, 0.12),
        ("laptop", "dell.com/desktops", 1100, 120, 0.12),
        ("laptop", "bestbuy.com/laptops", 600, 70, 0.13),
        ("tv", "bestbuy.com/tvs", 900, 100, 0.12),
        ("hdtv", "bestbuy.com/tvs", 700, 85, 0.13),
        ("flower", "teleflora.com", 500, 70, 0.15),
        ("flower delivery", "teleflora.com", 450, 68, 0.16),
        ("flower", "orchids.com", 300, 45, 0.16),
        ("orchids", "orchids.com", 280, 47, 0.17),
    ]
    for query, ad, impressions, clicks, ecr in edges:
        graph.add_edge(query, ad, impressions=impressions, clicks=clicks, expected_click_rate=ecr)
    return graph


def main() -> None:
    graph = build_click_graph()
    print(f"click graph: {graph}\n")

    similarity = SimrankConfig(c1=0.8, c2=0.8, iterations=7, zero_evidence_floor=0.1)
    bid_terms = {str(query) for query in graph.queries()}  # every query has bids in this toy world

    rows = []
    for method_name in PAPER_METHODS:
        config = EngineConfig(method=method_name, similarity=similarity, max_rewrites=3)
        engine = RewriteEngine.from_graph(graph, config, bid_terms=bid_terms).fit()
        for rewrites in engine.rewrite_batch(["camera", "pc", "flower"]):
            rows.append(
                {
                    "method": method_name,
                    "query": rewrites.query,
                    "rewrites": ", ".join(
                        f"{r.rewrite} ({r.score:.3f})" for r in rewrites.rewrites
                    )
                    or "(none)",
                }
            )
    print(format_table(rows, title="Top rewrites per method"))

    # One engine end-to-end: similarity lookups, explanations, cache stats.
    config = EngineConfig(method="weighted_simrank", similarity=similarity)
    engine = RewriteEngine.from_graph(graph, config, bid_terms=bid_terms).fit()
    print()
    print("weighted SimRank similarities:")
    for pair in [("camera", "digital camera"), ("camera", "pc"), ("camera", "flower")]:
        print(f"  sim{pair} = {engine.method.query_similarity(*pair):.4f}")

    explanation = engine.explain("camera", "digital camera")
    print()
    print(
        f"explain('camera' -> 'digital camera'): {explanation.reason}, "
        f"rank={explanation.rank}, similarity={explanation.similarity:.4f}"
    )

    engine.precompute()  # warm every query offline, like the paper's deployment
    engine.rewrite_batch(["camera", "pc", "flower", "camera", "pc", "flower"])
    info = engine.cache_info()
    print(f"serving cache: {info.size} entries, hit rate {info.hit_rate:.0%}")

    # The same engine on the sharded backend: this toy graph already has three
    # connected components (cameras/PCs/laptops, TVs, flowers), so the fixpoint
    # runs per component -- same scores, less dense work on disconnected graphs.
    sharded = RewriteEngine.from_graph(
        graph, config.replace(backend="sharded"), bid_terms=bid_terms
    ).fit()
    print()
    print(
        f"sharded backend: {sharded.method.num_shards} shards of sizes "
        f"{sharded.method.shard_sizes()}, "
        f"sim('camera', 'digital camera') = "
        f"{sharded.method.query_similarity('camera', 'digital camera'):.4f}"
    )

    # The sparse backend runs the same fixpoint on CSR matrices; on big
    # sparse graphs its cost tracks the nonzeros rather than n^2.  Exact
    # here (pruning off); prune_threshold/prune_top_k would bound fill-in.
    sparse_engine = RewriteEngine.from_graph(
        graph, config.replace(backend="sparse"), bid_terms=bid_terms
    ).fit()
    store = sparse_engine.method.similarities()
    print(
        f"sparse backend:  {len(store)} stored pairs, "
        f"sim('camera', 'digital camera') = "
        f"{sparse_engine.method.query_similarity('camera', 'digital camera'):.4f}"
    )

    # backend="auto" lets the planner pick: this graph's three small
    # components plan as a sharded fit with dense inner engines, and the
    # decision is inspectable (and survives snapshots) as plan_report.
    auto_engine = RewriteEngine.from_graph(
        graph, config.replace(backend="auto"), bid_terms=bid_terms
    ).fit()
    plan = auto_engine.plan_report
    print(f"auto backend:    {plan.summary()}")

    # Offline -> online persistence: snapshot the fitted engine, revive it in
    # a "new process" without refitting, and serve with a bounded LRU cache.
    with tempfile.TemporaryDirectory() as workdir:
        snapshot = engine.save(Path(workdir) / "weighted-engine")
        served = RewriteEngine.load(snapshot)
        print()
        print(
            f"snapshot reload (no refit): rewrite('camera') -> "
            f"{[r.rewrite for r in served.rewrite('camera').rewrites]}"
        )
    online = RewriteEngine.from_graph(
        graph, config.replace(cache_size=2), bid_terms=bid_terms
    ).fit()
    online.rewrite_batch(["camera", "pc", "flower", "camera"])  # 3rd insert evicts
    info = online.cache_info()
    print(
        f"bounded serving cache (capacity {info.capacity}): {info.size} entries, "
        f"{info.evictions} eviction(s), hit rate {info.hit_rate:.0%}"
    )

    # Incremental refresh: the click graph moves (a camera ad gets hot, a
    # stale flower edge ages out), and the fitted engine follows without a
    # cold refit.  Tolerance-based early exit is what lets the warm-started
    # fixpoint stop after a couple of iterations.
    live = RewriteEngine.from_graph(
        graph.copy(),
        config.replace(
            backend="sharded",
            similarity=SimrankConfig(
                iterations=60, tolerance=1e-8, zero_evidence_floor=0.1
            ),
        ),
        bid_terms=bid_terms,
    ).fit()
    live.precompute()
    delta = (
        DeltaBuilder(live.graph)
        .set_edge("camera", "bestbuy.com/cameras", impressions=1400, clicks=300)
        .remove_edge("flower", "orchids.com")
        .build()
    )
    live.refresh(delta)
    refresh = live.last_refresh
    print()
    print(
        f"refresh({delta!r}): {live.method.reused_shards} shards reused, "
        f"{live.method.refitted_shards} refit; {refresh.invalidated_entries} of "
        f"{refresh.affected_queries} affected cache entries invalidated"
    )
    print(
        f"rewrite('camera') after refresh -> "
        f"{[r.rewrite for r in live.rewrite('camera').rewrites]}"
    )

    # Degraded mode, observed: inject two refresh outages at the
    # engine.refresh fault point and watch the holder's publish ledger and
    # the health classification -- the same machinery the HTTP server's
    # /healthz, retries and circuit breaker run on.
    holder = EngineHolder(live)
    breaker = CircuitBreaker(threshold=3, reset_s=5.0)
    outage = faults.FaultPlan(
        [faults.FaultSpec("engine.refresh", error="upstream outage", times=2)]
    )
    retry_delta = (
        DeltaBuilder(holder.engine.graph)
        .set_edge("camera", "bestbuy.com/cameras", impressions=1500, clicks=320)
        .build()
    )
    with outage:
        for attempt in range(3):  # what the server's backoff retry loop does
            try:
                holder.refresh(retry_delta)
            except faults.FaultError:
                breaker.record_failure()
                state = classify_health(
                    draining=False,
                    breaker_closed=breaker.closed,
                    consecutive_failures=holder.consecutive_failures,
                )
                print(
                    f"publish attempt {attempt + 1} failed "
                    f"({holder.last_error}); health now {state!r}"
                )
            else:
                breaker.record_success()
                break
    state = classify_health(
        draining=False,
        breaker_closed=breaker.closed,
        consecutive_failures=holder.consecutive_failures,
    )
    print(
        f"publish attempt 3 succeeded: engine version {holder.version}, "
        f"health back to {state!r} after one successful refresh "
        f"({holder.publish_failures} failures on the ledger, "
        f"staleness {holder.staleness_seconds:.2f}s)"
    )


if __name__ == "__main__":
    main()
