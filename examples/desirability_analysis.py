"""The desirability edge-removal experiment (paper Section 9.3, Figure 12).

Generates a synthetic click graph, samples query triples (q1, q2, q3) that
share ads, removes the direct evidence between q1 and the candidates and asks
each SimRank variant which candidate the historical clicks favoured.  Also
runs the no-removal variant to show how much of the task the direct evidence
carries at this graph scale.

Run with::

    python examples/desirability_analysis.py
"""

import random

from repro import SimrankConfig
from repro.api.registry import create
from repro.eval.desirability import run_desirability_experiment, select_desirability_cases
from repro.eval.reporting import format_table
from repro.graph.components import largest_component
from repro.synth.yahoo_like import yahoo_like_workload


def main() -> None:
    workload = yahoo_like_workload("small")
    graph = largest_component(workload.click_graph)
    print(f"click graph (largest component): {graph}")

    config = SimrankConfig(iterations=7, zero_evidence_floor=0.1)
    factories = {
        name: (lambda name=name: create(name, config=config))
        for name in ("simrank", "evidence_simrank", "weighted_simrank")
    }

    rng = random.Random(42)
    cases = select_desirability_cases(graph, num_cases=50, rng=rng)
    print(f"sampled {len(cases)} valid (q1, q2, q3) cases\n")

    sample_rows = []
    for case in cases[:5]:
        sample_rows.append(
            {
                "q1": case.query,
                "q2": case.first_candidate,
                "q3": case.second_candidate,
                "des(q1,q2)": round(case.first_desirability, 4),
                "des(q1,q3)": round(case.second_desirability, 4),
                "preferred": case.preferred,
                "removed edges": len(case.removed_edges),
            }
        )
    print(format_table(sample_rows, title="A few sampled desirability cases"))

    with_removal = run_desirability_experiment(
        graph, factories, cases=cases, neighborhood_radius=6
    )
    without_removal = run_desirability_experiment(
        graph, factories, cases=cases, neighborhood_radius=6, remove_direct_evidence=False
    )

    rows = [
        {
            "method": name,
            "correct ordering, paper protocol (%)": round(with_removal[name].percentage, 1),
            "correct ordering, no removal (%)": round(without_removal[name].percentage, 1),
        }
        for name in factories
    ]
    print()
    print(format_table(rows, title="Desirability prediction accuracy"))
    print(
        "\nPaper (Figure 12, 15M-node Yahoo! graph): SimRank 54%, evidence-based 54%, weighted 92%.\n"
        "At laptop scale the removal destroys most of the weight signal, so the per-method gap\n"
        "shrinks; EXPERIMENTS.md discusses this substitution effect in detail."
    )


if __name__ == "__main__":
    main()
