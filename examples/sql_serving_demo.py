"""Serving rewrites from SQL, end to end (ISSUE: ``repro.store``).

The paper's offline/online split (Section 9.3) ships *top-k rewrite
lists*, not score matrices -- the online tier only ever answers "best k
rewrites for this query".  This walkthrough materializes exactly that
into a single SQLite file and serves from it:

1. **fit** a weighted-SimRank engine (the offline batch job);
2. **export** its per-query rewrite tables with
   :meth:`RewriteEngine.export_store` -- one indexed, read-only SQLite
   file, typically a fraction of the full snapshot's resident footprint;
3. **verify** a store-backed engine (:meth:`RewriteEngine.from_store`)
   serves *byte-identical* rewrites through the same LRU cache;
4. **serve** it over HTTP and read the store's lookup counters off
   ``/stats``;
5. **show the guard rails**: store-backed engines are serving-only --
   ``fit``/``refresh``/``save`` raise :class:`ServingOnlyEngineError`.

Everything is stdlib-only.  Run with::

    python examples/sql_serving_demo.py
"""

import asyncio
import tempfile
from pathlib import Path

from repro import (
    EngineConfig,
    RewriteEngine,
    ServingOnlyEngineError,
    SimrankConfig,
    yahoo_like_workload,
)
from repro.serving import EngineHolder, RewriteServer, ServerConfig, request_once


def fit_offline() -> RewriteEngine:
    """Step 1: the offline batch fit."""
    workload = yahoo_like_workload("tiny", seed=29)
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=10, tolerance=1e-8),
        cache_size=256,
    )
    return RewriteEngine.from_graph(
        workload.click_graph, config, bid_terms=workload.bid_terms
    ).fit()


def directory_bytes(path: Path) -> int:
    return sum(child.stat().st_size for child in path.iterdir())


async def serve_from_store(store_engine: RewriteEngine, query: str) -> None:
    """Step 4: the online tier, reading rewrites straight off SQLite."""
    async with RewriteServer(EngineHolder(store_engine), ServerConfig(port=0)) as server:
        host, port = server.address
        print(f"4. serving on http://{host}:{port} (source: SQLite store)")
        status, payload = await request_once(
            host, port, "POST", "/rewrite", {"query": query}
        )
        print(f"   rewrite {query!r}: HTTP {status} {payload['rewrites']}")
        status, payload = await request_once(host, port, "GET", "/stats")
        store_stats = payload["engine"]["store"]
        print(
            f"   /stats store section: kind={store_stats['kind']}, "
            f"version {store_stats['version']}, "
            f"{store_stats['lookups']} lookups "
            f"({store_stats['empty_lookups']} empty)"
        )


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        workdir = Path(tmp)
        engine = fit_offline()
        print(
            f"1. fitted: {engine.graph.num_queries} queries, "
            f"{engine.graph.num_ads} ads"
        )

        snapshot_dir = engine.save(workdir / "snapshot")
        store_path = engine.export_store(workdir / "rewrites.sqlite")
        print(
            f"2. exported {store_path.name}: {store_path.stat().st_size:,} bytes "
            f"on disk (snapshot: {directory_bytes(snapshot_dir):,}); the win is "
            "resident memory -- serving reads stay O(cache), the score matrix "
            "never loads (benchmarks/bench_sql_serving.py measures the gap)"
        )

        served = RewriteEngine.from_store(store_path)
        queries = served.serving_store.queries()
        assert served.serving_profile(queries) == engine.serving_profile(queries)
        print(f"3. store-backed serving byte-equal over all {len(queries)} queries")

        query = str(queries[0])
        asyncio.run(serve_from_store(served, query))

        try:
            served.refresh(None)
        except ServingOnlyEngineError as error:
            print(f"5. control plane stays offline: {error}")


if __name__ == "__main__":
    main()
