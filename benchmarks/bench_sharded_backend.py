"""Sharded-backend speedup gate: per-component fits vs one dense fixpoint.

SimRank scores across connected components are provably zero, so on a
multi-component click graph the dense engine wastes most of its ``O(n^3)``
matrix products on blocks that stay zero.  The sharded backend fits one dense
engine per component instead; on the 10-component synthetic graph below it
must be at least 2x faster than the whole-graph dense engine while producing
identical scores.

Run the gate and the timing figures with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_sharded_backend.py
    PYTHONPATH=src python benchmarks/bench_sharded_backend.py
"""

from __future__ import annotations

import time

from repro.core.config import SimrankConfig
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sharded import ShardedSimrank
from repro.synth.scenarios import multi_component_graph

NUM_COMPONENTS = 10
QUERIES_PER_COMPONENT = 40
ADS_PER_COMPONENT = 30
SPEEDUP_FLOOR = 2.0

CONFIG = SimrankConfig(iterations=7, zero_evidence_floor=0.1)


def build_graph():
    """A 10-component weighted click graph (400 queries, 300 ads)."""
    return multi_component_graph(
        num_components=NUM_COMPONENTS,
        queries_per_component=QUERIES_PER_COMPONENT,
        ads_per_component=ADS_PER_COMPONENT,
        extra_edges=3 * QUERIES_PER_COMPONENT,
        seed=41,
    )


def best_fit_seconds(method_factory, graph, rounds=3):
    """Fastest of ``rounds`` full fits (best-of to damp scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        method = method_factory()
        start = time.perf_counter()
        method.fit(graph)
        best = min(best, time.perf_counter() - start)
    return best, method


def test_sharded_fit_is_at_least_2x_faster_than_dense():
    """The acceptance gate: sharded >= 2x dense on a 10-component graph."""
    graph = build_graph()
    dense_seconds, dense = best_fit_seconds(
        lambda: MatrixSimrank(CONFIG, mode="weighted"), graph
    )
    sharded_seconds, sharded = best_fit_seconds(
        lambda: ShardedSimrank(CONFIG, mode="weighted"), graph
    )
    assert sharded.num_shards == NUM_COMPONENTS
    # Equal scores first -- a fast wrong answer must not pass the gate.
    assert dense.similarities().max_difference(sharded.similarities()) < 1e-9
    speedup = dense_seconds / sharded_seconds
    print(
        f"\ndense fit {dense_seconds * 1000:.1f} ms, sharded fit "
        f"{sharded_seconds * 1000:.1f} ms, speedup {speedup:.1f}x "
        f"({sharded.num_shards} shards)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"sharded backend only {speedup:.2f}x faster than dense "
        f"(floor: {SPEEDUP_FLOOR}x)"
    )


def main() -> None:
    graph = build_graph()
    print(f"graph: {graph} in {NUM_COMPONENTS} components")
    dense_seconds, _ = best_fit_seconds(lambda: MatrixSimrank(CONFIG, mode="weighted"), graph)
    print(f"dense fit:           {dense_seconds * 1000:8.1f} ms")
    for n_jobs in (1, 2, -1):
        sharded_seconds, sharded = best_fit_seconds(
            lambda: ShardedSimrank(CONFIG, mode="weighted", n_jobs=n_jobs), graph
        )
        print(
            f"sharded (n_jobs={n_jobs:>2}): {sharded_seconds * 1000:8.1f} ms  "
            f"({dense_seconds / sharded_seconds:4.1f}x, {sharded.num_shards} shards)"
        )


if __name__ == "__main__":
    main()
