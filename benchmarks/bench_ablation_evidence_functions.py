"""Ablation: geometric (Eq. 7.3) vs exponential (Eq. 7.4) evidence functions.

The paper reports "no substantial differences" between the two; this bench
quantifies that claim on the synthetic workload by comparing the top-5
rewrites each variant produces.
"""

from repro.core.config import EvidenceKind, SimrankConfig
from repro.api.registry import create
from repro.core.rewriter import QueryRewriter
from repro.eval.reporting import format_table


def _rewrites(workload, graph, kind, queries):
    config = SimrankConfig(iterations=7, evidence=kind, zero_evidence_floor=0.1)
    rewriter = QueryRewriter(
        create("evidence_simrank", config=config),
        bid_terms={str(term) for term in workload.bid_terms},
    ).fit(graph)
    return {query: tuple(rewriter.rewrites_for(query).candidates()) for query in queries}


def test_ablation_evidence_functions(benchmark, small_workload, harness_result):
    graph = harness_result.dataset
    queries = harness_result.evaluation_queries[:60]
    geometric = _rewrites(small_workload, graph, EvidenceKind.GEOMETRIC, queries)
    exponential = benchmark.pedantic(
        lambda: _rewrites(small_workload, graph, EvidenceKind.EXPONENTIAL, queries),
        rounds=1,
        iterations=1,
    )
    identical = sum(1 for query in queries if geometric[query] == exponential[query])
    overlap = []
    for query in queries:
        first, second = set(geometric[query]), set(exponential[query])
        union = first | second
        overlap.append(len(first & second) / len(union) if union else 1.0)
    rows = [
        {
            "queries compared": len(queries),
            "identical top-5 lists (%)": round(100.0 * identical / len(queries), 1),
            "mean Jaccard overlap": round(sum(overlap) / len(overlap), 3),
        }
    ]
    print()
    print(format_table(rows, title="Ablation: geometric vs exponential evidence (Eq. 7.3 vs 7.4)"))
