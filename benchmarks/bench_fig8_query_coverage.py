"""Figure 8: query coverage of Pearson and the SimRank variants."""

from repro.eval.reporting import format_table
from repro.experiments.paper import figure8_query_coverage


def test_figure8_query_coverage(benchmark, harness_result):
    coverage = benchmark(lambda: figure8_query_coverage(harness_result))
    print()
    rows = [{"method": name, "coverage (%)": round(value, 1)} for name, value in coverage.items()]
    print(format_table(rows, title="Figure 8: query coverage"))
    print("(paper: Pearson 41%, SimRank 98%, evidence-based 99%, weighted 99%)")
