"""Figure 9: 11-point precision/recall and P@X with grades {1,2} as the positive class."""

from repro.eval.metrics import STANDARD_RECALL_LEVELS
from repro.eval.reporting import format_series
from repro.experiments.paper import figure9_precision_recall


def test_figure9_precision_recall(benchmark, harness_result):
    data = benchmark(lambda: figure9_precision_recall(harness_result))
    print()
    print(
        format_series(
            data["precision_recall"],
            x_labels=[f"{level:.1f}" for level in STANDARD_RECALL_LEVELS],
            title="Figure 9 (top): interpolated precision at 11 recall levels (positive = grades 1-2)",
            x_name="recall",
        )
    )
    print()
    print(
        format_series(
            data["precision_at_x"],
            x_labels=[1, 2, 3, 4, 5],
            title="Figure 9 (bottom): precision after X rewrites (positive = grades 1-2)",
            x_name="X",
        )
    )
    print("(paper P@5: Pearson ~?, SimRank 75%, evidence-based 80%, weighted 86%; P@1 weighted 96%)")
