"""SQL-serving gate: latency ratio, byte-equality and resident memory.

ISSUE 10's acceptance criteria for the SQLite serving store
(:mod:`repro.store`), all three asserted in one run:

1. **Latency.**  On the 1500-node scenario graph, p99 ``rewrites()``
   lookup latency against the SQLite store must be within **5x** of the
   in-memory store's -- stores are compared *directly* (no engine LRU
   cache in front) so every call pays the real lookup cost.
2. **Byte-equality.**  A store-backed engine's ``serving_profile`` over
   the full query universe must equal the fitted engine's exactly --
   same rewrites, same ranks, bit-identical float64 scores.
3. **Resident memory.**  On a larger graph, peak RSS of store-backed
   serving must come in measurably below full-snapshot serving (the
   whole point: O(cache) instead of O(score matrix)).  Each side runs in
   its own subprocess and reads ``VmHWM`` from ``/proc/self/status``:
   unlike ``ru_maxrss`` -- which Linux carries across fork+exec, so a
   child spawned from this (large) benchmark process would inherit the
   parent's peak -- ``VmHWM`` belongs to the fresh post-exec address
   space and measures only the child's own serving footprint.

Writes ``BENCH_sql_serving.json`` next to this file.  Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_sql_serving.py
    PYTHONPATH=src python benchmarks/bench_sql_serving.py
"""

from __future__ import annotations

import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.store import InMemoryServingStore, SqliteServingStore
from repro.synth.scenarios import multi_component_graph

#: SQLite p99 lookup latency must stay within this factor of in-memory.
P99_RATIO_CEILING = 5.0
#: Store-backed serving must beat snapshot serving's peak RSS by at least
#: this margin (MiB) on the RSS graph -- "measurably below", not noise.
RSS_MARGIN_MIB = 8.0
LATENCY_ROUNDS = 5

SIMILARITY = SimrankConfig(iterations=7, zero_evidence_floor=0.1)

#: The 1500-node scenario shared with bench_engine_snapshot.py.
LATENCY_GRAPH_PARAMS = dict(
    num_components=30,
    queries_per_component=30,
    ads_per_component=20,
    extra_edges=90,
    seed=41,
)

#: A much larger graph for the RSS comparison: ~1.3M stored score pairs,
#: so the resident CSR matrix dwarfs the subprocess baseline while the
#: SQLite store keeps it on disk.
RSS_GRAPH_PARAMS = dict(
    num_components=6,
    queries_per_component=500,
    ads_per_component=200,
    extra_edges=3000,
    seed=43,
)
#: Queries served by each RSS subprocess (point lookups, cold cache).
RSS_SERVING_QUERIES = 50

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_sql_serving.json"


def build_engine(graph_params):
    graph = multi_component_graph(**graph_params)
    config = EngineConfig(
        method="weighted_simrank", backend="sharded", similarity=SIMILARITY
    )
    bid_terms = {str(query) for query in graph.queries()}
    return RewriteEngine.from_graph(graph, config, bid_terms=bid_terms).fit()


def percentile(values, fraction):
    ranked = sorted(values)
    return ranked[min(len(ranked) - 1, int(len(ranked) * fraction))]


def lookup_latencies(store, queries, rounds=LATENCY_ROUNDS):
    """Per-query best-of-rounds lookup seconds, straight at the store."""
    best = {query: float("inf") for query in queries}
    for _ in range(rounds):
        for query in queries:
            start = time.perf_counter()
            store.rewrites(query)
            best[query] = min(best[query], time.perf_counter() - start)
    return list(best.values())


def measure_latency_and_equality(workdir: Path) -> dict:
    engine = build_engine(LATENCY_GRAPH_PARAMS)
    store_path = engine.export_store(workdir / "latency.sqlite")
    queries = engine._serving_universe()

    memory_store = InMemoryServingStore.from_engine(engine)
    sqlite_store = SqliteServingStore(store_path)
    try:
        memory_p99 = percentile(lookup_latencies(memory_store, queries), 0.99)
        sqlite_p99 = percentile(lookup_latencies(sqlite_store, queries), 0.99)
        served = RewriteEngine.from_store(sqlite_store)
        equal_serving = served.serving_profile(queries) == engine.serving_profile(
            queries
        )
    finally:
        sqlite_store.close()
    return {
        "graph": LATENCY_GRAPH_PARAMS,
        "queries": len(queries),
        "store_bytes": store_path.stat().st_size,
        "memory_p99_us": memory_p99 * 1e6,
        "sqlite_p99_us": sqlite_p99 * 1e6,
        "p99_ratio": sqlite_p99 / memory_p99,
        "equal_serving": equal_serving,
    }


#: Runs in a subprocess: serve a query sample from one source, report the
#: process's own peak resident memory (KiB) and a serving-profile digest.
#: VmHWM preferred over ru_maxrss -- see the module docstring.
_CHILD_SCRIPT = """
import hashlib, json, resource, sys
from repro.api.engine import RewriteEngine

def peak_kib():
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

kind, source, queries_path = sys.argv[1], sys.argv[2], sys.argv[3]
queries = json.loads(open(queries_path).read())
engine = (
    RewriteEngine.from_store(source) if kind == "store"
    else RewriteEngine.load(source)
)
profile = engine.serving_profile(queries)
digest = hashlib.sha256(repr(profile).encode()).hexdigest()
print(json.dumps({"peak_kib": peak_kib(), "digest": digest}))
"""


def serve_in_subprocess(kind: str, source: Path, queries_path: Path) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT, kind, str(source), str(queries_path)],
        capture_output=True,
        text=True,
        check=True,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        cwd=Path(__file__).resolve().parent.parent,
    )
    return json.loads(result.stdout.strip().splitlines()[-1])


def measure_rss(workdir: Path) -> dict:
    engine = build_engine(RSS_GRAPH_PARAMS)
    snapshot_path = engine.save(workdir / "rss-snapshot")
    store_path = engine.export_store(workdir / "rss.sqlite")
    queries = engine._serving_universe()[:RSS_SERVING_QUERIES]
    queries_path = workdir / "rss-queries.json"
    queries_path.write_text(json.dumps(queries))

    snapshot = serve_in_subprocess("snapshot", snapshot_path, queries_path)
    store = serve_in_subprocess("store", store_path, queries_path)
    return {
        "graph": RSS_GRAPH_PARAMS,
        "stored_pairs": len(engine.method.similarities()),
        "serving_queries": len(queries),
        "snapshot_peak_kib": snapshot["peak_kib"],
        "store_peak_kib": store["peak_kib"],
        "saved_mib": (snapshot["peak_kib"] - store["peak_kib"]) / 1024.0,
        "equal_digests": snapshot["digest"] == store["digest"],
    }


def run_measurements() -> dict:
    with tempfile.TemporaryDirectory(prefix="bench_sql_serving_") as root:
        workdir = Path(root)
        return {
            "latency": measure_latency_and_equality(workdir),
            "rss": measure_rss(workdir),
        }


def write_artifact(results: dict) -> None:
    payload = {
        "benchmark": "bench_sql_serving",
        "config": {
            "method": "weighted_simrank",
            "backend": "sharded",
            "iterations": SIMILARITY.iterations,
            "zero_evidence_floor": SIMILARITY.zero_evidence_floor,
            "p99_ratio_ceiling": P99_RATIO_CEILING,
            "rss_margin_mib": RSS_MARGIN_MIB,
        },
        "results": results,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_sql_serving_is_equal_fast_and_small():
    """The acceptance gate -- and the producer of BENCH_sql_serving.json."""
    results = run_measurements()
    write_artifact(results)
    latency, rss = results["latency"], results["rss"]
    print(
        f"\np99 lookup: memory {latency['memory_p99_us']:.0f} us, sqlite "
        f"{latency['sqlite_p99_us']:.0f} us (ratio {latency['p99_ratio']:.2f}x, "
        f"ceiling {P99_RATIO_CEILING}x); store {latency['store_bytes'] / 1024:.0f} KiB; "
        f"peak RSS: snapshot {rss['snapshot_peak_kib'] / 1024:.0f} MiB, store "
        f"{rss['store_peak_kib'] / 1024:.0f} MiB (saved {rss['saved_mib']:.0f} MiB); "
        f"artifact: {ARTIFACT_PATH.name}"
    )
    # Equivalence first: a fast wrong answer must not pass.
    assert latency["equal_serving"], "store-backed serving profile differs"
    assert rss["equal_digests"], "subprocess serving profiles differ"
    assert latency["p99_ratio"] <= P99_RATIO_CEILING, (
        f"SQLite p99 lookup {latency['p99_ratio']:.2f}x in-memory "
        f"(ceiling: {P99_RATIO_CEILING}x)"
    )
    saved = rss["saved_mib"]
    assert saved >= RSS_MARGIN_MIB, (
        f"store-backed serving saved only {saved:.1f} MiB of peak RSS over "
        f"snapshot serving (required margin: {RSS_MARGIN_MIB} MiB)"
    )


def main() -> None:
    results = run_measurements()
    write_artifact(results)
    print(json.dumps(results, indent=2))
    print(f"wrote {ARTIFACT_PATH}")


if __name__ == "__main__":
    main()
