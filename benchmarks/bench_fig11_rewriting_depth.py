"""Figure 11: rewriting depth distribution per method."""

from repro.eval.reporting import format_table
from repro.experiments.paper import figure11_rewriting_depth


def test_figure11_rewriting_depth(benchmark, harness_result):
    depth = benchmark(lambda: figure11_rewriting_depth(harness_result))
    print()
    rows = [
        {"method": name, **{bin_name: round(value, 1) for bin_name, value in bins.items()}}
        for name, bins in depth.items()
    ]
    print(format_table(rows, title="Figure 11: rewriting depth (% of sample queries)"))
    print("(paper: the enhanced variants provide the full 5 rewrites for >85% of queries)")
