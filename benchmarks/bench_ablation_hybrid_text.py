"""Ablation: combining weighted SimRank with text similarity (paper Section 11).

Sweeps the interpolation weight alpha and reports coverage and editorial
precision of the top-5 rewrites, quantifying how much the lexical component
adds on top of the click graph.
"""

from repro.core.config import SimrankConfig
from repro.core.hybrid import HybridSimilarity
from repro.api.registry import create
from repro.core.rewriter import QueryRewriter
from repro.eval.editorial import EditorialJudge
from repro.eval.reporting import format_table


def _evaluate(workload, graph, queries, method):
    rewriter = QueryRewriter(
        method, bid_terms={str(term) for term in workload.bid_terms}
    ).fit(graph)
    judge = EditorialJudge(workload)
    covered = 0
    relevant = 0
    total = 0
    for query in queries:
        rewrites = rewriter.rewrites_for(query)
        covered += bool(rewrites.covered)
        for rewrite in rewrites.rewrites:
            total += 1
            relevant += judge.grade(query, rewrite.rewrite) <= 2
    return 100.0 * covered / len(queries), (relevant / total if total else 0.0)


def test_ablation_hybrid_text(benchmark, small_workload, harness_result):
    graph = harness_result.dataset
    queries = harness_result.evaluation_queries[:60]
    config = SimrankConfig(iterations=7, zero_evidence_floor=0.1)

    def run():
        rows = []
        for alpha in (1.0, 0.8, 0.6, 0.4, 0.0):
            method = HybridSimilarity(
                create("weighted_simrank", config=config), alpha=alpha
            )
            coverage, precision = _evaluate(small_workload, graph, queries, method)
            rows.append(
                {
                    "alpha (graph weight)": alpha,
                    "coverage (%)": round(coverage, 1),
                    "precision of top-5": round(precision, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: weighted SimRank + text similarity hybrid"))
