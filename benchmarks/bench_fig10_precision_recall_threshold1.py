"""Figure 10: 11-point precision/recall and P@X with only grade 1 as the positive class."""

from repro.eval.metrics import STANDARD_RECALL_LEVELS
from repro.eval.reporting import format_series
from repro.experiments.paper import figure10_precision_recall_strict


def test_figure10_precision_recall_strict(benchmark, harness_result):
    data = benchmark(lambda: figure10_precision_recall_strict(harness_result))
    print()
    print(
        format_series(
            data["precision_recall"],
            x_labels=[f"{level:.1f}" for level in STANDARD_RECALL_LEVELS],
            title="Figure 10 (top): interpolated precision at 11 recall levels (positive = grade 1)",
            x_name="recall",
        )
    )
    print()
    print(
        format_series(
            data["precision_at_x"],
            x_labels=[1, 2, 3, 4, 5],
            title="Figure 10 (bottom): precision after X rewrites (positive = grade 1)",
            x_name="X",
        )
    )
