"""Table 2: SimRank scores (C1 = C2 = 0.8) on the Figure 3 sample click graph."""

from repro.core.config import SimrankConfig
from repro.core.simrank import BipartiteSimrank
from repro.eval.reporting import format_table
from repro.experiments.paper import table2_simrank_sample
from repro.synth.scenarios import figure3_graph


def test_table2_simrank_sample(benchmark):
    graph = figure3_graph()
    config = SimrankConfig(iterations=20)
    benchmark(lambda: BipartiteSimrank(config).fit(graph))
    print()
    print(format_table(table2_simrank_sample(), title="Table 2: SimRank scores (C1 = C2 = 0.8)"))
