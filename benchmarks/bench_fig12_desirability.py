"""Figure 12: desirability-prediction accuracy after removing direct evidence."""

from repro.eval.reporting import format_table
from repro.experiments.paper import figure12_desirability


def test_figure12_desirability(benchmark, harness_result):
    desirability = benchmark(lambda: figure12_desirability(harness_result))
    print()
    rows = [
        {"method": name, "correct ordering (%)": round(value, 1)}
        for name, value in desirability.items()
    ]
    print(format_table(rows, title="Figure 12: desirability prediction (edge removal, 50 queries)"))
    print("(paper: SimRank 54%, evidence-based 54%, weighted 92%; see EXPERIMENTS.md for the")
    print(" laptop-scale caveat and the no-removal ablation that isolates the weight signal)")
