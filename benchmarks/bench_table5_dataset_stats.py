"""Table 5: dataset statistics of the subgraphs extracted by local partitioning."""

from repro.eval.reporting import format_table
from repro.experiments.paper import table5_dataset_statistics
from repro.graph.statistics import degree_distribution


def test_table5_dataset_statistics(benchmark, small_harness, harness_result):
    # Benchmark the subgraph-extraction step itself (partitioning the giant
    # component of the synthetic click graph into the evaluation dataset).
    benchmark.pedantic(small_harness.build_subgraphs, rounds=1, iterations=1)
    print()
    print(format_table(table5_dataset_statistics(harness_result), title="Table 5: dataset statistics"))
    ads_per_query = degree_distribution(harness_result.dataset, side="query")
    queries_per_ad = degree_distribution(harness_result.dataset, side="ad")
    clicks = degree_distribution(harness_result.dataset, side="clicks")
    print(
        "power-law exponents: ads-per-query %.2f, queries-per-ad %.2f, clicks-per-edge %.2f"
        % (ads_per_query.exponent, queries_per_ad.exponent, clicks.exponent)
    )
