"""Engine-snapshot speedup gate plus the perf-trajectory artifact.

The paper's deployment computes rewrites offline and serves them online
(Section 9.3); :mod:`repro.api.snapshot` makes that split survive process
restarts by persisting the fitted score store.  The claim this benchmark
gates: reviving an engine with ``RewriteEngine.load`` must be at least
**20x faster** than refitting it, on the 1500-node scenario graph with the
experiments' default dense backend -- while serving *identical* rewrite
lists (a fast wrong answer must not pass).

The run also measures the sharded and sparse backends and writes
``BENCH_engine_snapshot.json`` next to this file: per backend, the refit
time, the snapshot load time, the measured speedup, the snapshot's on-disk
size, and the serving-equivalence verdict.

Run the gate and the timing figures with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_engine_snapshot.py
    PYTHONPATH=src python benchmarks/bench_engine_snapshot.py
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.synth.scenarios import multi_component_graph

SPEEDUP_FLOOR = 20.0
GATED_BACKEND = "matrix"
BACKENDS = ["matrix", "sharded", "sparse"]
SERVING_QUERIES = 200

SIMILARITY = SimrankConfig(iterations=7, zero_evidence_floor=0.1)

#: The 1500-node sparse scenario of bench_sparse_backend.py (30 components).
GRAPH_PARAMS = dict(
    num_components=30,
    queries_per_component=30,
    ads_per_component=20,
    extra_edges=90,
    seed=41,
)

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_engine_snapshot.json"


def build_graph():
    return multi_component_graph(**GRAPH_PARAMS)


def build_engine(graph, backend):
    config = EngineConfig(
        method="weighted_simrank", backend=backend, similarity=SIMILARITY
    )
    bid_terms = {str(query) for query in graph.queries()}
    return RewriteEngine.from_graph(graph, config, bid_terms=bid_terms)


def best_seconds(action, rounds):
    """Fastest of ``rounds`` runs (best-of to damp scheduler noise)."""
    best = float("inf")
    result = None
    for _ in range(rounds):
        start = time.perf_counter()
        result = action()
        best = min(best, time.perf_counter() - start)
    return best, result


def directory_bytes(path: Path) -> int:
    return sum(entry.stat().st_size for entry in path.rglob("*") if entry.is_file())


def measure(graph, backend, snapshot_root: Path, fit_rounds=2, load_rounds=3) -> dict:
    """Refit vs snapshot-load timings (and serving equivalence) for one backend."""
    fitted = build_engine(graph, backend).fit()
    snapshot_path = fitted.save(snapshot_root / backend)

    refit_seconds, _ = best_seconds(
        lambda: build_engine(graph, backend).fit(), rounds=fit_rounds
    )
    load_seconds, loaded = best_seconds(
        lambda: RewriteEngine.load(snapshot_path), rounds=load_rounds
    )

    queries = sorted(graph.queries(), key=repr)[:SERVING_QUERIES]
    equal_serving = loaded.serving_profile(queries) == fitted.serving_profile(queries)
    return {
        "backend": backend,
        "queries": graph.num_queries,
        "ads": graph.num_ads,
        "edges": graph.num_edges,
        "refit_seconds": refit_seconds,
        "load_seconds": load_seconds,
        "speedup": refit_seconds / load_seconds,
        "snapshot_bytes": directory_bytes(snapshot_path),
        "stored_pairs": len(fitted.method.similarities()),
        "serving_queries": len(queries),
        "equal_serving": equal_serving,
    }


def run_measurements() -> list:
    graph = build_graph()
    with tempfile.TemporaryDirectory(prefix="bench_engine_snapshot_") as root:
        return [measure(graph, backend, Path(root)) for backend in BACKENDS]


def write_artifact(results) -> None:
    payload = {
        "benchmark": "bench_engine_snapshot",
        "config": {
            "method": "weighted_simrank",
            "iterations": SIMILARITY.iterations,
            "zero_evidence_floor": SIMILARITY.zero_evidence_floor,
            "gated_backend": GATED_BACKEND,
            "speedup_floor": SPEEDUP_FLOOR,
            "graph": GRAPH_PARAMS,
        },
        "results": results,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_snapshot_load_is_at_least_20x_faster_than_refit():
    """The acceptance gate -- and the producer of BENCH_engine_snapshot.json."""
    results = run_measurements()
    write_artifact(results)
    by_backend = {row["backend"]: row for row in results}
    gated = by_backend[GATED_BACKEND]
    assert gated["queries"] + gated["ads"] == 1500
    print(
        f"\nrefit {gated['refit_seconds'] * 1000:.1f} ms, snapshot load "
        f"{gated['load_seconds'] * 1000:.1f} ms, speedup {gated['speedup']:.0f}x; "
        f"snapshot {gated['snapshot_bytes'] / 1024:.0f} KiB holding "
        f"{gated['stored_pairs']} pairs; artifact: {ARTIFACT_PATH.name}"
    )
    # Equivalence first: every backend's loaded engine must serve identically.
    for row in results:
        assert row["equal_serving"], f"{row['backend']}: loaded serving differs"
    assert gated["speedup"] >= SPEEDUP_FLOOR, (
        f"snapshot load only {gated['speedup']:.1f}x faster than refit "
        f"(floor: {SPEEDUP_FLOOR}x)"
    )


def main() -> None:
    results = run_measurements()
    write_artifact(results)
    for row in results:
        print(
            f"{row['backend']:>8}: refit {row['refit_seconds'] * 1000:8.1f} ms, "
            f"load {row['load_seconds'] * 1000:6.1f} ms ({row['speedup']:6.0f}x), "
            f"snapshot {row['snapshot_bytes'] / 1024:6.0f} KiB, "
            f"equal_serving={row['equal_serving']}"
        )
    print(f"wrote {ARTIFACT_PATH}")


if __name__ == "__main__":
    main()
