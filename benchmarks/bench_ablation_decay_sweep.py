"""Ablation: decay-factor sweep (C1 = C2) on convergence speed and score scale."""

from repro.core.config import SimrankConfig
from repro.core.convergence import iterations_for_accuracy
from repro.core.simrank import BipartiteSimrank
from repro.eval.reporting import format_table
from repro.synth.scenarios import figure3_graph


def test_ablation_decay_sweep(benchmark):
    graph = figure3_graph()

    def sweep():
        rows = []
        for decay in (0.6, 0.7, 0.8, 0.9):
            config = SimrankConfig(c1=decay, c2=decay, iterations=30, tolerance=1e-6)
            method = BipartiteSimrank(config).fit(graph)
            rows.append(
                {
                    "C1 = C2": decay,
                    "sim(pc, camera)": round(method.query_similarity("pc", "camera"), 4),
                    "sim(pc, tv)": round(method.query_similarity("pc", "tv"), 4),
                    "iterations to converge (1e-6)": method.result.iterations_run,
                    "iterations for 0.01 bound": iterations_for_accuracy(decay, 0.01),
                }
            )
        return rows

    rows = benchmark(sweep)
    print()
    print(format_table(rows, title="Ablation: decay factor sweep on the Figure 3 graph"))
