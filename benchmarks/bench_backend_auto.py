"""Gates of the ``backend="auto"`` planner and the process-pool parallel fit.

Two claims are enforced, and both measurements land in
``BENCH_backend_auto.json`` next to this file:

1. **Auto never loses badly.**  Across a scenario matrix spanning the shapes
   the planner distinguishes -- one small dense component, one large sparse
   component, a many-component graph -- the auto backend's fit time must stay
   within ~10% of the best *fixed* backend (matrix / sparse / sharded) on
   that scenario, plus a small absolute slack for timer noise on
   millisecond-scale fits.  Auto's scores must also match the dense engine's
   (the planner only chooses *which* engine runs, never what it computes).

2. **Process-pool fitting scales.**  On a many-component graph whose shard
   fits dominate the fork/pickle overhead, ``n_jobs=4`` with
   ``executor="process"`` must fit at least 2.5x faster than the same
   serial fit.  The claim needs 4 schedulable CPUs, so the gate skips
   (after recording the measurement environment in the artifact) on smaller
   machines -- CI's 4-core runners enforce it.

Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_backend_auto.py
    PYTHONPATH=src python benchmarks/bench_backend_auto.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.core.config import SimrankConfig
from repro.core.parallel import available_cpu_count
from repro.core.planner import AutoSimrank
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sharded import ShardedSimrank
from repro.core.simrank_sparse import SparseSimrank
from repro.synth.scenarios import multi_component_graph

#: Auto may lose to the best fixed backend by at most this factor...
AUTO_OVERHEAD_CEILING = 1.10
#: ...plus this absolute slack (seconds): planning costs one component sweep,
#: which is timer noise on fits measured in milliseconds.
AUTO_ABSOLUTE_SLACK = 0.05

PARALLEL_SPEEDUP_FLOOR = 2.5
PARALLEL_JOBS = 4

ROUNDS = 2

CONFIG = SimrankConfig(iterations=7, zero_evidence_floor=0.1)

#: The planner's decision space, one scenario per shape: a single dense
#: component (dense numpy should win), a single large sparse component (the
#: CSR engine should win) and a disconnected graph (sharding should win).
SCENARIOS = [
    (
        "one_dense_component",
        dict(num_components=1, queries_per_component=60, ads_per_component=40,
             extra_edges=150, seed=7),
    ),
    (
        "one_sparse_component",
        dict(num_components=1, queries_per_component=320, ads_per_component=320,
             extra_edges=100, seed=7),
    ),
    (
        "many_components",
        dict(num_components=30, queries_per_component=30, ads_per_component=20,
             extra_edges=90, seed=41),
    ),
]

#: The parallel gate's graph: per-shard fits heavy enough that the process
#: pool's fork + pickle overhead is amortised many times over.  The pruning
#: knobs bound both the sparse fill-in and the size of the fitted engines
#: pickled back to the parent.
PARALLEL_GRAPH = dict(
    num_components=8, queries_per_component=220, ads_per_component=220,
    extra_edges=600, seed=53,
)
PARALLEL_CONFIG = SimrankConfig(
    iterations=25, zero_evidence_floor=0.1, prune_threshold=1e-4, prune_top_k=20
)

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_backend_auto.json"


FIXED_BACKENDS = {
    "matrix": lambda: MatrixSimrank(CONFIG, mode="weighted"),
    "sparse": lambda: SparseSimrank(CONFIG, mode="weighted"),
    "sharded": lambda: ShardedSimrank(CONFIG, mode="weighted"),
}


def best_fit_seconds(method_factory, graph, rounds=ROUNDS):
    """Fastest of ``rounds`` full fits (best-of to damp scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        method = method_factory()
        start = time.perf_counter()
        method.fit(graph)
        best = min(best, time.perf_counter() - start)
    return best, method


def measure_scenario(label: str, parameters: dict) -> dict:
    graph = multi_component_graph(**parameters)
    fixed = {}
    reference = None
    for name, factory in FIXED_BACKENDS.items():
        seconds, method = best_fit_seconds(factory, graph)
        fixed[name] = seconds
        if name == "matrix":
            reference = method
    auto_seconds, auto = best_fit_seconds(
        lambda: AutoSimrank(CONFIG, mode="weighted"), graph
    )
    best_name = min(fixed, key=fixed.get)
    return {
        "label": label,
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "fixed_fit_seconds": fixed,
        "best_fixed_backend": best_name,
        "best_fixed_seconds": fixed[best_name],
        "auto_fit_seconds": auto_seconds,
        "auto_vs_best_ratio": auto_seconds / fixed[best_name],
        "auto_strategy": auto.plan.strategy,
        "max_score_difference": reference.similarities().max_difference(
            auto.similarities()
        ),
    }


def measure_parallel() -> dict:
    graph = multi_component_graph(**PARALLEL_GRAPH)
    serial_seconds, serial = best_fit_seconds(
        lambda: ShardedSimrank(
            PARALLEL_CONFIG, mode="weighted", n_jobs=1, inner_backend="sparse"
        ),
        graph,
    )
    parallel_seconds, parallel = best_fit_seconds(
        lambda: ShardedSimrank(
            PARALLEL_CONFIG,
            mode="weighted",
            n_jobs=PARALLEL_JOBS,
            inner_backend="sparse",
            executor="process",
        ),
        graph,
    )
    return {
        "nodes": graph.num_nodes,
        "edges": graph.num_edges,
        "components": serial.num_shards,
        "n_jobs": PARALLEL_JOBS,
        "available_cpus": available_cpu_count(),
        "serial_fit_seconds": serial_seconds,
        "parallel_fit_seconds": parallel_seconds,
        "speedup": serial_seconds / parallel_seconds,
        "max_score_difference": serial.similarities().max_difference(
            parallel.similarities()
        ),
    }


def write_artifact(scenarios=None, parallel=None) -> None:
    """Merge-write the artifact so either test can run (or skip) alone."""
    payload = {
        "benchmark": "bench_backend_auto",
        "config": {
            "iterations": CONFIG.iterations,
            "zero_evidence_floor": CONFIG.zero_evidence_floor,
            "mode": "weighted",
            "auto_overhead_ceiling": AUTO_OVERHEAD_CEILING,
            "auto_absolute_slack": AUTO_ABSOLUTE_SLACK,
            "parallel_speedup_floor": PARALLEL_SPEEDUP_FLOOR,
        },
        "scenarios": None,
        "parallel": None,
    }
    if ARTIFACT_PATH.exists():
        try:
            previous = json.loads(ARTIFACT_PATH.read_text())
            payload["scenarios"] = previous.get("scenarios")
            payload["parallel"] = previous.get("parallel")
        except (ValueError, OSError):
            pass
    if scenarios is not None:
        payload["scenarios"] = scenarios
    if parallel is not None:
        payload["parallel"] = parallel
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


EXPECTED_STRATEGIES = {
    "one_dense_component": "single-dense",
    "one_sparse_component": "single-sparse",
    "many_components": "sharded",
}


def test_auto_stays_within_10pct_of_the_best_fixed_backend():
    results = [measure_scenario(label, params) for label, params in SCENARIOS]
    write_artifact(scenarios=results)
    for row in results:
        print(
            f"\n{row['label']:>20}: best fixed {row['best_fixed_backend']} "
            f"{row['best_fixed_seconds'] * 1000:7.1f} ms, auto "
            f"{row['auto_fit_seconds'] * 1000:7.1f} ms "
            f"({row['auto_vs_best_ratio']:.2f}x, plan {row['auto_strategy']})"
        )
        assert row["auto_strategy"] == EXPECTED_STRATEGIES[row["label"]], row["label"]
        assert row["max_score_difference"] < 1e-6, row["label"]
        ceiling = (
            row["best_fixed_seconds"] * AUTO_OVERHEAD_CEILING + AUTO_ABSOLUTE_SLACK
        )
        assert row["auto_fit_seconds"] <= ceiling, (
            f"{row['label']}: auto took {row['auto_fit_seconds']:.3f}s, over the "
            f"{ceiling:.3f}s ceiling (best fixed: {row['best_fixed_backend']} "
            f"at {row['best_fixed_seconds']:.3f}s)"
        )


def test_process_pool_fit_is_at_least_2_5x_faster():
    cpus = available_cpu_count()
    if cpus < PARALLEL_JOBS:
        write_artifact(
            parallel={"skipped": True, "available_cpus": cpus, "n_jobs": PARALLEL_JOBS}
        )
        pytest.skip(
            f"needs {PARALLEL_JOBS} schedulable CPUs for the speedup claim, "
            f"found {cpus}"
        )
    result = measure_parallel()
    write_artifact(parallel=result)
    print(
        f"\nserial {result['serial_fit_seconds']:.2f}s, n_jobs={PARALLEL_JOBS} "
        f"process {result['parallel_fit_seconds']:.2f}s "
        f"({result['speedup']:.1f}x on {result['available_cpus']} CPUs)"
    )
    assert result["max_score_difference"] == 0.0
    assert result["speedup"] >= PARALLEL_SPEEDUP_FLOOR, (
        f"process pool only {result['speedup']:.2f}x faster than serial "
        f"(floor: {PARALLEL_SPEEDUP_FLOOR}x)"
    )


def main() -> None:
    results = [measure_scenario(label, params) for label, params in SCENARIOS]
    write_artifact(scenarios=results)
    for row in results:
        print(
            f"{row['label']:>20}: best {row['best_fixed_backend']} "
            f"{row['best_fixed_seconds'] * 1000:7.1f} ms, auto "
            f"{row['auto_fit_seconds'] * 1000:7.1f} ms "
            f"({row['auto_vs_best_ratio']:.2f}x, {row['auto_strategy']})"
        )
    if available_cpu_count() >= PARALLEL_JOBS:
        result = measure_parallel()
        write_artifact(parallel=result)
        print(
            f"parallel: serial {result['serial_fit_seconds']:.2f}s -> "
            f"{result['parallel_fit_seconds']:.2f}s ({result['speedup']:.1f}x)"
        )
    else:
        print(f"parallel gate skipped: {available_cpu_count()} CPU(s) available")
    print(f"wrote {ARTIFACT_PATH}")


if __name__ == "__main__":
    main()
