"""Table 4: per-iteration evidence-based SimRank scores on the Figure 4 graphs."""

from repro.eval.reporting import format_table
from repro.experiments.paper import table4_evidence_iterations


def test_table4_evidence_iterations(benchmark):
    rows = benchmark(table4_evidence_iterations)
    print()
    print(
        format_table(
            rows, title="Table 4: evidence-based SimRank per-iteration scores (C1 = C2 = 0.8)"
        )
    )
