"""Chaos serving gate: scripted faults vs. the resilience layer, measured.

The resilience claim (ISSUE 8): under a deterministic fault schedule --
transient refresh outages, a crashed process-pool fit worker, slow shard
fits, a corrupt snapshot reload, compute latency past the request deadline
-- the serving tier

* returns **zero incorrect responses**: every 200 is byte-equal to the
  ground truth of the exact engine version that served it;
* keeps **availability >= 99.9%** excluding deliberate sheds (503) and
  deadline timeouts (504), which are the server managing load on purpose;
* recovers to ``healthy`` within **one successful refresh** after the
  faults clear;
* pays **zero overhead** for the fault points when no plan is active.

Phases (each asserts its own invariants; all feed the artifact):

1. ``overhead``       -- time an inactive fault point; must be no-op cheap.
2. ``transient``      -- ``/refresh`` hit by 2 injected outages succeeds
                         via backoff retries; the holder ledger shows both.
3. ``breaker``        -- a persistent outage trips the circuit breaker:
                         publishes are shed with 503, traffic keeps being
                         served, health reads degraded; after the reset
                         window one half-open probe recovers to healthy.
4. ``worker_crash``   -- a ``crash=True`` fault kills a real process-pool
                         fit worker mid-``/refresh`` (BrokenProcessPool);
                         the retry succeeds because the fault was consumed.
5. ``corrupt_reload`` -- ``/reload`` pointing at a fault-torn snapshot is
                         a clean 500, old engine still published; the next
                         good refresh restores healthy.
6. ``chaos_load``     -- Zipf load with a mid-run fault window (slow
                         compute -> deliberate 504s, refresh outages, slow
                         shard fits) while refreshes cycle; zero failures,
                         full availability, responses byte-verified.

Writes ``BENCH_chaos_serving.json`` next to this file.  Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_chaos_serving.py
    PYTHONPATH=src python benchmarks/bench_chaos_serving.py
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import time
from pathlib import Path

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core import faults
from repro.core.config import SimrankConfig
from repro.graph.delta import DeltaBuilder
from repro.serving import (
    EngineHolder,
    RewriteServer,
    ServerConfig,
    ZipfSchedule,
    delta_to_payload,
    request_once,
    run_load,
)
from repro.synth.scenarios import multi_component_graph

AVAILABILITY_TARGET = 0.999
#: Inactive fault points must stay in no-op territory: one global load and
#: a None test.  2 microseconds per call is ~20x reality on a slow CI box,
#: but any accidental locking/allocation/formatting blows well past it.
MAX_INACTIVE_OVERHEAD_US = 2.0
OVERHEAD_CALLS = 200_000

REQUESTS_CHAOS = 1200
CONCURRENCY = 8
ZIPF_ALPHA = 1.2
MIN_REFRESH_ROUNDS = 3
MAX_REFRESH_ROUNDS = 40

#: Tolerance-converged so /refresh warm-starts instead of refitting cold.
SIMILARITY = SimrankConfig(iterations=60, tolerance=1e-8, zero_evidence_floor=0.1)

GRAPH_PARAMS = dict(
    num_components=6,
    queries_per_component=30,
    ads_per_component=20,
    extra_edges=60,
    seed=23,
)

#: Deadline chosen far above normal latency (ms-scale) and far below the
#: injected 2.5 s compute stall, so 504s in the chaos window are exactly
#: the deliberate ones.
SERVER = ServerConfig(
    max_batch_size=16,
    batch_linger_ms=0.5,
    max_concurrency=4,
    request_timeout_s=1.5,
    refresh_retries=2,
    refresh_backoff_s=0.02,
    refresh_backoff_max_s=0.1,
    breaker_threshold=3,
    breaker_reset_s=0.25,
)

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_chaos_serving.json"


def build_engine() -> RewriteEngine:
    graph = multi_component_graph(**GRAPH_PARAMS)
    config = EngineConfig(
        method="weighted_simrank",
        backend="sharded",
        similarity=SIMILARITY,
        cache_size=128,
        # A real process pool, so crash faults kill a real worker and the
        # serving path exercises PR 7's cancel-and-restore shard logic.
        n_jobs=2,
        executor="process",
    )
    bid_terms = {str(query) for query in graph.queries()}
    return RewriteEngine.from_graph(graph, config, bid_terms=bid_terms).fit()


def build_delta(graph, round_index: int):
    """A delta dirtying *two* components, so the refit takes the pool path."""
    builder = DeltaBuilder(graph)
    for component in (0, 1):
        query, ad = f"c{component}_q0", f"c{component}_a0"
        stats = graph.edge(query, ad)
        if stats is None:
            builder.set_edge(query, ad, impressions=30, clicks=3)
        else:
            builder.set_edge(
                query,
                ad,
                impressions=stats.impressions + 10,
                clicks=stats.clicks + 1,
            )
    builder.set_edge(f"hot-{round_index}", "c0_a0", impressions=50, clicks=5)
    return builder.build()


def measure_inactive_overhead() -> float:
    """Mean microseconds per inactive fire() call (no plan active)."""
    assert faults.active_plan() is None
    started = time.perf_counter()
    for _ in range(OVERHEAD_CALLS):
        faults.fire("bench.overhead.probe")
    elapsed = time.perf_counter() - started
    return elapsed / OVERHEAD_CALLS * 1e6


def verify_responses(responses, engines_by_version) -> int:
    """Every response must be byte-equal to its serving version's truth."""
    expected_cache = {}
    for response in responses:
        key = (response.version, response.query)
        expected = expected_cache.get(key)
        if expected is None:
            engine = engines_by_version[response.version]
            expected = tuple(
                (r.rewrite, r.rank, r.score)
                for r in engine.rewrite(response.query).rewrites
            )
            expected_cache[key] = expected
        assert response.rewrites == expected, (
            f"incorrect response: {response.query!r} served at version "
            f"{response.version} does not match that version's rewrite()"
        )
    return len(responses)


async def phase_transient_refresh(server, holder, round_counter) -> dict:
    """Two injected refresh outages, absorbed entirely by backoff retries."""
    host, port = server.address
    failures_before = holder.publish_failures
    plan = faults.FaultPlan(
        [faults.FaultSpec("engine.refresh", error="transient outage", times=2)]
    )
    with plan:
        delta = build_delta(holder.engine.graph, next(round_counter))
        status, payload = await request_once(
            host, port, "POST", "/refresh", delta_to_payload(delta)
        )
    assert status == 200, f"retried refresh should succeed: {payload}"
    assert plan.fire_count("engine.refresh") == 2
    injected = holder.publish_failures - failures_before
    assert injected == 2, f"holder ledger recorded {injected} failures, not 2"
    assert holder.consecutive_failures == 0
    _, health = await request_once(host, port, "GET", "/healthz")
    assert health["status"] == "healthy", health
    return {"status": status, "injected_failures": injected, "plan": plan.describe()}


async def phase_breaker(server, holder, round_counter) -> dict:
    """A persistent outage trips the breaker; traffic survives; probe recovers."""
    host, port = server.address
    plan = faults.FaultPlan(
        [faults.FaultSpec("engine.refresh", error="persistent outage", times=None)]
    )
    query = str(next(iter(holder.engine.graph.queries())))
    with plan:
        delta = build_delta(holder.engine.graph, next(round_counter))
        first_status, first = await request_once(
            host, port, "POST", "/refresh", delta_to_payload(delta)
        )
        second_status, second = await request_once(
            host, port, "POST", "/refresh", delta_to_payload(delta)
        )
        _, degraded = await request_once(host, port, "GET", "/healthz")
        serve_status, _ = await request_once(
            host, port, "POST", "/rewrite", {"query": query}
        )
    assert first_status == 500, f"exhausted retries should fail: {first}"
    assert second_status == 503, f"open breaker should shed, got: {second}"
    assert "breaker" in second.get("error", ""), second
    assert degraded["status"] == "degraded", degraded
    assert serve_status == 200, "rewrite traffic must survive an open breaker"

    # Faults cleared: one half-open probe after the reset window recovers.
    await asyncio.sleep(SERVER.breaker_reset_s + 0.1)
    delta = build_delta(holder.engine.graph, next(round_counter))
    probe_status, probe = await request_once(
        host, port, "POST", "/refresh", delta_to_payload(delta)
    )
    assert probe_status == 200, f"half-open probe should publish: {probe}"
    _, recovered = await request_once(host, port, "GET", "/healthz")
    assert recovered["status"] == "healthy", recovered
    return {
        "tripped": first_status,
        "shed": second_status,
        "degraded_health": degraded["status"],
        "recovered_health": recovered["status"],
        "plan": plan.describe(),
    }


async def phase_worker_crash(server, holder, round_counter) -> dict:
    """A crash fault kills a real fit worker; the retried refresh publishes."""
    host, port = server.address
    version_before = holder.version
    plan = faults.FaultPlan(
        [faults.FaultSpec("shard.fit.worker", crash=True, times=1)]
    )
    with plan:
        delta = build_delta(holder.engine.graph, next(round_counter))
        status, payload = await request_once(
            host, port, "POST", "/refresh", delta_to_payload(delta)
        )
    assert status == 200, f"refresh should survive a worker crash: {payload}"
    assert plan.fire_count("shard.fit.worker") == 1, plan.describe()
    assert holder.version == version_before + 1
    _, health = await request_once(host, port, "GET", "/healthz")
    assert health["status"] == "healthy", health
    return {"status": status, "plan": plan.describe()}


async def phase_corrupt_reload(server, holder, round_counter, tmp_root) -> dict:
    """A fault-torn snapshot is a clean 500; the old engine keeps serving."""
    host, port = server.address
    bad_dir = Path(tmp_root) / "torn-snapshot"
    with faults.FaultPlan(
        [faults.FaultSpec("snapshot.write", corrupt=True, times=1)]
    ) as write_plan:
        holder.engine.save(bad_dir)
    assert write_plan.fire_count("snapshot.write") == 1

    version_before = holder.version
    query = str(next(iter(holder.engine.graph.queries())))
    status, payload = await request_once(
        host, port, "POST", "/reload", {"path": str(bad_dir)}
    )
    assert status == 500, f"corrupt snapshot must be a clean 500: {payload}"
    assert "snapshot" in payload["error"], payload
    assert holder.version == version_before, "nothing may be published"
    serve_status, _ = await request_once(
        host, port, "POST", "/rewrite", {"query": query}
    )
    assert serve_status == 200, "old engine must keep serving after a bad reload"
    _, degraded = await request_once(host, port, "GET", "/healthz")
    assert degraded["status"] == "degraded", degraded

    # One good refresh is the recovery condition.
    delta = build_delta(holder.engine.graph, next(round_counter))
    refresh_status, _ = await request_once(
        host, port, "POST", "/refresh", delta_to_payload(delta)
    )
    assert refresh_status == 200
    _, recovered = await request_once(host, port, "GET", "/healthz")
    assert recovered["status"] == "healthy", recovered
    return {
        "reload_status": status,
        "error": payload["error"],
        "degraded_health": degraded["status"],
        "recovered_health": recovered["status"],
    }


async def phase_chaos_load(server, holder, round_counter) -> dict:
    """Zipf load through a mid-run fault window, refreshes cycling throughout."""
    host, port = server.address
    queries = sorted(str(q) for q in holder.engine.graph.queries())
    schedule = ZipfSchedule(queries, alpha=ZIPF_ALPHA, seed=11)
    window_plan = faults.FaultPlan(
        [
            # Stalls two compute batches past the 1.5 s deadline: their
            # requests become deliberate 504s, nothing else does.
            faults.FaultSpec("serving.compute", latency_s=2.5, times=2),
            # Two refresh outages mid-load, absorbed by retries.
            faults.FaultSpec("engine.refresh", error="mid-run outage", times=2),
            # Slow shard fits: refreshes take longer, traffic unaffected.
            faults.FaultSpec("shard.fit", latency_s=0.25, times=2),
        ]
    )
    fault_schedule = faults.FaultSchedule(
        (
            faults.FaultEvent(0.3, window_plan),
            faults.FaultEvent(2.5, None),
        )
    )

    load_task = asyncio.create_task(
        run_load(
            host,
            port,
            schedule.sample(REQUESTS_CHAOS),
            concurrency=CONCURRENCY,
            record_responses=True,
            fault_schedule=fault_schedule,
        )
    )
    rounds = 0
    refresh_statuses = []
    while (not load_task.done() or rounds < MIN_REFRESH_ROUNDS) and (
        rounds < MAX_REFRESH_ROUNDS
    ):
        delta = build_delta(holder.engine.graph, next(round_counter))
        status, payload = await request_once(
            host, port, "POST", "/refresh", delta_to_payload(delta)
        )
        assert status == 200, f"refresh under chaos load failed: {payload}"
        refresh_statuses.append(status)
        rounds += 1
        await asyncio.sleep(0.01)
    report = await load_task
    _, health = await request_once(host, port, "GET", "/healthz")
    return {
        "load": report.to_dict(),
        "refresh_rounds": rounds,
        "versions_observed": len(report.versions),
        "final_health": health["status"],
        "window_plan": window_plan.describe(),
        "responses": report.responses,
    }


async def run_phases() -> dict:
    engine = build_engine()
    holder = EngineHolder(engine)
    engines_by_version = {holder.version: holder.engine}
    holder.add_swap_listener(
        lambda version, published: engines_by_version.setdefault(version, published)
    )
    round_counter = iter(range(10_000))

    with tempfile.TemporaryDirectory(prefix="chaos-snapshots-") as tmp_root:
        async with RewriteServer(holder, SERVER) as server:
            transient = await phase_transient_refresh(server, holder, round_counter)
            breaker = await phase_breaker(server, holder, round_counter)
            crash = await phase_worker_crash(server, holder, round_counter)
            corrupt = await phase_corrupt_reload(
                server, holder, round_counter, tmp_root
            )
            chaos = await phase_chaos_load(server, holder, round_counter)

    responses = chaos.pop("responses")
    verified = verify_responses(responses, engines_by_version)
    return {
        "engine": {
            "queries": engine.graph.num_queries,
            "ads": engine.graph.num_ads,
            "edges": engine.graph.num_edges,
        },
        "transient_refresh": transient,
        "breaker": breaker,
        "worker_crash": crash,
        "corrupt_reload": corrupt,
        "chaos_load": chaos,
        "responses_verified": verified,
    }


def run_measurements() -> dict:
    overhead_us = measure_inactive_overhead()
    results = asyncio.run(run_phases())
    results["inactive_overhead_us"] = overhead_us
    return results


def write_artifact(results: dict) -> None:
    payload = {
        "benchmark": "bench_chaos_serving",
        "config": {
            "graph": GRAPH_PARAMS,
            "requests_chaos": REQUESTS_CHAOS,
            "concurrency": CONCURRENCY,
            "zipf_alpha": ZIPF_ALPHA,
            "availability_target": AVAILABILITY_TARGET,
            "max_inactive_overhead_us": MAX_INACTIVE_OVERHEAD_US,
            "server": {
                "request_timeout_s": SERVER.request_timeout_s,
                "refresh_retries": SERVER.refresh_retries,
                "refresh_backoff_s": SERVER.refresh_backoff_s,
                "breaker_threshold": SERVER.breaker_threshold,
                "breaker_reset_s": SERVER.breaker_reset_s,
            },
        },
        "results": results,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_chaos_serving_gate():
    """The acceptance gate -- and the producer of BENCH_chaos_serving.json."""
    results = run_measurements()
    write_artifact(results)
    load = results["chaos_load"]["load"]
    print(
        f"\ninactive fault point: {results['inactive_overhead_us']:.3f} us/call; "
        f"chaos load: {load['succeeded']} ok / {load['timed_out']} timed out / "
        f"{load['shed']} shed / {load['failed']} failed "
        f"(availability {load['availability']:.4f}) across "
        f"{results['chaos_load']['versions_observed']} engine versions and "
        f"{results['chaos_load']['refresh_rounds']} refresh rounds; "
        f"{results['responses_verified']} responses verified; "
        f"final health {results['chaos_load']['final_health']}; "
        f"artifact: {ARTIFACT_PATH.name}"
    )
    # Fault points are free when inactive.
    assert results["inactive_overhead_us"] <= MAX_INACTIVE_OVERHEAD_US
    # Zero incorrect responses: every 200 was byte-verified.
    assert results["responses_verified"] == load["succeeded"]
    # Availability excluding deliberate sheds/timeouts.
    assert load["failed"] == 0, load["errors"]
    assert load["availability"] >= AVAILABILITY_TARGET
    # The deadline actually cut the stalled batches.
    assert load["timed_out"] > 0, "the slow-compute window never tripped a 504"
    # Swaps genuinely overlapped the chaos traffic.
    assert results["chaos_load"]["refresh_rounds"] >= MIN_REFRESH_ROUNDS
    assert results["chaos_load"]["versions_observed"] >= 2
    # Recovered to healthy once the faults cleared.
    assert results["chaos_load"]["final_health"] == "healthy"


def main() -> None:
    results = run_measurements()
    write_artifact(results)
    load = results["chaos_load"]["load"]
    print(
        f"inactive overhead {results['inactive_overhead_us']:.3f} us/call\n"
        f"transient refresh: {results['transient_refresh']['status']} after "
        f"{results['transient_refresh']['injected_failures']} injected failures\n"
        f"breaker: tripped {results['breaker']['tripped']}, shed "
        f"{results['breaker']['shed']}, recovered "
        f"{results['breaker']['recovered_health']}\n"
        f"worker crash: refresh {results['worker_crash']['status']}\n"
        f"corrupt reload: {results['corrupt_reload']['reload_status']} "
        f"({results['corrupt_reload']['recovered_health']} after next refresh)\n"
        f"chaos load: {load['succeeded']}/{load['requests']} ok, "
        f"{load['timed_out']} timed out, {load['shed']} shed, "
        f"{load['failed']} failed, availability {load['availability']:.4f}\n"
        f"wrote {ARTIFACT_PATH}"
    )


if __name__ == "__main__":
    main()
