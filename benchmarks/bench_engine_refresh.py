"""Incremental-refresh speedup gate plus the perf-trajectory artifact.

Production click graphs change continuously, but the paper's offline
pipeline refits the whole SimRank fixpoint per change.  The claim this
benchmark gates: ``RewriteEngine.refresh(delta)`` -- apply the delta,
warm-start refit, selectively invalidate the serving cache -- must be at
least **5x faster** than a cold refit on the updated graph, for a delta
touching at most 10% of the graph's components, with the component-sharded
backend (dirty components are refit warm-started, untouched components are
reused verbatim).

A fast wrong answer must not pass, so before the speed gate the refreshed
engine is checked against a from-scratch fit on the updated graph:

* score agreement: every query-pair score within 1e-6;
* serving-profile equality: the same ranked rows over a traffic sample with
  scores within 1e-6.  Both fits are tolerance-converged approximations of
  the same fixpoint, so bit-identical floats are not attainable, and
  candidates whose exact fixpoint scores tie (symmetric graph positions)
  may swap ranks between two converged fits -- ``profiles_match`` treats a
  swap as equal only when the scores at that rank tie within 1e-6.

The run also measures the pruned sparse backend (global warm-start, no
component reuse) and writes ``BENCH_engine_refresh.json`` next to this
file.  The dense backend is skipped: tolerance-converged dense fits on the
1500-node scenario are CI-hostile, and the refresh machinery it would
exercise is identical to the sparse backend's.

Run the gate and the timing figures with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_engine_refresh.py
    PYTHONPATH=src python benchmarks/bench_engine_refresh.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.graph.delta import DeltaBuilder
from repro.synth.scenarios import multi_component_graph

SPEEDUP_FLOOR = 5.0
GATED_BACKEND = "sharded"
BACKENDS = ["sharded", "sparse"]
SERVING_QUERIES = 200
SCORE_TOLERANCE = 1e-6

#: Tolerance-converged so the warm start can exit early and cold/warm fits
#: agree at the shared fixpoint; iterations is just headroom for the cold
#: identity start to converge.
SIMILARITY = SimrankConfig(iterations=150, tolerance=1e-8, zero_evidence_floor=0.1)

#: A 3300-node scenario with components large enough that the per-component
#: fixpoint (not the fixed decomposition overhead) dominates a cold fit.
GRAPH_PARAMS = dict(
    num_components=10,
    queries_per_component=200,
    ads_per_component=130,
    extra_edges=600,
    seed=41,
)

#: Components the delta touches: 1 of 10 = exactly the 10% budget of the gate.
DIRTY_COMPONENTS = (0,)

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_engine_refresh.json"


def build_graph():
    return multi_component_graph(**GRAPH_PARAMS)


def build_delta(graph):
    """Update, add and remove edges inside DIRTY_COMPONENTS only."""
    builder = DeltaBuilder(graph)
    for component in DIRTY_COMPONENTS:
        for i in range(3):
            query, ad = f"c{component}_q{i}", f"c{component}_a{i}"
            stats = graph.edge(query, ad)
            if stats is None:
                continue
            builder.set_edge(
                query,
                ad,
                impressions=stats.impressions + 20,
                clicks=stats.clicks + 2,
                expected_click_rate=min(0.95, stats.expected_click_rate * 1.05),
            )
    dirty = DIRTY_COMPONENTS[0]
    last_ad = GRAPH_PARAMS["ads_per_component"] - 1
    builder.set_edge(f"c{dirty}_q0", f"c{dirty}_a{last_ad}", impressions=40, clicks=4)
    removable = next(
        (query, ad)
        for query, ad, _ in graph.edges()
        if query == f"c{dirty}_q1"
    )
    builder.remove_edge(*removable)
    return builder.build()


def build_engine(graph, backend):
    config = EngineConfig(
        method="weighted_simrank", backend=backend, similarity=SIMILARITY
    )
    bid_terms = {str(query) for query in graph.queries()}
    return RewriteEngine.from_graph(graph, config, bid_terms=bid_terms)


def profiles_match(first, second, tolerance=SCORE_TOLERANCE):
    """Serving equivalence up to the convergence tolerance.

    Row by row: same query, same rank position, scores within ``tolerance``.
    The rewrite identity must also match *except* where the two fits' scores
    at that rank already tie within the tolerance -- candidates whose exact
    fixpoint scores are equal (symmetric graph positions) are ordered by
    floating-point noise in any iterative fit, so two independently
    converged fits may legitimately swap them; a genuinely different
    rewrite would carry a visibly different score and fail the score check.
    """
    if len(first) != len(second):
        return False
    for a, b in zip(first, second):
        same_slot = a[0] == b[0] and a[2] == b[2]
        if not same_slot or abs(a[3] - b[3]) > tolerance:
            return False
    return True


def measure(backend, refresh_rounds=2, refit_rounds=2) -> dict:
    """Cold-refit vs refresh timings (plus the equivalence verdicts)."""
    base_graph = build_graph()
    delta = build_delta(base_graph)
    updated_graph = base_graph.copy().apply_delta(delta)
    queries = sorted(base_graph.queries(), key=repr)[:SERVING_QUERIES]

    # The from-scratch reference on the updated graph, timed (best-of).
    refit_seconds = float("inf")
    fresh = None
    for _ in range(refit_rounds):
        candidate = build_engine(updated_graph, backend)
        start = time.perf_counter()
        candidate.fit()
        refit_seconds = min(refit_seconds, time.perf_counter() - start)
        fresh = candidate

    # Refresh rounds: each needs its own engine fitted at the base state
    # (the fit is the offline step and is not part of the refresh cost).
    refresh_seconds = float("inf")
    refreshed = None
    for _ in range(refresh_rounds):
        engine = build_engine(base_graph.copy(), backend).fit()
        engine.rewrite_batch(queries)  # warm cache to exercise invalidation
        round_delta = build_delta(engine.graph)
        start = time.perf_counter()
        engine.refresh(round_delta)
        refresh_seconds = min(refresh_seconds, time.perf_counter() - start)
        refreshed = engine

    score_disagreement = refreshed.method.similarities().max_difference(
        fresh.method.similarities()
    )
    equal_serving = profiles_match(
        refreshed.serving_profile(queries), fresh.serving_profile(queries)
    )
    method = refreshed.method
    return {
        "backend": backend,
        "queries": base_graph.num_queries,
        "ads": base_graph.num_ads,
        "edges": base_graph.num_edges,
        "delta_changes": len(delta),
        "dirty_components": len(DIRTY_COMPONENTS),
        "total_components": GRAPH_PARAMS["num_components"],
        "cold_refit_seconds": refit_seconds,
        "refresh_seconds": refresh_seconds,
        "speedup": refit_seconds / refresh_seconds,
        "reused_shards": getattr(method, "reused_shards", None),
        "refitted_shards": getattr(method, "refitted_shards", None),
        "invalidated_entries": refreshed.last_refresh.invalidated_entries,
        "affected_queries": refreshed.last_refresh.affected_queries,
        "score_disagreement": score_disagreement,
        "serving_queries": len(queries),
        "equal_serving": equal_serving,
    }


def run_measurements() -> list:
    return [measure(backend) for backend in BACKENDS]


def write_artifact(results) -> None:
    payload = {
        "benchmark": "bench_engine_refresh",
        "config": {
            "method": "weighted_simrank",
            "iterations": SIMILARITY.iterations,
            "tolerance": SIMILARITY.tolerance,
            "zero_evidence_floor": SIMILARITY.zero_evidence_floor,
            "gated_backend": GATED_BACKEND,
            "speedup_floor": SPEEDUP_FLOOR,
            "score_tolerance": SCORE_TOLERANCE,
            "graph": GRAPH_PARAMS,
            "dirty_components": list(DIRTY_COMPONENTS),
        },
        "results": results,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_refresh_is_at_least_5x_faster_than_cold_refit():
    """The acceptance gate -- and the producer of BENCH_engine_refresh.json."""
    results = run_measurements()
    write_artifact(results)
    by_backend = {row["backend"]: row for row in results}
    gated = by_backend[GATED_BACKEND]
    assert gated["queries"] + gated["ads"] == 3300
    assert gated["dirty_components"] * 10 <= gated["total_components"]
    print(
        f"\ncold refit {gated['cold_refit_seconds'] * 1000:.1f} ms, refresh "
        f"{gated['refresh_seconds'] * 1000:.1f} ms, speedup "
        f"{gated['speedup']:.1f}x; {gated['reused_shards']} shards reused, "
        f"{gated['refitted_shards']} refit; artifact: {ARTIFACT_PATH.name}"
    )
    # Correctness first: a fast wrong answer must not pass the speed gate.
    for row in results:
        assert row["score_disagreement"] <= SCORE_TOLERANCE, (
            f"{row['backend']}: refreshed scores disagree with a from-scratch "
            f"fit by {row['score_disagreement']:.2e}"
        )
        assert row["equal_serving"], (
            f"{row['backend']}: refreshed serving profile differs from a "
            "from-scratch fit"
        )
    assert gated["speedup"] >= SPEEDUP_FLOOR, (
        f"refresh only {gated['speedup']:.1f}x faster than a cold refit "
        f"(floor: {SPEEDUP_FLOOR}x)"
    )


def main() -> None:
    results = run_measurements()
    write_artifact(results)
    for row in results:
        print(
            f"{row['backend']:>8}: cold {row['cold_refit_seconds'] * 1000:8.1f} ms, "
            f"refresh {row['refresh_seconds'] * 1000:7.1f} ms "
            f"({row['speedup']:5.1f}x), score diff {row['score_disagreement']:.1e}, "
            f"equal_serving={row['equal_serving']}"
        )
    print(f"wrote {ARTIFACT_PATH}")


if __name__ == "__main__":
    main()
