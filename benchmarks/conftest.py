"""Shared fixtures for the benchmark harness.

The figure benchmarks (Figures 8-12) all consume the same harness run over
the "small" Yahoo!-like synthetic workload, so it is computed once per
session here.  Each benchmark file prints the rows/series corresponding to
its table or figure, so running ``pytest benchmarks/ --benchmark-only -s``
regenerates the paper's evaluation outputs.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import ExperimentHarness
from repro.synth.yahoo_like import yahoo_like_workload


@pytest.fixture(scope="session")
def small_workload():
    """The 'small' synthetic Yahoo!-like workload used by Table 5 / Figures 8-12."""
    return yahoo_like_workload("small")


@pytest.fixture(scope="session")
def small_harness():
    """A configured harness over the small workload."""
    return ExperimentHarness(workload_size="small", desirability_cases=50, seed=29)


@pytest.fixture(scope="session")
def harness_result(small_harness):
    """One shared end-to-end evaluation run (methods, grades, metrics, desirability)."""
    return small_harness.run()
