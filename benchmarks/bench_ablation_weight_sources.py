"""Ablation: which edge statistic weighted SimRank should use as w(q, a).

The paper always uses the expected click rate; this bench compares it against
raw clicks and the unadjusted clicks/impressions ratio via the editorial
precision of the resulting rewrites.
"""

from repro.core.config import SimrankConfig
from repro.api.registry import create
from repro.core.rewriter import QueryRewriter
from repro.eval.editorial import EditorialJudge
from repro.eval.reporting import format_table
from repro.graph.click_graph import WeightSource


def _precision_at_5(workload, graph, queries, source):
    config = SimrankConfig(iterations=7, weight_source=source, zero_evidence_floor=0.1)
    rewriter = QueryRewriter(
        create("weighted_simrank", config=config),
        bid_terms={str(term) for term in workload.bid_terms},
    ).fit(graph)
    judge = EditorialJudge(workload)
    relevant = 0
    total = 0
    for query in queries:
        for rewrite in rewriter.rewrites_for(query).rewrites:
            total += 1
            relevant += judge.grade(query, rewrite.rewrite) <= 2
    return relevant / total if total else 0.0


def test_ablation_weight_sources(benchmark, small_workload, harness_result):
    graph = harness_result.dataset
    queries = harness_result.evaluation_queries[:60]
    sources = [
        WeightSource.EXPECTED_CLICK_RATE,
        WeightSource.CLICKS,
        WeightSource.CLICK_THROUGH_RATE,
    ]
    results = {}
    for source in sources:
        if source is WeightSource.EXPECTED_CLICK_RATE:
            results[source.value] = benchmark.pedantic(
                lambda: _precision_at_5(small_workload, graph, queries, source),
                rounds=1,
                iterations=1,
            )
        else:
            results[source.value] = _precision_at_5(small_workload, graph, queries, source)
    rows = [
        {"weight source": name, "precision of top-5 rewrites": round(value, 3)}
        for name, value in results.items()
    ]
    print()
    print(format_table(rows, title="Ablation: weight source for weighted SimRank"))
