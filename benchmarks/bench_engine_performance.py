"""Performance: reference node-pair implementation vs the dense-matrix engine.

Not a paper experiment, but the scaling behaviour that justifies having two
backends: the matrix engine is what makes subgraph-scale evaluation feasible.
"""

import pytest

from repro.core.config import SimrankConfig
from repro.core.simrank import BipartiteSimrank
from repro.core.simrank_matrix import MatrixSimrank
from repro.graph.components import largest_component

CONFIG = SimrankConfig(iterations=7)


@pytest.fixture(scope="module")
def benchmark_graph(request):
    from repro.synth.yahoo_like import yahoo_like_workload

    return largest_component(yahoo_like_workload("tiny").click_graph)


def test_reference_simrank_fit(benchmark, benchmark_graph):
    benchmark.pedantic(
        lambda: BipartiteSimrank(CONFIG).fit(benchmark_graph), rounds=3, iterations=1
    )


def test_matrix_simrank_fit(benchmark, benchmark_graph):
    benchmark.pedantic(
        lambda: MatrixSimrank(CONFIG, mode="simrank").fit(benchmark_graph), rounds=3, iterations=1
    )


def test_matrix_weighted_simrank_fit_small_dataset(benchmark, harness_result):
    benchmark.pedantic(
        lambda: MatrixSimrank(CONFIG, mode="weighted").fit(harness_result.dataset),
        rounds=3,
        iterations=1,
    )
