"""Gate of the static-analysis suite: every checker fires, the tree is clean.

Two claims are enforced, and the measurements land in
``BENCH_static_analysis.json`` next to this file:

1. **The checkers detect.**  Each of RL001-RL005 run against its known-bad
   fixture reports exactly the findings the fixture marks (one per
   ``# BAD`` line, plus RL004's dead-registry-entry finding at its mini
   registry), and reports nothing on the known-clean twin.  A checker
   that silently stopped firing would pass the tree sweep for the wrong
   reason; this half of the gate catches that.

2. **The tree is clean, and quickly.**  The full CI invocation
   (``src tests benchmarks``) produces zero diagnostics -- which includes
   the suppression meta-codes, so a reasonless or stale directive also
   fails -- and completes within a CI-friendly time budget.

Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_static_analysis.py
    PYTHONPATH=src python benchmarks/bench_static_analysis.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.analysis.checkers import (
    AsyncBlockingChecker,
    DeterminismChecker,
    FaultPointChecker,
    LockDisciplineChecker,
    PickleSafetyChecker,
    all_checkers,
)
from repro.analysis.framework import run

REPO_ROOT = Path(__file__).resolve().parents[1]
FIXTURES = REPO_ROOT / "tests" / "analysis" / "fixtures"
ARTIFACT_PATH = Path(__file__).with_name("BENCH_static_analysis.json")

#: The whole-tree sweep must finish within this budget (seconds).  The
#: measured sweep is ~1s on a laptop; the ceiling leaves room for slow CI
#: runners without letting the analyzer quietly become a minutes-long job.
TREE_SWEEP_BUDGET_S = 60.0

#: Checker -> (bad fixture, clean fixture, extra expected findings beyond
#: the fixture's ``# BAD`` marks).  RL004 analyzes its mini registry next
#: to the site file and expects one extra finding: the registered-but-
#: siteless ``beta.point`` entry, reported at the registry.
CASES = [
    (LockDisciplineChecker, ["rl001_bad.py"], ["rl001_clean.py"], 0),
    (AsyncBlockingChecker, ["rl002_bad.py"], ["rl002_clean.py"], 0),
    (PickleSafetyChecker, ["rl003_bad.py"], ["rl003_clean.py"], 0),
    (
        FaultPointChecker,
        ["repro/rl004_registry.py", "repro/rl004_bad.py"],
        ["repro/rl004_registry.py", "repro/rl004_clean.py"],
        1,
    ),
    (
        DeterminismChecker,
        ["repro/core/rl005_bad.py"],
        ["repro/core/rl005_clean.py"],
        0,
    ),
]


def marked_findings(paths):
    return sum(
        line.count("# BAD")
        for path in paths
        for line in (FIXTURES / path).read_text().splitlines()
    )


def run_fixture_cases():
    results = []
    for checker_cls, bad, clean, extra in CASES:
        checker = checker_cls()
        expected = marked_findings(bad) + extra
        bad_report = run(
            [FIXTURES / path for path in bad],
            checkers=[checker],
            excludes=(),
            root=REPO_ROOT,
        )
        clean_report = run(
            [FIXTURES / path for path in clean],
            checkers=[checker],
            excludes=(),
            root=REPO_ROOT,
        )
        results.append(
            {
                "code": checker.code,
                "name": checker.name,
                "expected_findings": expected,
                "bad_findings": len(bad_report.diagnostics),
                "clean_findings": len(clean_report.diagnostics),
                "bad_diagnostics": [d.render() for d in bad_report.diagnostics],
            }
        )
    return results


def run_tree_sweep():
    started = time.perf_counter()
    report = run(
        [REPO_ROOT / "src", REPO_ROOT / "tests", REPO_ROOT / "benchmarks"],
        root=REPO_ROOT,
    )
    elapsed = time.perf_counter() - started
    return {
        "elapsed_s": elapsed,
        "files_checked": report.files_checked,
        "files_per_second": report.files_checked / elapsed if elapsed else None,
        "diagnostics": [d.render() for d in report.diagnostics],
        "count": len(report.diagnostics),
        "checkers": report.checker_codes,
    }


def run_measurements():
    return {
        "fixture_cases": run_fixture_cases(),
        "tree_sweep": run_tree_sweep(),
        "registered_checkers": [c.code for c in all_checkers()],
    }


def write_artifact(results):
    ARTIFACT_PATH.write_text(json.dumps(results, indent=2) + "\n")


def test_static_analysis_gate():
    """The acceptance gate -- and the producer of BENCH_static_analysis.json."""
    results = run_measurements()
    write_artifact(results)
    sweep = results["tree_sweep"]
    print(
        f"\ntree sweep: {sweep['files_checked']} files in "
        f"{sweep['elapsed_s']:.2f}s ({sweep['files_per_second']:.0f} files/s), "
        f"{sweep['count']} diagnostics; fixture cases: "
        + ", ".join(
            f"{case['code']} {case['bad_findings']}/{case['expected_findings']}"
            for case in results["fixture_cases"]
        )
        + f"; artifact: {ARTIFACT_PATH.name}"
    )
    # Every checker fires on its known-bad fixture, exactly as marked...
    for case in results["fixture_cases"]:
        assert case["bad_findings"] == case["expected_findings"], case
        assert case["bad_findings"] > 0, case
        # ...and stays silent on the known-clean twin.
        assert case["clean_findings"] == 0, case
    # The real tree is clean (includes RL101-RL103: no reasonless or stale
    # suppressions anywhere), and the sweep stays fast enough for CI.
    assert sweep["count"] == 0, "\n".join(sweep["diagnostics"])
    assert sweep["files_checked"] > 100
    assert sweep["elapsed_s"] <= TREE_SWEEP_BUDGET_S
    assert results["registered_checkers"] == [
        "RL001",
        "RL002",
        "RL003",
        "RL004",
        "RL005",
    ]


def main() -> None:
    results = run_measurements()
    write_artifact(results)
    sweep = results["tree_sweep"]
    for case in results["fixture_cases"]:
        print(
            f"{case['code']} ({case['name']}): {case['bad_findings']} findings "
            f"on known-bad (expected {case['expected_findings']}), "
            f"{case['clean_findings']} on known-clean"
        )
    print(
        f"tree sweep: {sweep['files_checked']} files, {sweep['count']} "
        f"diagnostics in {sweep['elapsed_s']:.2f}s\n"
        f"wrote {ARTIFACT_PATH}"
    )


if __name__ == "__main__":
    main()
