"""Sparse-backend speedup gate plus the perf-trajectory artifact.

Production click graphs are huge but extremely sparse, so the sparse CSR
engine's cost tracks the nonzeros while the dense engine pays ``O(n^2)``
memory and ``O(n^3)`` multiply time regardless of structure.  On the
1500-node sparse scenario graph below, :class:`SparseSimrank` (exact, no
truncation) must fit at least 3x faster than the dense engine while
producing identical scores -- that is the CI gate.

The run also times fit + top-k serving across three graph sizes and writes
``BENCH_sparse_backend.json`` next to this file: a machine-readable
perf-trajectory artifact recording, per size, the dense/sparse fit times,
the serving time, the measured speedup, and the peak entry count of the
array-backed score store (pairs and stored matrix values) next to what the
old dict-of-dicts store would have materialized (two dict entries per pair).

Run the gate and the timing figures with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_sparse_backend.py
    PYTHONPATH=src python benchmarks/bench_sparse_backend.py
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import SimrankConfig
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sparse import SparseSimrank
from repro.synth.scenarios import multi_component_graph

SPEEDUP_FLOOR = 3.0
SERVING_QUERIES = 200
TOP_K = 5

CONFIG = SimrankConfig(iterations=7, zero_evidence_floor=0.1)

#: (label, multi_component_graph parameters) -- ~25%, ~50% and 100% of the
#: 1500-node gate scenario; the last entry is the gated one.
SIZES = [
    ("375_nodes", dict(num_components=8, queries_per_component=30, ads_per_component=17, extra_edges=24, seed=41)),
    ("750_nodes", dict(num_components=15, queries_per_component=30, ads_per_component=20, extra_edges=45, seed=41)),
    ("1500_nodes", dict(num_components=30, queries_per_component=30, ads_per_component=20, extra_edges=90, seed=41)),
]

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_sparse_backend.json"


def build_graph(label: str):
    """The named sparse scenario graph (several small weighted components)."""
    parameters = dict(next(params for name, params in SIZES if name == label))
    return multi_component_graph(**parameters)


def best_fit_seconds(method_factory, graph, rounds=3):
    """Fastest of ``rounds`` full fits (best-of to damp scheduler noise)."""
    best = float("inf")
    for _ in range(rounds):
        method = method_factory()
        start = time.perf_counter()
        method.fit(graph)
        best = min(best, time.perf_counter() - start)
    return best, method


def serving_seconds(method, graph, num_queries=SERVING_QUERIES, k=TOP_K):
    """Time of ``num_queries`` top-k lookups straight off the score store."""
    queries = sorted(graph.queries(), key=repr)[:num_queries]
    start = time.perf_counter()
    for query in queries:
        method.top_rewrites(query, k=k)
    return time.perf_counter() - start


def measure(label: str) -> dict:
    """Fit + serving measurements of both backends on one scenario size."""
    graph = build_graph(label)
    dense_seconds, dense = best_fit_seconds(
        lambda: MatrixSimrank(CONFIG, mode="weighted"), graph
    )
    sparse_seconds, sparse = best_fit_seconds(
        lambda: SparseSimrank(CONFIG, mode="weighted"), graph
    )
    # Equal scores first -- a fast wrong answer must not pass the gate.
    difference = dense.similarities().max_difference(sparse.similarities())
    store = sparse.similarities()
    return {
        "label": label,
        "queries": graph.num_queries,
        "ads": graph.num_ads,
        "edges": graph.num_edges,
        "dense_fit_seconds": dense_seconds,
        "sparse_fit_seconds": sparse_seconds,
        "speedup": dense_seconds / sparse_seconds,
        "max_score_difference": difference,
        "dense_serving_seconds": serving_seconds(dense, graph),
        "sparse_serving_seconds": serving_seconds(sparse, graph),
        "serving_queries": SERVING_QUERIES,
        "serving_top_k": TOP_K,
        # Peak footprint of the array-backed store: stored pairs and stored
        # matrix values, next to the two-dict-entries-per-pair the old
        # dict-of-dicts container would have materialized.
        "store_pairs": len(store),
        "store_entries": int(store.matrix.nnz),
        "dict_equivalent_entries": 2 * len(store),
    }


def write_artifact(results) -> None:
    payload = {
        "benchmark": "bench_sparse_backend",
        "config": {
            "iterations": CONFIG.iterations,
            "zero_evidence_floor": CONFIG.zero_evidence_floor,
            "mode": "weighted",
            "speedup_floor": SPEEDUP_FLOOR,
        },
        "results": results,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_sparse_fit_is_at_least_3x_faster_than_dense():
    """The acceptance gate -- and the producer of BENCH_sparse_backend.json."""
    results = [measure(label) for label, _ in SIZES]
    write_artifact(results)
    gated = results[-1]
    assert gated["label"] == "1500_nodes"
    assert gated["queries"] + gated["ads"] == 1500
    print(
        f"\ndense fit {gated['dense_fit_seconds'] * 1000:.1f} ms, sparse fit "
        f"{gated['sparse_fit_seconds'] * 1000:.1f} ms, speedup "
        f"{gated['speedup']:.1f}x; store holds {gated['store_pairs']} pairs "
        f"({gated['store_entries']} values vs {gated['dict_equivalent_entries']} "
        f"dict entries); artifact: {ARTIFACT_PATH.name}"
    )
    assert gated["max_score_difference"] < 1e-9
    assert gated["speedup"] >= SPEEDUP_FLOOR, (
        f"sparse backend only {gated['speedup']:.2f}x faster than dense "
        f"(floor: {SPEEDUP_FLOOR}x)"
    )


def main() -> None:
    results = [measure(label) for label, _ in SIZES]
    write_artifact(results)
    for row in results:
        print(
            f"{row['label']:>10}: dense {row['dense_fit_seconds'] * 1000:8.1f} ms, "
            f"sparse {row['sparse_fit_seconds'] * 1000:7.1f} ms "
            f"({row['speedup']:4.1f}x), serve {SERVING_QUERIES}x top-{TOP_K} "
            f"{row['sparse_serving_seconds'] * 1000:6.1f} ms, "
            f"{row['store_pairs']} pairs stored"
        )
    print(f"wrote {ARTIFACT_PATH}")


if __name__ == "__main__":
    main()
