"""Zero-downtime serving gate: Zipf load vs. refresh-under-traffic, measured.

The serving tier's claim (ISSUE: ``repro.serving``): an asyncio
:class:`~repro.serving.server.RewriteServer` in front of an
:class:`~repro.serving.holder.EngineHolder` keeps serving while the engine
behind it is refreshed, with

* **zero failed requests** -- no request observes downtime, a connection
  reset, or a 5xx while copy-on-write refreshes publish new engine
  versions underneath the traffic;
* **bounded tail latency** -- the refresh-phase p99 stays within
  ``DEGRADATION_FACTOR`` (3x) of the no-refresh baseline p99 (with a small
  absolute floor so sub-millisecond baselines don't make the ratio flaky);
* **no torn reads** -- every response names the engine version that served
  it, and its rewrite list is byte-equal to that exact version's
  ``rewrite()`` ground truth, recomputed after the run.

Both phases replay the same Zipf-skewed schedule (alpha 1.2 -- hot head,
long cold tail) over ``CONCURRENCY`` keep-alive connections against an
in-process server.  During the refresh phase an admin task cycles
``POST /refresh`` continuously for the whole duration of the load (at
least ``MIN_REFRESH_ROUNDS`` rounds), so swaps and traffic genuinely
overlap -- the per-response version histogram in the artifact shows the
traffic straddling multiple published versions.

Writes ``BENCH_serving_load.json`` next to this file.  Run with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_serving_load.py
    PYTHONPATH=src python benchmarks/bench_serving_load.py
"""

from __future__ import annotations

import asyncio
import json
from pathlib import Path

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.graph.delta import DeltaBuilder
from repro.serving import (
    EngineHolder,
    RewriteServer,
    ServerConfig,
    ZipfSchedule,
    delta_to_payload,
    request_once,
    run_load,
)
from repro.synth.scenarios import multi_component_graph

DEGRADATION_FACTOR = 3.0
#: Ratio floor: below this baseline p99 the 3x bound is measured against
#: this absolute value instead.  On a fast machine the no-refresh baseline
#: is a few milliseconds while a warm refit's GIL burst is a fixed ~10+ ms
#: that no amount of serving speed shrinks -- the floor keeps the gate
#: about the zero-downtime claim, not about the GIL.
MIN_BASELINE_P99_MS = 8.0
MIN_REFRESH_ROUNDS = 3
MAX_REFRESH_ROUNDS = 50
#: Pause between refresh rounds: the claim is periodic-refresh-under-
#: traffic, not a saturation loop of back-to-back refits.
REFRESH_PAUSE_S = 0.01
REQUESTS_PER_PHASE = 1200
CONCURRENCY = 8
ZIPF_ALPHA = 1.2

#: Tolerance-converged so /refresh warm-starts instead of refitting cold.
SIMILARITY = SimrankConfig(iterations=60, tolerance=1e-8, zero_evidence_floor=0.1)

#: ~300 nodes over 6 components: big enough that a refresh takes real work
#: (so swaps overlap traffic), small enough that one warm refit's GIL
#: burst stays well inside the latency bound.
GRAPH_PARAMS = dict(
    num_components=6,
    queries_per_component=30,
    ads_per_component=20,
    extra_edges=60,
    seed=23,
)

#: Bounded below the 180-query universe, so the Zipf cold tail actually
#: exercises eviction + recompute under concurrent serving.
CACHE_SIZE = 128

SERVER = ServerConfig(max_batch_size=16, batch_linger_ms=0.5, max_concurrency=4)

ARTIFACT_PATH = Path(__file__).resolve().parent / "BENCH_serving_load.json"


def build_engine() -> RewriteEngine:
    graph = multi_component_graph(**GRAPH_PARAMS)
    config = EngineConfig(
        method="weighted_simrank",
        backend="sharded",
        similarity=SIMILARITY,
        cache_size=CACHE_SIZE,
    )
    bid_terms = {str(query) for query in graph.queries()}
    return RewriteEngine.from_graph(graph, config, bid_terms=bid_terms).fit()


def build_round_delta(graph, round_index: int):
    """A small component-0 delta, fresh against the holder's current graph."""
    builder = DeltaBuilder(graph)
    for i in range(3):
        query, ad = f"c0_q{i}", f"c0_a{i}"
        stats = graph.edge(query, ad)
        if stats is None:
            builder.set_edge(query, ad, impressions=30, clicks=3)
        else:
            builder.set_edge(
                query,
                ad,
                impressions=stats.impressions + 10,
                clicks=stats.clicks + 1,
            )
    builder.set_edge(f"hot-{round_index}", "c0_a0", impressions=50, clicks=5)
    return builder.build()


async def refresh_until(server, holder, load_task) -> int:
    """Cycle /refresh for the whole load (>= MIN_REFRESH_ROUNDS rounds)."""
    host, port = server.address
    rounds = 0
    while (not load_task.done() or rounds < MIN_REFRESH_ROUNDS) and (
        rounds < MAX_REFRESH_ROUNDS
    ):
        delta = build_round_delta(holder.engine.graph, rounds)
        status, payload = await request_once(
            host, port, "POST", "/refresh", delta_to_payload(delta)
        )
        assert status == 200, f"/refresh failed: {payload}"
        rounds += 1
        await asyncio.sleep(REFRESH_PAUSE_S)
    return rounds


def verify_responses(responses, engines_by_version) -> int:
    """Every response must equal its serving version's ground truth."""
    expected_cache = {}
    for response in responses:
        key = (response.version, response.query)
        expected = expected_cache.get(key)
        if expected is None:
            engine = engines_by_version[response.version]
            expected = tuple(
                (r.rewrite, r.rank, r.score)
                for r in engine.rewrite(response.query).rewrites
            )
            expected_cache[key] = expected
        assert response.rewrites == expected, (
            f"torn read: {response.query!r} served at version "
            f"{response.version} does not match that version's rewrite()"
        )
    return len(responses)


async def run_phases() -> dict:
    engine = build_engine()
    holder = EngineHolder(engine)
    engines_by_version = {holder.version: holder.engine}
    holder.add_swap_listener(
        lambda version, published: engines_by_version.setdefault(version, published)
    )
    queries = sorted(str(q) for q in engine.graph.queries())
    schedule = ZipfSchedule(queries, alpha=ZIPF_ALPHA, seed=5)

    async with RewriteServer(holder, SERVER) as server:
        host, port = server.address
        baseline = await run_load(
            host,
            port,
            schedule.sample(REQUESTS_PER_PHASE),
            concurrency=CONCURRENCY,
            record_responses=True,
        )
        load_task = asyncio.create_task(
            run_load(
                host,
                port,
                ZipfSchedule(queries, alpha=ZIPF_ALPHA, seed=6).sample(
                    REQUESTS_PER_PHASE
                ),
                concurrency=CONCURRENCY,
                record_responses=True,
            )
        )
        rounds = await refresh_until(server, holder, load_task)
        under_refresh = await load_task

    verified = verify_responses(
        baseline.responses + under_refresh.responses, engines_by_version
    )
    return {
        "engine": {
            "queries": engine.graph.num_queries,
            "ads": engine.graph.num_ads,
            "edges": engine.graph.num_edges,
            "cache_size": CACHE_SIZE,
        },
        "baseline": baseline.to_dict(),
        "under_refresh": under_refresh.to_dict(),
        "refresh_rounds": rounds,
        "versions_observed_under_refresh": len(under_refresh.versions),
        "responses_verified": verified,
    }


def run_measurements() -> dict:
    return asyncio.run(run_phases())


def write_artifact(results: dict) -> None:
    payload = {
        "benchmark": "bench_serving_load",
        "config": {
            "method": "weighted_simrank",
            "backend": "sharded",
            "iterations": SIMILARITY.iterations,
            "tolerance": SIMILARITY.tolerance,
            "graph": GRAPH_PARAMS,
            "requests_per_phase": REQUESTS_PER_PHASE,
            "concurrency": CONCURRENCY,
            "zipf_alpha": ZIPF_ALPHA,
            "degradation_factor": DEGRADATION_FACTOR,
            "min_baseline_p99_ms": MIN_BASELINE_P99_MS,
            "server": {
                "max_batch_size": SERVER.max_batch_size,
                "batch_linger_ms": SERVER.batch_linger_ms,
                "max_concurrency": SERVER.max_concurrency,
            },
        },
        "results": results,
    }
    ARTIFACT_PATH.write_text(json.dumps(payload, indent=2) + "\n")


def test_refresh_under_load_is_zero_downtime():
    """The acceptance gate -- and the producer of BENCH_serving_load.json."""
    results = run_measurements()
    write_artifact(results)
    baseline = results["baseline"]
    refreshed = results["under_refresh"]
    base_p99 = baseline["latency_ms"]["p99"]
    refresh_p99 = refreshed["latency_ms"]["p99"]
    bound = DEGRADATION_FACTOR * max(base_p99, MIN_BASELINE_P99_MS)
    print(
        f"\nbaseline p50 {baseline['latency_ms']['p50']:.2f} ms / p99 "
        f"{base_p99:.2f} ms at {baseline['throughput_rps']:.0f} rps; under "
        f"{results['refresh_rounds']} refresh rounds p50 "
        f"{refreshed['latency_ms']['p50']:.2f} ms / p99 {refresh_p99:.2f} ms "
        f"across {results['versions_observed_under_refresh']} engine "
        f"versions; {results['responses_verified']} responses verified; "
        f"artifact: {ARTIFACT_PATH.name}"
    )
    # Zero downtime: not one request failed in either phase.
    assert baseline["failed"] == 0, baseline["errors"]
    assert refreshed["failed"] == 0, refreshed["errors"]
    assert baseline["succeeded"] == REQUESTS_PER_PHASE
    assert refreshed["succeeded"] == REQUESTS_PER_PHASE
    # Swaps genuinely overlapped the traffic.
    assert results["refresh_rounds"] >= MIN_REFRESH_ROUNDS
    assert results["versions_observed_under_refresh"] >= 2, (
        "every response was served by one engine version -- the refresh "
        "cycles never overlapped the load"
    )
    # Consistency: verify_responses() already raised on any torn read.
    assert results["responses_verified"] == 2 * REQUESTS_PER_PHASE
    # Tail latency under refresh stays within the degradation bound.
    assert refresh_p99 <= bound, (
        f"p99 under refresh {refresh_p99:.2f} ms exceeds "
        f"{DEGRADATION_FACTOR}x the baseline bound ({bound:.2f} ms)"
    )


def main() -> None:
    results = run_measurements()
    write_artifact(results)
    for phase in ("baseline", "under_refresh"):
        row = results[phase]
        latency = row["latency_ms"]
        print(
            f"{phase:>13}: {row['succeeded']}/{row['requests']} ok, "
            f"{row['throughput_rps']:7.0f} rps, p50 {latency['p50']:6.2f} ms, "
            f"p95 {latency['p95']:6.2f} ms, p99 {latency['p99']:6.2f} ms, "
            f"versions {row['versions']}"
        )
    print(
        f"{results['refresh_rounds']} refresh rounds, "
        f"{results['responses_verified']} responses verified against their "
        f"serving version's ground truth; wrote {ARTIFACT_PATH}"
    )


if __name__ == "__main__":
    main()
