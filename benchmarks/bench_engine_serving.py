"""Serving-latency baseline: cold fit vs cached RewriteEngine batches.

Not a paper experiment, but the number every future serving PR (sharding,
async, incremental fit) is measured against: over a 1k-query traffic sample,
the second ``rewrite_batch`` pass must be served entirely from the engine
cache and come in at least 10x faster than the first.

Run the gate and the throughput figures with::

    PYTHONPATH=src python -m pytest -q -s benchmarks/bench_engine_serving.py
    PYTHONPATH=src python benchmarks/bench_engine_serving.py
"""

from __future__ import annotations

import random
import time

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.synth.yahoo_like import yahoo_like_workload

WORKLOAD_QUERIES = 1000
SPEEDUP_FLOOR = 10.0

ENGINE_CONFIG = EngineConfig(
    method="weighted_simrank",
    similarity=SimrankConfig(iterations=7, zero_evidence_floor=0.1),
)


def build_engine():
    """A fitted engine over the tiny Yahoo!-like click graph, bid terms included."""
    workload = yahoo_like_workload("tiny")
    bid_terms = {str(term) for term in workload.bid_terms}
    return RewriteEngine.from_graph(workload.click_graph, ENGINE_CONFIG, bid_terms=bid_terms)


def traffic_sample(graph, size=WORKLOAD_QUERIES, seed=7):
    """A serving-shaped workload: ``size`` queries drawn with repetition."""
    queries = sorted(str(query) for query in graph.queries())
    rng = random.Random(seed)
    return [rng.choice(queries) for _ in range(size)]


def timed_passes(engine):
    """(cold_seconds, warm_seconds) for two identical 1k-query batches."""
    engine.fit()
    queries = traffic_sample(engine.graph)
    start = time.perf_counter()
    engine.rewrite_batch(queries)
    cold = time.perf_counter() - start
    start = time.perf_counter()
    engine.rewrite_batch(queries)
    warm = time.perf_counter() - start
    return cold, warm


def test_cached_batch_is_at_least_10x_faster():
    """The acceptance gate: pass two >= 10x pass one on the same 1k queries."""
    engine = build_engine()
    cold, warm = timed_passes(engine)
    info = engine.cache_info()
    assert info.hits >= WORKLOAD_QUERIES  # the whole second pass was cache hits
    assert warm > 0
    speedup = cold / warm
    print(
        f"\ncold pass {cold * 1000:.2f} ms, cached pass {warm * 1000:.2f} ms, "
        f"speedup {speedup:.0f}x (cache: {info.size} entries)"
    )
    assert speedup >= SPEEDUP_FLOOR, (
        f"cached rewrite_batch only {speedup:.1f}x faster than the cold pass "
        f"(floor: {SPEEDUP_FLOOR}x)"
    )


def test_cold_fit(benchmark):
    engine = build_engine()
    benchmark.pedantic(lambda: engine.fit(), rounds=3, iterations=1)


def test_cached_rewrite_batch_throughput(benchmark):
    engine = build_engine().fit()
    queries = traffic_sample(engine.graph)
    engine.rewrite_batch(queries)  # warm the cache once
    benchmark.pedantic(lambda: engine.rewrite_batch(queries), rounds=5, iterations=3)


def main() -> None:
    engine = build_engine()
    fit_start = time.perf_counter()
    cold, warm = timed_passes(engine)
    fit_and_passes = time.perf_counter() - fit_start
    info = engine.cache_info()
    print(f"workload: {WORKLOAD_QUERIES} queries over {info.size} unique cache entries")
    print(f"fit + both passes: {fit_and_passes:.3f} s")
    print(
        f"cold pass:   {cold * 1000:8.2f} ms  "
        f"({WORKLOAD_QUERIES / cold:,.0f} queries/s)"
    )
    print(
        f"cached pass: {warm * 1000:8.2f} ms  "
        f"({WORKLOAD_QUERIES / warm:,.0f} queries/s)"
    )
    print(f"speedup: {cold / warm:.0f}x (floor for the acceptance gate: {SPEEDUP_FLOOR:.0f}x)")


if __name__ == "__main__":
    main()


# Keep pytest-benchmark optional: the gate test above runs without the plugin.
try:  # pragma: no cover - import probe only
    import pytest_benchmark  # noqa: F401
except ImportError:  # pragma: no cover
    test_cold_fit = pytest.mark.skip(reason="pytest-benchmark not installed")(test_cold_fit)
    test_cached_rewrite_batch_throughput = pytest.mark.skip(
        reason="pytest-benchmark not installed"
    )(test_cached_rewrite_batch_throughput)
