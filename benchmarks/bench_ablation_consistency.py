"""Ablation: weight-consistency (Definition 8.1) of each method on the Figure 5/6 graphs."""

from repro.core.config import SimrankConfig
from repro.core.evidence_simrank import EvidenceSimrank
from repro.core.simrank import BipartiteSimrank
from repro.core.weighted_simrank import WeightedSimrank
from repro.eval.reporting import format_table
from repro.graph.click_graph import WeightSource
from repro.synth.scenarios import figure5_graphs, figure6_graphs


def test_ablation_consistency(benchmark):
    config_ecr = SimrankConfig(iterations=7)
    config_clicks = SimrankConfig(iterations=7, weight_source=WeightSource.CLICKS)

    def run():
        balanced, skewed = figure5_graphs()
        heavy, light = figure6_graphs()
        rows = []
        for name, factory, config in (
            ("simrank", BipartiteSimrank, config_ecr),
            ("evidence_simrank", EvidenceSimrank, config_ecr),
            ("weighted_simrank", WeightedSimrank, config_clicks),
        ):
            figure5_pair = (
                factory(config).fit(balanced).query_similarity("flower", "orchids"),
                factory(config).fit(skewed).query_similarity("flower", "teleflora"),
            )
            figure6_pair = (
                factory(config).fit(heavy).query_similarity("flower", "orchids"),
                factory(config).fit(light).query_similarity("flower", "teleflora"),
            )
            rows.append(
                {
                    "method": name,
                    "Fig.5 balanced": round(figure5_pair[0], 4),
                    "Fig.5 skewed": round(figure5_pair[1], 4),
                    "consistent (variance rule)": figure5_pair[0] > figure5_pair[1],
                    "Fig.6 heavy": round(figure6_pair[0], 4),
                    "Fig.6 light": round(figure6_pair[1], 4),
                    "consistent (magnitude rule)": figure6_pair[0] > figure6_pair[1],
                }
            )
        return rows

    rows = benchmark(run)
    print()
    print(format_table(rows, title="Ablation: consistency with graph weights (Definition 8.1)"))
    print("(only weighted SimRank satisfies both consistency rules, as Theorem 8.1 requires)")
