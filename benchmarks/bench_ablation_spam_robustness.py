"""Ablation: robustness to spam clicks (paper Section 11, future work).

A spammer adds a burst of clicks from unrelated queries onto a handful of
target ads.  We measure how much the editorial precision of each method's
top-5 rewrites degrades, confirming the paper's concern that click-graph
methods need spam-resistant variants.
"""

import random

from repro.core.config import SimrankConfig
from repro.api.registry import create
from repro.core.rewriter import QueryRewriter
from repro.eval.editorial import EditorialJudge
from repro.eval.reporting import format_table
from repro.graph.click_graph import ClickGraph


def _inject_spam(graph: ClickGraph, rng: random.Random, num_target_ads: int = 5, clicks: int = 150):
    """Copy the graph and add heavy spam clicks from random queries to a few ads."""
    spammed = graph.copy()
    ads = sorted(spammed.ads(), key=repr)
    queries = sorted(spammed.queries(), key=repr)
    targets = rng.sample(ads, min(num_target_ads, len(ads)))
    for target in targets:
        for _ in range(12):
            query = queries[rng.randrange(len(queries))]
            spammed.add_edge(
                query, target, impressions=clicks, clicks=clicks, expected_click_rate=0.9, merge=True
            )
    return spammed


def _precision(workload, graph, queries, method_name):
    config = SimrankConfig(iterations=7, zero_evidence_floor=0.1)
    rewriter = QueryRewriter(
        create(method_name, config=config),
        bid_terms={str(term) for term in workload.bid_terms},
    ).fit(graph)
    judge = EditorialJudge(workload)
    relevant, total = 0, 0
    for query in queries:
        for rewrite in rewriter.rewrites_for(query).rewrites:
            total += 1
            relevant += judge.grade(query, rewrite.rewrite) <= 2
    return relevant / total if total else 0.0


def test_ablation_spam_robustness(benchmark, small_workload, harness_result):
    clean = harness_result.dataset
    queries = harness_result.evaluation_queries[:50]
    spammed = _inject_spam(clean, random.Random(13))

    def run():
        rows = []
        for method_name in ("simrank", "evidence_simrank", "weighted_simrank"):
            before = _precision(small_workload, clean, queries, method_name)
            after = _precision(small_workload, spammed, queries, method_name)
            rows.append(
                {
                    "method": method_name,
                    "precision (clean)": round(before, 3),
                    "precision (spammed)": round(after, 3),
                    "absolute drop": round(before - after, 3),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation: effect of spam clicks on rewrite precision"))
