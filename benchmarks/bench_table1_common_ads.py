"""Table 1: common-ad similarity scores on the Figure 3 sample click graph."""

from repro.core.baselines import CommonAdSimilarity
from repro.eval.reporting import format_table
from repro.experiments.paper import table1_common_ads
from repro.synth.scenarios import figure3_graph


def test_table1_common_ads(benchmark):
    graph = figure3_graph()
    benchmark(lambda: CommonAdSimilarity().fit(graph))
    print()
    print(format_table(table1_common_ads(), title="Table 1: common-ad query similarity"))
