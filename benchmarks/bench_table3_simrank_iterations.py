"""Table 3: per-iteration SimRank scores on the K2,2 and K1,2 graphs of Figure 4."""

from repro.eval.reporting import format_table
from repro.experiments.paper import table3_simrank_iterations


def test_table3_simrank_iterations(benchmark):
    rows = benchmark(table3_simrank_iterations)
    print()
    print(format_table(rows, title="Table 3: SimRank per-iteration scores (C1 = C2 = 0.8)"))
