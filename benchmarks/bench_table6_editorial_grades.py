"""Table 6: the editorial scoring system, exercised by the simulated judge."""

from repro.eval.editorial import EditorialJudge
from repro.eval.reporting import format_table
from repro.experiments.paper import table6_editorial_grades


def test_table6_editorial_grades(benchmark, small_workload):
    judge = EditorialJudge(small_workload)
    queries = sorted(small_workload.query_topics)[:200]
    pairs = [(queries[i], queries[(i + 7) % len(queries)]) for i in range(len(queries))]
    benchmark(lambda: judge.grade_pairs(pairs))
    print()
    print(format_table(table6_editorial_grades(small_workload), title="Table 6: editorial scoring system"))
