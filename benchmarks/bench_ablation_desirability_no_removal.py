"""Ablation: the desirability experiment with and without direct-evidence removal.

At laptop scale the edge removal of the paper's Figure 12 protocol destroys
most of the signal that distinguishes the candidates (see EXPERIMENTS.md).
This ablation keeps the same sampled cases and compares the removal protocol
against a no-removal variant, quantifying how much of the task the direct
evidence carries: all methods recover a large part of the ordering when the
direct edges stay, and drop to near-chance once they are removed on a graph
this small.
"""

import random

from repro.core.config import SimrankConfig
from repro.api.registry import create
from repro.eval.desirability import run_desirability_experiment, select_desirability_cases
from repro.eval.reporting import format_table


def test_ablation_desirability_no_removal(benchmark, harness_result):
    graph = harness_result.dataset
    config = SimrankConfig(iterations=7, zero_evidence_floor=0.1)
    cases = select_desirability_cases(graph, num_cases=40, rng=random.Random(7))
    factories = {
        name: (lambda name=name: create(name, config=config))
        for name in ("simrank", "evidence_simrank", "weighted_simrank")
    }

    with_removal = benchmark.pedantic(
        lambda: run_desirability_experiment(
            graph, factories, cases=cases, neighborhood_radius=6
        ),
        rounds=1,
        iterations=1,
    )
    without_removal = run_desirability_experiment(
        graph, factories, cases=cases, neighborhood_radius=6, remove_direct_evidence=False
    )
    rows = [
        {
            "method": name,
            "with removal (paper protocol) %": round(with_removal[name].percentage, 1),
            "without removal (weight signal) %": round(without_removal[name].percentage, 1),
        }
        for name in factories
    ]
    print()
    print(format_table(rows, title="Ablation: desirability prediction with vs without edge removal"))
