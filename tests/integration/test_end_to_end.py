"""End-to-end integration: serving simulator -> logs -> click graph -> rewriting -> evaluation.

This exercises the full data path of the paper's Figure 2: the back-end
serves ads and logs clicks, the logs become a click graph, the click graph
feeds weighted SimRank, and the resulting rewrites are plugged back into the
front-end and graded by the editorial judge.
"""

import pytest

from repro.core.config import SimrankConfig
from repro.api.registry import create
from repro.core.rewriter import QueryRewriter
from repro.eval.editorial import EditorialJudge
from repro.graph.storage import ClickGraphStore
from repro.search.ads import AdDatabase
from repro.search.backend import Backend
from repro.search.bids import Bid, BidDatabase
from repro.search.click_model import PositionBiasedClickModel
from repro.search.frontend import FrontEnd
from repro.search.system import SponsoredSearchSystem
from repro.search.user_model import TopicalUserModel


@pytest.fixture(scope="module")
def serving_setup(request):
    """A sponsored-search system over the tiny synthetic workload."""
    from repro.synth.yahoo_like import yahoo_like_workload

    workload = yahoo_like_workload("tiny")
    ads = AdDatabase.from_workload_ads(workload.ad_topics)
    bids = BidDatabase()
    # Advertisers bid on the queries of their own topic (one bid per ad-topic pair
    # would be enormous; one bid per query on a couple of same-topic ads suffices).
    ads_by_topic = {}
    for ad in ads:
        ads_by_topic.setdefault(ad.topic, []).append(ad.ad_id)
    for index, (query, topic) in enumerate(sorted(workload.query_topics.items())):
        candidates = ads_by_topic.get(topic, [])
        for offset in range(2):
            if candidates:
                ad_id = candidates[(index + offset) % len(candidates)]
                bids.add(Bid(query=query, ad_id=ad_id, price=1.0 + 0.1 * offset))
    click_model = PositionBiasedClickModel(decay=0.7, max_positions=4)
    backend = Backend(ads, bids, click_model=click_model, num_slots=3)
    user_model = TopicalUserModel(
        workload.topic_model, workload.query_topics, workload.ad_topics, seed=5
    )
    system = SponsoredSearchSystem(backend, user_model, click_model=click_model, seed=5)
    return workload, system, bids


def test_serving_produces_logs_and_click_graph(serving_setup):
    workload, system, bids = serving_setup
    traffic = workload.traffic[:3000]
    report = system.serve_traffic(traffic)
    assert report.queries_served == len(traffic)
    assert report.impressions > 0
    assert 0.0 < report.click_through_rate < 1.0

    graph = system.build_click_graph()
    assert graph.num_edges > 0
    assert graph.num_queries > 0
    # Every edge in the click graph has at least one click by construction.
    assert all(stats.clicks >= 1 for _, _, stats in graph.edges())


def test_click_graph_drives_useful_rewrites(serving_setup, tmp_path):
    workload, system, bids = serving_setup
    if len(system.log) == 0:
        system.serve_traffic(workload.traffic[:3000])
    graph = system.build_click_graph()

    # Persist and reload through the SQLite store, as a deployment would.
    with ClickGraphStore(tmp_path / "serving.db") as store:
        store.save_graph("simulated", graph)
        store.save_bid_terms("period", bids.bid_terms())
        graph = store.load_graph("simulated")
        bid_terms = store.load_bid_terms("period")

    config = SimrankConfig(iterations=5, zero_evidence_floor=0.1)
    method = create("weighted_simrank", config=config)
    rewriter = QueryRewriter(method, bid_terms=bid_terms, max_rewrites=5)
    rewriter.fit(graph)

    judge = EditorialJudge(workload)
    graded = []
    for query in list(graph.queries())[:30]:
        for rewrite in rewriter.rewrites_for(query).rewrites:
            graded.append(judge.grade(query, rewrite.rewrite))
    assert graded, "expected at least some rewrites from the simulated click graph"
    # The majority of rewrites should be at least marginally related (grade <= 3):
    # the serving loop only shows ads with bids on same-topic queries.
    relevant = sum(1 for grade in graded if grade <= 3)
    assert relevant / len(graded) > 0.6


def test_rewriting_frontend_feeds_back_into_serving(serving_setup):
    workload, system, bids = serving_setup
    if len(system.log) == 0:
        system.serve_traffic(workload.traffic[:3000])
    graph = system.build_click_graph()
    config = SimrankConfig(iterations=4, zero_evidence_floor=0.1)
    rewriter = QueryRewriter(
        create("weighted_simrank", config=config),
        bid_terms=bids.bid_terms(),
        max_rewrites=3,
    ).fit(graph)
    system.frontend = FrontEnd(rewriter, max_rewrites=3)

    before = len(system.log)
    report = system.serve_query(next(iter(graph.queries())))
    assert len(system.log) > before or report == 0


def test_engine_backed_rewrite_expansion_mode(serving_setup):
    """The fit -> serve path: bootstrap traffic, fit an engine offline, attach it."""
    from repro.api.config import EngineConfig
    from repro.api.engine import RewriteEngine

    workload, system, bids = serving_setup
    if len(system.log) == 0:
        system.serve_traffic(workload.traffic[:3000])
    graph = system.build_click_graph()

    engine_config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=4, zero_evidence_floor=0.1),
        max_rewrites=3,
    )
    engine = RewriteEngine.from_graph(graph, engine_config, bid_terms=bids.bid_terms()).fit()
    engine.precompute()
    system.attach_engine(engine)

    report = system.serve_traffic(workload.traffic[:500])
    assert report.queries_served == 500
    assert report.expanded_queries > 0
    assert 0.0 < report.expansion_rate <= 1.0
    # Precomputation means serving never recomputes a known query's rewrites.
    info = engine.cache_info()
    assert info.hits > 0
    assert info.size >= graph.num_queries
