"""Tests for exact and approximate personalized PageRank."""

import pytest

from repro.graph.click_graph import ClickGraph
from repro.partition.pagerank import (
    approximate_personalized_pagerank,
    node_degree,
    node_neighbors,
    personalized_pagerank,
)


def test_node_helpers(fig3_graph):
    assert set(node_neighbors(fig3_graph, ("query", "camera"))) == {
        ("ad", "hp.com"),
        ("ad", "bestbuy.com"),
    }
    assert node_degree(fig3_graph, ("query", "camera")) == 2
    assert node_degree(fig3_graph, ("ad", "hp.com")) == 3
    with pytest.raises(ValueError):
        node_degree(fig3_graph, ("widget", "x"))


def test_exact_pagerank_sums_to_one(fig3_graph):
    scores = personalized_pagerank(fig3_graph, ("query", "camera"), alpha=0.2)
    assert sum(scores.values()) == pytest.approx(1.0, abs=1e-6)
    # Mass concentrates near the seed and never reaches the flower component.
    assert scores[("query", "camera")] > scores[("query", "pc")]
    assert scores[("query", "flower")] == pytest.approx(0.0)


def test_exact_pagerank_seed_keeps_at_least_teleport_mass(fig3_graph):
    scores = personalized_pagerank(fig3_graph, ("query", "pc"), alpha=0.15)
    # The seed retains at least the teleport probability, and scores decay
    # with distance from it: its neighbour outranks two-hop nodes.
    assert scores[("query", "pc")] >= 0.15
    assert scores[("ad", "hp.com")] > scores[("ad", "bestbuy.com")]
    assert max(scores, key=scores.get) in {("query", "pc"), ("ad", "hp.com")}


def test_exact_pagerank_rejects_bad_inputs(fig3_graph):
    with pytest.raises(ValueError):
        personalized_pagerank(fig3_graph, ("query", "pc"), alpha=1.5)
    with pytest.raises(KeyError):
        personalized_pagerank(fig3_graph, ("query", "missing"))


def test_push_approximates_power_iteration(fig3_graph):
    """The ACL push procedure runs on the *lazy* random walk; its result with
    teleport alpha equals the non-lazy personalized PageRank with teleport
    beta = 2 * alpha / (1 + alpha)."""
    seed = ("query", "camera")
    alpha = 0.2
    beta = 2 * alpha / (1 + alpha)
    exact = personalized_pagerank(fig3_graph, seed, alpha=beta, tolerance=1e-12)
    approx = approximate_personalized_pagerank(fig3_graph, seed, alpha=alpha, epsilon=1e-8)
    for node, value in approx.items():
        assert value == pytest.approx(exact[node], abs=1e-3)
    # The push estimate is a lower bound on the exact vector.
    for node, value in approx.items():
        assert value <= exact[node] + 1e-6


def test_push_stays_local_with_loose_epsilon(tiny_workload):
    graph = tiny_workload.click_graph
    seed = ("query", next(iter(graph.queries())))
    scores = approximate_personalized_pagerank(graph, seed, epsilon=5e-2)
    # A loose epsilon should only touch a small neighbourhood of the seed.
    assert 0 < len(scores) < graph.num_nodes


def test_push_isolated_seed():
    graph = ClickGraph()
    graph.add_query("lonely")
    scores = approximate_personalized_pagerank(graph, ("query", "lonely"))
    assert scores == {("query", "lonely"): 1.0}


def test_push_rejects_bad_parameters(fig3_graph):
    with pytest.raises(ValueError):
        approximate_personalized_pagerank(fig3_graph, ("query", "pc"), alpha=0.0)
    with pytest.raises(ValueError):
        approximate_personalized_pagerank(fig3_graph, ("query", "pc"), epsilon=0.0)
