"""Tests for conductance, sweep cuts, PageRank-Nibble and subgraph extraction."""

import random

import pytest

from repro.graph.click_graph import ClickGraph
from repro.partition.conductance import conductance, cut_size, sweep_cut, volume
from repro.partition.extraction import extract_subgraphs
from repro.partition.nibble import pagerank_nibble
from repro.partition.pagerank import approximate_personalized_pagerank
from repro.synth.scenarios import complete_bipartite_graph


def _two_cluster_graph() -> ClickGraph:
    """Two dense bipartite clusters joined by a single bridge edge."""
    graph = ClickGraph()
    for i in range(4):
        for j in range(3):
            graph.add_edge(f"left-q{i}", f"left-a{j}", impressions=10, clicks=2)
            graph.add_edge(f"right-q{i}", f"right-a{j}", impressions=10, clicks=2)
    graph.add_edge("left-q0", "right-a0", impressions=10, clicks=1)
    return graph


class TestConductance:
    def test_volume_and_cut_size(self, fig3_graph):
        cluster = {("query", "flower"), ("ad", "teleflora.com"), ("ad", "orchids.com")}
        assert volume(fig3_graph, cluster) == 4
        assert cut_size(fig3_graph, cluster) == 0
        assert conductance(fig3_graph, cluster) == 0.0

    def test_conductance_of_partial_cluster(self, fig3_graph):
        partial = {("query", "camera")}
        # Both of camera's edges cross the cut; volume is 2.
        assert conductance(fig3_graph, partial) == pytest.approx(1.0)

    def test_empty_set_has_infinite_conductance(self, fig3_graph):
        assert conductance(fig3_graph, set()) == float("inf")

    def test_sweep_cut_finds_the_planted_cluster(self):
        graph = _two_cluster_graph()
        seed = ("query", "left-q1")
        scores = approximate_personalized_pagerank(graph, seed, epsilon=1e-6)
        cluster, phi = sweep_cut(graph, scores)
        left_nodes = {node for node in cluster if str(node[1]).startswith("left")}
        assert len(left_nodes) >= 0.8 * len(cluster)
        assert phi < 0.2

    def test_sweep_cut_empty_scores(self, fig3_graph):
        cluster, phi = sweep_cut(fig3_graph, {})
        assert cluster == set()
        assert phi == float("inf")


class TestNibble:
    def test_nibble_recovers_local_cluster(self):
        graph = _two_cluster_graph()
        result = pagerank_nibble(graph, ("query", "left-q0"), epsilon=1e-6)
        assert "left-q0" in result.queries
        # The nibble should stay mostly on the left side.
        left = [q for q in result.queries if str(q).startswith("left")]
        assert len(left) >= len(result.queries) - 1
        assert result.conductance < 0.5
        assert result.size == len(result.nodes)

    def test_nibble_on_complete_bipartite_returns_everything(self):
        graph = complete_bipartite_graph(3, 3)
        result = pagerank_nibble(graph, ("query", "q0"), epsilon=1e-7)
        assert result.queries | result.ads  # non-empty
        assert result.conductance <= 1.0


class TestExtraction:
    def test_extracts_disjoint_subgraphs(self):
        graph = _two_cluster_graph()
        result = extract_subgraphs(graph, num_subgraphs=2, rng=random.Random(0))
        assert 1 <= result.num_subgraphs <= 2
        seen_queries = set()
        for subgraph in result.subgraphs:
            queries = set(subgraph.queries())
            assert not (queries & seen_queries), "subgraphs must be disjoint"
            seen_queries |= queries
            assert subgraph.num_edges > 0

    def test_extraction_on_synthetic_workload(self, tiny_workload):
        from repro.graph.components import largest_component

        giant = largest_component(tiny_workload.click_graph)
        result = extract_subgraphs(giant, num_subgraphs=3, rng=random.Random(1))
        assert result.num_subgraphs >= 1
        combined = result.combined()
        assert combined.num_queries <= giant.num_queries
        assert combined.num_edges > 0

    def test_invalid_num_subgraphs(self, fig3_graph):
        with pytest.raises(ValueError):
            extract_subgraphs(fig3_graph, num_subgraphs=0)

    def test_explicit_seeds_are_used_first(self):
        graph = _two_cluster_graph()
        result = extract_subgraphs(
            graph, num_subgraphs=1, seeds=[("query", "right-q0")], rng=random.Random(0)
        )
        assert result.num_subgraphs == 1
        assert any(str(q).startswith("right") for q in result.subgraphs[0].queries())
