"""Shared fixtures: the paper's sample graphs and a tiny synthetic workload.

Also provides a dependency-free ``@pytest.mark.timeout(seconds)`` marker
(SIGALRM-based) so process-pool tests cannot hang the suite on a stuck
worker; on platforms without SIGALRM the marker is a no-op.
"""

from __future__ import annotations

import signal

import pytest

from repro.core.config import SimrankConfig
from repro.graph.click_graph import ClickGraph
from repro.synth.scenarios import figure3_graph, figure4_graphs, figure5_graphs
from repro.synth.yahoo_like import yahoo_like_workload


@pytest.fixture
def fig3_graph() -> ClickGraph:
    """The unweighted sample click graph of Figure 3."""
    return figure3_graph()


@pytest.fixture
def k22_graph() -> ClickGraph:
    """The K2,2 graph of Figure 4 (camera / digital camera)."""
    return figure4_graphs()[0]


@pytest.fixture
def k12_graph() -> ClickGraph:
    """The K1,2 graph of Figure 4 (pc / camera)."""
    return figure4_graphs()[1]


@pytest.fixture
def weighted_pair_graphs():
    """The balanced / skewed weighted graphs of Figure 5."""
    return figure5_graphs()


@pytest.fixture
def paper_config() -> SimrankConfig:
    """The configuration used throughout the paper: C1 = C2 = 0.8, 7 iterations."""
    return SimrankConfig(c1=0.8, c2=0.8, iterations=7)


@pytest.fixture(scope="session")
def tiny_workload():
    """A tiny synthetic workload shared by the heavier integration tests."""
    return yahoo_like_workload("tiny")


@pytest.fixture
def small_weighted_graph() -> ClickGraph:
    """A small weighted graph with two topical clusters joined by one bridge ad."""
    graph = ClickGraph()
    edges = [
        ("camera", "hp.com", 500, 50, 0.10),
        ("camera", "bestbuy.com", 400, 60, 0.15),
        ("digital camera", "hp.com", 450, 45, 0.10),
        ("digital camera", "bestbuy.com", 300, 60, 0.20),
        ("pc", "hp.com", 600, 30, 0.05),
        ("pc", "dell.com", 800, 80, 0.10),
        ("laptop", "dell.com", 700, 70, 0.10),
        ("laptop", "bestbuy.com", 200, 10, 0.05),
        ("flower", "teleflora.com", 300, 45, 0.15),
        ("orchids", "teleflora.com", 280, 42, 0.15),
        ("flower", "orchids.com", 250, 40, 0.16),
        ("orchids", "orchids.com", 260, 41, 0.16),
    ]
    for query, ad, impressions, clicks, ecr in edges:
        graph.add_edge(query, ad, impressions=impressions, clicks=clicks, expected_click_rate=ecr)
    return graph


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "timeout(seconds): fail the test if it runs longer than this "
        "(SIGALRM-based; no-op where SIGALRM is unavailable)",
    )


@pytest.hookimpl(hookwrapper=True)
def pytest_runtest_call(item):
    marker = item.get_closest_marker("timeout")
    if marker is None or not hasattr(signal, "SIGALRM"):
        yield
        return
    seconds = int(marker.args[0]) if marker.args else 60

    def _expired(signum, frame):
        raise TimeoutError(f"test exceeded the {seconds}s timeout marker")

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)
