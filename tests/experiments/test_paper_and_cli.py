"""Tests for the per-table/figure drivers and the CLI."""

import pytest

from repro.experiments.cli import build_parser, main
from repro.experiments.paper import (
    PaperExperiments,
    figure8_query_coverage,
    figure9_precision_recall,
    figure11_rewriting_depth,
    figure12_desirability,
    table1_common_ads,
    table2_simrank_sample,
    table3_simrank_iterations,
    table4_evidence_iterations,
    table5_dataset_statistics,
    table6_editorial_grades,
)


class TestTables:
    def test_table1_matches_paper(self):
        rows = {row["query"]: row for row in table1_common_ads()}
        assert rows["camera"]["digital camera"] == 2
        assert rows["pc"]["tv"] == 0
        assert rows["flower"]["pc"] == 0
        assert rows["pc"]["pc"] == "-"

    def test_table2_matches_paper(self):
        rows = {row["query"]: row for row in table2_simrank_sample()}
        assert rows["pc"]["camera"] == pytest.approx(0.619, abs=2e-3)
        assert rows["pc"]["tv"] == pytest.approx(0.437, abs=2e-3)
        assert rows["flower"]["camera"] == 0

    def test_table3_matches_paper(self):
        rows = table3_simrank_iterations()
        assert rows[0]['sim("camera", "digital camera")'] == pytest.approx(0.4)
        assert rows[0]['sim("pc", "camera")'] == pytest.approx(0.8)
        assert rows[6]['sim("camera", "digital camera")'] == pytest.approx(0.6655744, abs=1e-6)

    def test_table4_matches_paper(self):
        rows = table4_evidence_iterations()
        assert rows[0]['sim("camera", "digital camera")'] == pytest.approx(0.3)
        assert rows[0]['sim("pc", "camera")'] == pytest.approx(0.4)
        assert rows[6]['sim("camera", "digital camera")'] == pytest.approx(0.4991808, abs=1e-6)

    def test_table6_covers_all_grades(self, tiny_workload):
        rows = table6_editorial_grades(tiny_workload)
        assert [row["Score"] for row in rows] == [1, 2, 3, 4]
        assert all(row["Definition"] for row in rows)


class TestFiguresViaPaperExperiments:
    @pytest.fixture(scope="class")
    def experiments(self):
        runner = PaperExperiments(workload_size="tiny", desirability_cases=6)
        # Keep the cached harness run small.
        runner._result = None
        return runner

    def test_table5_and_figures(self, experiments):
        result = experiments.harness_result()
        rows = table5_dataset_statistics(result)
        assert rows[-1]["subgraph"] == "Total"
        coverage = figure8_query_coverage(result)
        assert coverage["simrank"] > coverage["pearson"]
        figure9 = figure9_precision_recall(result)
        assert set(figure9) == {"precision_recall", "precision_at_x"}
        assert len(figure9["precision_recall"]["weighted_simrank"]) == 11
        depth = figure11_rewriting_depth(result)
        assert "5" in depth["simrank"]
        desirability = figure12_desirability(result)
        assert set(desirability) == {"simrank", "evidence_simrank", "weighted_simrank"}

    def test_render_each_experiment(self, experiments):
        for name in experiments.all_experiments():
            text = experiments.render(name)
            assert isinstance(text, str) and text

    def test_render_unknown_experiment(self, experiments):
        with pytest.raises(ValueError):
            experiments.render("table99")


class TestCli:
    def test_parser_defaults(self):
        args = build_parser().parse_args([])
        assert args.experiment == "all"
        assert args.size == "small"

    def test_main_runs_single_table(self, capsys):
        exit_code = main(["--experiment", "table3"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Table 3" in output
        assert "0.8" in output

    def test_main_runs_figure_on_tiny_workload(self, capsys):
        exit_code = main(
            ["--experiment", "figure8", "--size", "tiny", "--desirability-cases", "0"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "coverage" in output.lower()

    def test_save_engine_then_load_engine_round_trip(self, capsys, tmp_path):
        """--save-engine persists fitted engines; --load-engine serves from them."""
        from repro.api.snapshot import EngineSnapshotStore

        snapshot_dir = str(tmp_path / "engines")
        base = ["--experiment", "figure8", "--size", "tiny", "--desirability-cases", "0"]
        assert main(base + ["--save-engine", snapshot_dir]) == 0
        saved_output = capsys.readouterr().out
        store = EngineSnapshotStore(snapshot_dir)
        assert store.list_snapshots() == [
            "evidence_simrank-matrix",
            "pearson-matrix",
            "simrank-matrix",
            "weighted_simrank-matrix",
        ]
        assert main(base + ["--load-engine", snapshot_dir]) == 0
        assert capsys.readouterr().out == saved_output
