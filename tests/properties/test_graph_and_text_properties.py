"""Property-based tests for graph persistence, evidence functions and text utilities."""

import string

from hypothesis import given, settings, strategies as st

from repro.core.evidence import evidence_exponential, evidence_geometric
from repro.eval.metrics import precision_at_k, precision_recall
from repro.graph.click_graph import ClickGraph, EdgeStats
from repro.graph.io import read_edges_jsonl, write_edges_jsonl
from repro.text.normalize import query_signature, tokenize
from repro.text.porter import stem


@st.composite
def graphs(draw):
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, 5),
                st.integers(0, 5),
                st.integers(1, 100),
                st.integers(0, 100),
                st.floats(0.001, 1.0),
            ),
            min_size=1,
            max_size=12,
        )
    )
    graph = ClickGraph()
    for q, a, clicks, extra, ecr in edges:
        graph.add_edge(f"query {q}", f"ad{a}", impressions=clicks + extra, clicks=clicks,
                       expected_click_rate=round(ecr, 6), merge=True)
    return graph


@settings(max_examples=40, deadline=None)
@given(graph=graphs())
def test_jsonl_round_trip_preserves_graph(graph, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "edges.jsonl"
    write_edges_jsonl(graph, path)
    assert read_edges_jsonl(path) == graph


@settings(max_examples=50, deadline=None)
@given(clicks=st.integers(0, 10_000), extra=st.integers(0, 10_000))
def test_edge_stats_ctr_is_bounded(clicks, extra):
    stats = EdgeStats(impressions=clicks + extra, clicks=clicks)
    assert 0.0 <= stats.click_through_rate <= 1.0
    assert stats.expected_click_rate == stats.click_through_rate


@settings(max_examples=50, deadline=None)
@given(n=st.integers(0, 60), m=st.integers(0, 60))
def test_evidence_functions_monotone_and_bounded(n, m):
    for function in (evidence_geometric, evidence_exponential):
        # Mathematically < 1, but large counts round to exactly 1.0 in floats.
        assert 0.0 <= function(n) <= 1.0
        if n <= m:
            assert function(n) <= function(m)


@settings(max_examples=50, deadline=None)
@given(word=st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=15))
def test_stemmer_output_is_nonempty_prefix_compatible(word):
    stemmed = stem(word)
    assert stemmed
    assert len(stemmed) <= len(word)
    # Stemming twice never grows the word.
    assert len(stem(stemmed)) <= len(stemmed)


@settings(max_examples=50, deadline=None)
@given(words=st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8), min_size=1, max_size=5))
def test_query_signature_is_order_invariant(words):
    forward = " ".join(words)
    backward = " ".join(reversed(words))
    assert query_signature(forward) == query_signature(backward)
    assert len(query_signature(forward)) == len(tokenize(forward))


@settings(max_examples=50, deadline=None)
@given(flags=st.lists(st.booleans(), min_size=1, max_size=10), extra_pool=st.integers(0, 10))
def test_precision_recall_bounds(flags, extra_pool):
    # The pooled relevant count is always at least the number of relevant
    # rewrites this method returned (they are part of the pool).
    pool = sum(flags) + extra_pool
    precision, recall = precision_recall(flags, pool)
    assert 0.0 <= precision <= 1.0
    assert 0.0 <= recall <= 1.0
    for k in range(1, len(flags) + 1):
        assert 0.0 <= precision_at_k(flags, k) <= 1.0
