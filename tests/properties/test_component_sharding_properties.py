"""Property-based tests of component decomposition and score stitching.

Sharding is only sound if (a) connected components partition the node set,
(b) no edge crosses a component boundary and (c) the stitched scores look
exactly like similarity scores should: symmetric, bounded in [0, 1], unit on
the diagonal and zero across shards.  Random bipartite click graphs probe
all of it.
"""

import math

from hypothesis import given, settings, strategies as st

from repro.core.config import SimrankConfig
from repro.core.simrank_sharded import ShardedSimrank
from repro.graph.click_graph import ClickGraph
from repro.graph.components import connected_components


@st.composite
def click_graphs(draw, max_queries=7, max_ads=6):
    """Random small weighted bipartite click graphs, isolated nodes included."""
    num_queries = draw(st.integers(min_value=1, max_value=max_queries))
    num_ads = draw(st.integers(min_value=1, max_value=max_ads))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_queries - 1),
                st.integers(0, num_ads - 1),
                st.integers(1, 50),          # clicks
                st.integers(0, 200),         # extra impressions on top of clicks
                st.floats(0.01, 0.9),        # expected click rate
            ),
            min_size=0,
            max_size=16,
        )
    )
    graph = ClickGraph()
    # Register every node up front so some stay isolated when the edge list
    # never touches them -- sharding must cope with zero-degree nodes.
    for query_index in range(num_queries):
        graph.add_query(f"q{query_index}")
    for ad_index in range(num_ads):
        graph.add_ad(f"a{ad_index}")
    for query_index, ad_index, clicks, extra, ecr in edges:
        graph.add_edge(
            f"q{query_index}",
            f"a{ad_index}",
            impressions=clicks + extra,
            clicks=clicks,
            expected_click_rate=ecr,
            merge=True,
        )
    return graph


CONFIG = SimrankConfig(iterations=5, zero_evidence_floor=0.1)


@settings(max_examples=60, deadline=None)
@given(graph=click_graphs())
def test_components_partition_the_node_set(graph):
    """Every node lands in exactly one component; components are disjoint."""
    components = connected_components(graph)
    seen_queries, seen_ads = [], []
    for queries, ads in components:
        seen_queries.extend(queries)
        seen_ads.extend(ads)
    assert sorted(seen_queries, key=repr) == sorted(graph.queries(), key=repr)
    assert sorted(seen_ads, key=repr) == sorted(graph.ads(), key=repr)
    assert len(seen_queries) == len(set(seen_queries))
    assert len(seen_ads) == len(set(seen_ads))


@settings(max_examples=60, deadline=None)
@given(graph=click_graphs())
def test_no_edge_crosses_a_component_boundary(graph):
    """Each edge's endpoints always belong to the same component."""
    components = connected_components(graph)
    query_home = {}
    ad_home = {}
    for index, (queries, ads) in enumerate(components):
        for query in queries:
            query_home[query] = index
        for ad in ads:
            ad_home[ad] = index
    for query, ad, _ in graph.edges():
        assert query_home[query] == ad_home[ad], f"edge ({query!r}, {ad!r}) crosses shards"


@settings(max_examples=40, deadline=None)
@given(graph=click_graphs(), mode_index=st.integers(0, 2))
def test_stitched_scores_symmetric_and_bounded(graph, mode_index):
    """Stitched sharded scores behave like any similarity score set."""
    mode = ("simrank", "evidence", "weighted")[mode_index]
    method = ShardedSimrank(CONFIG, mode=mode).fit(graph)
    queries = sorted(graph.queries(), key=repr)
    for i, first in enumerate(queries):
        assert method.query_similarity(first, first) == 1.0
        for second in queries[i + 1:]:
            forward = method.query_similarity(first, second)
            backward = method.query_similarity(second, first)
            assert forward == backward
            assert 0.0 <= forward <= 1.0 + 1e-12
            assert not math.isnan(forward)


@settings(max_examples=40, deadline=None)
@given(graph=click_graphs())
def test_cross_shard_pairs_score_zero(graph):
    """Queries in different shards (or unsharded isolates) never score."""
    method = ShardedSimrank(CONFIG, mode="weighted").fit(graph)
    queries = sorted(graph.queries(), key=repr)
    for i, first in enumerate(queries):
        for second in queries[i + 1:]:
            first_shard = method.shard_of(first)
            if first_shard is None or first_shard != method.shard_of(second):
                assert method.query_similarity(first, second) == 0.0
