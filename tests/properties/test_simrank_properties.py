"""Property-based tests for the SimRank family on random bipartite click graphs."""

import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SimrankConfig
from repro.core.evidence_simrank import EvidenceSimrank
from repro.core.simrank import BipartiteSimrank
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.weighted_simrank import WeightedSimrank
from repro.graph.click_graph import ClickGraph


@st.composite
def click_graphs(draw, max_queries=6, max_ads=5):
    """Random small weighted bipartite click graphs with at least one edge."""
    num_queries = draw(st.integers(min_value=1, max_value=max_queries))
    num_ads = draw(st.integers(min_value=1, max_value=max_ads))
    edges = draw(
        st.lists(
            st.tuples(
                st.integers(0, num_queries - 1),
                st.integers(0, num_ads - 1),
                st.integers(1, 50),          # clicks
                st.integers(0, 200),         # extra impressions on top of clicks
                st.floats(0.01, 0.9),        # expected click rate
            ),
            min_size=1,
            max_size=14,
        )
    )
    graph = ClickGraph()
    for query_index, ad_index, clicks, extra, ecr in edges:
        graph.add_edge(
            f"q{query_index}",
            f"a{ad_index}",
            impressions=clicks + extra,
            clicks=clicks,
            expected_click_rate=ecr,
            merge=True,
        )
    return graph


CONFIG = SimrankConfig(iterations=5)
FLOOR_CONFIG = SimrankConfig(iterations=5, zero_evidence_floor=0.1)
METHOD_FACTORIES = [
    lambda: BipartiteSimrank(CONFIG),
    lambda: EvidenceSimrank(CONFIG),
    lambda: WeightedSimrank(CONFIG),
    lambda: MatrixSimrank(CONFIG, mode="weighted"),
]


@settings(max_examples=40, deadline=None)
@given(graph=click_graphs(), method_index=st.integers(0, len(METHOD_FACTORIES) - 1))
def test_scores_are_symmetric_and_bounded(graph, method_index):
    """Every method produces symmetric scores in [0, 1] with unit self-similarity."""
    method = METHOD_FACTORIES[method_index]().fit(graph)
    queries = sorted(graph.queries(), key=repr)
    for i, first in enumerate(queries):
        assert method.query_similarity(first, first) == 1.0
        for second in queries[i + 1:]:
            value = method.query_similarity(first, second)
            assert -1e-12 <= value <= 1.0 + 1e-9
            assert value == pytest.approx(method.query_similarity(second, first), abs=1e-12)


@settings(max_examples=30, deadline=None)
@given(graph=click_graphs())
def test_matrix_engine_matches_reference_simrank(graph):
    """The dense-matrix engine computes the same fixpoint as the reference code."""
    reference = BipartiteSimrank(CONFIG).fit(graph)
    matrix = MatrixSimrank(CONFIG, mode="simrank").fit(graph)
    queries = sorted(graph.queries(), key=repr)
    for i, first in enumerate(queries):
        for second in queries[i + 1:]:
            assert matrix.query_similarity(first, second) == pytest.approx(
                reference.query_similarity(first, second), abs=1e-9
            )


@settings(max_examples=30, deadline=None)
@given(graph=click_graphs())
def test_evidence_never_increases_scores(graph):
    """Evidence factors are <= 1, so evidence-based scores never exceed plain SimRank."""
    plain = BipartiteSimrank(CONFIG).fit(graph)
    evidence = EvidenceSimrank(CONFIG).fit(graph)
    for first, second, value in evidence.similarities().pairs():
        assert value <= plain.query_similarity(first, second) + 1e-12


@settings(max_examples=30, deadline=None)
@given(graph=click_graphs())
def test_zero_evidence_floor_only_adds_pairs(graph):
    """A floor can only add (or keep) pairs relative to the strict evidence scores."""
    strict = EvidenceSimrank(CONFIG).fit(graph)
    floored = EvidenceSimrank(FLOOR_CONFIG).fit(graph)
    for first, second, value in strict.similarities().pairs():
        if value > 0:
            assert floored.query_similarity(first, second) > 0


@settings(max_examples=30, deadline=None)
@given(graph=click_graphs())
def test_disconnected_components_never_become_similar(graph):
    """Queries in different connected components always score zero."""
    from repro.graph.components import connected_components

    components = connected_components(graph)
    if len(components) < 2:
        return
    method = WeightedSimrank(CONFIG).fit(graph)
    first_queries = sorted(components[0][0], key=repr)
    second_queries = sorted(components[1][0], key=repr)
    if not first_queries or not second_queries:
        return
    assert method.query_similarity(first_queries[0], second_queries[0]) == 0.0


@settings(max_examples=25, deadline=None)
@given(graph=click_graphs(), c=st.floats(0.5, 0.95))
def test_scores_monotone_in_iterations(graph, c):
    """Plain SimRank scores are non-decreasing in the iteration count."""
    few = BipartiteSimrank(SimrankConfig(c1=c, c2=c, iterations=2)).fit(graph)
    many = BipartiteSimrank(SimrankConfig(c1=c, c2=c, iterations=6)).fit(graph)
    for first, second, value in few.similarities().pairs():
        assert many.query_similarity(first, second) >= value - 1e-12


@settings(max_examples=25, deadline=None)
@given(graph=click_graphs())
def test_scores_bounded_by_decay_factor(graph):
    """Off-diagonal query scores never exceed C1 (one decay factor is always paid)."""
    method = BipartiteSimrank(CONFIG).fit(graph)
    for _, _, value in method.similarities().pairs():
        assert value <= CONFIG.c1 + 1e-12
