"""Tests for the score container, the configuration object and the method registry."""

import pytest

from repro.core.config import EvidenceKind, SimrankConfig
from repro.core.convergence import (
    iteration_deltas,
    iterations_for_accuracy,
    theoretical_residual_bound,
)
from repro.api.registry import PAPER_METHODS, available_methods, create
from repro.core.scores import SimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.graph.click_graph import WeightSource


class TestSimilarityScores:
    def test_identity_and_missing_pairs(self):
        scores = SimilarityScores()
        assert scores.score("a", "a") == 1.0
        assert scores.score("a", "b") == 0.0

    def test_set_and_symmetry(self):
        scores = SimilarityScores()
        scores.set("a", "b", 0.4)
        assert scores.score("b", "a") == 0.4
        scores.set("a", "a", 0.9)  # ignored
        assert scores.score("a", "a") == 1.0

    def test_top_is_sorted_and_thresholded(self):
        scores = SimilarityScores({("q", "x"): 0.2, ("q", "y"): 0.8, ("q", "z"): 0.5})
        top = scores.top("q", k=2)
        assert [node for node, _ in top] == ["y", "z"]
        assert scores.top("q", k=5, minimum=0.6) == [("y", 0.8)]

    def test_top_tie_break_is_deterministic(self):
        scores = SimilarityScores({("q", "b"): 0.5, ("q", "a"): 0.5})
        assert [node for node, _ in scores.top("q", k=2)] == ["a", "b"]

    def test_top_heap_selection_matches_full_sort(self):
        """Regression for the heapq rewrite: exact old ordering, ties included."""
        values = {("q", f"n{i:02d}"): round(0.1 + (i * 7 % 13) / 20, 3) for i in range(40)}
        values[("q", "tie-b")] = values[("q", "tie-a")] = 0.9
        scores = SimilarityScores(values)
        row = [(other, value) for other, value in scores.neighbors("q").items()]
        row.sort(key=lambda pair: (-pair[1], repr(pair[0])))
        for k in (1, 3, 5, 41, 0):
            assert scores.top("q", k=k) == row[:k]

    def test_pairs_iterates_each_pair_once(self):
        scores = SimilarityScores({("a", "b"): 0.1, ("b", "c"): 0.2})
        pairs = list(scores.pairs())
        assert len(pairs) == 2
        assert len(scores) == 2

    def test_pairs_yields_each_unordered_pair_exactly_once(self):
        """Regression for the insertion-order rewrite of ``pairs``."""
        scores = SimilarityScores()
        nodes = [f"n{i}" for i in range(8)] + [(1, 2), (2, 1), frozenset({"x"})]
        expected = {}
        for i, first in enumerate(nodes):
            for second in nodes[i + 1:]:
                value = 0.01 * (hash((i, repr(second))) % 50 + 1)
                scores.set(first, second, value)
                expected[frozenset((first, second))] = value
        emitted = list(scores.pairs())
        assert len(emitted) == len(expected)
        assert {frozenset((a, b)) for a, b, _ in emitted} == set(expected)
        for first, second, value in emitted:
            assert expected[frozenset((first, second))] == pytest.approx(value)

    def test_pairs_after_discard(self):
        scores = SimilarityScores({("a", "b"): 0.1, ("b", "c"): 0.2})
        scores.discard("a", "b")
        assert [frozenset((a, b)) for a, b, _ in scores.pairs()] == [frozenset(("b", "c"))]

    def test_max_difference_and_copy(self):
        first = SimilarityScores({("a", "b"): 0.5})
        second = first.copy()
        second.set("a", "b", 0.7)
        second.set("c", "d", 0.1)
        assert first.max_difference(second) == pytest.approx(0.2)
        assert first.score("c", "d") == 0.0

    def test_scaled_by(self):
        scores = SimilarityScores({("a", "b"): 0.5, ("c", "d"): 0.4})
        scaled = scores.scaled_by({("a", "b"): 0.5})
        assert scaled.score("a", "b") == pytest.approx(0.25)
        assert scaled.score("c", "d") == pytest.approx(0.4)

    def test_discard_and_nonzero_count(self):
        scores = SimilarityScores({("a", "b"): 0.5, ("c", "d"): 0.0})
        assert scores.nonzero_count() == 1
        scores.discard("a", "b")
        assert scores.score("a", "b") == 0.0


class TestSimrankConfig:
    def test_defaults_match_paper(self):
        config = SimrankConfig()
        assert config.c1 == 0.8 and config.c2 == 0.8
        assert config.iterations == 7
        assert config.weight_source is WeightSource.EXPECTED_CLICK_RATE
        assert config.evidence is EvidenceKind.GEOMETRIC

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"c1": 0.0},
            {"c1": 1.5},
            {"c2": -0.1},
            {"iterations": 0},
            {"tolerance": -1.0},
            {"zero_evidence_floor": 1.0},
            {"zero_evidence_floor": -0.2},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            SimrankConfig(**kwargs)

    def test_with_decay_and_with_iterations(self):
        config = SimrankConfig(zero_evidence_floor=0.1)
        updated = config.with_decay(0.6).with_iterations(3)
        assert updated.c1 == 0.6 and updated.c2 == 0.8
        assert updated.iterations == 3
        # Unrelated fields are preserved by the copies.
        assert updated.zero_evidence_floor == 0.1


class TestRegistry:
    def test_paper_methods_are_available(self):
        for name in PAPER_METHODS:
            assert name in available_methods()

    @pytest.mark.parametrize("name", ["pearson", "simrank", "evidence_simrank", "weighted_simrank", "common_ads", "jaccard", "cosine"])
    def test_create_every_method(self, name, fig3_graph):
        method = create(name)
        assert isinstance(method, QuerySimilarityMethod)
        method.fit(fig3_graph)
        assert method.query_similarity("camera", "camera") == 1.0

    def test_backends_agree(self, fig3_graph, paper_config):
        reference = create("simrank", config=paper_config, backend="reference").fit(fig3_graph)
        matrix = create("simrank", config=paper_config, backend="matrix").fit(fig3_graph)
        assert matrix.query_similarity("pc", "tv") == pytest.approx(
            reference.query_similarity("pc", "tv"), abs=1e-9
        )

    def test_unknown_method_and_backend(self):
        with pytest.raises(ValueError):
            create("not-a-method")
        with pytest.raises(ValueError):
            create("simrank", backend="gpu")


class TestConvergence:
    def test_residual_bound_decreases(self):
        bounds = [theoretical_residual_bound(0.8, k) for k in range(6)]
        assert bounds == sorted(bounds, reverse=True)
        assert theoretical_residual_bound(1.0, 3) == float("inf")

    def test_iterations_for_accuracy(self):
        k = iterations_for_accuracy(0.8, 0.01)
        assert theoretical_residual_bound(0.8, k) < 0.01
        assert theoretical_residual_bound(0.8, k - 1) >= 0.01

    def test_iteration_deltas_from_history(self, k22_graph, paper_config):
        from repro.core.simrank import BipartiteSimrank

        simrank = BipartiteSimrank(paper_config, track_history=True).fit(k22_graph)
        deltas = iteration_deltas(simrank.result.query_history)
        assert len(deltas) == paper_config.iterations - 1
        assert deltas == sorted(deltas, reverse=True)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            theoretical_residual_bound(0.0, 3)
        with pytest.raises(ValueError):
            iterations_for_accuracy(0.8, 0.0)
