"""Tests for plain bipartite SimRank, including the paper's exact numbers."""

import pytest

from repro.core.config import SimrankConfig
from repro.core.simrank import BipartiteSimrank
from repro.graph.click_graph import ClickGraph
from repro.synth.scenarios import complete_bipartite_graph


class TestPaperTables:
    def test_table2_scores_on_figure3_graph(self, fig3_graph):
        """Table 2: SimRank with C1 = C2 = 0.8 on the Figure 3 sample graph."""
        simrank = BipartiteSimrank(SimrankConfig(iterations=20)).fit(fig3_graph)
        assert simrank.query_similarity("pc", "camera") == pytest.approx(0.619, abs=2e-3)
        assert simrank.query_similarity("pc", "digital camera") == pytest.approx(0.619, abs=2e-3)
        assert simrank.query_similarity("pc", "tv") == pytest.approx(0.437, abs=2e-3)
        assert simrank.query_similarity("camera", "digital camera") == pytest.approx(0.619, abs=2e-3)
        assert simrank.query_similarity("camera", "tv") == pytest.approx(0.619, abs=2e-3)
        for query in ("pc", "camera", "digital camera", "tv"):
            assert simrank.query_similarity(query, "flower") == 0.0

    def test_table3_iteration_trace(self, k22_graph, k12_graph, paper_config):
        """Table 3: per-iteration scores on K2,2 vs K1,2."""
        expected_k22 = [0.4, 0.56, 0.624, 0.6496, 0.65984, 0.663936, 0.6655744]
        sim_k22 = BipartiteSimrank(paper_config, track_history=True).fit(k22_graph)
        sim_k12 = BipartiteSimrank(paper_config, track_history=True).fit(k12_graph)
        for index, expected in enumerate(expected_k22):
            snapshot = sim_k22.result.query_history[index]
            assert snapshot.score("camera", "digital camera") == pytest.approx(expected, abs=1e-9)
            assert sim_k12.result.query_history[index].score("pc", "camera") == pytest.approx(0.8)

    def test_theorem_6_1_ordering(self, k22_graph, k12_graph, paper_config):
        """Theorem 6.1: the K1,2 pair scores at least as high as the K2,2 pair."""
        sim_k22 = BipartiteSimrank(paper_config, track_history=True).fit(k22_graph)
        sim_k12 = BipartiteSimrank(paper_config, track_history=True).fit(k12_graph)
        for k in range(paper_config.iterations):
            assert (
                sim_k12.result.query_history[k].score("pc", "camera")
                >= sim_k22.result.query_history[k].score("camera", "digital camera")
            )


class TestBasicProperties:
    def test_self_similarity_is_one(self, fig3_graph, paper_config):
        simrank = BipartiteSimrank(paper_config).fit(fig3_graph)
        assert simrank.query_similarity("camera", "camera") == 1.0

    def test_symmetry(self, fig3_graph, paper_config):
        simrank = BipartiteSimrank(paper_config).fit(fig3_graph)
        assert simrank.query_similarity("pc", "tv") == simrank.query_similarity("tv", "pc")

    def test_scores_in_unit_interval(self, small_weighted_graph, paper_config):
        simrank = BipartiteSimrank(paper_config).fit(small_weighted_graph)
        for _, _, value in simrank.similarities().pairs():
            assert 0.0 <= value <= 1.0

    def test_disconnected_pairs_score_zero(self, fig3_graph, paper_config):
        simrank = BipartiteSimrank(paper_config).fit(fig3_graph)
        assert simrank.query_similarity("flower", "pc") == 0.0

    def test_ad_similarity_available(self, fig3_graph, paper_config):
        simrank = BipartiteSimrank(paper_config).fit(fig3_graph)
        assert simrank.ad_similarity("hp.com", "bestbuy.com") > 0.0
        assert simrank.ad_similarity("hp.com", "teleflora.com") == 0.0

    def test_unfitted_method_raises(self, paper_config):
        simrank = BipartiteSimrank(paper_config)
        with pytest.raises(RuntimeError):
            simrank.query_similarity("a", "b")

    def test_top_rewrites_sorted_by_score(self, fig3_graph, paper_config):
        simrank = BipartiteSimrank(paper_config).fit(fig3_graph)
        rewrites = simrank.top_rewrites("camera", k=3)
        scores = [score for _, score in rewrites]
        assert scores == sorted(scores, reverse=True)
        assert rewrites[0][0] in {"digital camera", "pc", "tv"}

    def test_covers(self, fig3_graph, paper_config):
        simrank = BipartiteSimrank(paper_config).fit(fig3_graph)
        assert simrank.covers("camera")
        assert not simrank.covers("flower")


class TestIterationControl:
    def test_more_iterations_never_decrease_scores(self, fig3_graph):
        previous = 0.0
        for iterations in (1, 3, 5, 9):
            simrank = BipartiteSimrank(SimrankConfig(iterations=iterations)).fit(fig3_graph)
            current = simrank.query_similarity("pc", "tv")
            assert current >= previous - 1e-12
            previous = current

    def test_early_stopping_with_tolerance(self, k12_graph):
        config = SimrankConfig(iterations=50, tolerance=1e-6)
        simrank = BipartiteSimrank(config).fit(k12_graph)
        assert simrank.result.converged
        assert simrank.result.iterations_run < 50

    def test_history_tracking_length(self, k22_graph, paper_config):
        simrank = BipartiteSimrank(paper_config, track_history=True).fit(k22_graph)
        assert len(simrank.result.query_history) == paper_config.iterations
        assert len(simrank.result.ad_history) == paper_config.iterations

    def test_max_pairs_guard(self):
        graph = complete_bipartite_graph(60, 60)
        with pytest.raises(ValueError):
            BipartiteSimrank(max_pairs=100).fit(graph)

    def test_decay_factor_scales_scores(self, k12_graph):
        low = BipartiteSimrank(SimrankConfig(c1=0.6, c2=0.6, iterations=5)).fit(k12_graph)
        high = BipartiteSimrank(SimrankConfig(c1=0.9, c2=0.9, iterations=5)).fit(k12_graph)
        assert low.ad_similarity("hp.com", "hp.com") == 1.0
        assert low.query_similarity("pc", "camera") < high.query_similarity("pc", "camera")


class TestEdgeCases:
    def test_empty_graph(self, paper_config):
        simrank = BipartiteSimrank(paper_config).fit(ClickGraph())
        assert len(simrank.similarities()) == 0

    def test_single_edge_graph(self, paper_config):
        graph = ClickGraph()
        graph.add_edge("only query", "only ad", impressions=1, clicks=1)
        simrank = BipartiteSimrank(paper_config).fit(graph)
        assert simrank.query_similarity("only query", "only query") == 1.0
        assert len(simrank.similarities()) == 0

    def test_isolated_nodes_do_not_break_fit(self, paper_config):
        graph = ClickGraph()
        graph.add_edge("q1", "a1", impressions=1, clicks=1)
        graph.add_query("isolated")
        simrank = BipartiteSimrank(paper_config).fit(graph)
        assert simrank.query_similarity("q1", "isolated") == 0.0
