"""The array-backed score store must behave exactly like the dict-backed one."""

import numpy as np
import pytest
from scipy import sparse

from repro.core.scores import SimilarityScores
from repro.core.scores_array import ArraySimilarityScores


def make_store(pairs, index):
    """An array store holding the given ``{(i_node, j_node): value}`` pairs."""
    n = len(index)
    pos = {node: i for i, node in enumerate(index)}
    matrix = np.zeros((n, n))
    for (first, second), value in pairs.items():
        matrix[pos[first], pos[second]] = value
        matrix[pos[second], pos[first]] = value
    return ArraySimilarityScores.from_dense(matrix, index)


@pytest.fixture
def store():
    return make_store(
        {("q", "x"): 0.2, ("q", "y"): 0.8, ("q", "z"): 0.5, ("x", "y"): 0.3},
        ["q", "x", "y", "z", "isolated"],
    )


@pytest.fixture
def dict_store():
    scores = SimilarityScores()
    scores.set("q", "x", 0.2)
    scores.set("q", "y", 0.8)
    scores.set("q", "z", 0.5)
    scores.set("x", "y", 0.3)
    return scores


class TestScoreLookups:
    def test_identity_missing_and_stored_pairs(self, store):
        assert store.score("q", "q") == 1.0
        assert store.score("unknown", "unknown") == 1.0
        assert store.score("q", "unknown") == 0.0
        assert store.score("q", "isolated") == 0.0
        assert store.score("q", "y") == pytest.approx(0.8)
        assert store.score("y", "q") == pytest.approx(0.8)

    def test_neighbors(self, store, dict_store):
        assert store.neighbors("q") == dict_store.neighbors("q")
        assert store.neighbors("isolated") == {}
        assert store.neighbors("unknown") == {}

    def test_len_and_nonzero_count(self, store, dict_store):
        assert len(store) == len(dict_store) == 4
        assert store.nonzero_count() == 4

    def test_nodes_excludes_isolated_rows(self, store):
        assert sorted(store.nodes()) == ["q", "x", "y", "z"]


class TestTop:
    def test_matches_dict_store(self, store, dict_store):
        for k in (1, 2, 3, 10):
            assert store.top("q", k=k) == dict_store.top("q", k=k)
        assert store.top("q", k=5, minimum=0.4) == dict_store.top("q", k=5, minimum=0.4)
        assert store.top("isolated", k=3) == []
        assert store.top("unknown", k=3) == []
        assert store.top("q", k=0) == []

    def test_tie_break_is_deterministic_at_the_partition_boundary(self):
        # Five equal scores, k=2: the partition must keep all boundary ties
        # so the repr tie-break picks the lexicographically smallest names.
        store = make_store(
            {("q", name): 0.5 for name in ("e", "d", "c", "b", "a")},
            ["q", "a", "b", "c", "d", "e"],
        )
        assert store.top("q", k=2) == [("a", 0.5), ("b", 0.5)]

    def test_minimum_is_exclusive(self):
        store = make_store({("q", "x"): 0.5}, ["q", "x"])
        assert store.top("q", k=5, minimum=0.5) == []


class TestPairs:
    def test_each_unordered_pair_exactly_once(self, store):
        pairs = list(store.pairs())
        assert len(pairs) == 4
        normalized = {frozenset((a, b)) for a, b, _ in pairs}
        assert len(normalized) == 4

    def test_values_match_lookups(self, store):
        for first, second, value in store.pairs():
            assert store.score(first, second) == pytest.approx(value)


class TestMaxDifference:
    def test_array_vs_array_same_index(self, store):
        clone = store.copy()
        assert store.max_difference(clone) == 0.0

    def test_array_vs_dict_both_directions(self, store, dict_store):
        assert store.max_difference(dict_store) == 0.0
        assert dict_store.max_difference(store) == 0.0
        dict_store.set("q", "y", 0.6)
        assert store.max_difference(dict_store) == pytest.approx(0.2)
        assert dict_store.max_difference(store) == pytest.approx(0.2)

    def test_pair_stored_on_one_side_only(self, store):
        other = SimilarityScores()
        other.set("new", "pair", 0.3)
        assert store.max_difference(other) == pytest.approx(0.8)


class TestConstruction:
    def test_from_dense_threshold_is_exclusive(self):
        matrix = np.array([[0.0, 0.5], [0.5, 0.0]])
        kept = ArraySimilarityScores.from_dense(matrix, ["a", "b"], min_score=0.4)
        dropped = ArraySimilarityScores.from_dense(matrix, ["a", "b"], min_score=0.5)
        assert len(kept) == 1 and len(dropped) == 0

    def test_from_dense_ignores_diagonal(self):
        matrix = np.array([[1.0, 0.2], [0.2, 1.0]])
        store = ArraySimilarityScores.from_dense(matrix, ["a", "b"])
        assert len(store) == 1
        assert store.score("a", "a") == 1.0

    def test_from_sparse_symmetrizes_upper_triangle(self):
        matrix = sparse.csr_matrix(np.array([[0.0, 0.4], [0.3, 0.0]]))
        store = ArraySimilarityScores.from_sparse(matrix, ["a", "b"])
        assert store.score("a", "b") == pytest.approx(0.4)
        assert store.score("b", "a") == pytest.approx(0.4)

    def test_empty_store(self):
        store = ArraySimilarityScores.from_dense(np.zeros((0, 0)), [])
        assert len(store) == 0
        assert list(store.pairs()) == []
        assert store.max_difference(SimilarityScores()) == 0.0

    def test_shape_index_mismatch_rejected(self):
        with pytest.raises(ValueError):
            ArraySimilarityScores(sparse.csr_matrix((2, 2)), ["only-one"])

    def test_stitched_is_block_diagonal(self):
        first = make_store({("a", "b"): 0.5}, ["a", "b"])
        second = make_store({("c", "d"): 0.3}, ["c", "d"])
        combined = ArraySimilarityScores.stitched([first, second])
        assert combined.score("a", "b") == pytest.approx(0.5)
        assert combined.score("c", "d") == pytest.approx(0.3)
        assert combined.score("a", "c") == 0.0
        assert len(combined) == 2

    def test_stitched_of_nothing_is_empty(self):
        assert len(ArraySimilarityScores.stitched([])) == 0


def explicit_zero_matrix():
    """A symmetric CSR matrix storing one real pair and one *explicit* zero."""
    rows = [0, 1, 0, 2]
    columns = [1, 0, 2, 0]
    data = [0.5, 0.5, 0.0, 0.0]
    return sparse.csr_matrix((data, (rows, columns)), shape=(3, 3))


class TestExplicitZeros:
    """Regression: nonzero_count boxed every pair through a Python loop.

    Explicit zeros are now eliminated once at construction, so every count
    (``len``, ``nonzero_count``) is a pure ``nnz`` read -- including through
    the ``stitched`` and ``copy`` paths, which construct new stores.
    """

    def test_constructor_eliminates_explicit_zeros(self):
        store = ArraySimilarityScores(explicit_zero_matrix(), ["a", "b", "c"])
        assert store.nonzero_count() == 1
        assert len(store) == 1
        assert list(store.pairs()) == [("a", "b", 0.5)]
        assert store.score("a", "c") == 0.0

    def test_stitched_drops_explicit_zeros(self):
        first = ArraySimilarityScores(explicit_zero_matrix(), ["a", "b", "c"])
        second = make_store({("d", "e"): 0.3}, ["d", "e"])
        combined = ArraySimilarityScores.stitched([first, second])
        assert combined.nonzero_count() == 2
        assert len(combined) == 2

    def test_copy_preserves_counts(self):
        store = ArraySimilarityScores(explicit_zero_matrix(), ["a", "b", "c"])
        clone = store.copy()
        assert clone.nonzero_count() == store.nonzero_count() == 1
        assert clone.max_difference(store) == 0.0

    def test_nonzero_count_matches_dict_store_semantics(self, store, dict_store):
        assert store.nonzero_count() == dict_store.nonzero_count()


class TestDictArrayConversion:
    """SimilarityScores.to_array / from_array (the snapshot bridge)."""

    def test_to_array_preserves_every_read(self, dict_store):
        array = dict_store.to_array()
        assert array.max_difference(dict_store) == 0.0
        assert array.top("q", k=3) == dict_store.top("q", k=3)
        assert array.nonzero_count() == dict_store.nonzero_count()
        assert sorted(array.nodes(), key=repr) == sorted(dict_store.nodes(), key=repr)

    def test_round_trip_is_lossless(self, dict_store):
        round_tripped = SimilarityScores.from_array(dict_store.to_array())
        assert round_tripped.max_difference(dict_store) == 0.0
        assert len(round_tripped) == len(dict_store)
        assert round_tripped.neighbors("q") == dict_store.neighbors("q")

    def test_empty_conversion(self):
        array = SimilarityScores().to_array()
        assert len(array) == 0
        assert len(SimilarityScores.from_array(array)) == 0
