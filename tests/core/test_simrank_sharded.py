"""Unit tests of the component-sharded SimRank backend."""

import pytest

from repro.core.config import SimrankConfig
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sharded import ShardedSimrank
from repro.graph.click_graph import ClickGraph
from repro.synth.scenarios import multi_component_graph


@pytest.fixture
def four_component_graph() -> ClickGraph:
    return multi_component_graph(num_components=4, seed=17)


class TestSharding:
    def test_one_shard_per_edge_carrying_component(self, four_component_graph):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        assert method.num_shards == 4

    def test_shards_sorted_largest_first(self, four_component_graph):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        sizes = method.shard_sizes()
        assert sizes == sorted(sizes, reverse=True)

    def test_isolated_nodes_form_no_shards(self):
        graph = multi_component_graph(num_components=2, with_isolates=True, seed=7)
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(graph)
        assert method.num_shards == 2
        assert method.shard_of("c0_isolated_query") is None
        assert method.query_similarity("c0_isolated_query", "c0_isolated_query") == 1.0
        assert method.query_similarity("c0_isolated_query", "c0_q0") == 0.0

    def test_shard_of_maps_queries_to_their_component(self, four_component_graph):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        for k in range(4):
            shard_ids = {method.shard_of(f"c{k}_q{i}") for i in range(4)}
            assert len(shard_ids) == 1
        all_ids = {method.shard_of(f"c{k}_q0") for k in range(4)}
        assert len(all_ids) == 4

    def test_empty_graph(self):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(ClickGraph())
        assert method.num_shards == 0
        assert len(method.similarities()) == 0


class TestScores:
    @pytest.mark.parametrize("mode", ["simrank", "evidence", "weighted"])
    def test_matches_dense_engine(self, four_component_graph, mode):
        config = SimrankConfig(iterations=7, zero_evidence_floor=0.1)
        dense = MatrixSimrank(config, mode=mode).fit(four_component_graph)
        sharded = ShardedSimrank(config, mode=mode).fit(four_component_graph)
        assert dense.similarities().max_difference(sharded.similarities()) < 1e-12

    def test_cross_component_pairs_score_zero(self, four_component_graph):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        assert method.query_similarity("c0_q0", "c1_q0") == 0.0
        assert method.ad_similarity("c0_a0", "c1_a0") == 0.0

    def test_ad_similarity_within_component(self, four_component_graph):
        config = SimrankConfig(iterations=7)
        dense = MatrixSimrank(config).fit(four_component_graph)
        sharded = ShardedSimrank(config).fit(four_component_graph)
        assert sharded.ad_similarity("c0_a0", "c0_a1") == pytest.approx(
            dense.ad_similarity("c0_a0", "c0_a1"), abs=1e-12
        )
        assert sharded.ad_similarity("c0_a0", "c0_a0") == 1.0
        assert sharded.ad_similarity("c0_a0", "unknown") == 0.0


class TestWorkerPool:
    @pytest.mark.parametrize("n_jobs", [2, -1])
    def test_parallel_fit_matches_serial(self, four_component_graph, n_jobs):
        config = SimrankConfig(iterations=5)
        serial = ShardedSimrank(config, mode="weighted", n_jobs=1).fit(
            four_component_graph
        )
        parallel = ShardedSimrank(config, mode="weighted", n_jobs=n_jobs).fit(
            four_component_graph
        )
        assert serial.similarities().max_difference(parallel.similarities()) == 0.0

    @pytest.mark.parametrize("n_jobs", [0, -2])
    def test_invalid_n_jobs_rejected(self, n_jobs):
        with pytest.raises(ValueError):
            ShardedSimrank(n_jobs=n_jobs)


class TestValidation:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ShardedSimrank(mode="bogus")

    def test_reported_name_follows_mode(self):
        assert ShardedSimrank(mode="simrank").name == "simrank"
        assert ShardedSimrank(mode="evidence").name == "evidence_simrank"
        assert ShardedSimrank(mode="weighted").name == "weighted_simrank"

    def test_requires_fit_before_access(self):
        method = ShardedSimrank()
        with pytest.raises(RuntimeError):
            method.similarities()
        with pytest.raises(RuntimeError):
            method.num_shards
