"""Unit tests of the component-sharded SimRank backend."""

import pytest

from repro.core.config import SimrankConfig
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sharded import ShardedSimrank
from repro.graph.click_graph import ClickGraph
from repro.synth.scenarios import multi_component_graph


@pytest.fixture
def four_component_graph() -> ClickGraph:
    return multi_component_graph(num_components=4, seed=17)


class TestSharding:
    def test_one_shard_per_edge_carrying_component(self, four_component_graph):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        assert method.num_shards == 4

    def test_shards_sorted_largest_first(self, four_component_graph):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        sizes = method.shard_sizes()
        assert sizes == sorted(sizes, reverse=True)

    def test_isolated_nodes_form_no_shards(self):
        graph = multi_component_graph(num_components=2, with_isolates=True, seed=7)
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(graph)
        assert method.num_shards == 2
        assert method.shard_of("c0_isolated_query") is None
        assert method.query_similarity("c0_isolated_query", "c0_isolated_query") == 1.0
        assert method.query_similarity("c0_isolated_query", "c0_q0") == 0.0

    def test_shard_of_maps_queries_to_their_component(self, four_component_graph):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        for k in range(4):
            shard_ids = {method.shard_of(f"c{k}_q{i}") for i in range(4)}
            assert len(shard_ids) == 1
        all_ids = {method.shard_of(f"c{k}_q0") for k in range(4)}
        assert len(all_ids) == 4

    def test_empty_graph(self):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(ClickGraph())
        assert method.num_shards == 0
        assert len(method.similarities()) == 0


class TestScores:
    @pytest.mark.parametrize("mode", ["simrank", "evidence", "weighted"])
    def test_matches_dense_engine(self, four_component_graph, mode):
        config = SimrankConfig(iterations=7, zero_evidence_floor=0.1)
        dense = MatrixSimrank(config, mode=mode).fit(four_component_graph)
        sharded = ShardedSimrank(config, mode=mode).fit(four_component_graph)
        assert dense.similarities().max_difference(sharded.similarities()) < 1e-12

    def test_cross_component_pairs_score_zero(self, four_component_graph):
        method = ShardedSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        assert method.query_similarity("c0_q0", "c1_q0") == 0.0
        assert method.ad_similarity("c0_a0", "c1_a0") == 0.0

    def test_ad_similarity_within_component(self, four_component_graph):
        config = SimrankConfig(iterations=7)
        dense = MatrixSimrank(config).fit(four_component_graph)
        sharded = ShardedSimrank(config).fit(four_component_graph)
        assert sharded.ad_similarity("c0_a0", "c0_a1") == pytest.approx(
            dense.ad_similarity("c0_a0", "c0_a1"), abs=1e-12
        )
        assert sharded.ad_similarity("c0_a0", "c0_a0") == 1.0
        assert sharded.ad_similarity("c0_a0", "unknown") == 0.0


class TestWorkerPool:
    @pytest.mark.parametrize("n_jobs", [2, -1])
    def test_parallel_fit_matches_serial(self, four_component_graph, n_jobs):
        config = SimrankConfig(iterations=5)
        serial = ShardedSimrank(config, mode="weighted", n_jobs=1).fit(
            four_component_graph
        )
        parallel = ShardedSimrank(config, mode="weighted", n_jobs=n_jobs).fit(
            four_component_graph
        )
        assert serial.similarities().max_difference(parallel.similarities()) == 0.0

    @pytest.mark.parametrize("n_jobs", [0, -2])
    def test_invalid_n_jobs_rejected(self, n_jobs):
        with pytest.raises(ValueError):
            ShardedSimrank(n_jobs=n_jobs)


class TestValidation:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            ShardedSimrank(mode="bogus")

    def test_reported_name_follows_mode(self):
        assert ShardedSimrank(mode="simrank").name == "simrank"
        assert ShardedSimrank(mode="evidence").name == "evidence_simrank"
        assert ShardedSimrank(mode="weighted").name == "weighted_simrank"

    def test_requires_fit_before_access(self):
        method = ShardedSimrank()
        with pytest.raises(RuntimeError):
            method.similarities()
        with pytest.raises(RuntimeError):
            method.num_shards


class TestAffinityAwareSizing:
    def test_n_jobs_minus_one_respects_cpu_affinity(self, monkeypatch):
        """Regression: -1 used os.cpu_count() and oversubscribed containers."""
        from repro.core import parallel

        monkeypatch.setattr(
            parallel.os, "sched_getaffinity", lambda pid: {0, 1}, raising=False
        )
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 64)
        method = ShardedSimrank(SimrankConfig(iterations=5), n_jobs=-1)
        assert method._resolve_jobs(num_shards=8) == 2

    def test_explicit_n_jobs_is_capped_by_shard_count(self):
        method = ShardedSimrank(SimrankConfig(iterations=5), n_jobs=16)
        assert method._resolve_jobs(num_shards=3) == 3


class _FailingFitInjector:
    """Wraps ``_build_inner`` so chosen shards raise mid-fit; counts starts."""

    def __init__(self, fail_on: int, delay: float = 0.0):
        self.fail_on = fail_on
        self.delay = delay
        self.builds = 0
        self.fit_starts = []

    def install(self, monkeypatch):
        injector = self
        original = ShardedSimrank._build_inner

        def build(method_self, subgraph):
            inner = original(method_self, subgraph)
            build_id = injector.builds
            injector.builds += 1
            inner_fit = inner.fit

            def wrapped_fit(graph, initial_scores=None):
                injector.fit_starts.append(build_id)
                if build_id == injector.fail_on:
                    raise RuntimeError("injected shard failure")
                if injector.delay:
                    import time

                    time.sleep(injector.delay)
                return inner_fit(graph, initial_scores=initial_scores)

            inner.fit = wrapped_fit
            return inner

        monkeypatch.setattr(ShardedSimrank, "_build_inner", build)


class TestFailedShardCleanup:
    """Regression: a failing shard fit must not leave the method half-fitted."""

    def test_first_fit_failure_leaves_method_cleanly_unfitted(
        self, four_component_graph, monkeypatch
    ):
        _FailingFitInjector(fail_on=0).install(monkeypatch)
        method = ShardedSimrank(SimrankConfig(iterations=5), n_jobs=2, executor="thread")
        with pytest.raises(RuntimeError, match="injected shard failure"):
            method.fit(four_component_graph)
        assert not method.is_fitted
        assert method.reused_shards is None
        assert method.refitted_shards is None
        assert method._shard_graphs == []
        assert method._shard_methods == []
        with pytest.raises(RuntimeError):
            method.similarities()
        with pytest.raises(RuntimeError):
            method.num_shards

    def test_failed_refit_keeps_serving_the_previous_fit(
        self, four_component_graph, monkeypatch
    ):
        config = SimrankConfig(iterations=5)
        method = ShardedSimrank(config, n_jobs=2, executor="thread").fit(
            four_component_graph
        )
        before = method.similarities()
        num_shards_before = method.num_shards
        _FailingFitInjector(fail_on=0).install(monkeypatch)
        with pytest.raises(RuntimeError, match="injected shard failure"):
            method.fit(multi_component_graph(num_components=4, seed=99))
        assert method.is_fitted
        assert method.num_shards == num_shards_before
        assert method.similarities().max_difference(before) == 0.0

    def test_serial_path_cleans_up_too(self, four_component_graph, monkeypatch):
        _FailingFitInjector(fail_on=1).install(monkeypatch)
        method = ShardedSimrank(SimrankConfig(iterations=5), n_jobs=1)
        with pytest.raises(RuntimeError, match="injected shard failure"):
            method.fit(four_component_graph)
        assert not method.is_fitted

    def test_failure_cancels_outstanding_shard_fits(self, monkeypatch):
        """Queued sibling fits are cancelled once one shard fails."""
        graph = multi_component_graph(num_components=8, seed=23)
        injector = _FailingFitInjector(fail_on=0, delay=0.2)
        injector.install(monkeypatch)
        method = ShardedSimrank(SimrankConfig(iterations=5), n_jobs=2, executor="thread")
        with pytest.raises(RuntimeError, match="injected shard failure"):
            method.fit(graph)
        # The failing shard fails instantly; with 2 workers at most a couple
        # of siblings can have started before the cancellation lands.
        assert len(injector.fit_starts) < 8


def _exploding_batch(batch):
    raise RuntimeError("injected worker failure")


class TestProcessExecutor:
    @pytest.mark.timeout(120)
    def test_process_fit_matches_serial(self, four_component_graph):
        config = SimrankConfig(iterations=5)
        serial = ShardedSimrank(config, mode="weighted", n_jobs=1).fit(
            four_component_graph
        )
        process = ShardedSimrank(
            config, mode="weighted", n_jobs=2, executor="process"
        ).fit(four_component_graph)
        assert serial.similarities().max_difference(process.similarities()) == 0.0
        assert process.ad_similarity("c0_a0", "c0_a1") == pytest.approx(
            serial.ad_similarity("c0_a0", "c0_a1"), abs=1e-12
        )

    @pytest.mark.timeout(120)
    def test_process_worker_error_propagates_and_cleans_up(self, monkeypatch):
        graph = multi_component_graph(num_components=3, seed=31)
        # Sabotage the worker function: every batch raises in the child.  The
        # replacement must be module-level (picklable by reference) -- a
        # test-local closure cannot cross the process boundary.
        import repro.core.simrank_sharded as sharded_module

        monkeypatch.setattr(sharded_module, "_fit_shard_batch", _exploding_batch)
        method = ShardedSimrank(SimrankConfig(iterations=5), n_jobs=2, executor="process")
        with pytest.raises(RuntimeError, match="injected worker failure"):
            method.fit(graph)
        assert not method.is_fitted

    def test_invalid_executor_rejected(self):
        with pytest.raises(ValueError):
            ShardedSimrank(executor="fibers")


class TestAutoInnerBackend:
    def test_small_shards_all_fit_dense(self, four_component_graph):
        method = ShardedSimrank(
            SimrankConfig(iterations=5), inner_backend="auto"
        ).fit(four_component_graph)
        assert method.shard_backends() == ["matrix"] * method.num_shards
