"""Unit tests of the shared worker-pool sizing and chunking helpers."""

import pytest

from repro.core import parallel
from repro.core.parallel import (
    PROCESS_WORK_THRESHOLD,
    available_cpu_count,
    chunk_balanced,
    pick_executor,
    resolve_worker_count,
)


class TestAvailableCpuCount:
    def test_prefers_affinity_mask_over_cpu_count(self, monkeypatch):
        """The cgroup/affinity restriction must win over the machine total."""
        monkeypatch.setattr(parallel.os, "sched_getaffinity", lambda pid: {0, 3}, raising=False)
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 64)
        assert available_cpu_count() == 2

    def test_falls_back_to_cpu_count_without_affinity(self, monkeypatch):
        monkeypatch.delattr(parallel.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 6)
        assert available_cpu_count() == 6

    def test_never_below_one(self, monkeypatch):
        monkeypatch.delattr(parallel.os, "sched_getaffinity", raising=False)
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: None)
        assert available_cpu_count() == 1

    def test_matches_current_process_affinity(self):
        assert available_cpu_count() >= 1


class TestResolveWorkerCount:
    def test_positive_request_honoured_up_to_task_count(self):
        assert resolve_worker_count(3, num_tasks=10) == 3
        assert resolve_worker_count(10, num_tasks=3) == 3

    def test_minus_one_sizes_from_affinity(self, monkeypatch):
        """Regression: n_jobs=-1 used os.cpu_count() and oversubscribed."""
        monkeypatch.setattr(parallel.os, "sched_getaffinity", lambda pid: {0, 1}, raising=False)
        monkeypatch.setattr(parallel.os, "cpu_count", lambda: 128)
        assert resolve_worker_count(-1, num_tasks=50) == 2

    def test_never_below_one(self):
        assert resolve_worker_count(4, num_tasks=0) == 1

    @pytest.mark.parametrize("n_jobs", [0, -2, -100])
    def test_invalid_n_jobs_rejected(self, n_jobs):
        with pytest.raises(ValueError):
            resolve_worker_count(n_jobs, num_tasks=4)


class TestChunkBalanced:
    def test_partitions_every_index_exactly_once(self):
        costs = [5.0, 1.0, 3.0, 2.0, 4.0, 6.0]
        chunks = chunk_balanced(costs, 3)
        flattened = sorted(index for chunk in chunks for index in chunk)
        assert flattened == list(range(len(costs)))
        assert len(chunks) == 3

    def test_balances_loads_greedily(self):
        """One huge task must not share a batch with everything else."""
        costs = [100.0, 1.0, 1.0, 1.0]
        chunks = chunk_balanced(costs, 2)
        loads = sorted(sum(costs[i] for i in chunk) for chunk in chunks)
        assert loads == [3.0, 100.0]

    def test_more_chunks_than_tasks_drops_empties(self):
        chunks = chunk_balanced([1.0, 2.0], 8)
        assert len(chunks) == 2
        assert sorted(index for chunk in chunks for index in chunk) == [0, 1]

    def test_empty_costs(self):
        assert chunk_balanced([], 4) == []

    def test_invalid_chunk_count(self):
        with pytest.raises(ValueError):
            chunk_balanced([1.0], 0)


class TestPickExecutor:
    def test_threads_for_single_worker_or_single_task(self):
        assert pick_executor([10_000, 10_000], workers=1) == "thread"
        assert pick_executor([10_000], workers=4) == "thread"

    def test_threads_below_work_threshold(self):
        assert pick_executor([10, 20, 30], workers=4) == "thread"

    def test_processes_once_work_amortises_the_overhead(self):
        big = int(PROCESS_WORK_THRESHOLD**0.5) + 1
        assert pick_executor([big, big], workers=4) == "process"
