"""Tests for the text-based and hybrid similarity extension (paper Section 11)."""

import pytest

from repro.core.config import SimrankConfig
from repro.core.hybrid import HybridSimilarity, TextSimilarity, text_similarity
from repro.core.simrank_matrix import MatrixSimrank
from repro.graph.click_graph import ClickGraph


class TestTextSimilarity:
    def test_pairwise_function(self):
        assert text_similarity("digital camera", "camera") == pytest.approx(0.5)
        assert text_similarity("digital cameras", "digital camera") == pytest.approx(1.0)
        assert text_similarity("flower", "laptop") == 0.0
        assert text_similarity("", "") == 0.0

    def test_method_over_graph(self, fig3_graph):
        method = TextSimilarity().fit(fig3_graph)
        assert method.query_similarity("camera", "digital camera") == pytest.approx(0.5)
        # "pc" and "tv" share no token, so text similarity cannot relate them.
        assert method.query_similarity("pc", "tv") == 0.0
        assert method.query_similarity("camera", "camera") == 1.0

    def test_scores_are_bounded(self, tiny_workload):
        method = TextSimilarity().fit(tiny_workload.click_graph)
        for _, _, value in method.similarities().pairs():
            assert 0.0 < value <= 1.0


class TestHybridSimilarity:
    @pytest.fixture
    def graph(self):
        graph = ClickGraph()
        graph.add_edge("camera", "hp.com", impressions=100, clicks=10)
        graph.add_edge("digital camera", "hp.com", impressions=100, clicks=10)
        graph.add_edge("pc", "dell.com", impressions=100, clicks=10)
        graph.add_edge("cheap pc", "dell.com", impressions=100, clicks=10)
        # "camera store" has no click edges shared with "camera".
        graph.add_edge("camera store", "localshop.com", impressions=50, clicks=5)
        return graph

    def test_alpha_extremes(self, graph):
        config = SimrankConfig(iterations=5)
        graph_only = HybridSimilarity(MatrixSimrank(config), alpha=1.0).fit(graph)
        text_only = HybridSimilarity(MatrixSimrank(config), alpha=0.0).fit(graph)
        pure_graph = MatrixSimrank(config).fit(graph)
        assert graph_only.query_similarity("camera", "digital camera") == pytest.approx(
            pure_graph.query_similarity("camera", "digital camera")
        )
        assert text_only.query_similarity("camera", "camera store") == pytest.approx(0.5)

    def test_hybrid_covers_pairs_from_both_components(self, graph):
        hybrid = HybridSimilarity(MatrixSimrank(SimrankConfig(iterations=5)), alpha=0.6).fit(graph)
        # Click-only relationship (no shared tokens).
        assert hybrid.query_similarity("pc", "cheap pc") > 0.0
        # Text-only relationship (no shared ads).
        assert hybrid.query_similarity("camera", "camera store") > 0.0
        graph_part, text_part = hybrid.component_scores("camera", "camera store")
        assert graph_part == 0.0 and text_part > 0.0

    def test_hybrid_is_linear_combination(self, graph):
        config = SimrankConfig(iterations=5)
        alpha = 0.3
        hybrid = HybridSimilarity(MatrixSimrank(config), alpha=alpha).fit(graph)
        pure_graph = MatrixSimrank(config).fit(graph)
        text = TextSimilarity().fit(graph)
        for first, second in [("camera", "digital camera"), ("pc", "cheap pc")]:
            expected = alpha * pure_graph.query_similarity(first, second) + (1 - alpha) * (
                text.query_similarity(first, second)
            )
            assert hybrid.query_similarity(first, second) == pytest.approx(expected)

    def test_warm_start_refit_does_not_serve_stale_graph_scores(self, graph):
        """An in-place mutated graph + seeded refit must refit the inner method.

        This is the RewriteEngine.refresh pattern: the bound graph object is
        mutated in place and the method refit with ``initial_scores``; the
        identity-based reuse of a pre-fitted inner method must not keep the
        pre-mutation graph scores alive.
        """
        config = SimrankConfig(iterations=5)
        hybrid = HybridSimilarity(MatrixSimrank(config), alpha=1.0).fit(graph)
        before = hybrid.query_similarity("camera", "digital camera")

        graph.remove_edge("digital camera", "hp.com")  # in place, like refresh
        hybrid.fit(graph, initial_scores=hybrid.similarities())
        after = hybrid.query_similarity("camera", "digital camera")
        fresh = MatrixSimrank(config).fit(graph)
        assert after == pytest.approx(
            fresh.query_similarity("camera", "digital camera")
        )
        assert after != pytest.approx(before)

    def test_plain_refit_after_in_place_mutation_is_fresh_too(self, graph):
        """The unseeded path must refit the inner method as well."""
        config = SimrankConfig(iterations=5)
        hybrid = HybridSimilarity(MatrixSimrank(config), alpha=1.0).fit(graph)
        assert hybrid.query_similarity("camera", "digital camera") > 0.0
        graph.remove_edge("digital camera", "hp.com")
        hybrid.fit(graph)  # no seed: still must not serve stale inner scores
        assert hybrid.query_similarity("camera", "digital camera") == 0.0

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            HybridSimilarity(MatrixSimrank(SimrankConfig(iterations=3)), alpha=1.5)

    def test_name_mentions_components(self):
        hybrid = HybridSimilarity(MatrixSimrank(SimrankConfig(iterations=3), mode="weighted"), alpha=0.5)
        assert "weighted_simrank" in hybrid.name
