"""Unit tests of the ``backend="auto"`` planner and its delegating method."""

import pytest

from repro.core.config import SimrankConfig
from repro.core.planner import (
    DENSE_DENSITY_CEILING,
    SPARSE_NODE_THRESHOLD,
    AutoSimrank,
    PlanReport,
    choose_component_backend,
    plan_fit,
    profile_graph,
)
from repro.core.simrank_matrix import MatrixSimrank
from repro.graph.click_graph import ClickGraph
from repro.synth.scenarios import figure3_graph, multi_component_graph


def _add_chain(graph: ClickGraph, pairs: int, prefix: str = "") -> None:
    """One connected zig-zag component with ``2 * pairs`` nodes."""
    for i in range(pairs):
        graph.add_edge(f"{prefix}q{i}", f"{prefix}a{i}", impressions=4, clicks=2)
        if i + 1 < pairs:
            graph.add_edge(f"{prefix}q{i + 1}", f"{prefix}a{i}", impressions=4, clicks=1)


class TestChooseComponentBackend:
    def test_small_components_stay_dense(self):
        assert choose_component_backend(SPARSE_NODE_THRESHOLD - 1, edges=400) == "matrix"

    def test_large_sparse_components_go_sparse(self):
        assert choose_component_backend(600, edges=600) == "sparse"

    def test_large_but_dense_components_stay_dense(self):
        nodes = 600
        possible = (nodes / 2) ** 2
        dense_edges = int(possible * (DENSE_DENSITY_CEILING + 0.05))
        assert choose_component_backend(nodes, edges=dense_edges) == "matrix"


class TestProfileGraph:
    def test_counts_and_component_sizes(self):
        graph = multi_component_graph(num_components=3, seed=5)
        profile = profile_graph(graph)
        assert profile.num_nodes == graph.num_nodes
        assert profile.num_edges == graph.num_edges
        assert profile.num_components == 3
        assert profile.component_sizes == tuple(sorted(profile.component_sizes, reverse=True))

    def test_isolated_nodes_are_not_components(self):
        graph = multi_component_graph(num_components=2, with_isolates=True, seed=7)
        assert profile_graph(graph).num_components == 2

    def test_empty_graph(self):
        profile = profile_graph(ClickGraph())
        assert profile.num_components == 0
        assert profile.largest_fraction == 1.0


class TestPlanFit:
    def test_single_component_plans_one_dense_fit(self):
        graph = ClickGraph()
        _add_chain(graph, pairs=10)
        plan = plan_fit(graph)
        assert plan.strategy == "single-dense"
        assert plan.shards == ()
        assert plan.workers == 1

    def test_large_single_component_plans_one_sparse_fit(self):
        graph = ClickGraph()
        _add_chain(graph, pairs=300)  # 600 nodes, one component, very sparse
        plan = plan_fit(graph)
        assert plan.strategy == "single-sparse"

    def test_dominant_component_avoids_sharding(self):
        graph = ClickGraph()
        _add_chain(graph, pairs=50, prefix="big_")  # 100 nodes
        _add_chain(graph, pairs=2, prefix="tiny_")  # 4 nodes: 96% dominance
        plan = plan_fit(graph)
        assert plan.strategy == "single-dense"
        assert "largest component" in plan.rationale

    def test_multi_component_plans_sharded_with_per_shard_backends(self):
        graph = ClickGraph()
        _add_chain(graph, pairs=300, prefix="x_")  # 600 nodes -> sparse shard
        _add_chain(graph, pairs=300, prefix="y_")  # 600 nodes -> sparse shard
        _add_chain(graph, pairs=4, prefix="z_")  # 8 nodes -> dense shard
        plan = plan_fit(graph, n_jobs=2)
        assert plan.strategy == "sharded"
        assert [shard.backend for shard in plan.shards] == ["sparse", "sparse", "matrix"]
        assert plan.shards[0].nodes == 600
        assert plan.workers == 2

    def test_explicit_executor_is_honoured(self):
        graph = multi_component_graph(num_components=4, seed=3)
        assert plan_fit(graph, n_jobs=2, executor="process").executor == "process"
        assert plan_fit(graph, n_jobs=2, executor="thread").executor == "thread"

    def test_auto_executor_picks_threads_for_tiny_shards(self):
        graph = multi_component_graph(num_components=4, seed=3)
        assert plan_fit(graph, n_jobs=2, executor="auto").executor == "thread"


class TestPlanReportSerialization:
    def test_round_trips_through_dict(self):
        graph = ClickGraph()
        _add_chain(graph, pairs=300, prefix="x_")
        _add_chain(graph, pairs=300, prefix="y_")
        plan = plan_fit(graph, n_jobs=2, executor="thread")
        assert PlanReport.from_dict(plan.to_dict()) == plan

    def test_summary_mentions_the_strategy(self):
        plan = plan_fit(figure3_graph())
        assert plan.strategy in plan.summary()


class TestAutoSimrank:
    @pytest.mark.parametrize("mode", ["simrank", "evidence", "weighted"])
    def test_scores_match_the_dense_engine(self, mode):
        graph = multi_component_graph(num_components=4, seed=17)
        config = SimrankConfig(iterations=7, zero_evidence_floor=0.1)
        dense = MatrixSimrank(config, mode=mode).fit(graph)
        auto = AutoSimrank(config, mode=mode).fit(graph)
        assert dense.similarities().max_difference(auto.similarities()) < 1e-9

    def test_plan_is_exposed_after_fit(self):
        graph = multi_component_graph(num_components=4, seed=17)
        auto = AutoSimrank(SimrankConfig(iterations=5))
        assert auto.plan is None
        auto.fit(graph)
        assert auto.plan is not None
        assert auto.plan.strategy == "sharded"
        assert auto.delegate is not None

    def test_delegate_reused_when_the_strategy_repeats(self):
        graph = multi_component_graph(num_components=4, seed=17)
        auto = AutoSimrank(SimrankConfig(iterations=5)).fit(graph)
        first_delegate = auto.delegate
        auto.fit(graph)
        assert auto.delegate is first_delegate

    def test_ad_similarity_delegates(self):
        graph = multi_component_graph(num_components=2, seed=9)
        config = SimrankConfig(iterations=5)
        auto = AutoSimrank(config).fit(graph)
        dense = MatrixSimrank(config).fit(graph)
        assert auto.ad_similarity("c0_a0", "c0_a1") == pytest.approx(
            dense.ad_similarity("c0_a0", "c0_a1"), abs=1e-9
        )

    def test_restore_clears_the_plan(self):
        graph = multi_component_graph(num_components=2, seed=9)
        auto = AutoSimrank(SimrankConfig(iterations=5)).fit(graph)
        restored = AutoSimrank(SimrankConfig(iterations=5)).restore(auto.similarities())
        assert restored.plan is None
        assert restored.delegate is None

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            AutoSimrank(mode="bogus")
        with pytest.raises(ValueError):
            AutoSimrank(n_jobs=0)
        with pytest.raises(ValueError):
            AutoSimrank(executor="fibers")
