"""Tests for the evidence functions and evidence-based SimRank (Table 4, Theorem 7.1)."""

import pytest

from repro.core.config import EvidenceKind, SimrankConfig
from repro.core.evidence import (
    ad_evidence_factors,
    common_neighbor_count,
    evidence_exponential,
    evidence_geometric,
    evidence_score,
    query_evidence_factors,
)
from repro.core.evidence_simrank import EvidenceSimrank
from repro.core.simrank import BipartiteSimrank


class TestEvidenceFunctions:
    def test_geometric_values(self):
        assert evidence_geometric(0) == 0.0
        assert evidence_geometric(1) == pytest.approx(0.5)
        assert evidence_geometric(2) == pytest.approx(0.75)
        assert evidence_geometric(3) == pytest.approx(0.875)

    def test_exponential_values(self):
        assert evidence_exponential(0) == 0.0
        assert evidence_exponential(1) == pytest.approx(0.6321, abs=1e-4)

    def test_both_are_increasing_and_bounded(self):
        for function in (evidence_geometric, evidence_exponential):
            values = [function(n) for n in range(0, 12)]
            assert values == sorted(values)
            assert all(0.0 <= value < 1.0 for value in values)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            evidence_geometric(-1)
        with pytest.raises(ValueError):
            evidence_exponential(-1)

    def test_evidence_score_dispatch(self):
        assert evidence_score(2, EvidenceKind.GEOMETRIC) == pytest.approx(0.75)
        assert evidence_score(2, EvidenceKind.EXPONENTIAL) == pytest.approx(1 - pow(2.718281828, -2), abs=1e-3)

    def test_common_neighbor_count(self, fig3_graph):
        assert common_neighbor_count(fig3_graph, "camera", "digital camera") == 2
        assert common_neighbor_count(fig3_graph, "pc", "tv") == 0
        assert common_neighbor_count(fig3_graph, "hp.com", "bestbuy.com", side="ad") == 2
        with pytest.raises(ValueError):
            common_neighbor_count(fig3_graph, "a", "b", side="wrong")

    def test_pairwise_factor_maps(self, fig3_graph):
        query_factors = query_evidence_factors(fig3_graph)
        assert query_factors[("camera", "digital camera")] == pytest.approx(0.75)
        assert ("pc", "tv") not in query_factors
        ad_factors = ad_evidence_factors(fig3_graph)
        assert ad_factors[("hp.com", "bestbuy.com")] == pytest.approx(0.75)


class TestEvidenceSimrank:
    def test_table4_iteration_trace(self, k22_graph, k12_graph, paper_config):
        """Table 4: evidence-based SimRank per-iteration scores."""
        expected_k22 = [0.3, 0.42, 0.468, 0.4872, 0.49488, 0.497952, 0.4991808]
        sim_k22 = EvidenceSimrank(paper_config, track_history=True).fit(k22_graph)
        sim_k12 = EvidenceSimrank(paper_config, track_history=True).fit(k12_graph)
        for index, expected in enumerate(expected_k22):
            assert sim_k22.query_history[index].score("camera", "digital camera") == pytest.approx(
                expected, abs=1e-9
            )
            assert sim_k12.query_history[index].score("pc", "camera") == pytest.approx(0.4)

    def test_theorem_7_1_ordering_flips_after_first_iteration(
        self, k22_graph, k12_graph, paper_config
    ):
        sim_k22 = EvidenceSimrank(paper_config, track_history=True).fit(k22_graph)
        sim_k12 = EvidenceSimrank(paper_config, track_history=True).fit(k12_graph)
        for k in range(1, paper_config.iterations):
            assert (
                sim_k22.query_history[k].score("camera", "digital camera")
                > sim_k12.query_history[k].score("pc", "camera")
            )

    def test_evidence_scales_simrank_scores(self, fig3_graph, paper_config):
        plain = BipartiteSimrank(paper_config).fit(fig3_graph)
        evidence = EvidenceSimrank(paper_config).fit(fig3_graph)
        # camera / digital camera share 2 ads -> factor 0.75.
        assert evidence.query_similarity("camera", "digital camera") == pytest.approx(
            0.75 * plain.query_similarity("camera", "digital camera")
        )
        # camera / tv share 1 ad -> factor 0.5.
        assert evidence.query_similarity("camera", "tv") == pytest.approx(
            0.5 * plain.query_similarity("camera", "tv")
        )

    def test_zero_evidence_pairs_drop_to_zero_by_default(self, fig3_graph, paper_config):
        evidence = EvidenceSimrank(paper_config).fit(fig3_graph)
        assert evidence.query_similarity("pc", "tv") == 0.0

    def test_zero_evidence_floor_keeps_structural_score(self, fig3_graph, paper_config):
        plain = BipartiteSimrank(paper_config).fit(fig3_graph)
        floored = EvidenceSimrank(paper_config, zero_evidence_floor=0.1).fit(fig3_graph)
        assert floored.query_similarity("pc", "tv") == pytest.approx(
            0.1 * plain.query_similarity("pc", "tv")
        )

    def test_floor_from_config(self, fig3_graph):
        config = SimrankConfig(iterations=7, zero_evidence_floor=0.2)
        method = EvidenceSimrank(config).fit(fig3_graph)
        assert method.query_similarity("pc", "tv") > 0.0

    def test_ad_similarity_scaled_by_evidence(self, fig3_graph, paper_config):
        plain = BipartiteSimrank(paper_config).fit(fig3_graph)
        evidence = EvidenceSimrank(paper_config).fit(fig3_graph)
        assert evidence.ad_similarity("hp.com", "bestbuy.com") == pytest.approx(
            0.75 * plain.ad_similarity("hp.com", "bestbuy.com")
        )

    def test_exponential_evidence_variant(self, k22_graph):
        config = SimrankConfig(iterations=7, evidence=EvidenceKind.EXPONENTIAL)
        method = EvidenceSimrank(config).fit(k22_graph)
        geometric = EvidenceSimrank(SimrankConfig(iterations=7)).fit(k22_graph)
        # The exponential factor for 2 common neighbours (0.865) exceeds the
        # geometric one (0.75), so the score is larger but still below 1.
        assert (
            geometric.query_similarity("camera", "digital camera")
            < method.query_similarity("camera", "digital camera")
            < 1.0
        )
