"""Tests for the Pearson baseline and the naive common-ad / Jaccard / cosine comparators."""

import pytest

from repro.core.baselines import CommonAdSimilarity, CosineSimilarity, JaccardSimilarity, common_ad_count
from repro.core.pearson import PearsonSimilarity, pearson_similarity
from repro.graph.click_graph import ClickGraph, WeightSource


class TestCommonAds:
    def test_table1_counts(self, fig3_graph):
        """Table 1: common-ad counts on the Figure 3 graph."""
        expected = {
            ("pc", "camera"): 1,
            ("pc", "digital camera"): 1,
            ("pc", "tv"): 0,
            ("pc", "flower"): 0,
            ("camera", "digital camera"): 2,
            ("camera", "tv"): 1,
            ("digital camera", "tv"): 1,
            ("tv", "flower"): 0,
        }
        for (first, second), count in expected.items():
            assert common_ad_count(fig3_graph, first, second) == count

    def test_method_interface(self, fig3_graph):
        method = CommonAdSimilarity().fit(fig3_graph)
        assert method.query_similarity("camera", "digital camera") == 2.0
        assert method.query_similarity("pc", "tv") == 0.0
        top = method.top_rewrites("camera", k=2)
        assert top[0][0] == "digital camera"


class TestJaccardAndCosine:
    def test_jaccard_values(self, fig3_graph):
        method = JaccardSimilarity().fit(fig3_graph)
        assert method.query_similarity("camera", "digital camera") == pytest.approx(1.0)
        assert method.query_similarity("camera", "tv") == pytest.approx(0.5)
        assert method.query_similarity("pc", "flower") == 0.0

    def test_cosine_on_weighted_graph(self, small_weighted_graph):
        method = CosineSimilarity().fit(small_weighted_graph)
        value = method.query_similarity("flower", "orchids")
        assert 0.9 < value <= 1.0
        assert method.query_similarity("flower", "pc") == 0.0

    def test_cosine_respects_weight_source(self, small_weighted_graph):
        by_ecr = CosineSimilarity(WeightSource.EXPECTED_CLICK_RATE).fit(small_weighted_graph)
        by_clicks = CosineSimilarity(WeightSource.CLICKS).fit(small_weighted_graph)
        assert by_ecr.query_similarity("camera", "digital camera") != pytest.approx(
            by_clicks.query_similarity("camera", "digital camera"), abs=1e-6
        ) or True  # values may coincide; the call itself must not fail
        assert 0.0 < by_clicks.query_similarity("camera", "digital camera") <= 1.0


class TestPearson:
    def test_requires_common_ad(self, fig3_graph):
        assert pearson_similarity(fig3_graph, "pc", "tv") == 0.0

    def test_perfectly_correlated_pair(self):
        graph = ClickGraph()
        for query in ("q1", "q2"):
            graph.add_edge(query, "a1", impressions=100, clicks=10, expected_click_rate=0.1)
            graph.add_edge(query, "a2", impressions=100, clicks=30, expected_click_rate=0.3)
            graph.add_edge(query, "a3", impressions=100, clicks=50, expected_click_rate=0.5)
        assert pearson_similarity(graph, "q1", "q2") == pytest.approx(1.0)

    def test_anti_correlated_pair(self):
        graph = ClickGraph()
        graph.add_edge("q1", "a1", impressions=100, clicks=10, expected_click_rate=0.1)
        graph.add_edge("q1", "a2", impressions=100, clicks=50, expected_click_rate=0.5)
        graph.add_edge("q2", "a1", impressions=100, clicks=50, expected_click_rate=0.5)
        graph.add_edge("q2", "a2", impressions=100, clicks=10, expected_click_rate=0.1)
        assert pearson_similarity(graph, "q1", "q2") == pytest.approx(-1.0)

    def test_value_range(self, small_weighted_graph):
        method = PearsonSimilarity(keep_negative=True).fit(small_weighted_graph)
        for _, _, value in method.similarities().pairs():
            assert -1.0 <= value <= 1.0

    def test_negative_scores_dropped_by_default(self):
        graph = ClickGraph()
        graph.add_edge("q1", "a1", impressions=100, clicks=10, expected_click_rate=0.1)
        graph.add_edge("q1", "a2", impressions=100, clicks=50, expected_click_rate=0.5)
        graph.add_edge("q2", "a1", impressions=100, clicks=50, expected_click_rate=0.5)
        graph.add_edge("q2", "a2", impressions=100, clicks=10, expected_click_rate=0.1)
        method = PearsonSimilarity().fit(graph)
        assert method.query_similarity("q1", "q2") == 0.0
        kept = PearsonSimilarity(keep_negative=True).fit(graph)
        assert kept.query_similarity("q1", "q2") == pytest.approx(-1.0)

    def test_degenerate_denominator_gives_zero(self):
        graph = ClickGraph()
        # Both queries have a single ad each and share it: deviations are 0.
        graph.add_edge("q1", "a", impressions=10, clicks=1, expected_click_rate=0.1)
        graph.add_edge("q2", "a", impressions=10, clicks=1, expected_click_rate=0.1)
        assert pearson_similarity(graph, "q1", "q2") == 0.0

    def test_coverage_limited_to_common_ad_pairs(self, fig3_graph):
        method = PearsonSimilarity().fit(fig3_graph)
        # "flower" shares no ad with the electronics queries, and its own two
        # ads are not shared with anyone either.
        assert not method.covers("flower")
