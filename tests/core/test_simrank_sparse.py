"""Unit tests of the sparse pruned SimRank backend."""

import pytest

from repro.core.config import SimrankConfig
from repro.core.scores_array import ArraySimilarityScores
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.simrank_sharded import ShardedSimrank
from repro.core.simrank_sparse import SparseSimrank
from repro.graph.click_graph import ClickGraph
from repro.synth.scenarios import multi_component_graph


@pytest.fixture
def four_component_graph() -> ClickGraph:
    return multi_component_graph(num_components=4, seed=17)


class TestAgreementWithDense:
    @pytest.mark.parametrize("mode", ["simrank", "evidence", "weighted"])
    @pytest.mark.parametrize("floor", [0.0, 0.1])
    def test_exact_without_truncation(self, four_component_graph, mode, floor):
        config = SimrankConfig(iterations=7, zero_evidence_floor=floor)
        dense = MatrixSimrank(config, mode=mode).fit(four_component_graph)
        sparse_engine = SparseSimrank(config, mode=mode).fit(four_component_graph)
        difference = dense.similarities().max_difference(sparse_engine.similarities())
        assert difference < 1e-12

    def test_ad_similarity_matches_dense(self, four_component_graph):
        config = SimrankConfig(iterations=7)
        dense = MatrixSimrank(config).fit(four_component_graph)
        sparse_engine = SparseSimrank(config).fit(four_component_graph)
        assert sparse_engine.ad_similarity("c0_a0", "c0_a1") == pytest.approx(
            dense.ad_similarity("c0_a0", "c0_a1"), abs=1e-12
        )
        assert sparse_engine.ad_similarity("c0_a0", "c0_a0") == 1.0
        assert sparse_engine.ad_similarity("c0_a0", "unknown") == 0.0

    def test_serving_top_matches_dense(self, four_component_graph):
        config = SimrankConfig(iterations=7)
        dense = MatrixSimrank(config, mode="weighted").fit(four_component_graph)
        sparse_engine = SparseSimrank(config, mode="weighted").fit(four_component_graph)
        for query in sorted(four_component_graph.queries(), key=repr):
            dense_top = dense.top_rewrites(query, k=5)
            sparse_top = sparse_engine.top_rewrites(query, k=5)
            assert [node for node, _ in dense_top] == [node for node, _ in sparse_top]
            for (_, a), (_, b) in zip(dense_top, sparse_top):
                assert a == pytest.approx(b, abs=1e-12)


class TestPruning:
    def test_truncation_drops_small_scores_but_stays_close(self, four_component_graph):
        config = SimrankConfig(iterations=7)
        exact = SparseSimrank(config, mode="weighted").fit(four_component_graph)
        pruned = SparseSimrank(config, mode="weighted", min_score=1e-3).fit(
            four_component_graph
        )
        assert len(pruned.similarities()) <= len(exact.similarities())
        # Sound pruning: dropped mass is bounded by the epsilon cascade
        # (min_score * c / (1 - c) per endpoint), far below serving scale.
        assert exact.similarities().max_difference(pruned.similarities()) < 1e-2
        for _, _, value in pruned.similarities().pairs():
            assert value >= 1e-3

    def test_prune_knobs_default_from_config(self, four_component_graph):
        config = SimrankConfig(iterations=5, prune_threshold=1e-3, prune_top_k=2)
        engine = SparseSimrank(config)
        assert engine.min_score == 1e-3
        assert engine.top_k == 2
        explicit = SparseSimrank(config, min_score=0.0, top_k=0)
        assert explicit.min_score == 0.0 and explicit.top_k is None

    def test_top_k_caps_row_width_and_keeps_symmetry(self, four_component_graph):
        config = SimrankConfig(iterations=7)
        capped = SparseSimrank(config, mode="weighted", top_k=2).fit(
            four_component_graph
        )
        scores = capped.similarities()
        seen = {}
        for first, second, value in scores.pairs():
            assert scores.score(second, first) == pytest.approx(value)
            seen.setdefault(first, 0)
            seen.setdefault(second, 0)
            seen[first] += 1
            seen[second] += 1
        # Either-endpoint retention: a row holds its own top 2 plus entries
        # other rows kept, so the cap is loose -- but far below the exact width.
        exact_widths = {}
        for first, second, _ in SparseSimrank(config, mode="weighted").fit(
            four_component_graph
        ).similarities().pairs():
            exact_widths[first] = exact_widths.get(first, 0) + 1
            exact_widths[second] = exact_widths.get(second, 0) + 1
        assert sum(seen.values()) < sum(exact_widths.values())

    def test_top_k_preserves_the_largest_scores(self, four_component_graph):
        config = SimrankConfig(iterations=7)
        exact = SparseSimrank(config, mode="weighted").fit(four_component_graph)
        capped = SparseSimrank(config, mode="weighted", top_k=3).fit(
            four_component_graph
        )
        for query in sorted(four_component_graph.queries(), key=repr):
            exact_top = exact.top_rewrites(query, k=3)
            capped_top = capped.top_rewrites(query, k=3)
            assert [node for node, _ in capped_top] == [node for node, _ in exact_top]

    def test_invalid_knobs_rejected(self):
        with pytest.raises(ValueError):
            SparseSimrank(min_score=1.0)
        with pytest.raises(ValueError):
            SparseSimrank(min_score=-0.1)
        with pytest.raises(ValueError):
            SparseSimrank(top_k=-1)
        with pytest.raises(ValueError):
            SimrankConfig(prune_threshold=1.0)
        with pytest.raises(ValueError):
            SimrankConfig(prune_top_k=-1)


class TestEngineBehaviour:
    def test_mode_validation(self):
        with pytest.raises(ValueError):
            SparseSimrank(mode="bogus")

    def test_reported_name_follows_mode(self):
        assert SparseSimrank(mode="simrank").name == "simrank"
        assert SparseSimrank(mode="evidence").name == "evidence_simrank"
        assert SparseSimrank(mode="weighted").name == "weighted_simrank"

    def test_empty_graph(self):
        method = SparseSimrank(SimrankConfig(iterations=5)).fit(ClickGraph())
        assert len(method.similarities()) == 0
        assert method.iterations_run == 0

    def test_isolated_nodes_score_like_dense(self):
        graph = multi_component_graph(num_components=2, with_isolates=True, seed=7)
        method = SparseSimrank(SimrankConfig(iterations=5)).fit(graph)
        assert method.query_similarity("c0_isolated_query", "c0_isolated_query") == 1.0
        assert method.query_similarity("c0_isolated_query", "c0_q0") == 0.0

    def test_returns_array_backed_store_and_sparse_matrix(self, four_component_graph):
        method = SparseSimrank(SimrankConfig(iterations=5)).fit(four_component_graph)
        assert isinstance(method.similarities(), ArraySimilarityScores)
        matrix, index = method.query_matrix()
        assert matrix.shape == (len(index), len(index))

    def test_tolerance_early_exit(self, four_component_graph):
        full = SparseSimrank(SimrankConfig(c1=0.6, c2=0.6, iterations=30)).fit(
            four_component_graph
        )
        early = SparseSimrank(
            SimrankConfig(c1=0.6, c2=0.6, iterations=30, tolerance=1e-3)
        ).fit(four_component_graph)
        assert full.iterations_run == 30
        assert early.iterations_run < 30
        assert full.similarities().max_difference(early.similarities()) < 1e-2


class TestShardedComposition:
    """``ShardedSimrank(inner_backend="sparse")`` composes the two backends."""

    @pytest.mark.parametrize("mode", ["simrank", "evidence", "weighted"])
    def test_matches_dense_per_component(self, four_component_graph, mode):
        config = SimrankConfig(iterations=7, zero_evidence_floor=0.1)
        dense = MatrixSimrank(config, mode=mode).fit(four_component_graph)
        composed = ShardedSimrank(config, mode=mode, inner_backend="sparse").fit(
            four_component_graph
        )
        assert composed.num_shards == 4
        assert dense.similarities().max_difference(composed.similarities()) < 1e-9

    def test_invalid_inner_backend_rejected(self):
        with pytest.raises(ValueError):
            ShardedSimrank(inner_backend="gpu")

    def test_config_prune_threshold_reaches_inner_engines(self, four_component_graph):
        config = SimrankConfig(iterations=7, prune_threshold=1e-3)
        composed = ShardedSimrank(config, mode="weighted", inner_backend="sparse").fit(
            four_component_graph
        )
        for _, _, value in composed.similarities().pairs():
            assert value >= 1e-3
        exact = ShardedSimrank(
            SimrankConfig(iterations=7), mode="weighted", inner_backend="sparse"
        ).fit(four_component_graph)
        assert len(composed.similarities()) <= len(exact.similarities())
