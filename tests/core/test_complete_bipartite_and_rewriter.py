"""Closed-form oracle checks (Appendices A/B) and query-rewriter pipeline tests."""

import pytest

from repro.core.complete_bipartite import (
    evidence_simrank_k12_score,
    evidence_simrank_k22_score,
    simrank_k12_score,
    simrank_k22_score,
    simrank_km2_scores,
)
from repro.core.config import SimrankConfig
from repro.core.rewriter import QueryRewriter
from repro.core.simrank import BipartiteSimrank
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.scores import SimilarityScores
from repro.synth.scenarios import complete_bipartite_graph


class TestClosedForms:
    def test_k22_closed_form_matches_iteration(self, k22_graph, paper_config):
        """Theorem A.1(i): the closed form equals the actual iteration trace."""
        simrank = BipartiteSimrank(paper_config, track_history=True).fit(k22_graph)
        for k in range(1, paper_config.iterations + 1):
            observed = simrank.result.ad_history[k - 1].score("hp.com", "bestbuy.com")
            assert observed == pytest.approx(simrank_k22_score(k), abs=1e-12)

    def test_k22_limit_below_c2(self):
        """Theorem A.1(ii): the limit never exceeds C2."""
        assert simrank_k22_score(200, c1=0.8, c2=0.8) <= 0.8
        assert simrank_k22_score(200, c1=1.0, c2=1.0) == pytest.approx(1.0, abs=1e-6)

    def test_k12_score_is_c2(self):
        assert simrank_k12_score(0) == 0.0
        for k in (1, 3, 10):
            assert simrank_k12_score(k, c2=0.7) == 0.7

    def test_evidence_closed_forms(self):
        assert evidence_simrank_k12_score(5, c2=0.8) == pytest.approx(0.4)
        assert evidence_simrank_k22_score(1) == pytest.approx(0.3)
        assert evidence_simrank_k22_score(2) == pytest.approx(0.42)

    def test_theorem_6_2_general_m(self):
        """Theorem 6.2(i): the K_{m,2} ad pair scores decrease as m grows."""
        for k in (1, 3, 7):
            scores = [simrank_km2_scores(m, k)[k][0] for m in (1, 2, 3, 5, 8)]
            assert all(earlier >= later for earlier, later in zip(scores, scores[1:]))

    def test_km2_matches_direct_iteration(self, paper_config):
        graph = complete_bipartite_graph(3, 2)
        simrank = BipartiteSimrank(paper_config, track_history=True).fit(graph)
        closed = simrank_km2_scores(3, paper_config.iterations)
        for k in range(1, paper_config.iterations + 1):
            assert simrank.result.ad_history[k - 1].score("a0", "a1") == pytest.approx(
                closed[k][0], abs=1e-12
            )
            assert simrank.result.query_history[k - 1].score("q0", "q1") == pytest.approx(
                closed[k][1], abs=1e-12
            )

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            simrank_k22_score(-1)
        with pytest.raises(ValueError):
            simrank_km2_scores(0, 3)
        with pytest.raises(ValueError):
            simrank_km2_scores(2, 0)


class _FixedScoresMethod(QuerySimilarityMethod):
    """Test double with hand-written similarity scores."""

    name = "fixed"

    def __init__(self, pairs):
        super().__init__()
        self._pairs = pairs

    def _compute_query_scores(self, graph):
        return SimilarityScores(self._pairs)


class TestQueryRewriter:
    def _method(self):
        return _FixedScoresMethod(
            {
                ("camera", "digital camera"): 0.9,
                ("camera", "cameras"): 0.85,       # stem-duplicate of the query itself
                ("camera", "photo printer"): 0.6,
                ("camera", "unbid query"): 0.55,
                ("camera", "tripod"): 0.5,
                ("camera", "pc"): 0.4,
            }
        )

    def test_pipeline_applies_dedup_bid_filter_and_cap(self, fig3_graph):
        bid_terms = {"digital camera", "photo printer", "tripod", "pc"}
        rewriter = QueryRewriter(self._method(), bid_terms=bid_terms, max_rewrites=3)
        rewriter.fit(fig3_graph)
        rewrites = rewriter.rewrites_for("camera")
        assert rewrites.candidates() == ["digital camera", "photo printer", "tripod"]
        assert rewrites.depth == 3
        assert rewrites.covered
        ranks = [rewrite.rank for rewrite in rewrites.rewrites]
        assert ranks == [1, 2, 3]

    def test_stemming_dedup_drops_query_variants(self, fig3_graph):
        rewriter = QueryRewriter(self._method(), bid_terms=None, max_rewrites=5)
        rewriter.fit(fig3_graph)
        candidates = rewriter.rewrites_for("camera").candidates()
        assert "cameras" not in candidates

    def test_dedup_can_be_disabled(self, fig3_graph):
        rewriter = QueryRewriter(self._method(), deduplicate=False)
        rewriter.fit(fig3_graph)
        assert "cameras" in rewriter.rewrites_for("camera").candidates()

    def test_bid_filter_none_keeps_everything(self, fig3_graph):
        rewriter = QueryRewriter(self._method(), bid_terms=None, max_rewrites=10, candidate_pool=10)
        rewriter.fit(fig3_graph)
        assert "unbid query" in rewriter.rewrites_for("camera").candidates()

    def test_min_score_threshold(self, fig3_graph):
        rewriter = QueryRewriter(self._method(), min_score=0.7)
        rewriter.fit(fig3_graph)
        assert rewriter.rewrites_for("camera").candidates() == ["digital camera"]

    def test_coverage_and_depth_histogram(self, fig3_graph):
        rewriter = QueryRewriter(self._method(), max_rewrites=5)
        rewriter.fit(fig3_graph)
        queries = ["camera", "query with no rewrites"]
        assert rewriter.coverage(queries) == pytest.approx(0.5)
        histogram = rewriter.depth_histogram(queries)
        assert histogram[0] == 1
        assert sum(histogram) == 2

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            QueryRewriter(self._method(), max_rewrites=0)
        with pytest.raises(ValueError):
            QueryRewriter(self._method(), max_rewrites=10, candidate_pool=5)

    def test_integration_with_real_method(self, fig3_graph, paper_config):
        method = BipartiteSimrank(paper_config)
        rewriter = QueryRewriter(method, bid_terms={"digital camera", "tv", "pc"})
        rewriter.fit(fig3_graph)
        rewrites = rewriter.rewrites_for("camera")
        assert rewrites.depth >= 2
        assert set(rewrites.candidates()) <= {"digital camera", "tv", "pc"}

    def _count_top_rewrites(self, rewriter):
        calls = {"count": 0}
        original = rewriter.method.top_rewrites

        def wrapper(*args, **kwargs):
            calls["count"] += 1
            return original(*args, **kwargs)

        rewriter.method.top_rewrites = wrapper
        return calls

    def test_stats_share_one_topk_pass_per_query(self, fig3_graph):
        """Regression: coverage + depth_histogram used to rerun the top-k scan."""
        rewriter = QueryRewriter(self._method(), max_rewrites=5).fit(fig3_graph)
        calls = self._count_top_rewrites(rewriter)
        queries = ["camera", "query with no rewrites", "camera"]
        rewriter.coverage(queries)
        rewriter.depth_histogram(queries)
        rewriter.rewrites_for("camera")
        assert calls["count"] == 2  # one scan per *unique* query, ever

    def test_clear_cache_and_refit_invalidate_the_memo(self, fig3_graph):
        rewriter = QueryRewriter(self._method(), max_rewrites=5).fit(fig3_graph)
        calls = self._count_top_rewrites(rewriter)
        rewriter.rewrites_for("camera")
        rewriter.clear_cache()
        rewriter.rewrites_for("camera")
        assert calls["count"] == 2

    def test_bid_terms_match_stemming_and_casing_variants(self, fig3_graph):
        """Regression: the filter compared raw strings, dropping bid-term variants."""
        rewriter = QueryRewriter(
            self._method(),
            bid_terms={"Digital Cameras", "PRINTER PHOTO", "tripods"},
            max_rewrites=5,
        ).fit(fig3_graph)
        candidates = rewriter.rewrites_for("camera").candidates()
        # "digital camera" / "photo printer" / "tripod" stem to the same
        # signatures as the bid terms above and must survive the filter.
        assert candidates == ["digital camera", "photo printer", "tripod"]

    def test_bid_term_reassignment_refreshes_the_filter(self, fig3_graph):
        rewriter = QueryRewriter(self._method(), bid_terms={"digital camera"}).fit(fig3_graph)
        assert rewriter.rewrites_for("camera").candidates() == ["digital camera"]
        rewriter.bid_terms = {"tripod"}
        rewriter.clear_cache()
        assert rewriter.rewrites_for("camera").candidates() == ["tripod"]

    def test_in_place_bid_term_mutation_refreshes_after_clear_cache(self, fig3_graph):
        """Regression: identity-based staleness missed in-place set mutations."""
        bid_terms = {"digital camera"}
        rewriter = QueryRewriter(self._method(), bid_terms=bid_terms).fit(fig3_graph)
        assert rewriter.rewrites_for("camera").candidates() == ["digital camera"]
        bid_terms.add("tripod")
        rewriter.clear_cache()
        assert rewriter.rewrites_for("camera").candidates() == ["digital camera", "tripod"]

    def test_explain_candidates_traces_every_fate(self, fig3_graph):
        rewriter = QueryRewriter(
            self._method(),
            bid_terms={"digital camera", "cameras", "photo printer", "tripod", "pc"},
            max_rewrites=3,
        ).fit(fig3_graph)
        decisions = {d.candidate: d for d in rewriter.explain_candidates("camera")}
        assert decisions["digital camera"].fate == "accepted"
        assert decisions["digital camera"].rank == 1
        assert decisions["cameras"].fate == "duplicate"  # stem-dup of the query
        assert decisions["unbid query"].fate == "not_in_bid_terms"
        assert decisions["pc"].fate == "beyond_max_rewrites"
