"""The fault-injection framework: determinism, channels, activation scoping."""

import pickle
import time

import pytest

from repro.core import faults


class TestFaultSpec:
    def test_rejects_a_spec_that_injects_nothing(self):
        with pytest.raises(ValueError, match="injects nothing"):
            faults.FaultSpec("some.point")

    def test_rejects_invalid_windows(self):
        with pytest.raises(ValueError, match="times"):
            faults.FaultSpec("p", error="x", times=0)
        with pytest.raises(ValueError, match="after"):
            faults.FaultSpec("p", error="x", after=-1)
        with pytest.raises(ValueError, match="latency_s"):
            faults.FaultSpec("p", latency_s=-0.1)
        with pytest.raises(ValueError, match="point"):
            faults.FaultSpec("", error="x")

    def test_latency_only_spec_is_valid(self):
        spec = faults.FaultSpec("p", latency_s=0.5)
        assert spec.latency_s == 0.5


class TestFireWindows:
    def test_noop_without_active_plan(self):
        assert faults.active_plan() is None
        faults.fire("never.instrumented")  # must simply return
        assert faults.claim("never.instrumented") is None
        assert faults.should_corrupt("never.instrumented") is False

    def test_times_limits_firings(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", error="boom", times=2)])
        with plan:
            for _ in range(2):
                with pytest.raises(faults.FaultError, match="boom"):
                    faults.fire("p")
            faults.fire("p")  # third hit: exhausted, no-op
        assert plan.fire_count("p") == 2
        assert plan.hits("p") == 3

    def test_after_skips_leading_hits(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", error="late", after=2)])
        with plan:
            faults.fire("p")
            faults.fire("p")
            with pytest.raises(faults.FaultError, match="late"):
                faults.fire("p")

    def test_times_none_fires_on_every_matching_hit(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", error="always", times=None)])
        with plan:
            for _ in range(3):
                with pytest.raises(faults.FaultError):
                    faults.fire("p")
        assert plan.fire_count("p") == 3

    def test_points_count_independently(self):
        plan = faults.FaultPlan([faults.FaultSpec("a", error="x")])
        with plan:
            faults.fire("b")  # different point: never fires the spec
            with pytest.raises(faults.FaultError):
                faults.fire("a")
        assert plan.hits("b") == 1
        assert plan.fire_count() == 1


class TestChannels:
    def test_corrupt_channel_is_separate_from_fire(self):
        plan = faults.FaultPlan(
            [faults.FaultSpec("write", corrupt=True, times=1)]
        )
        with plan:
            faults.fire("write")  # the error channel: corrupt specs don't fire
            assert faults.should_corrupt("write") is True
            assert faults.should_corrupt("write") is False  # consumed
        assert plan.fired == [("write", "corrupt")]

    def test_claim_returns_a_picklable_action(self):
        plan = faults.FaultPlan([faults.FaultSpec("w", error="shipped", times=1)])
        with plan:
            action = faults.claim("w")
        assert action is not None
        clone = pickle.loads(pickle.dumps(action))
        with pytest.raises(faults.FaultError, match="shipped"):
            clone.execute()
        # The counter lives centrally: the claim consumed the only firing.
        assert plan.fire_count("w") == 1

    def test_latency_action_sleeps(self):
        plan = faults.FaultPlan([faults.FaultSpec("slow", latency_s=0.05)])
        with plan:
            started = time.perf_counter()
            faults.fire("slow")
            assert time.perf_counter() - started >= 0.05
        assert plan.fired == [("slow", "latency")]


class TestActivation:
    def test_context_manager_restores_previous_plan(self):
        outer = faults.FaultPlan([faults.FaultSpec("o", error="outer")])
        inner = faults.FaultPlan([faults.FaultSpec("i", error="inner")])
        with outer:
            assert faults.active_plan() is outer
            with inner:
                assert faults.active_plan() is inner
            assert faults.active_plan() is outer
        assert faults.active_plan() is None

    def test_injected_restores_on_exception(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", error="x")])
        with pytest.raises(RuntimeError):
            with faults.injected(plan):
                raise RuntimeError("unwound")
        assert faults.active_plan() is None

    def test_describe_is_json_ready(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", error="x", times=1)])
        with plan:
            with pytest.raises(faults.FaultError):
                faults.fire("p")
        described = plan.describe()
        assert described["specs"][0]["point"] == "p"
        assert described["hits"] == {"p": 1}
        assert described["fired"] == [("p", "error")]


class TestSchedule:
    def test_events_sort_by_offset(self):
        plan = faults.FaultPlan([faults.FaultSpec("p", error="x")])
        schedule = faults.FaultSchedule(
            (
                faults.FaultEvent(2.0, None),
                faults.FaultEvent(0.5, plan),
            )
        )
        assert [event.at_s for event in schedule.events] == [0.5, 2.0]
        assert len(schedule) == 2

    def test_negative_offset_rejected(self):
        with pytest.raises(ValueError, match="at_s"):
            faults.FaultEvent(-1.0, None)
