"""The dense-matrix engine must agree with the reference node-pair implementations."""

import pytest

from repro.core.config import SimrankConfig
from repro.core.evidence_simrank import EvidenceSimrank
from repro.core.simrank import BipartiteSimrank
from repro.core.simrank_matrix import MatrixSimrank
from repro.core.weighted_simrank import WeightedSimrank
from repro.graph.click_graph import ClickGraph


def _assert_same_scores(reference, matrix, graph, tolerance=1e-9):
    queries = sorted(graph.queries(), key=repr)
    for i, first in enumerate(queries):
        for second in queries[i + 1:]:
            assert matrix.query_similarity(first, second) == pytest.approx(
                reference.query_similarity(first, second), abs=tolerance
            ), f"mismatch for pair ({first!r}, {second!r})"


class TestAgreementWithReference:
    def test_plain_simrank_matches(self, fig3_graph, paper_config):
        reference = BipartiteSimrank(paper_config).fit(fig3_graph)
        matrix = MatrixSimrank(paper_config, mode="simrank").fit(fig3_graph)
        _assert_same_scores(reference, matrix, fig3_graph)

    def test_evidence_simrank_matches(self, fig3_graph, paper_config):
        reference = EvidenceSimrank(paper_config).fit(fig3_graph)
        matrix = MatrixSimrank(paper_config, mode="evidence").fit(fig3_graph)
        _assert_same_scores(reference, matrix, fig3_graph)

    def test_weighted_simrank_matches(self, small_weighted_graph, paper_config):
        reference = WeightedSimrank(paper_config).fit(small_weighted_graph)
        matrix = MatrixSimrank(paper_config, mode="weighted").fit(small_weighted_graph)
        _assert_same_scores(reference, matrix, small_weighted_graph, tolerance=1e-8)

    def test_weighted_with_floor_matches(self, fig3_graph):
        config = SimrankConfig(iterations=5, zero_evidence_floor=0.1)
        reference = WeightedSimrank(config).fit(fig3_graph)
        matrix = MatrixSimrank(config, mode="weighted").fit(fig3_graph)
        _assert_same_scores(reference, matrix, fig3_graph, tolerance=1e-8)

    def test_agreement_on_synthetic_workload_subgraph(self, tiny_workload, paper_config):
        from repro.graph.components import largest_component

        graph = largest_component(tiny_workload.click_graph)
        reference = BipartiteSimrank(paper_config).fit(graph)
        matrix = MatrixSimrank(paper_config, mode="simrank").fit(graph)
        # Spot-check a handful of pairs rather than all O(n^2).
        queries = sorted(graph.queries(), key=repr)[:12]
        for i, first in enumerate(queries):
            for second in queries[i + 1:]:
                assert matrix.query_similarity(first, second) == pytest.approx(
                    reference.query_similarity(first, second), abs=1e-9
                )


class TestMatrixEngineBehaviour:
    def test_mode_validation(self, paper_config):
        with pytest.raises(ValueError):
            MatrixSimrank(paper_config, mode="bogus")

    def test_reported_name_follows_mode(self, paper_config):
        assert MatrixSimrank(paper_config, mode="simrank").name == "simrank"
        assert MatrixSimrank(paper_config, mode="evidence").name == "evidence_simrank"
        assert MatrixSimrank(paper_config, mode="weighted").name == "weighted_simrank"

    def test_empty_graph(self, paper_config):
        method = MatrixSimrank(paper_config).fit(ClickGraph())
        assert len(method.similarities()) == 0

    def test_ad_similarity_and_matrix_access(self, fig3_graph, paper_config):
        method = MatrixSimrank(paper_config, mode="simrank").fit(fig3_graph)
        assert method.ad_similarity("hp.com", "hp.com") == 1.0
        assert method.ad_similarity("hp.com", "bestbuy.com") > 0.0
        assert method.ad_similarity("hp.com", "unknown-ad") == 0.0
        matrix, index = method.query_matrix()
        assert matrix.shape == (len(index), len(index))

    def test_min_score_threshold_drops_tiny_scores(self, fig3_graph, paper_config):
        strict = MatrixSimrank(paper_config, mode="simrank", min_score=0.5).fit(fig3_graph)
        loose = MatrixSimrank(paper_config, mode="simrank", min_score=1e-12).fit(fig3_graph)
        assert len(strict.similarities()) <= len(loose.similarities())


class TestToleranceEarlyExit:
    """``SimrankConfig.tolerance`` must actually cut iterations short."""

    @pytest.fixture
    def fast_decay_config(self):
        # c = 0.6 makes the per-iteration delta shrink fast enough that a
        # 1e-3 tolerance triggers well before the 30-iteration budget.
        return SimrankConfig(c1=0.6, c2=0.6, iterations=30)

    def test_fewer_iterations_actually_run(self, fig3_graph, fast_decay_config):
        full = MatrixSimrank(fast_decay_config, mode="simrank").fit(fig3_graph)
        early = MatrixSimrank(
            SimrankConfig(c1=0.6, c2=0.6, iterations=30, tolerance=1e-3),
            mode="simrank",
        ).fit(fig3_graph)
        assert full.iterations_run == 30
        assert early.iterations_run < full.iterations_run

    def test_early_exit_scores_match_full_run_within_tolerance(
        self, fig3_graph, fast_decay_config
    ):
        full = MatrixSimrank(fast_decay_config, mode="simrank").fit(fig3_graph)
        early = MatrixSimrank(
            SimrankConfig(c1=0.6, c2=0.6, iterations=30, tolerance=1e-3),
            mode="simrank",
        ).fit(fig3_graph)
        # Residual after stopping is bounded by tolerance * c / (1 - c).
        assert full.similarities().max_difference(early.similarities()) < 2e-3

    def test_zero_tolerance_never_exits_early(self, fig3_graph, fast_decay_config):
        method = MatrixSimrank(fast_decay_config, mode="simrank").fit(fig3_graph)
        assert method.iterations_run == fast_decay_config.iterations


class TestEvidenceMatrixHoisting:
    """The evidence factors depend only on the graph: one computation per fit."""

    @pytest.fixture
    def evidence_call_counter(self, monkeypatch):
        import repro.core.simrank_matrix as module

        calls = []
        original = module._evidence_matrix

        def counting(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(module, "_evidence_matrix", counting)
        return calls

    @pytest.mark.parametrize("mode", ["weighted", "evidence"])
    def test_computed_once_per_side_not_per_iteration(
        self, fig3_graph, evidence_call_counter, mode
    ):
        config = SimrankConfig(iterations=6, zero_evidence_floor=0.1)
        MatrixSimrank(config, mode=mode).fit(fig3_graph)
        assert len(evidence_call_counter) == 2  # query side + ad side

    def test_plain_simrank_never_computes_evidence(
        self, fig3_graph, paper_config, evidence_call_counter
    ):
        MatrixSimrank(paper_config, mode="simrank").fit(fig3_graph)
        assert evidence_call_counter == []


class TestIsolatedNodeSkipping:
    """Zero-degree nodes stay out of the dense iteration entirely."""

    @pytest.fixture
    def fig3_with_isolates(self, fig3_graph):
        fig3_graph.add_query("never clicked")
        fig3_graph.add_ad("never-shown.com")
        return fig3_graph

    def test_isolated_nodes_not_in_matrices(self, fig3_with_isolates, paper_config):
        method = MatrixSimrank(paper_config, mode="simrank").fit(fig3_with_isolates)
        matrix, index = method.query_matrix()
        assert "never clicked" not in index
        assert matrix.shape == (5, 5)  # the five connected Figure 3 queries

    def test_isolated_nodes_still_score_correctly(self, fig3_with_isolates, paper_config):
        method = MatrixSimrank(paper_config, mode="simrank").fit(fig3_with_isolates)
        assert method.query_similarity("never clicked", "never clicked") == 1.0
        assert method.query_similarity("never clicked", "camera") == 0.0
        assert method.ad_similarity("never-shown.com", "never-shown.com") == 1.0
        assert method.ad_similarity("never-shown.com", "hp.com") == 0.0

    @pytest.mark.parametrize("mode", ["simrank", "evidence", "weighted"])
    def test_connected_scores_unchanged_by_isolates(self, fig3_graph, paper_config, mode):
        config = SimrankConfig(
            c1=paper_config.c1, c2=paper_config.c2,
            iterations=paper_config.iterations, zero_evidence_floor=0.1,
        )
        plain = MatrixSimrank(config, mode=mode).fit(fig3_graph)
        padded_graph = fig3_graph.copy()
        for extra in range(5):
            padded_graph.add_query(f"isolated q{extra}")
            padded_graph.add_ad(f"isolated-a{extra}.com")
        padded = MatrixSimrank(config, mode=mode).fit(padded_graph)
        assert plain.similarities().max_difference(padded.similarities()) == 0.0
