"""Tests for weighted SimRank (Simrank++): transition factors and consistency."""

import math

import pytest

from repro.core.config import SimrankConfig
from repro.core.simrank import BipartiteSimrank
from repro.core.weighted_simrank import WeightedSimrank, spread, transition_factors
from repro.graph.click_graph import ClickGraph, WeightSource
from repro.synth.scenarios import figure5_graphs, figure6_graphs


class TestSpreadAndTransitions:
    def test_spread_is_one_for_single_edge(self, small_weighted_graph):
        assert spread(small_weighted_graph, "orchids.com", "ad") <= 1.0
        single = ClickGraph()
        single.add_edge("q", "a", impressions=10, clicks=5, expected_click_rate=0.5)
        assert spread(single, "a", "ad") == pytest.approx(1.0)

    def test_spread_decreases_with_weight_variance(self):
        balanced = ClickGraph()
        balanced.add_edge("q1", "ad", impressions=100, clicks=10, expected_click_rate=0.5)
        balanced.add_edge("q2", "ad", impressions=100, clicks=10, expected_click_rate=0.5)
        skewed = ClickGraph()
        skewed.add_edge("q1", "ad", impressions=100, clicks=10, expected_click_rate=0.9)
        skewed.add_edge("q2", "ad", impressions=100, clicks=10, expected_click_rate=0.1)
        assert spread(balanced, "ad", "ad") > spread(skewed, "ad", "ad")

    def test_spread_formula_matches_definition(self):
        graph = ClickGraph()
        graph.add_edge("q1", "ad", impressions=10, clicks=2, expected_click_rate=0.2)
        graph.add_edge("q2", "ad", impressions=10, clicks=6, expected_click_rate=0.6)
        weights = [0.2, 0.6]
        mean = sum(weights) / 2
        variance = sum((w - mean) ** 2 for w in weights) / 2
        assert spread(graph, "ad", "ad") == pytest.approx(math.exp(-variance))

    def test_spread_rejects_unknown_side(self, small_weighted_graph):
        with pytest.raises(ValueError):
            spread(small_weighted_graph, "camera", "neither")

    def test_transition_factors_sum_to_at_most_one(self, small_weighted_graph):
        query_factors, ad_factors = transition_factors(small_weighted_graph)
        for query in small_weighted_graph.queries():
            total = sum(
                factor for (q, _), factor in query_factors.items() if q == query
            )
            assert total <= 1.0 + 1e-9
        for ad in small_weighted_graph.ads():
            total = sum(factor for (a, _), factor in ad_factors.items() if a == ad)
            assert total <= 1.0 + 1e-9

    def test_transition_factor_uses_normalized_weight(self):
        graph = ClickGraph()
        graph.add_edge("q", "a1", impressions=100, clicks=30, expected_click_rate=0.3)
        graph.add_edge("q", "a2", impressions=100, clicks=10, expected_click_rate=0.1)
        query_factors, _ = transition_factors(graph)
        # a1 and a2 each have a single incident edge, so spread is 1 and the
        # factors are just the normalized weights 0.75 / 0.25.
        assert query_factors[("q", "a1")] == pytest.approx(0.75)
        assert query_factors[("q", "a2")] == pytest.approx(0.25)


class TestConsistency:
    def test_figure5_variance_consistency(self, paper_config):
        """Definition 8.1(ii): lower weight variance at the shared ad -> higher similarity."""
        balanced, skewed = figure5_graphs()
        config = SimrankConfig(iterations=7)
        balanced_sim = WeightedSimrank(config).fit(balanced)
        skewed_sim = WeightedSimrank(config).fit(skewed)
        assert balanced_sim.query_similarity("flower", "orchids") > skewed_sim.query_similarity(
            "flower", "teleflora"
        )

    def test_figure6_magnitude_consistency_with_click_weights(self):
        """Definition 8.1(i): more clicks at equal spread -> higher similarity.

        The expected-click-rate weights of the two Figure 6 graphs are
        identical, so the consistency rule only bites when raw click counts
        are the weight source.
        """
        heavy, light = figure6_graphs()
        config = SimrankConfig(iterations=7, weight_source=WeightSource.CLICKS)
        heavy_sim = WeightedSimrank(config).fit(heavy)
        light_sim = WeightedSimrank(config).fit(light)
        assert heavy_sim.query_similarity("flower", "orchids") >= light_sim.query_similarity(
            "flower", "teleflora"
        )

    def test_plain_simrank_is_not_consistent_on_figure5(self, paper_config):
        """The motivating failure: plain SimRank scores both Figure 5 graphs identically."""
        balanced, skewed = figure5_graphs()
        balanced_sim = BipartiteSimrank(paper_config).fit(balanced)
        skewed_sim = BipartiteSimrank(paper_config).fit(skewed)
        assert balanced_sim.query_similarity("flower", "orchids") == pytest.approx(
            skewed_sim.query_similarity("flower", "teleflora")
        )


class TestWeightedSimrankBehaviour:
    def test_scores_in_unit_interval_and_symmetric(self, small_weighted_graph, paper_config):
        method = WeightedSimrank(paper_config).fit(small_weighted_graph)
        for first, second, value in method.similarities().pairs():
            assert 0.0 <= value <= 1.0
            assert method.query_similarity(second, first) == pytest.approx(value)

    def test_self_similarity_is_one(self, small_weighted_graph, paper_config):
        method = WeightedSimrank(paper_config).fit(small_weighted_graph)
        assert method.query_similarity("camera", "camera") == 1.0

    def test_prefers_strongly_co_clicked_pairs(self, small_weighted_graph, paper_config):
        method = WeightedSimrank(paper_config).fit(small_weighted_graph)
        strong = method.query_similarity("flower", "orchids")
        weak = method.query_similarity("pc", "laptop")
        assert strong > 0.0
        assert weak > 0.0
        # flower/orchids share two ads with nearly identical weights; pc/laptop
        # share one ad with diverging weights.
        assert strong > weak

    def test_disabling_evidence_gives_weights_only_variant(self, fig3_graph, paper_config):
        with_evidence = WeightedSimrank(paper_config).fit(fig3_graph)
        without_evidence = WeightedSimrank(paper_config, use_evidence=False).fit(fig3_graph)
        assert without_evidence.query_similarity(
            "camera", "digital camera"
        ) > with_evidence.query_similarity("camera", "digital camera")

    def test_zero_evidence_floor_keeps_two_hop_pairs(self, fig3_graph):
        strict = WeightedSimrank(SimrankConfig(iterations=7)).fit(fig3_graph)
        floored = WeightedSimrank(SimrankConfig(iterations=7, zero_evidence_floor=0.1)).fit(fig3_graph)
        assert strict.query_similarity("pc", "tv") == 0.0
        assert floored.query_similarity("pc", "tv") > 0.0

    def test_history_tracking(self, k22_graph, paper_config):
        method = WeightedSimrank(paper_config, track_history=True).fit(k22_graph)
        assert len(method.query_history) == paper_config.iterations
        values = [snapshot.score("camera", "digital camera") for snapshot in method.query_history]
        assert values == sorted(values)

    def test_uniform_weights_without_evidence_reduce_to_plain_simrank(
        self, k22_graph, paper_config
    ):
        """With uniform weights the weighted walk is the uniform walk, so the
        evidence-free weighted variant reproduces plain SimRank exactly."""
        weighted = WeightedSimrank(paper_config, use_evidence=False).fit(k22_graph)
        plain = BipartiteSimrank(paper_config).fit(k22_graph)
        assert weighted.query_similarity("camera", "digital camera") == pytest.approx(
            plain.query_similarity("camera", "digital camera"), abs=1e-9
        )

    def test_evidence_compounds_inside_the_weighted_recursion(self, k22_graph, paper_config):
        """The paper applies evidence inside the weighted fixpoint (Section 8),
        so the weighted score sits below the post-hoc evidence-based score."""
        from repro.core.evidence_simrank import EvidenceSimrank

        weighted = WeightedSimrank(paper_config).fit(k22_graph)
        evidence = EvidenceSimrank(paper_config).fit(k22_graph)
        assert 0.0 < weighted.query_similarity("camera", "digital camera") < (
            evidence.query_similarity("camera", "digital camera")
        )

    def test_ad_similarity(self, small_weighted_graph, paper_config):
        method = WeightedSimrank(paper_config).fit(small_weighted_graph)
        assert method.ad_similarity("teleflora.com", "orchids.com") > 0.0
