"""The auto planner's PlanReport surfaced through the engine and snapshots."""

import json

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.snapshot import read_snapshot, write_snapshot
from repro.core.config import SimrankConfig
from repro.synth.scenarios import multi_component_graph


@pytest.fixture
def auto_engine():
    graph = multi_component_graph(num_components=4, seed=17)
    config = EngineConfig(
        method="simrank",
        backend="auto",
        similarity=SimrankConfig(iterations=5),
    )
    return RewriteEngine.from_graph(graph, config).fit()


class TestEnginePlanReport:
    def test_fitted_auto_engine_exposes_its_plan(self, auto_engine):
        plan = auto_engine.plan_report
        assert plan is not None
        assert plan.strategy == "sharded"
        assert plan.profile.num_components == 4

    def test_fixed_backends_report_no_plan(self, small_weighted_graph):
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank", backend="matrix")
        ).fit()
        assert engine.plan_report is None

    def test_unfitted_engine_reports_no_plan(self):
        assert RewriteEngine(EngineConfig(backend="auto")).plan_report is None


class TestSnapshotPlanPersistence:
    def test_plan_survives_a_snapshot_round_trip(self, auto_engine, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(auto_engine, path)
        loaded = read_snapshot(path)
        assert loaded.plan_report == auto_engine.plan_report

    def test_manifest_records_the_plan(self, auto_engine, tmp_path):
        path = tmp_path / "snap"
        write_snapshot(auto_engine, path)
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["fit"]["plan"]["strategy"] == "sharded"

    def test_fixed_backend_manifests_record_no_plan(self, small_weighted_graph, tmp_path):
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank", backend="matrix")
        ).fit()
        path = tmp_path / "snap"
        write_snapshot(engine, path)
        manifest = json.loads((path / "manifest.json").read_text())
        assert manifest["fit"]["plan"] is None
        assert read_snapshot(path).plan_report is None

    def test_malformed_plan_metadata_never_blocks_a_load(self, auto_engine, tmp_path):
        """The plan is advisory: a corrupt entry degrades to None, not an error."""
        path = tmp_path / "snap"
        write_snapshot(auto_engine, path)
        manifest_path = path / "manifest.json"
        manifest = json.loads(manifest_path.read_text())
        manifest["fit"]["plan"] = {"strategy": "sharded"}  # missing every field
        manifest_path.write_text(json.dumps(manifest))
        loaded = read_snapshot(path)
        assert loaded.plan_report is None
        assert loaded.rewrite("c0_q0").covered
