"""Registry error paths, extensibility and the create_method deprecation shim."""

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.registry import (
    PAPER_METHODS,
    DuplicateMethodError,
    RegistryError,
    UnknownBackendError,
    UnknownMethodError,
    available_backends,
    available_methods,
    create,
    method_spec,
    register_method,
    unregister_method,
)
from repro.core.registry import create_method
from repro.core.scores import SimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod


class ConstantSimilarity(QuerySimilarityMethod):
    """Scores every distinct query pair the same; handy registry test double."""

    name = "constant"

    def __init__(self, value: float = 0.5) -> None:
        super().__init__()
        self.value = value

    def _compute_query_scores(self, graph) -> SimilarityScores:
        scores = SimilarityScores()
        queries = sorted(str(query) for query in graph.queries())
        for index, first in enumerate(queries):
            for second in queries[index + 1 :]:
                scores.set(first, second, self.value)
        return scores


@pytest.fixture
def constant_method():
    """A custom method registered for the duration of one test."""

    @register_method("constant_half", backends=("matrix",), description="test double")
    def build(config, backend):
        return ConstantSimilarity(0.5)

    yield "constant_half"
    unregister_method("constant_half")


class TestBuiltins:
    def test_all_paper_methods_resolve(self):
        for name in PAPER_METHODS:
            assert name in available_methods()
            method = create(name)
            assert isinstance(method, QuerySimilarityMethod)

    def test_simrank_family_has_all_backends(self):
        for name in ("simrank", "evidence_simrank", "weighted_simrank"):
            assert available_backends(name) == (
                "matrix",
                "reference",
                "sharded",
                "sparse",
                "auto",
            )

    def test_specs_carry_descriptions(self):
        for name in available_methods():
            assert method_spec(name).description


class TestErrorPaths:
    def test_unknown_method(self):
        with pytest.raises(UnknownMethodError):
            create("not-a-method")
        # Registry errors stay ValueError for pre-registry callers.
        with pytest.raises(ValueError):
            create("not-a-method")

    def test_unknown_backend(self):
        with pytest.raises(UnknownBackendError):
            create("simrank", backend="gpu")

    def test_method_spec_unknown_name(self):
        with pytest.raises(UnknownMethodError):
            method_spec("nope")
        with pytest.raises(UnknownMethodError):
            available_backends("nope")

    def test_unregister_unknown_name(self):
        with pytest.raises(UnknownMethodError):
            unregister_method("never-registered")

    def test_duplicate_registration_rejected(self, constant_method):
        with pytest.raises(DuplicateMethodError):

            @register_method(constant_method, backends=("matrix",))
            def clash(config, backend):
                return ConstantSimilarity()

    def test_duplicate_registration_with_replace(self, constant_method):
        @register_method(constant_method, backends=("matrix",), replace=True)
        def replacement(config, backend):
            return ConstantSimilarity(0.9)

        method = create(constant_method)
        assert method.value == 0.9

    def test_invalid_registrations(self):
        with pytest.raises(RegistryError):
            register_method("", backends=("matrix",))
        with pytest.raises(RegistryError):
            register_method("no-backends", backends=())
        with pytest.raises(UnknownBackendError):
            register_method("bad-default", backends=("matrix",), default_backend="gpu")
        with pytest.raises(RegistryError):
            register_method("not-callable", backends=("matrix",))(42)


class TestExtensibility:
    def test_custom_method_round_trips_through_engine(self, constant_method, small_weighted_graph):
        assert constant_method in available_methods()
        config = EngineConfig(method=constant_method, backend="matrix", max_rewrites=3)
        engine = RewriteEngine.from_graph(small_weighted_graph, config).fit()
        rewrites = engine.rewrite("camera")
        assert rewrites.covered
        assert rewrites.depth == 3
        assert all(rewrite.score == pytest.approx(0.5) for rewrite in rewrites.rewrites)

    def test_custom_method_unregistered_after_teardown(self, small_weighted_graph):
        @register_method("ephemeral", backends=("matrix",))
        def build(config, backend):
            return ConstantSimilarity()

        unregister_method("ephemeral")
        assert "ephemeral" not in available_methods()
        with pytest.raises(UnknownMethodError):
            create("ephemeral")

    def test_registering_a_method_class_directly(self, small_weighted_graph):
        @register_method("constant_class", backends=("matrix",))
        class RegisteredConstant(ConstantSimilarity):
            name = "constant_class"

        try:
            method = create("constant_class").fit(small_weighted_graph)
            assert method.query_similarity("camera", "pc") == pytest.approx(0.5)
        finally:
            unregister_method("constant_class")


class TestDeprecationShim:
    def test_create_method_still_works_with_a_warning(self, small_weighted_graph):
        with pytest.warns(DeprecationWarning):
            method = create_method("weighted_simrank")
        method.fit(small_weighted_graph)
        assert method.query_similarity("camera", "digital camera") > 0

    def test_create_method_keeps_old_error_contract(self):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                create_method("not-a-method")
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                create_method("simrank", backend="gpu")
