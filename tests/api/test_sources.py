"""resolve_engine_source: one front door over store / snapshot / fresh fit."""

from __future__ import annotations

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.snapshot import SCORES_FILENAME, SnapshotError
from repro.api.sources import resolve_engine_source
from repro.core.config import SimrankConfig
from repro.store import InMemoryServingStore, StoreError


def build_engine(graph):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=7, tolerance=1e-8),
    )
    return RewriteEngine.from_graph(
        graph, config, bid_terms={str(q) for q in graph.queries()}
    ).fit()


@pytest.fixture
def engine(small_weighted_graph):
    return build_engine(small_weighted_graph)


class TestSourceValidation:
    def test_requires_exactly_one_source(self, engine, tmp_path):
        with pytest.raises(ValueError, match="exactly one"):
            resolve_engine_source()
        with pytest.raises(ValueError, match="exactly one"):
            resolve_engine_source(
                snapshot=tmp_path / "snap", graph=engine.graph
            )

    def test_config_only_applies_to_graph_sources(self, tmp_path):
        with pytest.raises(ValueError, match="graph"):
            resolve_engine_source(
                snapshot=tmp_path / "snap", config=EngineConfig()
            )


class TestGraphSource:
    def test_fits_fresh_engine(self, small_weighted_graph):
        resolved = resolve_engine_source(
            graph=small_weighted_graph,
            config=EngineConfig(method="weighted_simrank"),
            bid_terms={str(q) for q in small_weighted_graph.queries()},
        )
        assert resolved.kind == "fitted"
        assert resolved.origin is None
        assert not resolved.degraded
        assert resolved.engine.is_fitted
        assert resolved.engine.rewrite("camera").rewrites


class TestSnapshotSource:
    def test_loads_the_requested_snapshot(self, engine, tmp_path):
        engine.save(tmp_path / "snap")
        resolved = resolve_engine_source(snapshot=tmp_path / "snap")
        assert resolved.kind == "snapshot"
        assert resolved.origin == tmp_path / "snap"
        assert not resolved.degraded
        queries = engine._serving_universe()
        assert resolved.engine.serving_profile(queries) == engine.serving_profile(
            queries
        )

    def test_corrupt_snapshot_falls_back_to_newest_sibling(self, engine, tmp_path):
        engine.save(tmp_path / "good")
        corrupt = engine.save(tmp_path / "corrupt")
        (corrupt / SCORES_FILENAME).write_bytes(b"torn")
        warnings_seen = []
        resolved = resolve_engine_source(
            snapshot=corrupt, warn=warnings_seen.append
        )
        assert resolved.kind == "snapshot-sibling"
        assert resolved.degraded
        assert resolved.origin == tmp_path / "good"
        assert any("failed to load" in message for message in warnings_seen)

    def test_fallback_can_be_disabled(self, engine, tmp_path):
        engine.save(tmp_path / "good")
        corrupt = engine.save(tmp_path / "corrupt")
        (corrupt / SCORES_FILENAME).write_bytes(b"torn")
        with pytest.raises(SnapshotError):
            resolve_engine_source(snapshot=corrupt, fallback_siblings=False)

    def test_no_loadable_sibling_reraises_the_original_error(self, tmp_path):
        with pytest.raises(SnapshotError):
            resolve_engine_source(snapshot=tmp_path / "missing")


class TestStoreSource:
    def test_store_path(self, engine, tmp_path):
        store_path = engine.export_store(tmp_path / "rewrites.sqlite")
        resolved = resolve_engine_source(store=store_path)
        assert resolved.kind == "store"
        assert resolved.origin == store_path
        queries = engine._serving_universe()
        assert resolved.engine.serving_profile(queries) == engine.serving_profile(
            queries
        )

    def test_open_store_instance(self, engine):
        resolved = resolve_engine_source(
            store=InMemoryServingStore.from_engine(engine)
        )
        assert resolved.kind == "store"
        assert resolved.origin is None  # in-memory stores have no path
        assert resolved.engine.rewrite("camera") == engine.rewrite("camera")

    def test_store_errors_propagate_without_fallback(self, tmp_path):
        with pytest.raises(StoreError):
            resolve_engine_source(store=tmp_path / "missing.sqlite")


class TestDeprecatedShim:
    def test_load_engine_with_fallback_warns_and_delegates(self, engine, tmp_path):
        from repro.serving.resilience import load_engine_with_fallback

        engine.save(tmp_path / "snap")
        with pytest.warns(DeprecationWarning, match="resolve_engine_source"):
            loaded, used = load_engine_with_fallback(tmp_path / "snap")
        assert used == tmp_path / "snap"
        assert loaded.is_fitted

    def test_shim_opens_store_files(self, engine, tmp_path):
        from repro.serving.resilience import load_engine_with_fallback

        store_path = engine.export_store(tmp_path / "rewrites.sqlite")
        with pytest.warns(DeprecationWarning):
            loaded, used = load_engine_with_fallback(store_path)
        assert used == store_path
        assert loaded.serving_store is not None
