"""RewriteEngine lifecycle, serving cache, explanations and EngineConfig."""

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import EvidenceKind, SimrankConfig
from repro.graph.click_graph import WeightSource


def counting_top_rewrites(engine):
    """Wrap the engine's similarity top-k so tests can count invocations."""
    calls = {"count": 0}
    original = engine.method.top_rewrites

    def wrapper(*args, **kwargs):
        calls["count"] += 1
        return original(*args, **kwargs)

    engine.method.top_rewrites = wrapper
    return calls


class TestLifecycle:
    def test_serving_before_fit_raises(self):
        engine = RewriteEngine(EngineConfig(method="simrank"))
        with pytest.raises(RuntimeError):
            engine.rewrite("camera")
        with pytest.raises(RuntimeError):
            engine.explain("camera", "digital camera")
        with pytest.raises(RuntimeError):
            engine.precompute()

    def test_fit_without_a_graph_raises(self):
        with pytest.raises(RuntimeError):
            RewriteEngine(EngineConfig(method="simrank")).fit()

    def test_from_graph_then_fit(self, small_weighted_graph):
        engine = RewriteEngine.from_graph(small_weighted_graph, EngineConfig(method="simrank"))
        assert not engine.is_fitted
        assert engine.fit() is engine
        assert engine.is_fitted
        assert engine.graph is small_weighted_graph
        assert engine.rewrite("camera").covered

    def test_fit_accepts_a_graph_directly(self, small_weighted_graph):
        engine = RewriteEngine(EngineConfig(method="simrank")).fit(small_weighted_graph)
        assert engine.rewrite("camera").covered

    def test_refit_clears_the_cache(self, small_weighted_graph):
        engine = RewriteEngine.from_graph(small_weighted_graph, EngineConfig(method="simrank")).fit()
        engine.rewrite("camera")
        assert engine.cache_info().size == 1
        engine.fit(small_weighted_graph)
        assert engine.cache_info() == type(engine.cache_info())(hits=0, misses=0, size=0)

    def test_refit_on_a_changed_graph_serves_fresh_rewrites(self, small_weighted_graph):
        """Regression: a second fit() must invalidate every per-query cache layer.

        Serving a query, refitting on a graph where that query's edges changed,
        and serving again must reflect the new graph -- a stale engine cache or
        rewriter memo would silently return the first fit's rewrites.
        """
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        before = [r.rewrite for r in engine.rewrite("camera").rewrites]
        assert "digital camera" in before

        rewired = small_weighted_graph.copy()
        for ad in list(rewired.ads_of("digital camera")):
            rewired.remove_edge("digital camera", ad)
        engine.fit(rewired)
        after = [r.rewrite for r in engine.rewrite("camera").rewrites]
        assert "digital camera" not in after

        # And the direct rewriter memo (not just the engine-level cache) is fresh:
        assert "digital camera" not in [
            r.rewrite for r in engine._rewriter.rewrites_for("camera").rewrites
        ]

    def test_unknown_method_fails_at_construction(self):
        with pytest.raises(ValueError):
            RewriteEngine(EngineConfig(method="not-a-method"))


class TestServingCache:
    @pytest.fixture
    def engine(self, small_weighted_graph):
        return RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="weighted_simrank")
        ).fit()

    def test_repeated_rewrites_run_topk_once(self, engine):
        calls = counting_top_rewrites(engine)
        first = engine.rewrite("camera")
        second = engine.rewrite("camera")
        assert calls["count"] == 1
        assert second is first

    def test_rewrite_batch_is_aligned_and_deduplicated(self, engine):
        calls = counting_top_rewrites(engine)
        queries = ["camera", "pc", "camera", "flower", "pc", "camera"]
        results = engine.rewrite_batch(queries)
        assert [result.query for result in results] == queries
        assert calls["count"] == 3  # one similarity scan per unique query
        info = engine.cache_info()
        assert info.misses == 3
        assert info.hits == 3
        assert info.size == 3
        assert info.hit_rate == pytest.approx(0.5)

    def test_precompute_warms_every_graph_query(self, engine, small_weighted_graph):
        warmed = engine.precompute()
        assert warmed == len(list(small_weighted_graph.queries()))
        calls = counting_top_rewrites(engine)
        engine.rewrite_batch(sorted(str(q) for q in small_weighted_graph.queries()))
        assert calls["count"] == 0  # everything served from the cache

    def test_clear_cache_resets_counters(self, engine):
        engine.rewrite("camera")
        engine.rewrite("camera")
        engine.clear_cache()
        info = engine.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_expansions_returns_plain_terms(self, engine):
        expansions = engine.expansions("camera", max_rewrites=2)
        assert len(expansions) <= 2
        assert all(term != "camera" for term in expansions)


class TestExplain:
    @pytest.fixture
    def engine(self, small_weighted_graph):
        return RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(method="weighted_simrank", max_rewrites=3),
            bid_terms={"digital camera", "pc"},
        ).fit()

    def test_accepted_rewrite(self, engine):
        explanation = engine.explain("camera", "digital camera")
        assert explanation.accepted
        assert explanation.reason == "accepted"
        assert explanation.rank == 1
        assert explanation.similarity > 0

    def test_bid_term_filtered_rewrite(self, engine):
        explanation = engine.explain("camera", "laptop")
        assert not explanation.accepted
        assert explanation.reason == "not_in_bid_terms"
        assert explanation.rank is None

    def test_unrelated_rewrite(self, engine):
        explanation = engine.explain("camera", "no-such-query")
        assert not explanation.accepted
        assert explanation.reason == "below_similarity_floor"
        assert explanation.similarity == 0.0

    def test_trace_covers_the_candidate_pool(self, engine):
        explanation = engine.explain("camera", "digital camera")
        fates = {decision.fate for decision in explanation.candidates}
        assert "accepted" in fates
        assert "not_in_bid_terms" in fates
        accepted = [decision for decision in explanation.candidates if decision.accepted]
        assert [decision.rank for decision in accepted] == list(range(1, len(accepted) + 1))

    def test_bid_filtering_can_be_disabled(self, small_weighted_graph):
        engine = RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(method="weighted_simrank", bid_filtering=False),
            bid_terms={"digital camera"},
        ).fit()
        candidates = engine.rewrite("camera").candidates()
        assert "laptop" in candidates or len(candidates) > 1


class TestEngineConfig:
    def test_defaults_follow_the_paper(self):
        config = EngineConfig()
        assert config.method == "weighted_simrank"
        assert config.max_rewrites == 5
        assert config.candidate_pool == 100
        assert config.deduplicate and config.bid_filtering

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"method": ""},
            {"max_rewrites": 0},
            {"max_rewrites": 10, "candidate_pool": 5},
            {"min_score": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_dict_round_trip(self):
        config = EngineConfig(
            method="evidence_simrank",
            backend="reference",
            similarity=SimrankConfig(
                c1=0.6,
                iterations=3,
                weight_source=WeightSource.CLICKS,
                evidence=EvidenceKind.EXPONENTIAL,
                zero_evidence_floor=0.1,
            ),
            max_rewrites=4,
            candidate_pool=50,
            min_score=0.05,
            deduplicate=False,
            bid_filtering=False,
        )
        payload = config.to_dict()
        assert payload["similarity"]["weight_source"] == "clicks"
        assert payload["similarity"]["evidence"] == "exponential"
        assert EngineConfig.from_dict(payload) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            EngineConfig.from_dict({"method": "simrank", "turbo": True})
        with pytest.raises(ValueError):
            EngineConfig.from_dict({"similarity": {"decay": 0.8}})

    def test_replace(self):
        config = EngineConfig().replace(method="simrank", max_rewrites=2)
        assert config.method == "simrank"
        assert config.max_rewrites == 2

    def test_engine_round_trips_through_to_dict(self, small_weighted_graph):
        config = EngineConfig(method="simrank", max_rewrites=2)
        engine = RewriteEngine.from_graph(small_weighted_graph, config).fit()
        clone = RewriteEngine.from_dict(engine.to_dict(), graph=small_weighted_graph).fit()
        assert clone.config == config
        assert clone.rewrite("camera").candidates() == engine.rewrite("camera").candidates()
