"""RewriteEngine lifecycle, serving cache, explanations and EngineConfig."""

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import EvidenceKind, SimrankConfig
from repro.graph.click_graph import WeightSource


def counting_top_rewrites(engine):
    """Wrap the engine's similarity top-k so tests can count invocations."""
    calls = {"count": 0}
    original = engine.method.top_rewrites

    def wrapper(*args, **kwargs):
        calls["count"] += 1
        return original(*args, **kwargs)

    engine.method.top_rewrites = wrapper
    return calls


class TestLifecycle:
    def test_serving_before_fit_raises(self):
        engine = RewriteEngine(EngineConfig(method="simrank"))
        with pytest.raises(RuntimeError):
            engine.rewrite("camera")
        with pytest.raises(RuntimeError):
            engine.explain("camera", "digital camera")
        with pytest.raises(RuntimeError):
            engine.precompute()

    def test_fit_without_a_graph_raises(self):
        with pytest.raises(RuntimeError):
            RewriteEngine(EngineConfig(method="simrank")).fit()

    def test_from_graph_then_fit(self, small_weighted_graph):
        engine = RewriteEngine.from_graph(small_weighted_graph, EngineConfig(method="simrank"))
        assert not engine.is_fitted
        assert engine.fit() is engine
        assert engine.is_fitted
        assert engine.graph is small_weighted_graph
        assert engine.rewrite("camera").covered

    def test_fit_accepts_a_graph_directly(self, small_weighted_graph):
        engine = RewriteEngine(EngineConfig(method="simrank")).fit(small_weighted_graph)
        assert engine.rewrite("camera").covered

    def test_refit_clears_the_cache(self, small_weighted_graph):
        engine = RewriteEngine.from_graph(small_weighted_graph, EngineConfig(method="simrank")).fit()
        engine.rewrite("camera")
        assert engine.cache_info().size == 1
        engine.fit(small_weighted_graph)
        assert engine.cache_info() == type(engine.cache_info())(hits=0, misses=0, size=0)

    def test_refit_on_a_changed_graph_serves_fresh_rewrites(self, small_weighted_graph):
        """Regression: a second fit() must invalidate every per-query cache layer.

        Serving a query, refitting on a graph where that query's edges changed,
        and serving again must reflect the new graph -- a stale engine cache or
        rewriter memo would silently return the first fit's rewrites.
        """
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        before = [r.rewrite for r in engine.rewrite("camera").rewrites]
        assert "digital camera" in before

        rewired = small_weighted_graph.copy()
        for ad in list(rewired.ads_of("digital camera")):
            rewired.remove_edge("digital camera", ad)
        engine.fit(rewired)
        after = [r.rewrite for r in engine.rewrite("camera").rewrites]
        assert "digital camera" not in after

        # And the direct rewriter memo (not just the engine-level cache) is fresh:
        assert "digital camera" not in [
            r.rewrite for r in engine._rewriter.rewrites_for("camera").rewrites
        ]

    def test_out_of_band_restore_invalidates_serving_caches(
        self, small_weighted_graph
    ):
        """Swapping the method's scores via restore() must not serve a stale
        cache built on the old fit (silently mixing two fits)."""
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        before = [r.rewrite for r in engine.rewrite("camera").rewrites]
        assert "digital camera" in before

        rewired = small_weighted_graph.copy()
        for ad in list(rewired.ads_of("digital camera")):
            rewired.remove_edge("digital camera", ad)
        other = RewriteEngine.from_graph(
            rewired, EngineConfig(method="simrank")
        ).fit()
        engine.method.restore(other.method.similarities())
        after = [r.rewrite for r in engine.rewrite("camera").rewrites]
        assert "digital camera" not in after

    def test_unknown_method_fails_at_construction(self):
        with pytest.raises(ValueError):
            RewriteEngine(EngineConfig(method="not-a-method"))


class TestServingCache:
    @pytest.fixture
    def engine(self, small_weighted_graph):
        return RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="weighted_simrank")
        ).fit()

    def test_repeated_rewrites_run_topk_once(self, engine):
        calls = counting_top_rewrites(engine)
        first = engine.rewrite("camera")
        second = engine.rewrite("camera")
        assert calls["count"] == 1
        assert second is first

    def test_rewrite_batch_is_aligned_and_deduplicated(self, engine):
        calls = counting_top_rewrites(engine)
        queries = ["camera", "pc", "camera", "flower", "pc", "camera"]
        results = engine.rewrite_batch(queries)
        assert [result.query for result in results] == queries
        assert calls["count"] == 3  # one similarity scan per unique query
        info = engine.cache_info()
        assert info.misses == 3
        assert info.hits == 3
        assert info.size == 3
        assert info.hit_rate == pytest.approx(0.5)

    def test_precompute_warms_every_graph_query(self, engine, small_weighted_graph):
        warmed = engine.precompute()
        assert warmed == len(list(small_weighted_graph.queries()))
        calls = counting_top_rewrites(engine)
        engine.rewrite_batch(sorted(str(q) for q in small_weighted_graph.queries()))
        assert calls["count"] == 0  # everything served from the cache

    def test_clear_cache_resets_counters(self, engine):
        engine.rewrite("camera")
        engine.rewrite("camera")
        engine.clear_cache()
        info = engine.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)

    def test_expansions_returns_plain_terms(self, engine):
        expansions = engine.expansions("camera", max_rewrites=2)
        assert len(expansions) <= 2
        assert all(term != "camera" for term in expansions)


class TestBoundedCache:
    """LRU serving cache: bookkeeping, eviction order, result equivalence."""

    def build(self, graph, cache_size):
        return RewriteEngine.from_graph(
            graph,
            EngineConfig(method="weighted_simrank", cache_size=cache_size),
        ).fit()

    def test_cache_info_reports_capacity_and_evictions(self, small_weighted_graph):
        engine = self.build(small_weighted_graph, cache_size=2)
        info = engine.cache_info()
        assert (info.capacity, info.evictions) == (2, 0)
        engine.rewrite_batch(["camera", "pc", "flower"])
        info = engine.cache_info()
        assert info.misses == 3
        assert info.size == 2  # bounded
        assert info.evictions == 1

    def test_eviction_is_least_recently_used(self, small_weighted_graph):
        engine = self.build(small_weighted_graph, cache_size=2)
        engine.rewrite("camera")
        engine.rewrite("pc")
        engine.rewrite("camera")  # refresh camera: pc is now the LRU entry
        engine.rewrite("flower")  # evicts pc, not camera
        calls = counting_top_rewrites(engine)
        engine.rewrite("camera")
        assert calls["count"] == 0  # still cached
        engine.rewrite("pc")
        assert calls["count"] == 1  # evicted, recomputed

    def test_evicted_queries_are_recomputed_identically(self, small_weighted_graph):
        """The tentpole invariant: eviction never changes served results."""
        bounded = self.build(small_weighted_graph, cache_size=1)
        unbounded = self.build(small_weighted_graph, cache_size=None)
        stream = ["camera", "pc", "camera", "flower", "pc", "camera", "flower"]
        bounded_lists = bounded.rewrite_batch(stream)
        unbounded_lists = unbounded.rewrite_batch(stream)
        for bounded_result, unbounded_result in zip(bounded_lists, unbounded_lists):
            assert bounded_result.as_tuples() == unbounded_result.as_tuples()
        assert bounded.cache_info().evictions > 0  # the bound actually engaged

    def test_full_lifecycle_bookkeeping(self, small_weighted_graph):
        """cache_info across precompute -> rewrite_batch -> clear_cache."""
        engine = self.build(small_weighted_graph, cache_size=None)
        num_queries = len(list(small_weighted_graph.queries()))
        assert engine.precompute() == num_queries
        info = engine.cache_info()
        assert (info.misses, info.size, info.evictions) == (num_queries, num_queries, 0)
        engine.rewrite_batch(["camera", "pc", "camera"])
        info = engine.cache_info()
        assert info.hits == 3
        assert info.misses == num_queries
        engine.clear_cache()
        info = engine.cache_info()
        assert (info.hits, info.misses, info.size, info.evictions) == (0, 0, 0, 0)
        assert info.capacity is None

    def test_precompute_beyond_capacity_computes_only_survivors(
        self, small_weighted_graph
    ):
        """Cold bounded warm-up skips the queries that would be evicted on
        arrival; the end-state cache is the same as a naive full replay."""
        engine = self.build(small_weighted_graph, cache_size=3)
        stream = sorted(str(q) for q in small_weighted_graph.queries())
        warmed = engine.precompute(stream)
        info = engine.cache_info()
        assert warmed == 3  # only the surviving tail was computed
        assert info.size == 3
        assert info.evictions == 0  # no compute-then-discard churn
        calls = counting_top_rewrites(engine)
        engine.rewrite_batch(stream[-3:])  # the tail is cached...
        assert calls["count"] == 0
        engine.rewrite(stream[0])  # ...earlier queries were never computed
        assert calls["count"] == 1

    def test_warm_bounded_precompute_never_recomputes_survivors(
        self, small_weighted_graph
    ):
        """A cached entry that survives the replay is refreshed in place --
        never evicted mid-warm-up by a new insertion and recomputed."""
        engine = self.build(small_weighted_graph, cache_size=3)
        engine.rewrite_batch(["camera", "pc", "flower"])
        calls = counting_top_rewrites(engine)
        # Replay of [camera, pc, flower] + [laptop, camera]: laptop and the
        # re-seen camera push out camera-then-pc, leaving {flower, laptop,
        # camera} -- camera and flower were already cached and stay so.
        warmed = engine.precompute(["laptop", "camera"])
        assert warmed == 1  # only laptop is new
        assert calls["count"] == 1  # survivors were not recomputed
        info = engine.cache_info()
        assert info.size == 3
        assert info.evictions == 1  # pc fell out of the replay

    def test_precompute_on_a_warm_bounded_cache_respects_recency(
        self, small_weighted_graph
    ):
        """A query re-seen during the warm-up is refreshed, not evicted --
        the same LRU replay semantics the serving path implements."""
        engine = self.build(small_weighted_graph, cache_size=2)
        engine.rewrite("camera")
        warmed = engine.precompute(["pc", "camera", "flower"])
        # Replay of [camera] + [pc, camera, flower]: pc arrives, camera is
        # refreshed, flower evicts pc -> survivors are camera and flower.
        assert warmed == 1  # only flower is computed; pc is never materialized
        calls = counting_top_rewrites(engine)
        engine.rewrite("camera")
        engine.rewrite("flower")
        assert calls["count"] == 0  # both survived the warm-up
        engine.rewrite("pc")
        assert calls["count"] == 1  # evicted-on-arrival, never computed

    def test_unbounded_cache_never_evicts(self, small_weighted_graph):
        engine = self.build(small_weighted_graph, cache_size=None)
        engine.precompute()
        engine.rewrite_batch(sorted(str(q) for q in small_weighted_graph.queries()))
        assert engine.cache_info().evictions == 0

    def test_batch_duplicates_survive_eviction_via_batch_memo(
        self, small_weighted_graph
    ):
        """Within one batch, a duplicate never recomputes -- even when the
        bounded cache already evicted the first occurrence's entry."""
        engine = self.build(small_weighted_graph, cache_size=1)
        calls = counting_top_rewrites(engine)
        results = engine.rewrite_batch(["camera", "pc", "camera"])
        # pc evicted camera from the LRU, but the batch memo still holds it.
        assert calls["count"] == 2
        assert results[2] is results[0]
        info = engine.cache_info()
        assert (info.hits, info.misses, info.size) == (1, 2, 1)

    @pytest.mark.parametrize("cache_size", [0, -1])
    def test_invalid_cache_size_rejected(self, cache_size):
        with pytest.raises(ValueError):
            EngineConfig(cache_size=cache_size)

    def test_cache_size_round_trips_through_to_dict(self):
        config = EngineConfig(cache_size=128)
        assert EngineConfig.from_dict(config.to_dict()) == config
        assert EngineConfig.from_dict(EngineConfig().to_dict()).cache_size is None


class TestConcurrentServing:
    """The serving half of the thread-safety contract (see the module
    docstring of ``repro.api.engine``): rewrite()/rewrite_batch() from many
    threads against one engine stay correct and keep the cache bounded."""

    def test_threaded_rewrites_match_ground_truth(self, small_weighted_graph):
        from concurrent.futures import ThreadPoolExecutor

        engine = RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(method="weighted_simrank", cache_size=2),
        ).fit()
        queries = sorted(str(q) for q in small_weighted_graph.queries())
        expected = {q: engine.rewrite(q).as_tuples() for q in queries}
        engine.clear_cache()
        stream = [queries[(i * 7) % len(queries)] for i in range(200)]

        with ThreadPoolExecutor(max_workers=8) as pool:
            results = list(pool.map(engine.rewrite, stream))

        for query, result in zip(stream, results):
            assert result.as_tuples() == expected[query]
        info = engine.cache_info()
        assert info.size <= 2  # the bound held under concurrent inserts
        # Double-computes under racing misses are allowed, torn counters
        # are not: every request is accounted a hit or a miss.
        assert info.hits + info.misses >= len(stream)

    def test_threaded_batches_share_one_cache_safely(self, small_weighted_graph):
        from concurrent.futures import ThreadPoolExecutor

        engine = RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(method="weighted_simrank", cache_size=3),
        ).fit()
        queries = sorted(str(q) for q in small_weighted_graph.queries())
        expected = {q: engine.rewrite(q).as_tuples() for q in queries}
        engine.clear_cache()
        batches = [queries[i:] + queries[:i] for i in range(len(queries))] * 4

        with ThreadPoolExecutor(max_workers=6) as pool:
            all_results = list(pool.map(engine.rewrite_batch, batches))

        for batch, results in zip(batches, all_results):
            for query, result in zip(batch, results):
                assert result.as_tuples() == expected[query]
        assert engine.cache_info().size <= 3


class TestExplain:
    @pytest.fixture
    def engine(self, small_weighted_graph):
        return RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(method="weighted_simrank", max_rewrites=3),
            bid_terms={"digital camera", "pc"},
        ).fit()

    def test_accepted_rewrite(self, engine):
        explanation = engine.explain("camera", "digital camera")
        assert explanation.accepted
        assert explanation.reason == "accepted"
        assert explanation.rank == 1
        assert explanation.similarity > 0

    def test_bid_term_filtered_rewrite(self, engine):
        explanation = engine.explain("camera", "laptop")
        assert not explanation.accepted
        assert explanation.reason == "not_in_bid_terms"
        assert explanation.rank is None

    def test_unrelated_rewrite(self, engine):
        explanation = engine.explain("camera", "no-such-query")
        assert not explanation.accepted
        assert explanation.reason == "below_similarity_floor"
        assert explanation.similarity == 0.0

    def test_trace_covers_the_candidate_pool(self, engine):
        explanation = engine.explain("camera", "digital camera")
        fates = {decision.fate for decision in explanation.candidates}
        assert "accepted" in fates
        assert "not_in_bid_terms" in fates
        accepted = [decision for decision in explanation.candidates if decision.accepted]
        assert [decision.rank for decision in accepted] == list(range(1, len(accepted) + 1))

    def test_bid_filtering_can_be_disabled(self, small_weighted_graph):
        engine = RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(method="weighted_simrank", bid_filtering=False),
            bid_terms={"digital camera"},
        ).fit()
        candidates = engine.rewrite("camera").candidates()
        assert "laptop" in candidates or len(candidates) > 1


class TestEngineConfig:
    def test_defaults_follow_the_paper(self):
        config = EngineConfig()
        assert config.method == "weighted_simrank"
        assert config.max_rewrites == 5
        assert config.candidate_pool == 100
        assert config.deduplicate and config.bid_filtering

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"method": ""},
            {"max_rewrites": 0},
            {"max_rewrites": 10, "candidate_pool": 5},
            {"min_score": -0.1},
        ],
    )
    def test_invalid_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            EngineConfig(**kwargs)

    def test_dict_round_trip(self):
        config = EngineConfig(
            method="evidence_simrank",
            backend="reference",
            similarity=SimrankConfig(
                c1=0.6,
                iterations=3,
                weight_source=WeightSource.CLICKS,
                evidence=EvidenceKind.EXPONENTIAL,
                zero_evidence_floor=0.1,
            ),
            max_rewrites=4,
            candidate_pool=50,
            min_score=0.05,
            deduplicate=False,
            bid_filtering=False,
        )
        payload = config.to_dict()
        assert payload["similarity"]["weight_source"] == "clicks"
        assert payload["similarity"]["evidence"] == "exponential"
        assert EngineConfig.from_dict(payload) == config

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValueError):
            EngineConfig.from_dict({"method": "simrank", "turbo": True})
        with pytest.raises(ValueError):
            EngineConfig.from_dict({"similarity": {"decay": 0.8}})

    def test_replace(self):
        config = EngineConfig().replace(method="simrank", max_rewrites=2)
        assert config.method == "simrank"
        assert config.max_rewrites == 2

    def test_engine_round_trips_through_to_dict(self, small_weighted_graph):
        config = EngineConfig(method="simrank", max_rewrites=2)
        engine = RewriteEngine.from_graph(small_weighted_graph, config).fit()
        clone = RewriteEngine.from_dict(engine.to_dict(), graph=small_weighted_graph).fit()
        assert clone.config == config
        assert clone.rewrite("camera").candidates() == engine.rewrite("camera").candidates()
