"""Refresh semantics of the serving engine: deltas, warm starts and the cache.

The contract under test (see ``RewriteEngine.refresh``):

* a no-op (empty) delta is a true no-op -- no refit, served rewrites
  identical, every cached entry and cache counter untouched;
* a delta touching one component invalidates exactly that component's
  cached queries -- re-serving other components' queries is all cache hits,
  re-serving the touched component's is misses (asserted via ``CacheInfo``);
* after a refresh, serving matches a from-scratch fit on the updated graph.
"""

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.graph.delta import ClickGraphDelta, DeltaBuilder
from repro.synth.scenarios import multi_component_graph

#: Tolerance-converged config so warm and cold fits agree to ~1e-7.
SIMILARITY = SimrankConfig(iterations=80, tolerance=1e-8, zero_evidence_floor=0.1)

BACKENDS = ["matrix", "sharded", "sparse"]


def build_graph():
    return multi_component_graph(
        num_components=4, queries_per_component=4, ads_per_component=3, seed=17
    )


def build_engine(graph, backend="sharded", cache_size=None):
    config = EngineConfig(
        method="weighted_simrank",
        backend=backend,
        similarity=SIMILARITY,
        cache_size=cache_size,
    )
    bid_terms = {str(query) for query in graph.queries()}
    return RewriteEngine.from_graph(graph, config, bid_terms=bid_terms).fit()


def component_queries(graph, component):
    return sorted(q for q in graph.queries() if str(q).startswith(f"c{component}_"))


def one_component_delta(graph, component=0):
    queries = component_queries(graph, component)
    ads = sorted(a for a in graph.ads() if str(a).startswith(f"c{component}_"))
    stats = graph.edge(queries[0], ads[0])
    return (
        DeltaBuilder(graph)
        .set_edge(
            queries[0],
            ads[0],
            impressions=stats.impressions + 500,
            clicks=stats.clicks + 50,
        )
        .build()
    )


class TestNoOpDelta:
    def test_refresh_with_empty_delta_keeps_cache_warm(self):
        engine = build_engine(build_graph())
        queries = sorted(engine.graph.queries())
        before = engine.rewrite_batch(queries)
        info_before = engine.cache_info()

        engine.refresh(ClickGraphDelta())

        assert engine.last_refresh.refit is False
        assert engine.last_refresh.invalidated_entries == 0
        # Cache untouched: same size, same counters.
        assert engine.cache_info() == info_before
        # Re-serving is all hits, and rewrites are identical.
        after = engine.rewrite_batch(queries)
        assert [r.as_tuples() for r in after] == [r.as_tuples() for r in before]
        info_after = engine.cache_info()
        assert info_after.hits == info_before.hits + len(queries)
        assert info_after.misses == info_before.misses

    def test_builder_cancelling_events_is_noop(self):
        engine = build_engine(build_graph())
        queries = sorted(engine.graph.queries())
        engine.rewrite_batch(queries)
        stats = engine.graph.edge("c0_q0", "c0_a0")
        delta = (
            DeltaBuilder(engine.graph)
            .set_edge("c0_q0", "c0_a0", impressions=999, clicks=1)
            .set_edge_stats("c0_q0", "c0_a0", stats)
            .build()
        )
        assert delta.is_empty
        engine.refresh(delta)
        assert engine.last_refresh.refit is False


class TestSelectiveInvalidation:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_only_touched_component_misses(self, backend):
        engine = build_engine(build_graph(), backend=backend)
        queries = sorted(engine.graph.queries())
        engine.rewrite_batch(queries)
        touched = component_queries(engine.graph, 0)
        untouched = [query for query in queries if query not in touched]

        engine.refresh(one_component_delta(engine.graph, component=0))
        assert engine.last_refresh.refit is True
        assert engine.last_refresh.invalidated_entries == len(touched)

        base = engine.cache_info()
        engine.rewrite_batch(untouched)
        info = engine.cache_info()
        assert info.hits == base.hits + len(untouched)
        assert info.misses == base.misses

        engine.rewrite_batch(touched)
        info = engine.cache_info()
        assert info.misses == base.misses + len(touched)

    def test_sharded_backend_reuses_untouched_components(self):
        engine = build_engine(build_graph(), backend="sharded")
        engine.rewrite_batch(sorted(engine.graph.queries()))
        engine.refresh(one_component_delta(engine.graph, component=1))
        assert engine.method.reused_shards == 3
        assert engine.method.refitted_shards == 1
        assert engine.method.warm_started is True

    def test_added_edge_merging_components_invalidates_both(self):
        engine = build_engine(build_graph())
        queries = sorted(engine.graph.queries())
        engine.rewrite_batch(queries)
        # Bridge components 0 and 1: both become one dirty component.
        delta = (
            DeltaBuilder(engine.graph)
            .set_edge("c0_q0", "c1_a0", impressions=100, clicks=10)
            .build()
        )
        engine.refresh(delta)
        merged = set(component_queries(engine.graph, 0)) | set(
            component_queries(engine.graph, 1)
        )
        assert engine.last_refresh.invalidated_entries == len(merged)

    def test_removed_edge_invalidates_old_component(self):
        engine = build_engine(build_graph())
        queries = sorted(engine.graph.queries())
        engine.rewrite_batch(queries)
        target = component_queries(engine.graph, 2)
        ads = sorted(a for a in engine.graph.ads() if str(a).startswith("c2_"))
        edge = next(
            (q, a) for q in target for a in ads if engine.graph.has_edge(q, a)
        )
        delta = DeltaBuilder(engine.graph).remove_edge(*edge).build()
        engine.refresh(delta)
        # Everything in the touched component is invalidated, even queries
        # the removal may have split away from the touched endpoints.
        assert engine.last_refresh.invalidated_entries == len(target)


class TestRefreshServingCorrectness:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_refresh_matches_from_scratch_fit(self, backend):
        graph = build_graph()
        engine = build_engine(graph.copy(), backend=backend)
        queries = sorted(graph.queries())
        engine.rewrite_batch(queries)
        delta = one_component_delta(engine.graph, component=0)

        fresh_graph = graph.copy().apply_delta(delta)
        fresh = build_engine(fresh_graph, backend=backend)
        engine.refresh(delta)

        refreshed_profile = engine.serving_profile(queries)
        fresh_profile = fresh.serving_profile(queries)
        assert [row[:3] for row in refreshed_profile] == [
            row[:3] for row in fresh_profile
        ]
        for refreshed_row, fresh_row in zip(refreshed_profile, fresh_profile):
            assert refreshed_row[3] == pytest.approx(fresh_row[3], abs=1e-6)

    def test_bounded_cache_refresh_keeps_lru_semantics(self):
        graph = build_graph()
        engine = build_engine(graph.copy(), backend="sharded", cache_size=6)
        queries = sorted(graph.queries())
        engine.rewrite_batch(queries)
        engine.refresh(one_component_delta(engine.graph, component=3))
        # Serving still works and the bound still holds after invalidation.
        engine.rewrite_batch(queries)
        info = engine.cache_info()
        assert info.size <= 6
        assert info.capacity == 6

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_zero_tolerance_refresh_keeps_cache_exactly_consistent(self, backend):
        """With tolerance=0 the refit is cold and kept entries stay *exact*.

        The fixed-iteration-count result is defined from the identity start;
        a seeded continuation would over-converge, so refresh must not seed
        -- and then untouched components recompute bit-identically, making
        every surviving cache entry equal to a fresh recompute.
        """
        graph = build_graph()
        config = EngineConfig(
            method="simrank",
            backend=backend,
            similarity=SimrankConfig(iterations=7, zero_evidence_floor=0.1),
        )
        engine = RewriteEngine.from_graph(
            graph.copy(), config, bid_terms={str(q) for q in graph.queries()}
        ).fit()
        queries = sorted(graph.queries())
        cached = {q: r.as_tuples() for q, r in zip(queries, engine.rewrite_batch(queries))}

        engine.refresh(one_component_delta(engine.graph, component=0))
        assert engine.last_refresh.warm_started is False
        untouched = [q for q in queries if q not in component_queries(engine.graph, 0)]
        for query in untouched:
            recomputed = engine._rewriter.compute_rewrites(query).as_tuples()
            assert cached[query] == recomputed  # bit-identical, not approx

    def test_warm_start_fit_requires_tolerance(self):
        graph = build_graph()
        engine = RewriteEngine.from_graph(
            graph,
            EngineConfig(
                method="weighted_simrank",
                similarity=SimrankConfig(iterations=7, zero_evidence_floor=0.1),
            ),
            bid_terms={str(q) for q in graph.queries()},
        ).fit()
        with pytest.raises(RuntimeError, match="tolerance"):
            engine.fit(warm_start=True)

    def test_successive_refreshes_accumulate(self):
        graph = build_graph()
        engine = build_engine(graph.copy(), backend="sharded")
        queries = sorted(graph.queries())
        for component in (0, 1):
            delta = one_component_delta(engine.graph, component=component)
            engine.refresh(delta)
        fresh = build_engine(engine.graph.copy(), backend="sharded")
        assert [row[:3] for row in engine.serving_profile(queries)] == [
            row[:3] for row in fresh.serving_profile(queries)
        ]


class TestOldSignatureMethods:
    def test_cold_fit_stays_positional_for_legacy_methods(self):
        """Methods overriding the pre-warm-start fit(graph) still cold-fit."""
        from repro.api.registry import register_method, unregister_method
        from repro.core.simrank_matrix import MatrixSimrank

        class LegacyMethod(MatrixSimrank):
            def fit(self, graph):  # old single-argument signature
                return super().fit(graph)

        register_method("legacy_method", backends=("matrix",))(
            lambda config, backend: LegacyMethod(config=config)
        )
        try:
            graph = build_graph()
            engine = RewriteEngine.from_graph(
                graph,
                EngineConfig(method="legacy_method", similarity=SIMILARITY),
                bid_terms={str(q) for q in graph.queries()},
            ).fit()
            assert engine.rewrite(sorted(graph.queries())[0]) is not None
            # Warm paths do need the new signature and say so clearly.
            with pytest.raises(TypeError):
                engine.fit(warm_start=True)
        finally:
            unregister_method("legacy_method")

    def test_failed_refresh_rolls_the_delta_back(self):
        """A refit failure mid-refresh must not leave the graph mutated."""
        from repro.api.registry import register_method, unregister_method
        from repro.core.simrank_matrix import MatrixSimrank

        class LegacyMethod(MatrixSimrank):
            def fit(self, graph):  # warm refits pass a keyword: TypeError
                return super().fit(graph)

        register_method("legacy_refresh_method", backends=("matrix",))(
            lambda config, backend: LegacyMethod(config=config)
        )
        try:
            graph = build_graph()
            engine = RewriteEngine.from_graph(
                graph.copy(),
                EngineConfig(method="legacy_refresh_method", similarity=SIMILARITY),
                bid_terms={str(q) for q in graph.queries()},
            ).fit()
            queries = sorted(graph.queries())
            before = engine.serving_profile(queries)
            delta = one_component_delta(engine.graph, component=0)
            with pytest.raises(TypeError):
                engine.refresh(delta)
            assert engine.graph == graph  # delta rolled back
            assert engine.serving_profile(queries) == before
            engine.refresh(delta.__class__())  # engine still consistent
        finally:
            unregister_method("legacy_refresh_method")


class TestRefreshErrors:
    def test_unfitted_engine_rejects_refresh(self):
        graph = build_graph()
        engine = RewriteEngine.from_graph(
            graph, EngineConfig(method="weighted_simrank", similarity=SIMILARITY)
        )
        with pytest.raises(RuntimeError, match="not been fitted"):
            engine.refresh(ClickGraphDelta())

    def test_rejected_warm_fit_does_not_rebind_the_graph(self, tmp_path):
        """A refused fit(warm_start=True) must leave engine.graph untouched."""
        engine = build_engine(build_graph())
        engine.save(tmp_path / "snap")
        loaded = RewriteEngine.load(tmp_path / "snap")
        # Force the tolerance guard: a zero-tolerance config rejects seeding.
        loaded.config = loaded.config.replace(
            similarity=SimrankConfig(iterations=7, zero_evidence_floor=0.1)
        )
        other = build_graph()
        with pytest.raises(RuntimeError, match="tolerance"):
            loaded.fit(other, warm_start=True)
        assert loaded.graph is None  # never rebound to the rejected graph

    def test_snapshot_engine_without_graph_rejects_refresh(self, tmp_path):
        engine = build_engine(build_graph())
        engine.save(tmp_path / "snap")
        loaded = RewriteEngine.load(tmp_path / "snap")
        delta = ClickGraphDelta(removed=(("c0_q0", "c0_a0"),))
        with pytest.raises(RuntimeError, match="warm_start"):
            loaded.refresh(delta)

    def test_warm_start_fit_requires_previous_scores(self):
        graph = build_graph()
        engine = RewriteEngine.from_graph(
            graph, EngineConfig(method="weighted_simrank", similarity=SIMILARITY)
        )
        with pytest.raises(RuntimeError, match="warm_start"):
            engine.fit(warm_start=True)

    def test_mismatched_delta_leaves_engine_consistent(self):
        engine = build_engine(build_graph())
        queries = sorted(engine.graph.queries())
        before = engine.serving_profile(queries)
        bad = ClickGraphDelta(removed=(("never", "seen"),))
        with pytest.raises(ValueError):
            engine.refresh(bad)
        assert engine.serving_profile(queries) == before


class TestCopy:
    """RewriteEngine.copy(): the building block of copy-on-write serving."""

    def test_copy_serves_identically_and_shares_no_cache(self):
        engine = build_engine(build_graph(), cache_size=8)
        queries = sorted(str(q) for q in engine.graph.queries())
        engine.rewrite_batch(queries[:4])
        clone = engine.copy()
        assert clone is not engine
        assert clone.serving_profile(queries) == engine.serving_profile(queries)
        # Counters came across, but the cache itself is independent.
        assert clone.cache_info().size == engine.cache_info().size
        clone.clear_cache()
        assert clone.cache_info().size == 0
        assert engine.cache_info().size > 0

    def test_refreshing_the_copy_leaves_the_original_untouched(self):
        graph = build_graph()
        engine = build_engine(graph)
        queries = sorted(str(q) for q in graph.queries())
        before_profile = engine.serving_profile(queries)
        before_edges = {(q, a) for q, a, _ in engine.graph.edges()}

        clone = engine.copy()
        clone.refresh(one_component_delta(clone.graph))

        assert engine.graph is not clone.graph
        assert {(q, a) for q, a, _ in engine.graph.edges()} == before_edges
        assert engine.serving_profile(queries) == before_profile
        assert engine.last_refresh is None
        assert clone.last_refresh is not None
        # ... and the refreshed copy matches a from-scratch fit.
        fresh = build_engine(clone.graph.copy())
        assert [row[:3] for row in clone.serving_profile(queries)] == [
            row[:3] for row in fresh.serving_profile(queries)
        ]

    def test_copy_of_a_snapshot_engine_keeps_serving(self, tmp_path):
        engine = build_engine(build_graph())
        queries = sorted(str(q) for q in engine.graph.queries())
        engine.save(tmp_path / "snap")
        loaded = RewriteEngine.load(tmp_path / "snap")
        clone = loaded.copy()
        assert clone.graph is None
        assert clone.serving_profile(queries) == engine.serving_profile(queries)
