"""Engine snapshots: save/load round trips, the named store, failure modes."""

import json

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.snapshot import (
    MANIFEST_FILENAME,
    SCORES_FILENAME,
    SNAPSHOT_FORMAT_VERSION,
    EngineSnapshotStore,
    SnapshotError,
    read_snapshot,
    write_snapshot,
)
from repro.core.config import SimrankConfig
from repro.graph.click_graph import ClickGraph


class TestRoundTrip:
    @pytest.fixture
    def fitted(self, small_weighted_graph):
        config = EngineConfig(
            method="weighted_simrank",
            similarity=SimrankConfig(iterations=5, zero_evidence_floor=0.1),
            max_rewrites=3,
        )
        return RewriteEngine.from_graph(
            small_weighted_graph, config, bid_terms={"digital camera", "pc", "laptop"}
        ).fit()

    def test_served_rewrites_are_identical_without_refitting(
        self, fitted, small_weighted_graph, tmp_path
    ):
        path = fitted.save(tmp_path / "snap")
        loaded = RewriteEngine.load(path)
        assert loaded.is_fitted
        assert loaded.graph is None  # no graph persisted, no fixpoint run
        queries = sorted(small_weighted_graph.queries())
        assert loaded.serving_profile(queries) == fitted.serving_profile(queries)

    def test_config_and_bid_terms_survive(self, fitted, tmp_path):
        loaded = RewriteEngine.load(fitted.save(tmp_path / "snap"))
        assert loaded.config == fitted.config
        assert loaded.bid_terms == fitted.bid_terms

    def test_fit_metadata_survives(self, fitted, tmp_path):
        loaded = RewriteEngine.load(fitted.save(tmp_path / "snap"))
        assert loaded.method.iterations_run == fitted.method.iterations_run

    def test_fit_metadata_survives_for_reference_methods(
        self, small_weighted_graph, tmp_path
    ):
        """Reference methods record iterations on their result objects; the
        manifest must still carry them (and a re-save must not drop them)."""
        engine = RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(method="weighted_simrank", backend="reference"),
        ).fit()
        expected = engine.method.result.iterations_run
        path = engine.save(tmp_path / "snap")
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        assert manifest["fit"]["iterations_run"] == expected
        loaded = RewriteEngine.load(path)
        resaved = loaded.save(tmp_path / "snap2")
        manifest = json.loads((resaved / MANIFEST_FILENAME).read_text())
        assert manifest["fit"]["iterations_run"] == expected

    def test_refit_after_load_supersedes_snapshot_metadata(
        self, small_weighted_graph, tmp_path
    ):
        """Regression: a loaded-then-refitted engine must persist the *new*
        fit's iteration count, not the stale one its snapshot recorded."""
        engine = RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(
                method="weighted_simrank",
                backend="reference",
                similarity=SimrankConfig(iterations=2),
            ),
        ).fit()
        path = engine.save(tmp_path / "snap")
        manifest_path = path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["fit"]["iterations_run"] = 99  # distinguishable marker
        manifest_path.write_text(json.dumps(manifest))
        # Un-refitted, a re-save forwards the snapshot's recorded value...
        loaded = RewriteEngine.load(path)
        resaved = json.loads(
            (loaded.save(tmp_path / "snap2") / MANIFEST_FILENAME).read_text()
        )
        assert resaved["fit"]["iterations_run"] == 99
        # ...but a refit supersedes it with the fresh fit's real count.
        loaded = RewriteEngine.load(path)
        loaded.fit(small_weighted_graph)
        refit_manifest = json.loads(
            (loaded.save(tmp_path / "snap3") / MANIFEST_FILENAME).read_text()
        )
        assert refit_manifest["fit"]["iterations_run"] == 2

    def test_resave_after_out_of_band_refit_drops_stale_carried_state(
        self, small_weighted_graph, tmp_path
    ):
        """A loaded engine whose method is refit out of band must not pair
        the new scores with the old snapshot's universe/fingerprint."""
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        loaded = RewriteEngine.load(engine.save(tmp_path / "snap"))
        other_graph = ClickGraph()
        other_graph.add_edge("tv", "bestbuy.com", impressions=10, clicks=2)
        other_graph.add_edge("hdtv", "bestbuy.com", impressions=9, clicks=2)
        loaded.method.fit(other_graph)  # out-of-band: engine.graph stays None
        resaved = loaded.save(tmp_path / "snap2")
        manifest = json.loads((resaved / MANIFEST_FILENAME).read_text())
        # Carried state described the old graph; it must be dropped, not lied.
        assert manifest["query_universe"] is None
        assert manifest["fit"]["graph"] is None
        # The reloaded engine serves (and warms) the new fit's universe.
        reloaded = RewriteEngine.load(resaved)
        assert reloaded.precompute() == 2  # tv, hdtv -- from the score store
        assert [r.rewrite for r in reloaded.rewrite("tv").rewrites] == ["hdtv"]

    def test_restored_trace_accessors_fail_loudly(self, small_weighted_graph, tmp_path):
        engine = RewriteEngine.from_graph(
            small_weighted_graph,
            EngineConfig(method="evidence_simrank", backend="reference"),
        ).fit()
        loaded = RewriteEngine.load(engine.save(tmp_path / "snap"))
        with pytest.raises(RuntimeError, match="not part of an engine snapshot"):
            loaded.method.query_history
        with pytest.raises(RuntimeError, match="not part of an engine snapshot"):
            loaded.method.simrank_result

    def test_loaded_cache_starts_fresh_and_precompute_warms_the_store(
        self, fitted, tmp_path
    ):
        warmed_by_fitted = fitted.precompute()
        loaded = RewriteEngine.load(fitted.save(tmp_path / "snap"))
        info = loaded.cache_info()
        assert (info.hits, info.misses, info.size) == (0, 0, 0)
        # No graph attached: precompute warms the snapshot's recorded query
        # universe -- the same count the fitted engine warmed.
        assert loaded.precompute() == warmed_by_fitted

    def test_precompute_after_load_covers_pairless_queries(self, tmp_path):
        """The reference backend's dict store drops isolated queries, but the
        snapshot's query universe still warms them -- exactly like a fitted
        engine's precompute (which walks the graph) would."""
        graph = ClickGraph()
        graph.add_edge("camera", "hp.com", impressions=10, clicks=2)
        graph.add_edge("digital camera", "hp.com", impressions=9, clicks=2)
        graph.add_query("lonely")
        engine = RewriteEngine.from_graph(
            graph, EngineConfig(method="simrank", backend="reference")
        ).fit()
        loaded = RewriteEngine.load(engine.save(tmp_path / "snap"))
        assert loaded.precompute() == 3  # camera, digital camera, lonely
        assert not loaded.rewrite("lonely").covered
        # A re-save of the loaded engine forwards the universe unchanged.
        reloaded = RewriteEngine.load(loaded.save(tmp_path / "snap2"))
        assert reloaded.precompute() == 3

    def test_missing_bid_terms_round_trip_as_none(self, small_weighted_graph, tmp_path):
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        loaded = RewriteEngine.load(engine.save(tmp_path / "snap"))
        assert loaded.bid_terms is None

    def test_int_node_ids_round_trip(self, tmp_path):
        graph = ClickGraph()
        graph.add_edge(1, 100, impressions=500, clicks=40)
        graph.add_edge(2, 100, impressions=400, clicks=35)
        engine = RewriteEngine.from_graph(graph, EngineConfig(method="simrank")).fit()
        loaded = RewriteEngine.load(engine.save(tmp_path / "snap"))
        # The identifier comes back as int, not "1" -- rewrite(1) still hits.
        assert [r.rewrite for r in loaded.rewrite(1).rewrites] == [2]

    def test_manifest_records_format_and_fit(self, fitted, tmp_path):
        path = fitted.save(tmp_path / "snap")
        manifest = json.loads((path / MANIFEST_FILENAME).read_text())
        assert manifest["format_version"] == SNAPSHOT_FORMAT_VERSION
        assert manifest["fit"]["method"] == "weighted_simrank"
        assert manifest["fit"]["iterations_run"] == fitted.method.iterations_run
        assert manifest["fit"]["num_queries"] == len(manifest["query_index"])
        assert (path / SCORES_FILENAME).is_file()

    def test_save_overwrites_previous_snapshot(self, fitted, tmp_path):
        path = fitted.save(tmp_path / "snap")
        again = fitted.save(tmp_path / "snap")
        assert again == path
        assert RewriteEngine.load(path).is_fitted


class TestFailureModes:
    def test_unfitted_engine_refuses_to_save(self, tmp_path):
        engine = RewriteEngine(EngineConfig(method="simrank"))
        with pytest.raises(SnapshotError):
            write_snapshot(engine, tmp_path / "snap")

    def test_loading_a_missing_snapshot_fails_loudly(self, tmp_path):
        with pytest.raises(SnapshotError):
            read_snapshot(tmp_path / "nope")

    def test_future_format_version_is_rejected(self, small_weighted_graph, tmp_path):
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        manifest_path = path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["format_version"] = SNAPSHOT_FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_corrupt_manifest_is_rejected(self, small_weighted_graph, tmp_path):
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        (path / MANIFEST_FILENAME).write_text("{not json")
        with pytest.raises(SnapshotError):
            read_snapshot(path)

    def test_corrupt_score_matrix_is_rejected(self, small_weighted_graph, tmp_path):
        """A truncated/damaged npz raises SnapshotError, not a raw zip error."""
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        (path / SCORES_FILENAME).write_bytes(b"not a real npz payload")
        with pytest.raises(SnapshotError, match="corrupt snapshot score matrix"):
            read_snapshot(path)

    def test_byte_corrupt_manifest_is_rejected(self, small_weighted_graph, tmp_path):
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        (path / MANIFEST_FILENAME).write_bytes(b"\xff\xfe\x00bad")
        with pytest.raises(SnapshotError, match="corrupt snapshot manifest"):
            read_snapshot(path)

    def test_load_respects_engine_subclasses(self, small_weighted_graph, tmp_path):
        class InstrumentedEngine(RewriteEngine):
            pass

        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        assert isinstance(InstrumentedEngine.load(path), InstrumentedEngine)

    def test_wrong_typed_bid_terms_in_manifest_is_rejected(
        self, small_weighted_graph, tmp_path
    ):
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        manifest_path = path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        manifest["bid_terms"] = 5
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="invalid bid_terms"):
            read_snapshot(path)

    @pytest.mark.parametrize("payload", ["null", "[]", '"a string"'])
    def test_non_object_manifest_is_rejected(
        self, small_weighted_graph, tmp_path, payload
    ):
        """Valid JSON that is not an object raises SnapshotError, not
        AttributeError."""
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        (path / MANIFEST_FILENAME).write_text(payload)
        with pytest.raises(SnapshotError, match="expected a JSON object"):
            read_snapshot(path)

    @pytest.mark.parametrize("missing_key", ["engine_config", "query_index"])
    def test_manifest_missing_required_keys_is_rejected(
        self, small_weighted_graph, tmp_path, missing_key
    ):
        """Valid JSON lacking required keys raises SnapshotError, not KeyError."""
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        manifest_path = path / MANIFEST_FILENAME
        manifest = json.loads(manifest_path.read_text())
        del manifest[missing_key]
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(SnapshotError, match="missing key"):
            read_snapshot(path)

    def test_interrupted_overwrite_keeps_the_old_snapshot_intact(
        self, small_weighted_graph, tmp_path, monkeypatch
    ):
        """Regression: saves are staged and swapped in atomically.

        A crash mid-overwrite used to be able to pair the old manifest with
        the new score matrix -- silently wrong serving when the node counts
        match.  A failed save must leave the previous snapshot fully intact
        and no staging debris behind.
        """
        import repro.api.snapshot as snapshot_module

        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        path = engine.save(tmp_path / "snap")
        before = RewriteEngine.load(path).serving_profile(
            sorted(small_weighted_graph.queries())
        )

        original_save_npz = snapshot_module.sparse.save_npz

        def poisoned_save_npz(file, matrix):
            original_save_npz(file, matrix)  # scores written, then the crash
            raise RuntimeError("simulated crash before the manifest write")

        monkeypatch.setattr(snapshot_module.sparse, "save_npz", poisoned_save_npz)
        with pytest.raises(RuntimeError):
            engine.save(tmp_path / "snap")
        monkeypatch.undo()

        after = RewriteEngine.load(path).serving_profile(
            sorted(small_weighted_graph.queries())
        )
        assert after == before
        assert [entry.name for entry in tmp_path.iterdir()] == ["snap"]

    @pytest.mark.parametrize("backend", ["reference", "matrix", "sharded", "sparse"])
    def test_unrestored_ad_scores_fail_loudly_not_with_attribute_error(
        self, small_weighted_graph, tmp_path, backend
    ):
        """Snapshots persist query-side scores only; the ad-side accessors of
        a restored engine must raise a clear RuntimeError on every backend --
        neither an AttributeError on None nor a silently fabricated 0.0."""
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank", backend=backend)
        ).fit()
        loaded = RewriteEngine.load(engine.save(tmp_path / backend))
        with pytest.raises(RuntimeError, match="not part of an engine snapshot"):
            loaded.method.ad_similarity("hp.com", "dell.com")
        if backend == "sharded":
            with pytest.raises(RuntimeError, match="not part of an engine snapshot"):
                loaded.method.num_shards

    def test_non_json_node_ids_fail_at_save_time(self, tmp_path):
        graph = ClickGraph()
        graph.add_edge(("a", "tuple"), "ad", impressions=10, clicks=2)
        graph.add_edge(("b", "tuple"), "ad", impressions=10, clicks=2)
        engine = RewriteEngine.from_graph(graph, EngineConfig(method="simrank")).fit()
        with pytest.raises(SnapshotError):
            engine.save(tmp_path / "snap")

    def test_non_json_node_ids_in_a_restored_store_fail_at_save_time(
        self, small_weighted_graph, tmp_path
    ):
        """An out-of-band restore() can put nodes in the index that the
        bound graph never had -- those must be validated too."""
        bad_graph = ClickGraph()
        bad_graph.add_edge(("a", "tuple"), "ad", impressions=10, clicks=2)
        bad_graph.add_edge(("b", "tuple"), "ad", impressions=10, clicks=2)
        bad_scores = (
            RewriteEngine.from_graph(bad_graph, EngineConfig(method="simrank"))
            .fit()
            .method.similarities()
        )
        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()
        engine.method.restore(bad_scores, graph=small_weighted_graph)
        with pytest.raises(SnapshotError):
            engine.save(tmp_path / "snap")


class TestEngineSnapshotStore:
    @pytest.fixture
    def engine(self, small_weighted_graph):
        return RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="simrank")
        ).fit()

    def test_named_save_load_list_delete(self, engine, tmp_path):
        store = EngineSnapshotStore(tmp_path / "engines")
        assert store.list_snapshots() == []
        store.save("two-week", engine)
        assert "two-week" in store
        assert store.list_snapshots() == ["two-week"]
        loaded = store.load("two-week")
        assert [r.rewrite for r in loaded.rewrite("camera").rewrites] == [
            r.rewrite for r in engine.rewrite("camera").rewrites
        ]
        store.delete("two-week")
        assert store.list_snapshots() == []
        store.delete("two-week")  # deleting again is a no-op

    def test_unknown_name_raises_key_error(self, tmp_path):
        with pytest.raises(KeyError):
            EngineSnapshotStore(tmp_path).load("nope")

    @pytest.mark.parametrize("name", ["", ".", "..", ".hidden", "a/b", "a\\b"])
    def test_invalid_names_are_rejected(self, name, tmp_path):
        store = EngineSnapshotStore(tmp_path)
        with pytest.raises(ValueError):
            store.path(name)

    @pytest.mark.parametrize("name", ["", ".hidden", "a/b"])
    def test_membership_and_delete_tolerate_invalid_names(self, name, tmp_path):
        """Probing contracts: `in` answers False, delete stays a no-op."""
        store = EngineSnapshotStore(tmp_path)
        assert name not in store
        store.delete(name)  # must not raise

    def test_crashed_staging_directories_are_not_listed(self, engine, tmp_path):
        """A save killed before its atomic swap must not surface as a snapshot."""
        import os
        import subprocess

        store = EngineSnapshotStore(tmp_path)
        store.save("real", engine)
        # Simulate the debris of a crashed save: a fully written staging dir
        # whose pid belongs to a process that has already exited.
        child = subprocess.Popen(["python", "-c", "pass"])
        child.wait()
        debris = tmp_path / f".real.staging-{child.pid}"
        debris.mkdir()
        for entry in store.path("real").iterdir():
            (debris / entry.name).write_bytes(entry.read_bytes())
        # Concurrent saves in flight (live pids -- another process, or
        # another thread of this one) must be left alone.
        in_flight = tmp_path / f".real.staging-{os.getppid()}"
        in_flight.mkdir()
        same_process = tmp_path / f".real.staging-{os.getpid()}-424242"
        same_process.mkdir()
        assert store.list_snapshots() == ["real"]
        # The next save of the same name sweeps the orphan -- no disk leak --
        # without touching any live writer's staging directory.
        store.save("real", engine)
        assert not debris.exists()
        assert in_flight.is_dir()
        assert same_process.is_dir()
        assert store.list_snapshots() == ["real"]
