"""Regression tests for the RL001 findings fixed in the engine's cache path.

The lock-discipline checker (RL001) found ``refresh``/``precompute``/
``_warm_bounded``/``__repr__`` touching the serving cache and its counters
outside ``_cache_lock`` while concurrent ``rewrite`` calls mutate the same
structures under it.  The fix routes every access through the lock --
without ever holding it across a ``rewrite()`` call, which takes the
(non-reentrant) lock itself.  These tests pin the accounting under
concurrency and the absence of self-deadlock on the warm paths.
"""

import threading

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig


def build_engine(graph, cache_size=None):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=10),
        cache_size=cache_size,
        bid_filtering=False,
    )
    return RewriteEngine.from_graph(graph, config).fit()


class TestConcurrentCacheAccounting:
    def test_hits_plus_misses_equals_requests(self, small_weighted_graph):
        engine = build_engine(small_weighted_graph)
        queries = list(engine.graph.queries())
        rounds = 30
        threads = 4

        def serve():
            for _ in range(rounds):
                for query in queries:
                    engine.rewrite(query)

        workers = [threading.Thread(target=serve) for _ in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        stats = engine.cache_info()
        assert stats.hits + stats.misses == threads * rounds * len(queries)
        assert stats.size == len(queries)

    def test_precompute_races_with_serving_without_deadlock_or_drift(
        self, small_weighted_graph
    ):
        engine = build_engine(small_weighted_graph, cache_size=3)
        queries = list(engine.graph.queries())
        stop = threading.Event()

        def serve():
            while not stop.is_set():
                for query in queries:
                    engine.rewrite(query)

        server = threading.Thread(target=serve)
        server.start()
        try:
            for _ in range(10):
                engine.precompute(queries)
        finally:
            stop.set()
            server.join(timeout=10.0)
        assert not server.is_alive(), "serving thread wedged against precompute"
        assert engine.cache_info().size <= 3

    def test_repr_is_safe_during_serving(self, small_weighted_graph):
        engine = build_engine(small_weighted_graph)
        queries = list(engine.graph.queries())
        stop = threading.Event()

        def serve():
            while not stop.is_set():
                for query in queries:
                    engine.rewrite(query)

        server = threading.Thread(target=serve)
        server.start()
        try:
            for _ in range(50):
                assert "RewriteEngine(" in repr(engine)
        finally:
            stop.set()
            server.join(timeout=10.0)
        assert not server.is_alive()
