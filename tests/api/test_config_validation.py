"""Construction-time validation of EngineConfig (satellite of the auto planner).

Regression: a typo'd ``backend`` or nonsensical ``n_jobs`` used to survive
construction and blow up later, deep inside ``fit()`` or a snapshot load.
Every rejection now happens where the mistake is made and raises
:class:`~repro.api.config.ConfigError` -- a :class:`ValueError` subclass, so
pre-existing ``except ValueError`` call sites keep working.
"""

import pytest

from repro.api.config import ConfigError, EngineConfig
from repro.api.registry import SIMRANK_BACKENDS


class TestBackendValidation:
    def test_typod_backend_rejected_at_construction(self):
        with pytest.raises(ConfigError, match="no backend 'gpu'"):
            EngineConfig(method="simrank", backend="gpu")

    @pytest.mark.parametrize("backend", sorted(SIMRANK_BACKENDS))
    def test_every_registered_backend_accepted(self, backend):
        assert EngineConfig(method="simrank", backend=backend).backend == backend

    def test_none_backend_selects_method_default_later(self):
        assert EngineConfig(method="simrank").backend is None

    def test_unregistered_method_defers_backend_validation(self):
        """Plugin methods may be configured before they register."""
        config = EngineConfig(method="plugin_method", backend="custom")
        assert config.backend == "custom"

    def test_replace_revalidates(self):
        config = EngineConfig(method="simrank", backend="matrix")
        with pytest.raises(ConfigError):
            config.replace(backend="gpu")


class TestParallelKnobValidation:
    @pytest.mark.parametrize("n_jobs", [0, -2, -100])
    def test_invalid_n_jobs_rejected(self, n_jobs):
        with pytest.raises(ConfigError, match="n_jobs"):
            EngineConfig(n_jobs=n_jobs)

    @pytest.mark.parametrize("n_jobs", [1, 4, -1])
    def test_valid_n_jobs_accepted(self, n_jobs):
        assert EngineConfig(n_jobs=n_jobs).n_jobs == n_jobs

    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigError, match="executor"):
            EngineConfig(executor="fibers")

    @pytest.mark.parametrize("executor", ["thread", "process", "auto"])
    def test_valid_executors_accepted(self, executor):
        assert EngineConfig(executor=executor).executor == executor


class TestErrorsStayValueErrors:
    def test_config_error_is_a_value_error(self):
        assert issubclass(ConfigError, ValueError)
        with pytest.raises(ValueError):
            EngineConfig(method="simrank", backend="gpu")


class TestFromDictValidation:
    """Snapshot manifests go through from_dict: bad payloads fail loudly."""

    def test_bad_backend_in_payload_rejected(self):
        payload = EngineConfig(method="simrank").to_dict()
        payload["backend"] = "gpu"
        with pytest.raises(ConfigError, match="no backend 'gpu'"):
            EngineConfig.from_dict(payload)

    def test_bad_n_jobs_in_payload_rejected(self):
        payload = EngineConfig().to_dict()
        payload["n_jobs"] = 0
        with pytest.raises(ConfigError, match="n_jobs"):
            EngineConfig.from_dict(payload)

    def test_bad_executor_in_payload_rejected(self):
        payload = EngineConfig().to_dict()
        payload["executor"] = "fibers"
        with pytest.raises(ConfigError, match="executor"):
            EngineConfig.from_dict(payload)

    def test_unknown_keys_raise_config_error(self):
        with pytest.raises(ConfigError, match="unknown EngineConfig keys"):
            EngineConfig.from_dict({"method": "simrank", "turbo": True})

    def test_parallel_knobs_round_trip(self):
        config = EngineConfig(backend="auto", n_jobs=-1, executor="process")
        assert EngineConfig.from_dict(config.to_dict()) == config

    def test_legacy_payload_without_parallel_knobs_defaults(self):
        """Manifests written before n_jobs/executor existed still load."""
        payload = EngineConfig().to_dict()
        payload.pop("n_jobs")
        payload.pop("executor")
        config = EngineConfig.from_dict(payload)
        assert config.n_jobs == 1
        assert config.executor == "auto"
