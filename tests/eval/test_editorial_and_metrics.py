"""Tests for the simulated editorial judge and the IR metrics."""

import pytest

from repro.eval.editorial import GRADE_DESCRIPTIONS, EditorialJudge
from repro.eval.metrics import (
    STANDARD_RECALL_LEVELS,
    average_precision,
    interpolated_precision_recall,
    precision_at_k,
    precision_recall,
)


class TestEditorialJudge:
    @pytest.fixture
    def judge(self, tiny_workload):
        return EditorialJudge(tiny_workload)

    def _query_of_topic(self, workload, topic, exclude=()):
        return next(
            q for q, t in workload.query_topics.items() if t == topic and q not in exclude
        )

    def test_identity_is_grade_1(self, judge, tiny_workload):
        query = next(iter(tiny_workload.query_topics))
        assert judge.grade(query, query) == 1

    def test_same_topic_with_shared_term_is_grade_1(self, judge, tiny_workload):
        queries = [q for q, t in tiny_workload.query_topics.items() if t == "photography"]
        query = next(q for q in queries if "camera" in q)
        rewrite = next(q for q in queries if "camera" in q and q != query)
        assert judge.grade(query, rewrite) == 1

    def test_same_topic_without_shared_term_is_grade_2(self, judge, tiny_workload):
        queries = [q for q, t in tiny_workload.query_topics.items() if t == "photography"]
        pairs = [
            (first, second)
            for first in queries
            for second in queries
            if first != second and not set(first.split()) & set(second.split())
        ]
        pair = next(
            (
                (first, second)
                for first, second in pairs
                if judge.grade(first, second) == 2
            ),
            None,
        )
        assert pair is not None

    def test_related_topic_is_grade_3(self, judge, tiny_workload):
        photo = self._query_of_topic(tiny_workload, "photography")
        computers = self._query_of_topic(tiny_workload, "computers")
        assert judge.grade(photo, computers) in (1, 3)  # shared generic term could bump it
        # Find a pair without shared terms to pin grade 3 exactly.
        photo_queries = [q for q, t in tiny_workload.query_topics.items() if t == "photography"]
        computer_queries = [q for q, t in tiny_workload.query_topics.items() if t == "computers"]
        pair = next(
            (p, c)
            for p in photo_queries
            for c in computer_queries
            if not set(p.split()) & set(c.split())
        )
        assert judge.grade(*pair) == 3

    def test_unrelated_topic_is_grade_4(self, judge, tiny_workload):
        photo = self._query_of_topic(tiny_workload, "photography")
        flowers = self._query_of_topic(tiny_workload, "flowers")
        assert judge.grade(photo, flowers) == 4

    def test_unknown_rewrite_is_grade_4(self, judge, tiny_workload):
        query = next(iter(tiny_workload.query_topics))
        assert judge.grade(query, "totally unknown rewrite") == 4

    def test_is_relevant_thresholds(self, judge, tiny_workload):
        query = next(iter(tiny_workload.query_topics))
        assert judge.is_relevant(query, query, threshold=1)
        assert judge.is_relevant(query, query, threshold=2)

    def test_grade_pairs_batch(self, judge, tiny_workload):
        queries = list(tiny_workload.query_topics)[:3]
        grades = judge.grade_pairs([(queries[0], queries[1]), (queries[0], queries[2])])
        assert len(grades) == 2
        assert all(1 <= grade <= 4 for grade in grades.values())

    def test_grade_descriptions_cover_all_grades(self):
        assert set(GRADE_DESCRIPTIONS) == {1, 2, 3, 4}


class TestMetrics:
    def test_precision_recall_basic(self):
        precision, recall = precision_recall([True, False, True], total_relevant=4)
        assert precision == pytest.approx(2 / 3)
        assert recall == pytest.approx(0.5)

    def test_precision_recall_empty_ranking(self):
        assert precision_recall([], total_relevant=3) == (0.0, 0.0)

    def test_precision_recall_zero_relevant_pool(self):
        precision, recall = precision_recall([False, False], total_relevant=0)
        assert precision == 0.0 and recall == 0.0

    def test_precision_at_k(self):
        ranking = [True, True, False, False, True]
        assert precision_at_k(ranking, 1) == 1.0
        assert precision_at_k(ranking, 2) == 1.0
        assert precision_at_k(ranking, 4) == pytest.approx(0.5)
        # Shorter rankings are evaluated on what they have.
        assert precision_at_k([True], 5) == 1.0
        with pytest.raises(ValueError):
            precision_at_k(ranking, 0)

    def test_average_precision(self):
        assert average_precision([True, False, True], total_relevant=2) == pytest.approx(
            (1.0 + 2 / 3) / 2
        )
        assert average_precision([False, False], total_relevant=2) == 0.0
        assert average_precision([True], total_relevant=0) == 0.0

    def test_interpolated_curve_perfect_ranking(self):
        curve = interpolated_precision_recall({"q": [True, True]}, {"q": 2})
        assert curve.precisions == [1.0] * 11
        assert curve.mean_precision == 1.0

    def test_interpolated_curve_is_non_increasing(self):
        rankings = {"q1": [True, False, True, False], "q2": [False, True, True]}
        totals = {"q1": 3, "q2": 2}
        curve = interpolated_precision_recall(rankings, totals)
        assert all(
            earlier >= later - 1e-12
            for earlier, later in zip(curve.precisions, curve.precisions[1:])
        )
        assert len(curve.precisions) == len(STANDARD_RECALL_LEVELS)

    def test_interpolated_curve_ignores_queries_without_relevant_pool(self):
        curve = interpolated_precision_recall({"q": [False]}, {"q": 0})
        assert curve.precisions == [0.0] * 11

    def test_precision_at_recall_lookup(self):
        curve = interpolated_precision_recall({"q": [True, False]}, {"q": 1})
        assert curve.precision_at_recall(1.0) == 1.0
        assert curve.as_pairs()[0][0] == 0.0
