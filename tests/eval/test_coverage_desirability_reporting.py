"""Tests for coverage/depth metrics, the desirability experiment and text reporting."""

import random

import pytest

from repro.core.config import SimrankConfig
from repro.api.registry import create
from repro.core.rewriter import Rewrite, RewriteList
from repro.eval.coverage import DEPTH_BINS, coverage_percentage, depth_distribution, depth_histogram
from repro.eval.desirability import (
    desirability,
    run_desirability_experiment,
    select_desirability_cases,
)
from repro.eval.reporting import format_series, format_table
from repro.graph.click_graph import ClickGraph


def _rewrite_list(query, count):
    rewrites = [
        Rewrite(query=query, rewrite=f"{query}-rw{i}", score=1.0 - i * 0.1, rank=i + 1)
        for i in range(count)
    ]
    return RewriteList(query=query, rewrites=rewrites)


class TestCoverageAndDepth:
    def test_coverage_percentage(self):
        lists = {"a": _rewrite_list("a", 3), "b": _rewrite_list("b", 0)}
        assert coverage_percentage(lists) == pytest.approx(50.0)
        assert coverage_percentage({}) == 0.0

    def test_depth_histogram(self):
        lists = {"a": _rewrite_list("a", 5), "b": _rewrite_list("b", 2), "c": _rewrite_list("c", 0)}
        histogram = depth_histogram(lists)
        assert histogram[5] == 1 and histogram[2] == 1 and histogram[0] == 1

    def test_depth_distribution_bins(self):
        lists = {
            "a": _rewrite_list("a", 5),
            "b": _rewrite_list("b", 4),
            "c": _rewrite_list("c", 1),
            "d": _rewrite_list("d", 0),
        }
        distribution = depth_distribution(lists)
        assert list(distribution) == list(DEPTH_BINS)
        assert distribution["5"] == pytest.approx(25.0)
        assert distribution["4-5"] == pytest.approx(50.0)
        assert distribution["1-5"] == pytest.approx(75.0)

    def test_depth_distribution_empty(self):
        assert depth_distribution({}) == {bin_name: 0.0 for bin_name in DEPTH_BINS}


class TestDesirability:
    def _graph(self):
        graph = ClickGraph()
        # q1 shares "shared-ad" with both candidates and keeps a second ad so
        # the removal never isolates it; the candidates remain reachable
        # through "backbone", which is connected to q1's remaining ad via q4.
        graph.add_edge("q1", "shared-ad", impressions=100, clicks=20, expected_click_rate=0.2)
        graph.add_edge("q1", "other-ad", impressions=100, clicks=10, expected_click_rate=0.1)
        graph.add_edge("q2", "shared-ad", impressions=100, clicks=40, expected_click_rate=0.4)
        graph.add_edge("q3", "shared-ad", impressions=100, clicks=5, expected_click_rate=0.05)
        graph.add_edge("q2", "backbone", impressions=100, clicks=10, expected_click_rate=0.1)
        graph.add_edge("q3", "backbone", impressions=100, clicks=10, expected_click_rate=0.1)
        graph.add_edge("q4", "backbone", impressions=100, clicks=10, expected_click_rate=0.1)
        graph.add_edge("q4", "other-ad", impressions=100, clicks=10, expected_click_rate=0.1)
        return graph

    def test_desirability_definition(self):
        graph = self._graph()
        # des(q1, q2) = w(q2, shared-ad) / |E(q2)| = 0.4 / 2
        assert desirability(graph, "q1", "q2") == pytest.approx(0.2)
        assert desirability(graph, "q1", "q3") == pytest.approx(0.025)
        # q4 only shares the low-weight "other-ad" with q1.
        assert desirability(graph, "q1", "q4") == pytest.approx(0.05)
        # A query with no shared ad at all has zero desirability.
        assert desirability(graph, "q2", "q4") == pytest.approx(0.05)
        assert desirability(graph, "q3", "q1") == pytest.approx(0.2 / 2)

    def test_case_selection_keeps_connectivity(self):
        graph = self._graph()
        cases = select_desirability_cases(graph, num_cases=5, rng=random.Random(0))
        assert cases
        for case in cases:
            pruned = graph.without_edges(case.removed_edges)
            # The query must still have at least one edge left.
            assert pruned.query_degree(case.query) >= 1

    def test_experiment_runs_and_reports_accuracy(self):
        graph = self._graph()
        config = SimrankConfig(iterations=5, zero_evidence_floor=0.1)
        factories = {
            "simrank": lambda: create("simrank", config=config),
            "weighted_simrank": lambda: create("weighted_simrank", config=config),
        }
        results = run_desirability_experiment(
            graph, factories, num_cases=5, rng=random.Random(1)
        )
        assert set(results) == {"simrank", "weighted_simrank"}
        for result in results.values():
            assert result.total >= 1
            assert 0.0 <= result.accuracy <= 1.0
            assert result.percentage == pytest.approx(100 * result.accuracy)
            assert len(result.case_outcomes) == result.total

    def test_no_removal_variant_sees_direct_evidence(self):
        graph = self._graph()
        config = SimrankConfig(iterations=5, zero_evidence_floor=0.1)
        factories = {"weighted_simrank": lambda: create("weighted_simrank", config=config)}
        cases = select_desirability_cases(graph, num_cases=5, rng=random.Random(2))
        with_removal = run_desirability_experiment(graph, factories, cases=cases)
        without_removal = run_desirability_experiment(
            graph, factories, cases=cases, remove_direct_evidence=False
        )
        assert without_removal["weighted_simrank"].accuracy >= with_removal[
            "weighted_simrank"
        ].accuracy


class TestReporting:
    def test_format_table_alignment_and_title(self):
        rows = [{"method": "simrank", "coverage": 98.0}, {"method": "pearson", "coverage": 41.0}]
        text = format_table(rows, title="Coverage")
        assert text.splitlines()[0] == "Coverage"
        assert "simrank" in text and "41" in text

    def test_format_table_empty(self):
        assert "(empty)" in format_table([], title="Nothing")

    def test_format_series(self):
        text = format_series(
            {"simrank": [0.8, 0.7], "pearson": [0.7, 0.6]},
            x_labels=[1, 2],
            x_name="X",
        )
        lines = text.splitlines()
        assert lines[0].startswith("X")
        assert len(lines) == 4
