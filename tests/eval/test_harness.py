"""Integration tests for the end-to-end evaluation harness."""

import pytest

from repro.core.config import SimrankConfig
from repro.eval.harness import RELEVANCE_THRESHOLDS, ExperimentHarness


@pytest.fixture(scope="module")
def harness_result(request):
    """One shared harness run on the tiny workload (kept small for speed)."""
    from repro.synth.yahoo_like import yahoo_like_workload

    harness = ExperimentHarness(
        workload=yahoo_like_workload("tiny"),
        desirability_cases=8,
        max_evaluation_queries=30,
        traffic_sample_size=400,
    )
    return harness.run()


class TestHarnessRun:
    def test_all_paper_methods_evaluated(self, harness_result):
        assert set(harness_result.methods) == {
            "pearson",
            "simrank",
            "evidence_simrank",
            "weighted_simrank",
        }

    def test_subgraphs_are_nonempty_and_disjoint(self, harness_result):
        seen = set()
        for subgraph in harness_result.subgraphs:
            queries = set(subgraph.queries())
            assert subgraph.num_edges > 0
            assert not queries & seen
            seen |= queries

    def test_evaluation_queries_come_from_the_dataset(self, harness_result):
        assert harness_result.evaluation_queries
        for query in harness_result.evaluation_queries:
            assert harness_result.dataset.has_query(query)

    def test_dataset_statistics_rows(self, harness_result):
        stats = harness_result.dataset_statistics()
        assert len(stats) == len(harness_result.subgraphs)
        assert all(row.num_edges > 0 for row in stats)

    def test_coverage_shape_matches_paper(self, harness_result):
        """Figure 8 shape: Pearson covers far fewer queries than the SimRank family."""
        coverage = harness_result.coverage_by_method()
        assert coverage["pearson"] < coverage["simrank"]
        assert coverage["simrank"] >= 90.0
        assert coverage["evidence_simrank"] >= 90.0
        assert coverage["weighted_simrank"] >= 90.0

    def test_depth_shape_matches_paper(self, harness_result):
        """Figure 11 shape: the SimRank variants reach full depth far more often than Pearson."""
        depth = harness_result.depth_by_method()
        assert depth["weighted_simrank"]["5"] > depth["pearson"]["5"]
        assert depth["simrank"]["1-5"] > depth["pearson"]["1-5"]

    def test_precision_metrics_are_populated(self, harness_result):
        for evaluation in harness_result.methods.values():
            for threshold in RELEVANCE_THRESHOLDS:
                assert set(evaluation.precision_at_x[threshold]) == {1, 2, 3, 4, 5}
                for value in evaluation.precision_at_x[threshold].values():
                    assert 0.0 <= value <= 1.0
                curve = evaluation.pr_curves[threshold]
                assert len(curve.precisions) == 11
        # Strict relevance (grade 1 only) can never have higher precision than
        # the relaxed threshold for the same method.
        for evaluation in harness_result.methods.values():
            assert evaluation.precision_at_x[1][5] <= evaluation.precision_at_x[2][5] + 1e-9

    def test_grades_are_valid(self, harness_result):
        for evaluation in harness_result.methods.values():
            for grade in evaluation.grades.values():
                assert 1 <= grade <= 4
            assert 0.0 <= evaluation.mean_grade() <= 4.0

    def test_desirability_results(self, harness_result):
        assert set(harness_result.desirability) == {
            "simrank",
            "evidence_simrank",
            "weighted_simrank",
        }
        for result in harness_result.desirability.values():
            assert result.total > 0
            assert 0.0 <= result.percentage <= 100.0

    def test_accessors_are_consistent(self, harness_result):
        assert harness_result.coverage_by_method().keys() == harness_result.methods.keys()
        assert set(harness_result.desirability_by_method()) == set(harness_result.desirability)
        curves = harness_result.pr_curve_by_method(2)
        assert set(curves) == set(harness_result.methods)


class TestHarnessOptions:
    def test_component_based_subgraphs(self, tiny_workload):
        harness = ExperimentHarness(
            workload=tiny_workload,
            use_partitioning=False,
            desirability_cases=0,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        result = harness.run()
        assert result.subgraphs
        assert result.desirability == {}

    def test_method_subset_and_custom_config(self, tiny_workload):
        harness = ExperimentHarness(
            workload=tiny_workload,
            methods=["simrank", "weighted_simrank"],
            config=SimrankConfig(iterations=3, zero_evidence_floor=0.05),
            desirability_cases=0,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        result = harness.run()
        assert set(result.methods) == {"simrank", "weighted_simrank"}

    def test_engine_snapshots_round_trip_through_the_pipeline(
        self, tiny_workload, tmp_path
    ):
        """save_engines_to then load_engines_from reproduces the same rewrites."""
        kwargs = dict(
            workload=tiny_workload,
            methods=["simrank", "weighted_simrank"],
            config=SimrankConfig(iterations=3, zero_evidence_floor=0.05),
            desirability_cases=0,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        snapshot_dir = tmp_path / "engines"
        saved = ExperimentHarness(save_engines_to=snapshot_dir, **kwargs).run()
        from repro.api.snapshot import EngineSnapshotStore

        store = EngineSnapshotStore(snapshot_dir)
        assert store.list_snapshots() == ["simrank-matrix", "weighted_simrank-matrix"]

        loaded = ExperimentHarness(load_engines_from=snapshot_dir, **kwargs).run()
        for method_name in kwargs["methods"]:
            saved_lists = saved.methods[method_name].rewrite_lists
            loaded_lists = loaded.methods[method_name].rewrite_lists
            assert set(saved_lists) == set(loaded_lists)
            for query, rewrite_list in saved_lists.items():
                assert rewrite_list.as_tuples() == loaded_lists[query].as_tuples()

    def test_mismatched_snapshots_are_ignored_not_served(self, tiny_workload, tmp_path):
        """A snapshot saved under different similarity knobs must not be revived."""
        snapshot_dir = tmp_path / "engines"
        kwargs = dict(
            workload=tiny_workload,
            methods=["weighted_simrank"],
            desirability_cases=0,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        ExperimentHarness(
            config=SimrankConfig(iterations=3, zero_evidence_floor=0.05),
            save_engines_to=snapshot_dir,
            **kwargs,
        ).run()
        changed = ExperimentHarness(
            config=SimrankConfig(iterations=5, zero_evidence_floor=0.05),
            load_engines_from=snapshot_dir,
            **kwargs,
        )
        engine = changed._fitted_engine(
            "weighted_simrank", changed._combine(changed.build_subgraphs())
        )
        # The stale 3-iteration snapshot was skipped: the engine really ran
        # the requested 5 iterations (a revived engine would report 3).
        assert engine.config.similarity.iterations == 5
        assert engine.method.iterations_run == 5
        assert engine.graph is not None  # fitted fresh, not snapshot-revived

    def test_snapshots_for_a_different_dataset_are_ignored(
        self, tiny_workload, tmp_path
    ):
        """Changed dataset-shaping knobs must not revive a stale engine."""
        snapshot_dir = tmp_path / "engines"
        kwargs = dict(
            workload=tiny_workload,
            methods=["weighted_simrank"],
            config=SimrankConfig(iterations=3, zero_evidence_floor=0.05),
            desirability_cases=0,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        ExperimentHarness(
            use_partitioning=True, save_engines_to=snapshot_dir, **kwargs
        ).run()
        reshaped = ExperimentHarness(
            use_partitioning=False, load_engines_from=snapshot_dir, **kwargs
        )
        dataset = reshaped._combine(reshaped.build_subgraphs())
        engine = reshaped._fitted_engine("weighted_simrank", dataset)
        assert engine.graph is dataset  # fitted fresh on the unpartitioned dataset

    def test_refresh_from_warm_starts_across_dataset_change(
        self, tiny_workload, tmp_path
    ):
        """refresh_engines_from seeds a warm refit where load_ would refuse."""
        snapshot_dir = tmp_path / "engines"
        kwargs = dict(
            workload=tiny_workload,
            methods=["weighted_simrank"],
            config=SimrankConfig(
                iterations=30, tolerance=1e-8, zero_evidence_floor=0.05
            ),
            desirability_cases=0,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        ExperimentHarness(
            use_partitioning=True, save_engines_to=snapshot_dir, **kwargs
        ).run()
        # Different dataset shape: the fingerprint no longer matches, so the
        # exact-load path would refit cold -- the refresh path warm-starts.
        reshaped = ExperimentHarness(
            use_partitioning=False, refresh_engines_from=snapshot_dir, **kwargs
        )
        dataset = reshaped._combine(reshaped.build_subgraphs())
        engine = reshaped._fitted_engine("weighted_simrank", dataset)
        assert engine.graph is dataset  # refit on the new dataset...
        assert engine.method.warm_started is True  # ...seeded by the snapshot

    def test_refresh_from_ignores_config_mismatch(self, tiny_workload, tmp_path):
        """A snapshot under different similarity knobs never seeds a refit."""
        snapshot_dir = tmp_path / "engines"
        kwargs = dict(
            workload=tiny_workload,
            methods=["weighted_simrank"],
            desirability_cases=0,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        # Positive tolerance on both sides: the warm path's tolerance guard
        # must not short-circuit before the config comparison under test.
        ExperimentHarness(
            config=SimrankConfig(
                iterations=3, tolerance=1e-8, zero_evidence_floor=0.05
            ),
            save_engines_to=snapshot_dir,
            **kwargs,
        ).run()
        changed = ExperimentHarness(
            config=SimrankConfig(
                iterations=5, tolerance=1e-8, zero_evidence_floor=0.05
            ),
            refresh_engines_from=snapshot_dir,
            **kwargs,
        )
        dataset = changed._combine(changed.build_subgraphs())
        engine = changed._fitted_engine("weighted_simrank", dataset)
        assert engine.method.warm_started is False  # cold fit, no stale seed

    def test_damaged_snapshots_fall_back_to_fitting(self, tiny_workload, tmp_path):
        """A matching-but-corrupt snapshot must not abort the run."""
        snapshot_dir = tmp_path / "engines"
        kwargs = dict(
            workload=tiny_workload,
            methods=["weighted_simrank"],
            config=SimrankConfig(iterations=3, zero_evidence_floor=0.05),
            desirability_cases=0,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        ExperimentHarness(save_engines_to=snapshot_dir, **kwargs).run()
        # Damage the score matrix but keep the (matching) manifest intact.
        (snapshot_dir / "weighted_simrank-matrix" / "query_scores.npz").write_bytes(
            b"damaged"
        )
        harness = ExperimentHarness(load_engines_from=snapshot_dir, **kwargs)
        engine = harness._fitted_engine(
            "weighted_simrank", harness._combine(harness.build_subgraphs())
        )
        assert engine.graph is not None  # fitted fresh instead of crashing

    def test_sharded_backend_runs_the_full_pipeline(self, tiny_workload):
        """--backend sharded works end-to-end, matching the matrix coverage."""
        kwargs = dict(
            workload=tiny_workload,
            methods=["weighted_simrank"],
            config=SimrankConfig(iterations=3, zero_evidence_floor=0.05),
            desirability_cases=2,
            max_evaluation_queries=10,
            traffic_sample_size=100,
        )
        sharded = ExperimentHarness(backend="sharded", **kwargs).run()
        dense = ExperimentHarness(backend="matrix", **kwargs).run()
        assert sharded.coverage_by_method() == dense.coverage_by_method()
        assert set(sharded.desirability) == {"weighted_simrank"}
