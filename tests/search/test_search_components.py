"""Unit tests for the sponsored-search simulator components."""

import random

import pytest

from repro.search.ads import Ad, AdDatabase
from repro.search.backend import Backend
from repro.search.bids import Bid, BidDatabase
from repro.search.click_model import PositionBiasedClickModel
from repro.search.frontend import FrontEnd
from repro.search.query_log import ClickLogRecord, QueryLog
from repro.search.user_model import TopicalUserModel
from repro.synth.vocabulary import build_topic_model


class TestAdDatabase:
    def test_add_and_lookup(self):
        database = AdDatabase()
        database.add(Ad(ad_id="hp.com/camera-1", advertiser="hp.com", landing_page="hp.com", topic="photography"))
        assert "hp.com/camera-1" in database
        assert len(database) == 1
        assert database.by_topic("photography")[0].advertiser == "hp.com"
        assert database.by_advertiser("hp.com")

    def test_duplicate_id_rejected(self):
        database = AdDatabase()
        ad = Ad(ad_id="x", advertiser="a", landing_page="l")
        database.add(ad)
        with pytest.raises(ValueError):
            database.add(ad)

    def test_empty_id_rejected(self):
        with pytest.raises(ValueError):
            Ad(ad_id="", advertiser="a", landing_page="l")

    def test_from_workload_ads(self, tiny_workload):
        database = AdDatabase.from_workload_ads(tiny_workload.ad_topics)
        assert len(database) == len(tiny_workload.ad_topics)
        some_ad = next(iter(database))
        assert some_ad.advertiser in some_ad.ad_id


class TestBidDatabase:
    def test_bids_sorted_by_price(self):
        bids = BidDatabase([Bid("camera", "a1", 0.5), Bid("camera", "a2", 1.5)])
        assert [bid.ad_id for bid in bids.bids_for("camera")] == ["a2", "a1"]
        assert bids.has_bids("camera")
        assert not bids.has_bids("tv")
        assert bids.bid_terms() == {"camera"}
        assert len(bids) == 2

    def test_nonpositive_price_rejected(self):
        with pytest.raises(ValueError):
            Bid("q", "a", 0.0)


class TestClickModel:
    def test_examination_decays_with_position(self):
        model = PositionBiasedClickModel(decay=0.6, max_positions=4)
        probabilities = [model.examination_probability(p) for p in range(1, 6)]
        assert probabilities[0] == 1.0
        assert probabilities[:4] == sorted(probabilities[:4], reverse=True)
        assert probabilities[4] == 0.0

    def test_click_probability_combines_relevance(self):
        model = PositionBiasedClickModel(decay=0.5)
        assert model.click_probability(2, 0.8) == pytest.approx(0.4)
        with pytest.raises(ValueError):
            model.click_probability(1, 1.2)
        with pytest.raises(ValueError):
            model.click_probability(0, 0.5)

    def test_expected_clicks(self):
        model = PositionBiasedClickModel(decay=0.5)
        assert model.expected_clicks([1.0, 1.0]) == pytest.approx(1.5)

    def test_simulate_click_extremes(self):
        model = PositionBiasedClickModel()
        rng = random.Random(0)
        assert not model.simulate_click(1, 0.0, rng)
        assert model.simulate_click(1, 1.0, rng)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            PositionBiasedClickModel(decay=0.0)
        with pytest.raises(ValueError):
            PositionBiasedClickModel(max_positions=0)


class TestUserModel:
    def test_relevance_respects_topics(self, tiny_workload):
        user_model = TopicalUserModel(
            tiny_workload.topic_model,
            tiny_workload.query_topics,
            tiny_workload.ad_topics,
            noise=0.0,
        )
        query = next(q for q, t in tiny_workload.query_topics.items() if t == "photography")
        same_ad = next(a for a, t in tiny_workload.ad_topics.items() if t == "photography")
        other_ad = next(a for a, t in tiny_workload.ad_topics.items() if t == "flowers")
        assert user_model.relevance(query, same_ad) > user_model.relevance(query, other_ad)

    def test_unknown_query_gets_low_relevance(self, tiny_workload):
        user_model = TopicalUserModel(
            tiny_workload.topic_model,
            tiny_workload.query_topics,
            tiny_workload.ad_topics,
            noise=0.0,
        )
        ad = next(iter(tiny_workload.ad_topics))
        assert user_model.relevance("query from mars", ad) <= 0.05


class TestBackend:
    def _backend(self):
        ads = AdDatabase(
            [
                Ad("a1", "adv1", "l1", topic="photography"),
                Ad("a2", "adv2", "l2", topic="photography"),
                Ad("a3", "adv3", "l3", topic="flowers"),
            ]
        )
        bids = BidDatabase(
            [Bid("camera", "a1", 1.0), Bid("camera", "a2", 2.0), Bid("flower", "a3", 1.0)]
        )
        return Backend(ads, bids, num_slots=2, default_click_rate=0.1)

    def test_serve_ranks_by_bid_times_ecr(self):
        backend = self._backend()
        page = backend.serve("camera")
        assert [p.ad_id for p in page.placements] == ["a2", "a1"]
        assert [p.position for p in page.placements] == [1, 2]

    def test_rewrites_expand_the_candidate_set(self):
        backend = self._backend()
        page = backend.serve("camera", rewrites=["flower"])
        assert {p.ad_id for p in page.placements} <= {"a1", "a2", "a3"}
        assert page.num_ads == 2
        matched = {p.ad_id: p.matched_query for p in page.placements}
        if "a3" in matched:
            assert matched["a3"] == "flower"

    def test_feedback_updates_expected_click_rate(self):
        backend = self._backend()
        assert backend.expected_click_rate("camera", "a1") == pytest.approx(0.1)
        backend.record_impression("camera", "a1", position=1, clicked=True)
        backend.record_impression("camera", "a1", position=1, clicked=True)
        backend.record_impression("camera", "a1", position=1, clicked=False)
        assert backend.expected_click_rate("camera", "a1") == pytest.approx(2 / 3)
        assert backend.impressions("camera", "a1") == 3
        assert backend.clicks("camera", "a1") == 2
        assert ("camera", "a1") in backend.observed_pairs()

    def test_num_slots_validation(self):
        with pytest.raises(ValueError):
            Backend(AdDatabase(), BidDatabase(), num_slots=0)


class TestFrontEndAndLog:
    def test_frontend_without_rewriter_passes_through(self):
        assert FrontEnd().rewrites("camera") == []

    def test_frontend_serves_from_an_engine(self, small_weighted_graph):
        from repro.api.config import EngineConfig
        from repro.api.engine import RewriteEngine

        engine = RewriteEngine.from_graph(
            small_weighted_graph, EngineConfig(method="weighted_simrank")
        ).fit()
        frontend = FrontEnd(engine=engine, max_rewrites=2)
        rewrites = frontend.rewrites("camera")
        assert 0 < len(rewrites) <= 2
        assert all(isinstance(rewrite, str) for rewrite in rewrites)
        assert engine.cache_info().size == 1

    def test_frontend_rejects_rewriter_and_engine_together(self, small_weighted_graph):
        from repro.api.config import EngineConfig
        from repro.api.engine import RewriteEngine
        from repro.api.registry import create
        from repro.core.rewriter import QueryRewriter

        engine = RewriteEngine.from_graph(small_weighted_graph, EngineConfig()).fit()
        rewriter = QueryRewriter(create("simrank")).fit(small_weighted_graph)
        with pytest.raises(ValueError):
            FrontEnd(rewriter=rewriter, engine=engine)

    def test_query_log_round_trip(self, tmp_path):
        log = QueryLog()
        log.extend(
            [
                ClickLogRecord("camera", "a1", 1, True, matched_query="camera"),
                ClickLogRecord("camera", "a2", 2, False, matched_query="digital camera"),
            ]
        )
        assert len(log) == 2
        assert log.click_count() == 1
        path = tmp_path / "log.jsonl"
        assert log.write_jsonl(path) == 2
        loaded = QueryLog.read_jsonl(path)
        assert len(loaded) == 2
        impressions = list(loaded.impressions())
        assert impressions[0].clicked is True
        assert impressions[1].position == 2
