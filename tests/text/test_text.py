"""Tests for the Porter stemmer, tokenization and query signatures."""

import pytest

from repro.text.normalize import normalize_query, query_signature, tokenize
from repro.text.porter import PorterStemmer, stem


class TestPorterStemmer:
    @pytest.mark.parametrize(
        "word, expected",
        [
            ("caresses", "caress"),
            ("ponies", "poni"),
            ("cats", "cat"),
            ("feed", "feed"),
            ("agreed", "agre"),
            ("plastered", "plaster"),
            ("motoring", "motor"),
            ("sing", "sing"),
            ("conflated", "conflat"),
            ("troubling", "troubl"),
            ("sized", "size"),
            ("hopping", "hop"),
            ("falling", "fall"),
            ("happy", "happi"),
            ("relational", "relat"),
            ("conditional", "condit"),
            ("vietnamization", "vietnam"),
            ("digitizer", "digit"),
            ("operator", "oper"),
            ("feudalism", "feudal"),
            ("hopefulness", "hope"),
            ("formalize", "formal"),
            ("electrical", "electr"),
            ("hopeful", "hope"),
            ("goodness", "good"),
            ("adjustment", "adjust"),
            ("dependent", "depend"),
            ("activate", "activ"),
            ("effective", "effect"),
            ("probate", "probat"),
            ("controlling", "control"),
            ("rolling", "roll"),
        ],
    )
    def test_known_stems(self, word, expected):
        assert stem(word) == expected

    def test_short_words_unchanged(self):
        for word in ("a", "is", "tv", "pc"):
            assert stem(word) == word

    def test_case_insensitive(self):
        assert stem("Cameras") == stem("cameras")

    def test_plural_and_singular_collapse(self):
        assert stem("cameras") == stem("camera")
        assert stem("flights") == stem("flight")
        assert stem("hotels") == stem("hotel")

    def test_stemming_is_idempotent_for_common_words(self):
        for word in ("camera", "running", "flights", "photography", "insurance"):
            once = stem(word)
            assert stem(once) == once or len(stem(once)) <= len(once)

    def test_stemmer_class_direct_use(self):
        stemmer = PorterStemmer()
        assert stemmer.stem("connections") == "connect"


class TestNormalization:
    def test_tokenize_lowercases_and_splits(self):
        assert tokenize("Digital  CAMERA, 10x zoom!") == ["digital", "camera", "10x", "zoom"]

    def test_normalize_query(self):
        assert normalize_query("  Digital   Camera ") == "digital camera"

    def test_signature_ignores_order_and_inflection(self):
        assert query_signature("digital cameras") == query_signature("camera digital")
        assert query_signature("running shoe") == query_signature("running shoes")

    def test_signature_distinguishes_different_queries(self):
        assert query_signature("digital camera") != query_signature("digital tv")

    def test_signature_of_non_string_input(self):
        assert query_signature(42) == ("42",)
