"""ServingStore implementations: format discipline, counters, lifecycle."""

from __future__ import annotations

import sqlite3

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.store import (
    STORE_FORMAT_VERSION,
    InMemoryServingStore,
    SqliteServingStore,
    StoreError,
)


def build_engine(graph, **config_kwargs):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=7, tolerance=1e-8),
        **config_kwargs,
    )
    return RewriteEngine.from_graph(
        graph, config, bid_terms={str(q) for q in graph.queries()}
    ).fit()


@pytest.fixture
def engine(small_weighted_graph):
    return build_engine(small_weighted_graph)


@pytest.fixture
def store_path(engine, tmp_path):
    return engine.export_store(tmp_path / "rewrites.sqlite")


class TestSqliteStore:
    def test_lookup_matches_live_serving(self, engine, store_path):
        with SqliteServingStore(store_path) as store:
            for query in engine._serving_universe():
                assert (
                    store.rewrites(query).as_tuples()
                    == engine.rewrite(query).as_tuples()
                )

    def test_top_k_truncation(self, engine, store_path):
        with SqliteServingStore(store_path) as store:
            full = store.rewrites("camera")
            assert len(full.rewrites) > 1
            top = store.rewrites("camera", k=1)
            assert top.rewrites == full.rewrites[:1]

    def test_unknown_query_serves_empty_list(self, store_path):
        with SqliteServingStore(store_path) as store:
            assert store.rewrites("definitely-unknown").rewrites == []
            # Identifier types the store cannot hold are unknown queries,
            # not errors -- matching the in-memory serving path.
            assert store.rewrites(("a", "tuple")).rewrites == []
            assert store.empty_lookups == 2

    def test_universe_and_contains(self, engine, store_path):
        with SqliteServingStore(store_path) as store:
            assert store.queries() == engine._serving_universe()
            assert "camera" in store
            assert "hp.com" not in store  # ads are not queries
            assert ("a", "tuple") not in store

    def test_lookup_counters(self, store_path):
        with SqliteServingStore(store_path) as store:
            assert store.lookups == 0
            store.rewrites("camera")
            store.rewrites("nope")
            assert store.lookups == 2
            assert store.empty_lookups == 1

    def test_describe_is_json_ready(self, store_path):
        with SqliteServingStore(store_path) as store:
            facts = store.describe()
        assert facts["kind"] == "sqlite"
        assert facts["path"] == str(store_path)
        assert facts["version"] == 1
        assert facts["lookups"] == 0

    def test_closed_store_refuses_lookups(self, store_path):
        store = SqliteServingStore(store_path)
        store.close()
        store.close()  # idempotent
        with pytest.raises(StoreError, match="closed"):
            store.rewrites("camera")
        with pytest.raises(StoreError, match="closed"):
            store.queries()

    def test_engine_config_round_trips(self, engine, store_path):
        with SqliteServingStore(store_path) as store:
            assert store.engine_config() == engine.config.to_dict()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(StoreError, match="not a file"):
            SqliteServingStore(tmp_path / "nope.sqlite")

    def test_non_database_file_raises(self, tmp_path):
        junk = tmp_path / "junk.sqlite"
        junk.write_bytes(b"this is not a sqlite database, not even close!")
        with pytest.raises(StoreError, match="not a readable serving store"):
            SqliteServingStore(junk)

    def test_foreign_format_version_rejected(self, store_path):
        connection = sqlite3.connect(str(store_path))
        connection.execute(
            "UPDATE meta SET value = ? WHERE key = 'format_version'",
            (str(STORE_FORMAT_VERSION + 1),),
        )
        connection.commit()
        connection.close()
        with pytest.raises(StoreError, match="format version"):
            SqliteServingStore(store_path)

    def test_store_file_holds_no_scratch_tables(self, store_path):
        connection = sqlite3.connect(str(store_path))
        tables = {
            name
            for (name,) in connection.execute(
                "SELECT name FROM sqlite_master WHERE type = 'table'"
            )
        }
        connection.close()
        assert tables == {"meta", "queries", "rewrites"}


class TestExport:
    def test_unfitted_engine_cannot_export(self, tmp_path):
        engine = RewriteEngine(EngineConfig())
        with pytest.raises(StoreError, match="unfitted"):
            engine.export_store(tmp_path / "never.sqlite")
        assert not (tmp_path / "never.sqlite").exists()

    def test_unencodable_node_ids_fail_loudly(self, tmp_path):
        from repro.graph.click_graph import ClickGraph

        graph = ClickGraph()
        graph.add_edge(("tuple", "query"), "ad", impressions=10, clicks=5)
        engine = RewriteEngine.from_graph(graph, EngineConfig()).fit()
        with pytest.raises(StoreError, match="round-trip"):
            engine.export_store(tmp_path / "never.sqlite")
        # The staged write was discarded: no store file, no staging debris.
        assert list(tmp_path.iterdir()) == []

    def test_export_overwrites_previous_store(self, engine, tmp_path):
        target = tmp_path / "rewrites.sqlite"
        engine.export_store(target)
        first = SqliteServingStore(target)
        first_profile = [first.rewrites(q).as_tuples() for q in first.queries()]
        first.close()
        engine.export_store(target)
        second = SqliteServingStore(target)
        assert [
            second.rewrites(q).as_tuples() for q in second.queries()
        ] == first_profile
        second.close()

    def test_snapshot_store_materializes_by_name(self, engine, tmp_path):
        from repro.api.snapshot import EngineSnapshotStore

        snapshots = EngineSnapshotStore(tmp_path / "engines")
        snapshots.save("weighted", engine)
        store_path = snapshots.materialize("weighted", tmp_path / "weighted.sqlite")
        served = RewriteEngine.from_store(store_path)
        queries = engine._serving_universe()
        assert served.serving_profile(queries) == engine.serving_profile(queries)
        with pytest.raises(KeyError):
            snapshots.materialize("unknown", tmp_path / "nope.sqlite")


class TestInMemoryStore:
    def test_from_engine_matches_live_serving(self, engine):
        store = InMemoryServingStore.from_engine(engine)
        assert store.kind == "memory"
        for query in engine._serving_universe():
            assert (
                store.rewrites(query).as_tuples()
                == engine.rewrite(query).as_tuples()
            )

    def test_unfitted_engine_rejected(self):
        with pytest.raises(StoreError, match="unfitted"):
            InMemoryServingStore.from_engine(RewriteEngine(EngineConfig()))

    def test_top_k_and_counters(self, engine):
        store = InMemoryServingStore.from_engine(engine)
        full = store.rewrites("camera")
        assert store.rewrites("camera", k=1).rewrites == full.rewrites[:1]
        assert store.lookups == 2

    def test_universe_contains_and_close(self, engine):
        store = InMemoryServingStore.from_engine(engine)
        assert store.queries() == engine._serving_universe()
        assert "camera" in store
        assert ["unhashable"] not in store
        store.close()
        with pytest.raises(StoreError, match="closed"):
            store.rewrites("camera")
