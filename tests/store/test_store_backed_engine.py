"""Store-backed RewriteEngine: serving parity, typed errors, /stats wiring."""

from __future__ import annotations

import asyncio

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.serving import EngineHolder, RewriteServer, request_once
from repro.store import ServingOnlyEngineError


def build_engine(graph, **config_kwargs):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=7, tolerance=1e-8),
        **config_kwargs,
    )
    return RewriteEngine.from_graph(
        graph, config, bid_terms={str(q) for q in graph.queries()}
    ).fit()


@pytest.fixture
def engine(small_weighted_graph):
    return build_engine(small_weighted_graph)


@pytest.fixture
def served(engine, tmp_path):
    return RewriteEngine.from_store(engine.export_store(tmp_path / "s.sqlite"))


class TestStoreBackedServing:
    def test_serves_through_the_lru_cache(self, engine, served):
        assert served.rewrite("camera") == engine.rewrite("camera")
        assert served.rewrite("camera") == engine.rewrite("camera")
        info = served.cache_info()
        assert (info.hits, info.misses) == (1, 1)
        # The second call was a cache hit: one store lookup total.
        assert served.serving_store.lookups == 1

    def test_expansions_and_batch(self, engine, served):
        assert served.expansions("camera") == engine.expansions("camera")
        batch = ["camera", "pc", "camera"]
        assert served.rewrite_batch(batch) == engine.rewrite_batch(batch)

    def test_is_fitted_and_repr(self, served):
        assert served.is_fitted
        assert "store-backed (sqlite)" in repr(served)

    def test_precompute_warms_store_universe(self, served):
        warmed = served.precompute()
        assert warmed == len(served.serving_store.queries())
        assert served.cache_info().size == warmed

    def test_from_store_rebuilds_recorded_config(self, engine, served):
        assert served.config.to_dict() == engine.config.to_dict()

    def test_copy_shares_the_store(self, served):
        clone = served.copy()
        assert clone.serving_store is served.serving_store
        assert clone.rewrite("camera") == served.rewrite("camera")

    @pytest.mark.parametrize(
        "operation, args",
        [
            ("fit", ()),
            ("refresh", (None,)),
            ("save", ("somewhere",)),
            ("explain", ("camera", "digital camera")),
            ("export_store", ("somewhere.sqlite",)),
        ],
    )
    def test_control_plane_raises_typed_error(self, served, operation, args):
        with pytest.raises(ServingOnlyEngineError, match=operation):
            getattr(served, operation)(*args)


class TestStoreBackedServer:
    def test_server_serves_and_stats_reports_the_store(self, engine, served):
        async def scenario():
            async with RewriteServer(EngineHolder(served)) as server:
                address = server.address
                rewrite = await request_once(
                    address[0], address[1], "POST", "/rewrite", {"query": "camera"}
                )
                stats = await request_once(address[0], address[1], "GET", "/stats")
                return rewrite, stats

        (status_r, payload), (status_s, stats) = asyncio.run(scenario())
        assert status_r == 200
        expected = [
            {"rewrite": r.rewrite, "rank": r.rank, "score": r.score}
            for r in engine.rewrite("camera").rewrites
        ]
        assert payload["rewrites"] == expected
        assert status_s == 200
        store_stats = stats["engine"]["store"]
        assert store_stats["kind"] == "sqlite"
        assert store_stats["lookups"] == 1
        assert store_stats["empty_lookups"] == 0

    def test_direct_engines_report_no_store(self, engine):
        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                return await request_once(*server.address, "GET", "/stats")

        status, stats = asyncio.run(scenario())
        assert status == 200
        assert stats["engine"]["store"] is None

    def test_reload_accepts_a_store_file(self, engine, tmp_path):
        store_path = engine.export_store(tmp_path / "rewrites.sqlite")
        holder = EngineHolder(engine)

        async def scenario():
            async with RewriteServer(holder) as server:
                host, port = server.address
                reloaded = await request_once(
                    host, port, "POST", "/reload", {"path": str(store_path)}
                )
                served = await request_once(
                    host, port, "POST", "/rewrite", {"query": "camera"}
                )
                stats = await request_once(host, port, "GET", "/stats")
                return reloaded, served, stats

        (status_l, reloaded), (status_r, served), (_, stats) = asyncio.run(scenario())
        assert status_l == 200
        assert reloaded["version"] == 2
        assert status_r == 200
        expected = [
            {"rewrite": r.rewrite, "rank": r.rank, "score": r.score}
            for r in engine.rewrite("camera").rewrites
        ]
        assert served["rewrites"] == expected
        assert stats["engine"]["store"]["kind"] == "sqlite"

    def test_corrupt_store_reload_is_clean_error_never_retried(
        self, engine, tmp_path
    ):
        junk = tmp_path / "junk.sqlite"
        junk.write_bytes(b"this is not a sqlite database, not even close!")
        holder = EngineHolder(engine)

        async def scenario():
            async with RewriteServer(holder) as server:
                host, port = server.address
                reloaded = await request_once(
                    host, port, "POST", "/reload", {"path": str(junk)}
                )
                served = await request_once(
                    host, port, "POST", "/rewrite", {"query": "camera"}
                )
                stats = await request_once(host, port, "GET", "/stats")
                return reloaded, served, stats

        (status_l, reloaded), (status_r, _), (_, stats) = asyncio.run(scenario())
        assert status_l == 500
        assert "store rejected" in reloaded["error"]
        assert holder.version == 1, "the corrupt reload must publish nothing"
        assert status_r == 200, "old engine must keep serving"
        assert stats["health"]["publish"]["failures"] == 1, (
            "a corrupt store file is permanent for its input: never retried"
        )
        assert "StoreError" in stats["health"]["publish"]["last_error"]
