"""Tests for log aggregation, dataset statistics, validation and sampling."""

import random

import pytest

from repro.graph.builders import ImpressionRecord, build_click_graph_from_log, merge_click_graphs
from repro.graph.click_graph import ClickGraph
from repro.graph.sampling import intersect_with_graph, sample_queries_by_traffic, traffic_popularity
from repro.graph.statistics import (
    dataset_statistics,
    degree_distribution,
    estimate_power_law_exponent,
    statistics_table,
)
from repro.graph.validation import validate_click_graph


class TestBuilders:
    def test_aggregation_counts_impressions_and_clicks(self):
        records = [
            ImpressionRecord("camera", "hp.com", position=1, clicked=True),
            ImpressionRecord("camera", "hp.com", position=2, clicked=False),
            ImpressionRecord("camera", "hp.com", position=1, clicked=True),
            ImpressionRecord("pc", "dell.com", position=1, clicked=False),
        ]
        graph = build_click_graph_from_log(records)
        stats = graph.edge("camera", "hp.com")
        assert stats.impressions == 3
        assert stats.clicks == 2
        # The pc-dell pair never clicked, so it is not an edge (paper Section 2).
        assert not graph.has_edge("pc", "dell.com")

    def test_position_prior_debiases_expected_click_rate(self):
        records = [
            ImpressionRecord("q", "a", position=3, clicked=True),
            ImpressionRecord("q", "a", position=3, clicked=False),
        ]
        prior = {1: 1.0, 2: 0.5, 3: 0.25}
        graph = build_click_graph_from_log(records, position_prior=prior)
        stats = graph.edge("q", "a")
        # One click over 0.5 examination mass, clamped to 1.0.
        assert stats.expected_click_rate == pytest.approx(1.0)
        assert stats.click_through_rate == pytest.approx(0.5)

    def test_min_clicks_threshold(self):
        records = [ImpressionRecord("q", "a", clicked=True)]
        assert build_click_graph_from_log(records, min_clicks=2).num_edges == 0

    def test_merge_click_graphs(self, fig3_graph):
        other = ClickGraph()
        other.add_edge("camera", "hp.com", impressions=5, clicks=2)
        other.add_edge("new query", "new-ad.com", impressions=3, clicks=1)
        merged = merge_click_graphs([fig3_graph, other])
        assert merged.edge("camera", "hp.com").clicks == 3
        assert merged.has_edge("new query", "new-ad.com")
        assert merged.num_edges == fig3_graph.num_edges + 1


class TestStatistics:
    def test_dataset_statistics_counts(self, fig3_graph):
        stats = dataset_statistics(fig3_graph)
        assert stats.num_queries == 5
        assert stats.num_ads == 4
        assert stats.num_edges == 8
        assert stats.as_row() == {"# of Queries": 5, "# of Ads": 4, "# of Edges": 8}

    def test_statistics_table_has_total_row(self, fig3_graph, small_weighted_graph):
        rows = statistics_table([fig3_graph, small_weighted_graph])
        assert rows[-1]["subgraph"] == "Total"
        assert rows[-1]["# of Edges"] == fig3_graph.num_edges + small_weighted_graph.num_edges

    def test_degree_distribution_sides(self, fig3_graph):
        per_query = degree_distribution(fig3_graph, side="query")
        per_ad = degree_distribution(fig3_graph, side="ad")
        assert per_query.num_observations == 5
        assert per_query.max == 2
        assert per_ad.max == 3
        assert per_query.fraction_at_least(2) == pytest.approx(3 / 5)
        with pytest.raises(ValueError):
            degree_distribution(fig3_graph, side="bogus")

    def test_power_law_exponent_estimation(self):
        rng = random.Random(0)
        # Sample from P(k) ~ k^-2.5 over 1..50 and check the MLE is in the ballpark.
        support = list(range(1, 51))
        weights = [k ** -2.5 for k in support]
        sample = rng.choices(support, weights=weights, k=5000)
        alpha = estimate_power_law_exponent(sample)
        assert 2.0 < alpha < 3.0

    def test_power_law_exponent_requires_observations(self):
        with pytest.raises(ValueError):
            estimate_power_law_exponent([], xmin=1)


class TestValidation:
    def test_clean_graph_has_no_issues(self, small_weighted_graph):
        assert validate_click_graph(small_weighted_graph) == []

    def test_zero_click_edge_is_an_error(self):
        graph = ClickGraph()
        graph.add_edge("q", "a", impressions=10, clicks=0)
        issues = validate_click_graph(graph)
        assert any(issue.code == "zero-click-edge" for issue in issues)
        assert any(issue.severity == "error" for issue in issues)

    def test_isolated_nodes_flagged_when_requested(self):
        graph = ClickGraph()
        graph.add_query("alone")
        graph.add_edge("q", "a", impressions=2, clicks=1)
        issues = validate_click_graph(graph, allow_isolated_nodes=False)
        assert any(issue.code == "isolated-query" for issue in issues)

    def test_ecr_above_max_is_a_warning(self):
        graph = ClickGraph()
        graph.add_edge("q", "a", impressions=10, clicks=5, expected_click_rate=1.5)
        issues = validate_click_graph(graph)
        assert any(issue.code == "ecr-above-max" for issue in issues)

    def test_issue_str_is_informative(self):
        graph = ClickGraph()
        graph.add_edge("q", "a", impressions=10, clicks=0)
        issue = validate_click_graph(graph)[0]
        assert "zero-click-edge" in str(issue)


class TestSampling:
    def test_sample_is_popularity_weighted(self):
        rng = random.Random(1)
        traffic = ["popular"] * 900 + ["rare"] * 100
        sample = sample_queries_by_traffic(traffic, 200, rng=rng, unique=False)
        counts = traffic_popularity(sample)
        assert counts["popular"] > counts["rare"]

    def test_unique_sampling_removes_duplicates(self):
        rng = random.Random(2)
        sample = sample_queries_by_traffic(["a", "b", "c"] * 100, 50, rng=rng)
        assert len(sample) == len(set(sample))

    def test_empty_traffic(self):
        assert sample_queries_by_traffic([], 10) == []

    def test_negative_sample_size_rejected(self):
        with pytest.raises(ValueError):
            sample_queries_by_traffic(["a"], -1)

    def test_intersect_with_graph(self, fig3_graph):
        kept = intersect_with_graph(["camera", "unknown query", "flower"], fig3_graph)
        assert kept == ["camera", "flower"]
