"""Tests for connected components and BFS balls."""

import pytest

from repro.graph.click_graph import ClickGraph
from repro.graph.components import bfs_ball, component_of, connected_components, largest_component


def test_figure3_has_two_components(fig3_graph):
    components = connected_components(fig3_graph)
    assert len(components) == 2
    queries, ads = components[0]
    # The electronics cluster is the larger component.
    assert queries == {"pc", "camera", "digital camera", "tv"}
    assert ads == {"hp.com", "bestbuy.com"}
    assert components[1][0] == {"flower"}


def test_largest_component_subgraph(fig3_graph):
    giant = largest_component(fig3_graph)
    assert giant.num_queries == 4
    assert not giant.has_query("flower")


def test_component_of(fig3_graph):
    queries, ads = component_of(fig3_graph, "flower")
    assert queries == {"flower"}
    assert ads == {"teleflora.com", "orchids.com"}


def test_component_of_unknown_query_raises(fig3_graph):
    with pytest.raises(KeyError):
        component_of(fig3_graph, "missing query")


def test_isolated_nodes_form_singleton_components():
    graph = ClickGraph()
    graph.add_query("alone")
    graph.add_ad("lonely-ad")
    components = connected_components(graph)
    assert len(components) == 2


def test_bfs_ball_radius_zero_and_growth(fig3_graph):
    queries, ads = bfs_ball(fig3_graph, "pc", 0)
    assert queries == {"pc"} and ads == set()
    queries1, ads1 = bfs_ball(fig3_graph, "pc", 1)
    assert ads1 == {"hp.com"}
    queries2, ads2 = bfs_ball(fig3_graph, "pc", 2)
    assert queries2 == {"pc", "camera", "digital camera"}
    queries4, ads4 = bfs_ball(fig3_graph, "pc", 4)
    assert queries4 == {"pc", "camera", "digital camera", "tv"}
    assert ads4 == {"hp.com", "bestbuy.com"}


def test_bfs_ball_never_leaves_component(fig3_graph):
    queries, ads = bfs_ball(fig3_graph, "flower", 10)
    assert queries == {"flower"}
    assert ads == {"teleflora.com", "orchids.com"}


def test_bfs_ball_validation(fig3_graph):
    with pytest.raises(KeyError):
        bfs_ball(fig3_graph, "not a query", 2)
    with pytest.raises(ValueError):
        bfs_ball(fig3_graph, "pc", -1)
