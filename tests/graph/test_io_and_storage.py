"""Round-trip tests for TSV / JSONL files and the SQLite store."""

import sqlite3

import pytest

from repro.core.simrank_matrix import MatrixSimrank
from repro.graph.click_graph import ClickGraph, EdgeStats
from repro.graph.io import read_edges_jsonl, read_edges_tsv, write_edges_jsonl, write_edges_tsv
from repro.graph.storage import ClickGraphStore


class TestFlatFiles:
    def test_tsv_round_trip(self, small_weighted_graph, tmp_path):
        path = tmp_path / "edges.tsv"
        written = write_edges_tsv(small_weighted_graph, path)
        assert written == small_weighted_graph.num_edges
        loaded = read_edges_tsv(path)
        assert loaded == small_weighted_graph

    def test_jsonl_round_trip(self, small_weighted_graph, tmp_path):
        path = tmp_path / "edges.jsonl"
        written = write_edges_jsonl(small_weighted_graph, path)
        assert written == small_weighted_graph.num_edges
        loaded = read_edges_jsonl(path)
        assert loaded == small_weighted_graph

    def test_tsv_rejects_bad_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("not\tthe\theader\n")
        with pytest.raises(ValueError):
            read_edges_tsv(path)

    def test_tsv_rejects_malformed_row(self, tmp_path):
        path = tmp_path / "bad_rows.tsv"
        path.write_text("query\tad\timpressions\tclicks\texpected_click_rate\nq\ta\t3\n")
        with pytest.raises(ValueError):
            read_edges_tsv(path)

    def test_jsonl_rejects_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"query": "q", "ad": "a", "clicks": 1}\n')
        with pytest.raises(ValueError):
            read_edges_jsonl(path)


class TestClickGraphStore:
    def test_save_and_load_graph(self, small_weighted_graph, tmp_path):
        with ClickGraphStore(tmp_path / "clicks.db") as store:
            stored = store.save_graph("two-week", small_weighted_graph)
            assert stored == small_weighted_graph.num_edges
            loaded = store.load_graph("two-week")
        assert loaded == small_weighted_graph

    def test_in_memory_store(self, fig3_graph):
        store = ClickGraphStore()
        store.save_graph("sample", fig3_graph)
        assert store.edge_count("sample") == fig3_graph.num_edges
        assert store.list_graphs() == ["sample"]
        store.close()

    def test_load_unknown_graph_raises(self):
        with ClickGraphStore() as store:
            with pytest.raises(KeyError):
                store.load_graph("nope")

    def test_replace_false_protects_existing(self, fig3_graph):
        with ClickGraphStore() as store:
            store.save_graph("g", fig3_graph)
            with pytest.raises(ValueError):
                store.save_graph("g", fig3_graph, replace=False)

    def test_delete_graph(self, fig3_graph):
        with ClickGraphStore() as store:
            store.save_graph("g", fig3_graph)
            store.delete_graph("g")
            assert store.list_graphs() == []
            # Deleting again is a no-op.
            store.delete_graph("g")

    def test_bid_terms_round_trip(self):
        with ClickGraphStore() as store:
            count = store.save_bid_terms("period-1", ["camera", "pc", "camera"])
            assert count == 2
            assert store.load_bid_terms("period-1") == {"camera", "pc"}
            assert store.load_bid_terms("unknown") == set()

    def test_query_neighbors_without_loading_graph(self, fig3_graph):
        with ClickGraphStore() as store:
            store.save_graph("sample", fig3_graph)
            neighbors = store.query_neighbors("sample", "camera")
        assert set(neighbors) == {"hp.com", "bestbuy.com"}

    def test_save_bid_terms_counts_only_actual_inserts(self):
        """Regression: INSERT OR IGNORE used to report *attempted* rows."""
        with ClickGraphStore() as store:
            assert store.save_bid_terms("period-1", ["camera", "pc"]) == 2
            # Appending with one overlap: only the new query counts.
            assert (
                store.save_bid_terms("period-1", ["camera", "tv"], replace=False) == 1
            )
            assert store.load_bid_terms("period-1") == {"camera", "pc", "tv"}
            # Re-saving an identical list without replace inserts nothing.
            assert (
                store.save_bid_terms("period-1", ["camera", "pc", "tv"], replace=False)
                == 0
            )
            # replace=True rewrites the list, so every row is an insert again.
            assert store.save_bid_terms("period-1", ["camera"]) == 1

    def test_save_bid_terms_rejects_non_str_terms(self):
        with ClickGraphStore() as store:
            with pytest.raises(TypeError):
                store.save_bid_terms("period", ["camera", 42])
            assert store.load_bid_terms("period") == set()  # nothing written

    def test_save_graph_rejects_non_str_nodes(self, fig3_graph):
        """Regression: int node ids used to come back as str after a round trip."""
        graph = ClickGraph()
        graph.add_edge(42, "ad", impressions=10, clicks=2)
        with ClickGraphStore() as store:
            with pytest.raises(TypeError):
                store.save_graph("typed", graph)
            assert store.list_graphs() == []  # nothing half-written

    def test_round_trip_preserves_similarity_scores(self, small_weighted_graph):
        """save -> load -> fit produces the same scores as the original graph."""
        with ClickGraphStore() as store:
            store.save_graph("g", small_weighted_graph)
            reloaded = store.load_graph("g")
        assert reloaded == small_weighted_graph
        original = MatrixSimrank(mode="weighted").fit(small_weighted_graph)
        round_tripped = MatrixSimrank(mode="weighted").fit(reloaded)
        assert (
            original.similarities().max_difference(round_tripped.similarities()) == 0.0
        )

    def test_failed_save_graph_rolls_back(self, fig3_graph):
        """Regression: a failed replace save must not leave a pending DELETE.

        Before the explicit transaction, the DELETE of the old edges stayed
        uncommitted after an insert error, and any later unrelated commit
        silently persisted it -- wiping the previously stored graph.
        """

        class _Unbindable:
            """A stats object sqlite3 cannot bind (fails mid-executemany)."""

            impressions = object()
            clicks = 1
            expected_click_rate = 0.1

        class _PoisonGraph:
            def edges(self):
                yield "q-ok", "a-ok", EdgeStats(
                    impressions=10, clicks=2, expected_click_rate=0.1
                )
                yield "q-bad", "a-bad", _Unbindable()

        with ClickGraphStore() as store:
            store.save_graph("g", fig3_graph)
            with pytest.raises((sqlite3.InterfaceError, sqlite3.ProgrammingError)):
                store.save_graph("g", _PoisonGraph(), replace=True)
            # An unrelated write that commits must not flush the dead DELETE.
            store.save_bid_terms("other", ["camera"])
            assert store.edge_count("g") == fig3_graph.num_edges
            assert store.load_graph("g") == fig3_graph
