"""Unit tests for the click graph data structure."""

import math

import pytest

from repro.graph.click_graph import ClickGraph, EdgeStats, NodeKind, WeightSource


class TestEdgeStats:
    def test_expected_click_rate_defaults_to_ctr(self):
        stats = EdgeStats(impressions=100, clicks=10)
        assert stats.expected_click_rate == pytest.approx(0.1)

    def test_explicit_expected_click_rate_is_kept(self):
        stats = EdgeStats(impressions=100, clicks=10, expected_click_rate=0.25)
        assert stats.expected_click_rate == pytest.approx(0.25)

    def test_clicks_cannot_exceed_impressions(self):
        with pytest.raises(ValueError):
            EdgeStats(impressions=5, clicks=6)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            EdgeStats(impressions=-1, clicks=0)
        with pytest.raises(ValueError):
            EdgeStats(impressions=1, clicks=-1)

    def test_zero_impressions_has_zero_ctr(self):
        stats = EdgeStats(impressions=0, clicks=0)
        assert stats.click_through_rate == 0.0

    def test_weight_sources(self):
        stats = EdgeStats(impressions=200, clicks=20, expected_click_rate=0.15)
        assert stats.weight(WeightSource.EXPECTED_CLICK_RATE) == pytest.approx(0.15)
        assert stats.weight(WeightSource.CLICKS) == 20
        assert stats.weight(WeightSource.IMPRESSIONS) == 200
        assert stats.weight(WeightSource.CLICK_THROUGH_RATE) == pytest.approx(0.1)

    def test_merged_with_adds_counts(self):
        first = EdgeStats(impressions=100, clicks=10, expected_click_rate=0.1)
        second = EdgeStats(impressions=300, clicks=60, expected_click_rate=0.2)
        merged = first.merged_with(second)
        assert merged.impressions == 400
        assert merged.clicks == 70
        # Impression-weighted average of the expected click rates.
        assert merged.expected_click_rate == pytest.approx((0.1 * 100 + 0.2 * 300) / 400)


class TestClickGraphBasics:
    def test_add_edge_creates_nodes(self):
        graph = ClickGraph()
        graph.add_edge("camera", "hp.com", impressions=10, clicks=2)
        assert graph.has_query("camera")
        assert graph.has_ad("hp.com")
        assert graph.has_edge("camera", "hp.com")
        assert graph.num_edges == 1

    def test_query_and_ad_namespaces_are_separate(self):
        graph = ClickGraph()
        graph.add_query("shared-name")
        graph.add_ad("shared-name")
        assert graph.num_queries == 1
        assert graph.num_ads == 1
        assert graph.num_nodes == 2

    def test_degree_matches_neighbor_count(self, fig3_graph):
        assert fig3_graph.query_degree("camera") == 2
        assert fig3_graph.query_degree("pc") == 1
        assert fig3_graph.ad_degree("hp.com") == 3
        assert fig3_graph.degree("camera", NodeKind.QUERY) == 2
        assert fig3_graph.degree("hp.com", NodeKind.AD) == 3

    def test_neighbors(self, fig3_graph):
        assert set(fig3_graph.ads_of("camera")) == {"hp.com", "bestbuy.com"}
        assert set(fig3_graph.queries_of("bestbuy.com")) == {"camera", "digital camera", "tv"}
        assert fig3_graph.neighbors("flower", NodeKind.QUERY) == sorted(
            fig3_graph.ads_of("flower")
        ) or set(fig3_graph.neighbors("flower", NodeKind.QUERY)) == {
            "teleflora.com",
            "orchids.com",
        }

    def test_missing_edge_returns_none_and_zero_weight(self, fig3_graph):
        assert fig3_graph.edge("pc", "teleflora.com") is None
        assert fig3_graph.weight("pc", "teleflora.com") == 0.0

    def test_remove_edge(self, fig3_graph):
        stats = fig3_graph.remove_edge("camera", "hp.com")
        assert stats.clicks == 1
        assert not fig3_graph.has_edge("camera", "hp.com")
        assert "camera" not in fig3_graph.queries_of("hp.com")
        # Nodes survive edge removal.
        assert fig3_graph.has_query("camera")

    def test_remove_missing_edge_raises(self, fig3_graph):
        with pytest.raises(KeyError):
            fig3_graph.remove_edge("pc", "orchids.com")

    def test_add_edge_merge(self):
        graph = ClickGraph()
        graph.add_edge("q", "a", impressions=10, clicks=1)
        graph.add_edge("q", "a", impressions=20, clicks=3, merge=True)
        stats = graph.edge("q", "a")
        assert stats.impressions == 30
        assert stats.clicks == 4

    def test_totals(self, small_weighted_graph):
        assert small_weighted_graph.total_clicks() == sum(
            stats.clicks for _, _, stats in small_weighted_graph.edges()
        )
        assert small_weighted_graph.total_impressions() > small_weighted_graph.total_clicks()


class TestClickGraphDerivation:
    def test_copy_is_equal_but_independent(self, fig3_graph):
        clone = fig3_graph.copy()
        assert clone == fig3_graph
        clone.remove_edge("camera", "hp.com")
        assert clone != fig3_graph
        assert fig3_graph.has_edge("camera", "hp.com")

    def test_subgraph_keeps_only_selected_nodes(self, fig3_graph):
        sub = fig3_graph.subgraph(queries=["camera", "digital camera"])
        assert set(sub.queries()) == {"camera", "digital camera"}
        assert sub.num_edges == 4
        assert not sub.has_edge("pc", "hp.com")

    def test_subgraph_defaults_keep_everything(self, fig3_graph):
        assert fig3_graph.subgraph() == fig3_graph

    def test_without_edges(self, fig3_graph):
        pruned = fig3_graph.without_edges([("camera", "hp.com"), ("unknown", "x")])
        assert not pruned.has_edge("camera", "hp.com")
        assert pruned.num_edges == fig3_graph.num_edges - 1
        # Original untouched.
        assert fig3_graph.has_edge("camera", "hp.com")

    def test_from_edges_defaults_to_single_click(self):
        graph = ClickGraph.from_edges([("q1", "a1", {}), ("q1", "a2", {"clicks": 5, "impressions": 50})])
        assert graph.edge("q1", "a1").clicks == 1
        assert graph.edge("q1", "a2").clicks == 5

    def test_weights_accessors(self, small_weighted_graph):
        weights = small_weighted_graph.query_weights("camera")
        assert weights["hp.com"] == pytest.approx(0.10)
        ad_weights = small_weighted_graph.ad_weights("hp.com")
        assert set(ad_weights) == {"camera", "digital camera", "pc"}


class TestClickGraphExport:
    def test_to_networkx_is_bipartite(self, fig3_graph):
        import networkx as nx

        graph = fig3_graph.to_networkx()
        assert graph.number_of_nodes() == fig3_graph.num_nodes
        assert graph.number_of_edges() == fig3_graph.num_edges
        assert nx.is_bipartite(graph)

    def test_to_sparse_matrix_shape_and_values(self, small_weighted_graph):
        matrix, query_index, ad_index = small_weighted_graph.to_sparse_matrix()
        assert matrix.shape == (small_weighted_graph.num_queries, small_weighted_graph.num_ads)
        row = query_index.index("camera")
        col = ad_index.index("hp.com")
        assert math.isclose(matrix[row, col], 0.10, rel_tol=1e-9)

    def test_repr_mentions_counts(self, fig3_graph):
        text = repr(fig3_graph)
        assert "queries=5" in text
        assert "ads=4" in text
