"""Tests for click-graph deltas: capture, validation and application."""

import pytest

from repro.graph.click_graph import ClickGraph, EdgeStats
from repro.graph.components import reachable_queries
from repro.graph.delta import ClickGraphDelta, DeltaBuilder


def small_graph() -> ClickGraph:
    graph = ClickGraph()
    graph.add_edge("camera", "hp.com", impressions=100, clicks=10)
    graph.add_edge("camera", "bestbuy.com", impressions=50, clicks=5)
    graph.add_edge("digital camera", "hp.com", impressions=80, clicks=8)
    graph.add_edge("flowers", "teleflora.com", impressions=60, clicks=6)
    return graph


class TestClickGraphDelta:
    def test_empty_delta(self):
        delta = ClickGraphDelta()
        assert delta.is_empty
        assert not delta
        assert len(delta) == 0
        assert delta.touched_queries() == set()
        assert delta.touched_ads() == set()

    def test_touched_nodes_cover_all_groups(self):
        delta = ClickGraphDelta(
            added=(("q1", "a1", EdgeStats(10, 1)),),
            updated=(("q2", "a2", EdgeStats(20, 2)),),
            removed=(("q3", "a3"),),
        )
        assert delta.touched_queries() == {"q1", "q2", "q3"}
        assert delta.touched_ads() == {"a1", "a2", "a3"}
        assert len(delta) == 3

    def test_duplicate_edge_within_group_rejected(self):
        with pytest.raises(ValueError, match="twice"):
            ClickGraphDelta(
                added=(("q", "a", EdgeStats(1, 1)), ("q", "a", EdgeStats(2, 2)))
            )

    def test_overlapping_groups_rejected(self):
        with pytest.raises(ValueError, match="both"):
            ClickGraphDelta(
                added=(("q", "a", EdgeStats(1, 1)),),
                removed=(("q", "a"),),
            )

    def test_apply_adds_updates_and_removes(self):
        graph = small_graph()
        delta = ClickGraphDelta(
            added=(("pc", "dell.com", EdgeStats(30, 3)),),
            updated=(("camera", "hp.com", EdgeStats(200, 20)),),
            removed=(("flowers", "teleflora.com"),),
        )
        result = graph.apply_delta(delta)
        assert result is graph
        assert graph.edge("pc", "dell.com") == EdgeStats(30, 3)
        assert graph.edge("camera", "hp.com") == EdgeStats(200, 20)
        assert not graph.has_edge("flowers", "teleflora.com")
        # Removal keeps the endpoints, like remove_edge.
        assert graph.has_query("flowers")
        assert graph.has_ad("teleflora.com")

    def test_apply_validates_before_mutating(self):
        graph = small_graph()
        before = graph.copy()
        bad = ClickGraphDelta(
            added=(("pc", "dell.com", EdgeStats(30, 3)),),
            removed=(("never", "seen"),),
        )
        with pytest.raises(ValueError, match="not in"):
            graph.apply_delta(bad)
        assert graph == before  # nothing half-applied

    def test_apply_rejects_adding_existing_edge(self):
        graph = small_graph()
        bad = ClickGraphDelta(added=(("camera", "hp.com", EdgeStats(1, 1)),))
        with pytest.raises(ValueError, match="already exists"):
            graph.apply_delta(bad)

    def test_between_round_trips(self):
        old = small_graph()
        new = small_graph()
        new.apply_delta(
            ClickGraphDelta(
                added=(("pc", "dell.com", EdgeStats(30, 3)),),
                updated=(("camera", "hp.com", EdgeStats(200, 20)),),
                removed=(("flowers", "teleflora.com"),),
            )
        )
        delta = ClickGraphDelta.between(old, new)
        assert {edge[:2] for edge in delta.added} == {("pc", "dell.com")}
        assert {edge[:2] for edge in delta.updated} == {("camera", "hp.com")}
        assert set(delta.removed) == {("flowers", "teleflora.com")}
        replayed = old.copy().apply_delta(delta)
        assert {(q, a): s for q, a, s in replayed.edges()} == {
            (q, a): s for q, a, s in new.edges()
        }

    def test_between_identical_graphs_is_empty(self):
        assert ClickGraphDelta.between(small_graph(), small_graph()).is_empty

    def test_inverted_round_trips(self):
        graph = small_graph()
        before = graph.copy()
        delta = ClickGraphDelta(
            added=(("pc", "dell.com", EdgeStats(30, 3)),),
            updated=(("camera", "hp.com", EdgeStats(200, 20)),),
            removed=(("flowers", "teleflora.com"),),
        )
        inverse = delta.inverted(graph)  # captured against the pre-apply state
        graph.apply_delta(delta)
        graph.apply_delta(inverse)
        # The edge set round-trips exactly; endpoints the delta introduced
        # stay behind as isolated nodes (edges-only semantics).
        assert {(q, a): s for q, a, s in graph.edges()} == {
            (q, a): s for q, a, s in before.edges()
        }
        assert set(before.queries()) <= set(graph.queries())
        assert graph.query_degree("pc") == 0  # leftover endpoint is isolated

    def test_inverted_requires_pre_apply_state(self):
        graph = small_graph()
        delta = ClickGraphDelta(removed=(("flowers", "teleflora.com"),))
        graph.apply_delta(delta)
        with pytest.raises(ValueError, match="pre-apply"):
            delta.inverted(graph)  # too late: the edge is already gone


class TestDeltaBuilder:
    def test_streaming_events_reconcile_against_base(self):
        base = small_graph()
        builder = (
            DeltaBuilder(base)
            .set_edge("camera", "hp.com", impressions=200, clicks=20)
            .set_edge("pc", "dell.com", impressions=30, clicks=3)
            .remove_edge("flowers", "teleflora.com")
        )
        delta = builder.build()
        assert {edge[:2] for edge in delta.updated} == {("camera", "hp.com")}
        assert {edge[:2] for edge in delta.added} == {("pc", "dell.com")}
        assert set(delta.removed) == {("flowers", "teleflora.com")}
        base.apply_delta(delta)  # valid against the base by construction

    def test_set_back_to_original_cancels_out(self):
        base = small_graph()
        builder = DeltaBuilder(base).set_edge(
            "camera", "hp.com", impressions=100, clicks=10
        )
        assert builder.build().is_empty

    def test_remove_of_unknown_edge_drops_out(self):
        builder = DeltaBuilder(small_graph()).remove_edge("never", "seen")
        assert builder.build().is_empty

    def test_set_then_remove_collapses_to_remove(self):
        builder = (
            DeltaBuilder(small_graph())
            .set_edge("camera", "hp.com", impressions=999, clicks=99)
            .remove_edge("camera", "hp.com")
        )
        delta = builder.build()
        assert set(delta.removed) == {("camera", "hp.com")}
        assert not delta.added and not delta.updated

    def test_merge_after_remove_starts_fresh(self):
        """A removal must not resurrect the base statistics under a later merge."""
        base = small_graph()
        delta = (
            DeltaBuilder(base)
            .remove_edge("camera", "hp.com")
            .merge_edge("camera", "hp.com", EdgeStats(impressions=5, clicks=1))
            .build()
        )
        (edge,) = delta.updated
        assert edge[2] == EdgeStats(impressions=5, clicks=1)  # not 105/11
        assert not delta.removed

    def test_merge_edge_folds_observations(self):
        base = small_graph()
        delta = (
            DeltaBuilder(base)
            .merge_edge("camera", "hp.com", EdgeStats(impressions=100, clicks=10))
            .build()
        )
        (edge,) = delta.updated
        assert edge[2].impressions == 200
        assert edge[2].clicks == 20


class TestReachableQueries:
    def test_reaches_whole_component_from_query_or_ad(self):
        graph = small_graph()
        expected = {"camera", "digital camera"}
        assert reachable_queries(graph, queries={"camera"}) == expected
        assert reachable_queries(graph, ads={"hp.com"}) == expected

    def test_unknown_seeds_are_ignored(self):
        assert reachable_queries(small_graph(), queries={"ghost"}, ads={"ghost"}) == set()

    def test_union_over_multiple_components(self):
        graph = small_graph()
        result = reachable_queries(graph, queries={"camera", "flowers"})
        assert result == {"camera", "digital camera", "flowers"}
