"""Tests for the synthetic workload generator."""

import pytest

from repro.graph.statistics import degree_distribution
from repro.graph.validation import validate_click_graph
from repro.synth.generator import SyntheticWorkload, WorkloadConfig, generate_workload
from repro.synth.topics import TopicRelation
from repro.synth.yahoo_like import TINY_WORKLOAD, yahoo_like_workload


class TestWorkloadConfig:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(same_subtopic_probability=0.7, same_topic_probability=0.3, related_topic_probability=0.2)

    def test_count_validation(self):
        with pytest.raises(ValueError):
            WorkloadConfig(queries_per_topic=0)
        with pytest.raises(ValueError):
            WorkloadConfig(subtopics_per_topic=0)
        with pytest.raises(ValueError):
            WorkloadConfig(bid_fraction=1.5)


class TestGeneratedWorkload:
    def test_workload_is_reproducible(self):
        first = generate_workload(TINY_WORKLOAD)
        second = generate_workload(TINY_WORKLOAD)
        assert first.click_graph == second.click_graph
        assert first.bid_terms == second.bid_terms
        assert first.traffic == second.traffic

    def test_different_seeds_differ(self):
        config = WorkloadConfig(**{**TINY_WORKLOAD.__dict__, "seed": 99})
        assert generate_workload(config).click_graph != generate_workload(TINY_WORKLOAD).click_graph

    def test_every_graph_query_has_a_topic(self, tiny_workload):
        for query in tiny_workload.click_graph.queries():
            assert tiny_workload.topic_of_query(query) in tiny_workload.topic_model.topic_names()
        for ad in tiny_workload.click_graph.ads():
            assert tiny_workload.topic_of_ad(ad) in tiny_workload.topic_model.topic_names()

    def test_graph_is_valid(self, tiny_workload):
        errors = [
            issue for issue in validate_click_graph(tiny_workload.click_graph)
            if issue.severity == "error"
        ]
        assert errors == []

    def test_bid_terms_are_real_queries(self, tiny_workload):
        assert tiny_workload.bid_terms <= set(tiny_workload.query_topics)
        expected = TINY_WORKLOAD.bid_fraction * len(tiny_workload.query_topics)
        assert len(tiny_workload.bid_terms) == pytest.approx(expected, abs=1)

    def test_traffic_contains_clicked_and_unclicked_queries(self, tiny_workload):
        traffic_set = set(tiny_workload.traffic)
        assert traffic_set & set(tiny_workload.query_topics)
        assert traffic_set & set(tiny_workload.unclicked_queries)
        assert len(tiny_workload.traffic) == TINY_WORKLOAD.traffic_length

    def test_relation_between_queries(self, tiny_workload):
        queries = list(tiny_workload.query_topics)
        by_topic = {}
        for query, topic in tiny_workload.query_topics.items():
            by_topic.setdefault(topic, []).append(query)
        photo = by_topic["photography"]
        flowers = by_topic["flowers"]
        assert tiny_workload.relation_between(photo[0], photo[1]) is TopicRelation.SAME
        assert tiny_workload.relation_between(photo[0], flowers[0]) is TopicRelation.UNRELATED
        assert (
            tiny_workload.relation_between(photo[0], "never seen query")
            is TopicRelation.UNRELATED
        )

    def test_weights_reflect_topical_affinity(self, tiny_workload):
        """On-topic edges carry a higher average expected click rate than off-topic ones."""
        graph = tiny_workload.click_graph
        on_topic, off_topic = [], []
        for query, ad, stats in graph.edges():
            same = tiny_workload.topic_of_query(query) == tiny_workload.topic_of_ad(ad)
            (on_topic if same else off_topic).append(stats.expected_click_rate)
        assert on_topic and off_topic
        assert sum(on_topic) / len(on_topic) > sum(off_topic) / len(off_topic)

    def test_degree_distributions_are_heavy_tailed(self):
        workload = yahoo_like_workload("small")
        ads_per_query = degree_distribution(workload.click_graph, side="query")
        queries_per_ad = degree_distribution(workload.click_graph, side="ad")
        assert ads_per_query.max > 3 * max(1, int(ads_per_query.mean))
        assert queries_per_ad.max > queries_per_ad.mean

    def test_subtopic_assignments_cover_all_nodes(self, tiny_workload):
        assert set(tiny_workload.query_subtopics) == set(tiny_workload.query_topics)
        assert set(tiny_workload.ad_subtopics) == set(tiny_workload.ad_topics)
        for _topic, subtopic in tiny_workload.query_subtopics.values():
            assert 0 <= subtopic < TINY_WORKLOAD.subtopics_per_topic


class TestPresets:
    def test_preset_sizes_are_ordered(self):
        tiny = yahoo_like_workload("tiny")
        small = yahoo_like_workload("small")
        assert small.click_graph.num_queries > tiny.click_graph.num_queries
        assert small.click_graph.num_edges > tiny.click_graph.num_edges

    def test_unknown_preset_rejected(self):
        with pytest.raises(ValueError):
            yahoo_like_workload("galactic")

    def test_seed_override(self):
        default = yahoo_like_workload("tiny")
        reseeded = yahoo_like_workload("tiny", seed=12345)
        assert default.click_graph != reseeded.click_graph
