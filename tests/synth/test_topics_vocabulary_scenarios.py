"""Tests for the topic model, built-in vocabularies and paper scenario graphs."""

import pytest

from repro.synth.scenarios import (
    complete_bipartite_graph,
    figure3_graph,
    figure4_graphs,
    figure5_graphs,
    figure6_graphs,
)
from repro.synth.topics import Topic, TopicModel, TopicRelation
from repro.synth.vocabulary import DEFAULT_TOPIC_SPECS, build_topic_model


class TestTopicModel:
    def test_relations(self):
        model = build_topic_model(["photography", "computers", "flowers"])
        assert model.relation("photography", "photography") is TopicRelation.SAME
        assert model.relation("photography", "computers") is TopicRelation.RELATED
        assert model.relation("photography", "flowers") is TopicRelation.UNRELATED
        assert model.are_related("computers", "photography")

    def test_related_topics_listing(self):
        model = build_topic_model()
        assert "hotels" in model.related_topics("travel")
        assert "travel" in model.related_topics("hotels")

    def test_duplicate_topic_rejected(self):
        topic = Topic(name="t", terms=("a",), brands=("b.com",))
        with pytest.raises(ValueError):
            TopicModel([topic, topic])

    def test_relation_validation(self):
        model = build_topic_model(["photography", "computers"])
        with pytest.raises(KeyError):
            model.add_relation("photography", "nonexistent")
        with pytest.raises(ValueError):
            model.add_relation("photography", "photography")

    def test_topic_requires_terms_and_brands(self):
        with pytest.raises(ValueError):
            Topic(name="empty", terms=(), brands=("x.com",))
        with pytest.raises(ValueError):
            Topic(name="empty", terms=("a",), brands=())

    def test_build_with_unknown_topic_name(self):
        with pytest.raises(KeyError):
            build_topic_model(["no-such-vertical"])

    def test_default_specs_are_well_formed(self):
        model = build_topic_model()
        assert len(model) == len(DEFAULT_TOPIC_SPECS)
        for name in model.topic_names():
            topic = model.topic(name)
            assert len(topic.terms) >= 5
            assert len(topic.brands) >= 3


class TestScenarioGraphs:
    def test_figure3_structure(self):
        graph = figure3_graph()
        assert graph.num_queries == 5
        assert graph.num_ads == 4
        assert graph.num_edges == 8
        # Every edge carries exactly one click (unweighted graph).
        assert all(stats.clicks == 1 for _, _, stats in graph.edges())

    def test_figure4_are_complete_bipartite(self):
        k22, k12 = figure4_graphs()
        assert k22.num_edges == 4 and k22.num_queries == 2 and k22.num_ads == 2
        assert k12.num_edges == 2 and k12.num_queries == 2 and k12.num_ads == 1

    def test_figure5_and_6_weighting(self):
        balanced, skewed = figure5_graphs()
        balanced_weights = sorted(s.clicks for _, _, s in balanced.edges())
        skewed_weights = sorted(s.clicks for _, _, s in skewed.edges())
        assert balanced_weights == [100, 100]
        assert skewed_weights == [1, 100]
        heavy, light = figure6_graphs()
        assert all(s.clicks == 100 for _, _, s in heavy.edges())
        assert all(s.clicks == 1 for _, _, s in light.edges())

    def test_complete_bipartite_generator(self):
        graph = complete_bipartite_graph(3, 4)
        assert graph.num_queries == 3
        assert graph.num_ads == 4
        assert graph.num_edges == 12
        with pytest.raises(ValueError):
            complete_bipartite_graph(0, 2)
