"""The auto backend and the process-pool executor are score-equivalent too.

``backend="auto"`` is already swept by the standing backend matrix (it is a
member of ``SIMRANK_BACKENDS``); this module adds the paths that matrix does
not reach: fits executed on the *process* pool (true multi-core, picklable
payloads crossing the process boundary) and the auto planner's warm-start
refresh path.  Equivalence here means the same 1e-6 tolerance as the rest of
the harness, for scores and for served rewrites.
"""

from __future__ import annotations

import pytest

from backend_matrix import MODES, TOLERANCE

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.registry import create
from repro.core.config import SimrankConfig
from repro.graph.delta import ClickGraphDelta, DeltaBuilder
from repro.synth.scenarios import multi_component_graph

#: Converged configuration (mirrors test_warm_start_equivalence): cold and
#: warm fits both reach the tolerance, so they must agree at the fixpoint.
CONVERGED = SimrankConfig(
    c1=0.8, c2=0.8, iterations=120, tolerance=1e-9, zero_evidence_floor=0.1
)


def scenario():
    return multi_component_graph(
        num_components=5, queries_per_component=4, ads_per_component=3, seed=11
    )


def perturbed_pair():
    old = scenario()
    new = old.copy()
    stats = new.edge("c0_q0", "c0_a0")
    new.apply_delta(
        DeltaBuilder(new)
        .set_edge(
            "c0_q0",
            "c0_a0",
            impressions=stats.impressions + 40,
            clicks=stats.clicks + 4,
        )
        .set_edge("c1_q0", "c1_a2", impressions=60, clicks=6)
        .remove_edge("c2_q1", "c2_a1")
        .build()
    )
    return old, new


@pytest.mark.timeout(300)
@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("backend", ["sharded", "auto"])
def test_process_executor_matches_the_dense_engine(backend, mode):
    graph = scenario()
    dense = create(mode, config=CONVERGED, backend="matrix").fit(graph)
    process = create(
        mode, config=CONVERGED, backend=backend, n_jobs=2, executor="process"
    ).fit(graph)
    difference = dense.similarities().max_difference(process.similarities())
    assert difference < TOLERANCE


@pytest.mark.timeout(300)
@pytest.mark.parametrize("mode", MODES)
def test_auto_warm_start_refresh_agrees_with_cold_fit(mode):
    """The planner's delegate reuse must not change the warm-started fixpoint."""
    old, new = perturbed_pair()
    auto = create(mode, config=CONVERGED, backend="auto").fit(old)
    auto.fit(new, initial_scores=auto.similarities())
    assert auto.warm_started is True

    cold = create(mode, config=CONVERGED, backend="auto").fit(new)
    assert auto.similarities().max_difference(cold.similarities()) < TOLERANCE


@pytest.mark.timeout(300)
def test_auto_warm_start_keeps_sharded_dirty_component_reuse():
    """Through the auto delegate, untouched components are still reused."""
    old, new = perturbed_pair()
    auto = create("weighted_simrank", config=CONVERGED, backend="auto").fit(old)
    assert auto.plan.strategy == "sharded"
    auto.fit(new, initial_scores=auto.similarities())
    # c0/c1 touched and the edge removal splits c2 in two: 4 dirty fits,
    # while c3/c4 are reused verbatim.
    assert auto.reused_shards == 2
    assert auto.refitted_shards == 4


@pytest.mark.timeout(300)
@pytest.mark.parametrize("mode", MODES)
def test_served_rewrites_match_across_auto_and_process(mode):
    """Depth and ranked score profile agree through the full engine path."""
    graph = scenario()
    queries = sorted(graph.queries(), key=repr)
    engines = {
        "matrix": EngineConfig(method=mode, backend="matrix", similarity=CONVERGED),
        "auto": EngineConfig(method=mode, backend="auto", similarity=CONVERGED),
        "process": EngineConfig(
            method=mode,
            backend="sharded",
            similarity=CONVERGED,
            n_jobs=2,
            executor="process",
        ),
    }
    batches = {}
    for name, config in engines.items():
        engine = RewriteEngine.from_graph(graph, config).fit()
        batches[name] = engine.rewrite_batch(queries)
    reference = batches["matrix"]
    for name in ("auto", "process"):
        for expected, actual in zip(reference, batches[name]):
            context = f"{mode}/{name}: query {expected.query!r}"
            assert expected.depth == actual.depth, context
            for expected_rewrite, actual_rewrite in zip(
                expected.rewrites, actual.rewrites
            ):
                assert actual_rewrite.score == pytest.approx(
                    expected_rewrite.score, abs=TOLERANCE
                ), context


@pytest.mark.timeout(300)
def test_auto_refresh_through_the_engine_matches_a_cold_engine():
    """RewriteEngine.refresh on an auto engine equals refitting from scratch."""
    old, new = perturbed_pair()
    config = EngineConfig(method="weighted_simrank", backend="auto", similarity=CONVERGED)
    engine = RewriteEngine.from_graph(old.copy(), config).fit()
    engine.refresh(ClickGraphDelta.between(old, new))

    cold = RewriteEngine.from_graph(new, config).fit()
    queries = sorted(new.queries(), key=repr)
    for refreshed, expected in zip(engine.rewrite_batch(queries), cold.rewrite_batch(queries)):
        assert refreshed.depth == expected.depth
        for refreshed_rewrite, expected_rewrite in zip(
            refreshed.rewrites, expected.rewrites
        ):
            assert refreshed_rewrite.score == pytest.approx(
                expected_rewrite.score, abs=TOLERANCE
            )
