"""Warm-started fits must agree with cold fits, for every backend and mode.

Warm starting changes the Jacobi *starting point*, never the fixpoint: with
tolerance-based early exit both the cold fit and the warm fit stop within
the same distance of the unique fixpoint, so their scores must agree within
the harness tolerance.  The seed deliberately comes from a *different* graph
state (the pre-delta fit) -- exactly the incremental-refresh situation --
and from both store flavours (array-backed and dict-backed via a snapshot
round trip is covered in tests/api).
"""

from __future__ import annotations

import pytest

from backend_matrix import MODES, TOLERANCE

from repro.api.registry import SIMRANK_BACKENDS, create
from repro.core.config import SimrankConfig
from repro.graph.delta import DeltaBuilder
from repro.synth.scenarios import multi_component_graph

#: Converged configuration: enough headroom for the cold identity start to
#: reach the tolerance, so cold and warm stop at the same fixpoint.
CONVERGED = SimrankConfig(
    c1=0.8, c2=0.8, iterations=120, tolerance=1e-9, zero_evidence_floor=0.1
)


def perturbed_pair():
    """A scenario graph and a mildly perturbed successor."""
    old = multi_component_graph(
        num_components=3, queries_per_component=4, ads_per_component=3, seed=11
    )
    new = old.copy()
    stats = new.edge("c0_q0", "c0_a0")
    delta = (
        DeltaBuilder(new)
        .set_edge(
            "c0_q0",
            "c0_a0",
            impressions=stats.impressions + 40,
            clicks=stats.clicks + 4,
        )
        .set_edge("c1_q0", "c1_a2", impressions=60, clicks=6)
        .remove_edge("c2_q1", "c2_a1")
        .build()
    )
    new.apply_delta(delta)
    return old, new


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("backend", sorted(SIMRANK_BACKENDS))
def test_warm_start_agrees_with_cold_fit(backend, mode):
    old, new = perturbed_pair()
    previous = create(mode, config=CONVERGED, backend=backend).fit(old)

    cold = create(mode, config=CONVERGED, backend=backend).fit(new)
    warm = create(mode, config=CONVERGED, backend=backend)
    warm.fit(new, initial_scores=previous.similarities())

    assert warm.similarities().max_difference(cold.similarities()) < TOLERANCE


@pytest.mark.parametrize("backend", ["matrix", "sparse"])
def test_warm_start_converges_in_fewer_iterations(backend):
    """On a tiny perturbation the warm fit must exit far earlier than cold."""
    old = multi_component_graph(
        num_components=3, queries_per_component=5, ads_per_component=4, seed=23
    )
    new = old.copy()
    stats = new.edge("c0_q0", "c0_a0")
    new.apply_delta(
        DeltaBuilder(new)
        .set_edge(
            "c0_q0",
            "c0_a0",
            impressions=stats.impressions + 1,
            clicks=stats.clicks,
            expected_click_rate=stats.expected_click_rate * 1.001,
        )
        .build()
    )
    previous = create("weighted_simrank", config=CONVERGED, backend=backend).fit(old)
    cold = create("weighted_simrank", config=CONVERGED, backend=backend).fit(new)
    warm = create("weighted_simrank", config=CONVERGED, backend=backend)
    warm.fit(new, initial_scores=previous.similarities())

    assert warm.warm_started is True
    assert warm.iterations_run < cold.iterations_run / 2
    assert warm.similarities().max_difference(cold.similarities()) < TOLERANCE


@pytest.mark.parametrize("backend", ["matrix", "sparse"])
def test_dict_backed_seed_is_accepted(backend):
    """A reference fit's dict-backed store seeds the array engines too.

    This is the cross-backend warm-start path (e.g. seeding a matrix refit
    from a snapshot of a reference engine): ``_seed_triplets`` falls back to
    the ``pairs()`` protocol when the store has no matrix/index.
    """
    old, new = perturbed_pair()
    previous = create("simrank", config=CONVERGED, backend="reference").fit(old)
    assert not hasattr(previous.similarities(), "matrix")

    cold = create("simrank", config=CONVERGED, backend=backend).fit(new)
    warm = create("simrank", config=CONVERGED, backend=backend)
    warm.fit(new, initial_scores=previous.similarities())

    assert warm.warm_started is True
    assert warm.similarities().max_difference(cold.similarities()) < TOLERANCE


def test_seed_with_disjoint_nodes_is_harmless():
    """A seed sharing no nodes with the new graph degrades to a cold start."""
    old = multi_component_graph(
        num_components=2, queries_per_component=3, ads_per_component=2, seed=2
    )
    unrelated = multi_component_graph(
        num_components=2, queries_per_component=3, ads_per_component=2, seed=2
    )
    # Rename every node so no identifier overlaps.
    renamed = type(unrelated)()
    for query, ad, stats in unrelated.edges():
        renamed.add_edge_stats(f"x_{query}", f"x_{ad}", stats)
    previous = create("simrank", config=CONVERGED, backend="matrix").fit(renamed)

    cold = create("simrank", config=CONVERGED, backend="matrix").fit(old)
    warm = create("simrank", config=CONVERGED, backend="matrix")
    warm.fit(old, initial_scores=previous.similarities())
    assert warm.similarities().max_difference(cold.similarities()) < TOLERANCE


def test_sharded_dirty_component_detection():
    """Only the components a delta touched are refit; the rest are reused."""
    old = multi_component_graph(
        num_components=5, queries_per_component=4, ads_per_component=3, seed=31
    )
    new = old.copy()
    stats = new.edge("c2_q0", "c2_a0")
    new.apply_delta(
        DeltaBuilder(new)
        .set_edge("c2_q0", "c2_a0", impressions=stats.impressions + 9, clicks=stats.clicks)
        .build()
    )
    method = create("weighted_simrank", config=CONVERGED, backend="sharded").fit(old)
    previous_scores = method.similarities()
    method.fit(new, initial_scores=previous_scores)
    assert method.reused_shards == 4
    assert method.refitted_shards == 1
    # Reused components serve the previous fit's scores verbatim.
    untouched = [q for q in old.queries() if not str(q).startswith("c2_")]
    for query in untouched[:5]:
        for other in untouched[:5]:
            assert method.similarities().score(query, other) == previous_scores.score(
                query, other
            )


def test_sharded_all_dirty_warm_start_agrees():
    """Snapshot-style warm start: no previous decomposition, every shard dirty.

    Exercises the per-component seed split (each inner fit must only see its
    own component's slice of the global seed) on the path where reuse is
    impossible and all components refit warm-started.
    """
    old, new = perturbed_pair()
    previous = create("weighted_simrank", config=CONVERGED, backend="sharded").fit(old)
    seed = previous.similarities()

    warm = create("weighted_simrank", config=CONVERGED, backend="sharded")
    warm.fit(new, initial_scores=seed)  # fresh instance: no shards to reuse
    assert warm.reused_shards == 0
    assert warm.refitted_shards == warm.num_shards

    cold = create("weighted_simrank", config=CONVERGED, backend="sharded").fit(new)
    assert warm.similarities().max_difference(cold.similarities()) < TOLERANCE


def test_sharded_component_merge_and_split_are_dirty():
    graph = multi_component_graph(
        num_components=4, queries_per_component=3, ads_per_component=3, seed=7
    )
    method = create("simrank", config=CONVERGED, backend="sharded").fit(graph)

    # Merge components 0 and 1: the merged component must be refit.
    merged = graph.copy()
    merged.apply_delta(
        DeltaBuilder(merged).set_edge("c0_q0", "c1_a0", impressions=10, clicks=1).build()
    )
    method.fit(merged, initial_scores=method.similarities())
    assert method.refitted_shards == 1
    assert method.reused_shards == 2

    # A cold fit (no seed) never reuses, even with identical components.
    method.fit(merged)
    assert method.warm_started is False
    assert method.reused_shards == 0
