"""Snapshot loading must be serving-equivalent for every registered backend.

The persistence layer's contract (ISSUE 4 acceptance criterion): for each
SimRank backend and each evidence mode, ``RewriteEngine.load(path)`` serves
*identical* rewrite lists -- same rewrites, same ranks, bit-identical scores
-- to the freshly fitted engine it was saved from, without refitting.
"""

from __future__ import annotations

import pytest

from backend_matrix import CONFIGS, MODES, SCENARIOS

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.registry import SIMRANK_BACKENDS

#: One multi-component scenario exercises sharding, stitching and isolated
#: nodes in a single graph; the full scenario matrix already runs in
#: test_backend_equivalence.py.
SCENARIO = "uneven_components_with_isolates"


@pytest.mark.parametrize("backend", SIMRANK_BACKENDS)
@pytest.mark.parametrize("method_name", MODES)
def test_loaded_engine_serves_identical_rewrites(method_name, backend, tmp_path):
    graph = SCENARIOS[SCENARIO]()
    engine = RewriteEngine.from_graph(
        graph,
        EngineConfig(
            method=method_name, backend=backend, similarity=CONFIGS["floored"]
        ),
        bid_terms={str(query) for query in graph.queries()},
    ).fit()
    loaded = RewriteEngine.load(engine.save(tmp_path / f"{method_name}-{backend}"))

    assert loaded.is_fitted
    queries = sorted(graph.queries(), key=repr)
    assert loaded.serving_profile(queries) == engine.serving_profile(queries)


@pytest.mark.parametrize("backend", SIMRANK_BACKENDS)
def test_loaded_scores_match_exactly(backend, tmp_path):
    """Point similarity lookups survive the round trip bit-identically."""
    graph = SCENARIOS[SCENARIO]()
    engine = RewriteEngine.from_graph(
        graph, EngineConfig(method="weighted_simrank", backend=backend)
    ).fit()
    loaded = RewriteEngine.load(engine.save(tmp_path / backend))
    assert loaded.method.similarities().max_difference(
        engine.method.similarities()
    ) == 0.0
