"""Shared fixtures of the cross-backend equivalence harness.

The harness runs every SimRank backend (naive node-pair ``reference``, dense
``matrix``, component-sharded ``sharded``, pruned-CSR ``sparse``) over the
same scenario graphs and asserts score agreement.  Scenarios come from
:func:`repro.synth.scenarios.equivalence_scenarios`, so adding a scenario
there automatically extends this safety net; backends come from
:data:`repro.api.registry.SIMRANK_BACKENDS`, so a future backend only has to
register itself to be covered.
"""

from __future__ import annotations

import pytest

from backend_matrix import CONFIGS, SCENARIOS


@pytest.fixture(params=sorted(SCENARIOS), ids=str)
def scenario_graph(request):
    """One scenario click graph per parametrized id."""
    return SCENARIOS[request.param]()


@pytest.fixture(params=sorted(CONFIGS), ids=str)
def simrank_config(request):
    """One SimRank configuration per parametrized id."""
    return CONFIGS[request.param]
