"""SQLite serving stores must be serving-equivalent for every backend.

The store layer's contract (ISSUE 10 acceptance criterion): for each
SimRank backend and each evidence mode, ``RewriteEngine.from_store(path)``
serves *byte-identical* rewrite lists -- same rewrites, same ranks,
bit-identical float64 scores -- to the fitted engine the store was
exported from.  The window-function ranking inside SQLite (``ROW_NUMBER()
OVER (... ORDER BY score DESC, repr ASC)``) must reproduce the in-memory
``(-score, repr(node))`` tie-break exactly, and the equivalence must hold
under a bounded LRU serving cache and after a full ``precompute()``.
"""

from __future__ import annotations

import pytest

from backend_matrix import CONFIGS, MODES, SCENARIOS

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.registry import SIMRANK_BACKENDS
from repro.store import InMemoryServingStore

#: One multi-component scenario exercises sharding, stitching and isolated
#: nodes in a single graph; the full scenario matrix already runs in
#: test_backend_equivalence.py.
SCENARIO = "uneven_components_with_isolates"


def fitted_engine(method_name, backend):
    graph = SCENARIOS[SCENARIO]()
    return RewriteEngine.from_graph(
        graph,
        EngineConfig(
            method=method_name, backend=backend, similarity=CONFIGS["floored"]
        ),
        bid_terms={str(query) for query in graph.queries()},
    ).fit()


@pytest.mark.parametrize("backend", SIMRANK_BACKENDS)
@pytest.mark.parametrize("method_name", MODES)
def test_sqlite_store_serves_identical_rewrites(method_name, backend, tmp_path):
    engine = fitted_engine(method_name, backend)
    store_path = engine.export_store(tmp_path / f"{method_name}-{backend}.sqlite")
    served = RewriteEngine.from_store(store_path)

    assert served.is_fitted
    queries = engine._serving_universe()
    assert served.serving_profile(queries) == engine.serving_profile(queries)
    # The store's universe is the engine's precompute universe, verbatim.
    assert served.serving_store.queries() == queries


@pytest.mark.parametrize("backend", SIMRANK_BACKENDS)
@pytest.mark.parametrize("method_name", MODES)
def test_memory_store_serves_identical_rewrites(method_name, backend):
    engine = fitted_engine(method_name, backend)
    served = RewriteEngine.from_store(InMemoryServingStore.from_engine(engine))

    queries = engine._serving_universe()
    assert served.serving_profile(queries) == engine.serving_profile(queries)


def test_store_equivalence_survives_bounded_lru_cache(tmp_path):
    """Cache churn recomputes through the store; results must not drift."""
    graph = SCENARIOS[SCENARIO]()
    engine = RewriteEngine.from_graph(
        graph,
        EngineConfig(
            method="weighted_simrank",
            backend="matrix",
            similarity=CONFIGS["floored"],
            cache_size=3,
        ),
        bid_terms={str(query) for query in graph.queries()},
    ).fit()
    store_path = engine.export_store(tmp_path / "bounded.sqlite")
    # from_store rebuilds the recorded config, LRU bound included.
    served = RewriteEngine.from_store(store_path)
    assert served.config.cache_size == 3

    queries = engine._serving_universe()
    expected = engine.serving_profile(queries)
    # Two full passes force every entry through at least one eviction and
    # one store re-read on the second sighting.
    assert served.serving_profile(queries) == expected
    assert served.serving_profile(queries) == expected
    info = served.cache_info()
    assert info.capacity == 3
    assert info.evictions > 0


def test_store_equivalence_after_precompute(tmp_path):
    """A full precompute() warms the store universe; serving stays equal."""
    engine = fitted_engine("weighted_simrank", "sharded")
    store_path = engine.export_store(tmp_path / "precomputed.sqlite")
    served = RewriteEngine.from_store(store_path)

    queries = engine._serving_universe()
    warmed = served.precompute()
    assert warmed == len(queries)
    lookups_after_warm = served.serving_store.lookups
    assert served.serving_profile(queries) == engine.serving_profile(queries)
    # Every profile row came from the warmed cache, not new store reads.
    assert served.serving_store.lookups == lookups_after_warm
