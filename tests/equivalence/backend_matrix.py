"""The fixture matrix of the cross-backend equivalence harness.

One place defines what "equivalent" means: which scenario graphs, which
SimRank configurations, which evidence modes and how much per-pair score
disagreement is tolerated.  ``conftest.py`` turns the scenario and
configuration tables into parametrized fixtures; the tests import the rest.
"""

from __future__ import annotations

from repro.core.config import SimrankConfig
from repro.synth.scenarios import equivalence_scenarios

#: Named scenario click-graph builders (see repro.synth.scenarios).
SCENARIOS = equivalence_scenarios()

#: Configurations the backends must agree under: the paper's defaults and the
#: evaluation harness's zero-evidence-floor variant.
CONFIGS = {
    "paper": SimrankConfig(c1=0.8, c2=0.8, iterations=7),
    "floored": SimrankConfig(c1=0.8, c2=0.8, iterations=5, zero_evidence_floor=0.1),
}

#: The three evidence modes, by registered method name.
MODES = ["simrank", "evidence_simrank", "weighted_simrank"]

#: Maximum per-pair score disagreement tolerated between any two backends.
TOLERANCE = 1e-6
