"""All SimRank backends must agree on all scenario graphs, in every mode.

This is the standing safety net for similarity backends: the naive node-pair
implementations (``reference``), the dense matrix engine (``matrix``), the
component-sharded engine (``sharded``) and the pruned sparse engine
(``sparse``, run here with truncation disabled -- the registry default --
so it is exact) are interchangeable claims, and this module is where the
claim is enforced.  A new backend registered for the SimRank family is
picked up through the registry and has to pass the same matrix of
scenarios x modes x configurations.
"""

from __future__ import annotations

import itertools

import pytest

from backend_matrix import CONFIGS, MODES, SCENARIOS, TOLERANCE

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.registry import SIMRANK_BACKENDS, available_backends, create
from repro.core.scores import SimilarityScores


def _fit_all_backends(method_name, graph, config):
    """Fitted method instances keyed by backend name."""
    return {
        backend: create(method_name, config=config, backend=backend).fit(graph)
        for backend in SIMRANK_BACKENDS
    }


def _union_pairs(score_sets):
    """Every unordered pair stored by at least one backend."""
    pairs = set()
    for scores in score_sets:
        pairs.update((first, second) for first, second, _ in scores.pairs())
    return pairs


class TestBackendRegistration:
    @pytest.mark.parametrize("method_name", MODES)
    def test_simrank_family_offers_all_backends(self, method_name):
        assert set(SIMRANK_BACKENDS) <= set(available_backends(method_name))


class TestScoreAgreement:
    @pytest.mark.parametrize("method_name", MODES)
    def test_all_backend_pairs_agree(self, method_name, scenario_graph, simrank_config):
        """Pairwise max score difference across backends is within tolerance."""
        fitted = _fit_all_backends(method_name, scenario_graph, simrank_config)
        score_sets = {name: method.similarities() for name, method in fitted.items()}
        for first, second in itertools.combinations(sorted(score_sets), 2):
            difference = score_sets[first].max_difference(score_sets[second])
            assert difference <= TOLERANCE, (
                f"{method_name}: backends {first!r} and {second!r} disagree by "
                f"{difference:.3e} (> {TOLERANCE:.0e})"
            )

    @pytest.mark.parametrize("method_name", MODES)
    def test_query_similarity_lookups_agree(
        self, method_name, scenario_graph, simrank_config
    ):
        """Point lookups agree too -- including pairs only some backends store."""
        fitted = _fit_all_backends(method_name, scenario_graph, simrank_config)
        pairs = _union_pairs(method.similarities() for method in fitted.values())
        reference = fitted["reference"]
        for other_name in ("matrix", "sharded", "sparse"):
            other = fitted[other_name]
            for first, second in sorted(pairs, key=repr):
                assert other.query_similarity(first, second) == pytest.approx(
                    reference.query_similarity(first, second), abs=TOLERANCE
                ), f"{method_name}/{other_name}: pair ({first!r}, {second!r})"

    @pytest.mark.parametrize("method_name", MODES)
    def test_self_similarity_is_one_everywhere(self, method_name, scenario_graph):
        fitted = _fit_all_backends(method_name, scenario_graph, config=None)
        for method in fitted.values():
            for query in scenario_graph.queries():
                assert method.query_similarity(query, query) == 1.0


class TestServingEquivalence:
    """The equivalence must survive the full engine path, not just raw scores."""

    @pytest.mark.parametrize("method_name", MODES)
    def test_engine_rewrites_match_across_backends(
        self, method_name, scenario_graph, simrank_config
    ):
        """Same depth, same ranked score profile, same per-rewrite scores.

        Exact rewrite *identity* at each rank is deliberately not asserted:
        backends may break machine-epsilon score ties differently, which is
        an equivalent serving outcome.
        """
        engines = {}
        batches = {}
        queries = sorted(scenario_graph.queries(), key=repr)
        for backend in SIMRANK_BACKENDS:
            engine = RewriteEngine.from_graph(
                scenario_graph,
                EngineConfig(
                    method=method_name, backend=backend, similarity=simrank_config
                ),
            ).fit()
            engines[backend] = engine
            batches[backend] = engine.rewrite_batch(queries)
        reference = batches["reference"]
        for backend in ("matrix", "sharded", "sparse"):
            for expected, actual in zip(reference, batches[backend]):
                context = f"{method_name}/{backend}: query {expected.query!r}"
                assert expected.depth == actual.depth, context
                for expected_rewrite, actual_rewrite in zip(
                    expected.rewrites, actual.rewrites
                ):
                    assert actual_rewrite.score == pytest.approx(
                        expected_rewrite.score, abs=TOLERANCE
                    ), context
                    # The proposed rewrite must carry the same similarity
                    # under the reference backend -- tie reshuffles pass,
                    # genuinely different proposals fail.
                    assert engines["reference"].method.query_similarity(
                        actual.query, actual_rewrite.rewrite
                    ) == pytest.approx(actual_rewrite.score, abs=TOLERANCE), context


class TestCrossComponentZeroes:
    """Sharding is only sound because cross-component scores are zero."""

    @pytest.mark.parametrize("method_name", MODES)
    @pytest.mark.parametrize("whole_graph_backend", ["matrix", "sparse"])
    def test_whole_graph_backends_score_cross_component_pairs_zero(
        self, method_name, whole_graph_backend, scenario_graph, simrank_config
    ):
        sharded = create(method_name, config=simrank_config, backend="sharded").fit(
            scenario_graph
        )
        whole = create(
            method_name, config=simrank_config, backend=whole_graph_backend
        ).fit(scenario_graph)
        queries = sorted(scenario_graph.queries(), key=repr)
        for first, second in itertools.combinations(queries, 2):
            if sharded.shard_of(first) != sharded.shard_of(second):
                assert whole.query_similarity(first, second) == 0.0


def test_scenarios_and_backends_are_nontrivial():
    """Guard the harness itself: a pruned matrix would silently weaken it."""
    assert len(SCENARIOS) >= 5
    assert len(CONFIGS) >= 2
    assert len(SIMRANK_BACKENDS) >= 4
    assert "sparse" in SIMRANK_BACKENDS
    assert any(
        scores_something(build()) for build in SCENARIOS.values()
    )


def scores_something(graph) -> bool:
    scores: SimilarityScores = (
        create("simrank", backend="sharded").fit(graph).similarities()
    )
    return len(scores) > 0
