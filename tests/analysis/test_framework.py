"""The analysis framework: loading, discovery, meta-diagnostics, reporting."""

import ast
import textwrap
from pathlib import Path

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.framework import (
    CODE_CHECKER_ERROR,
    CODE_PARSE_ERROR,
    Checker,
    discover,
    dotted_name,
    import_aliases,
    load_file,
    run,
)

FIXTURES = Path(__file__).parent / "fixtures"


class TestDiagnostic:
    def test_render_is_compiler_shaped(self):
        diag = Diagnostic(path="src/x.py", line=3, col=7, code="RL001", message="boom")
        assert diag.render() == "src/x.py:3:7 RL001 boom"

    def test_sort_order_is_positional(self):
        diags = [
            Diagnostic("b.py", 1, 1, "RL001", "m"),
            Diagnostic("a.py", 9, 1, "RL005", "m"),
            Diagnostic("a.py", 2, 5, "RL001", "m"),
            Diagnostic("a.py", 2, 1, "RL001", "m"),
        ]
        ordered = sorted(diags)
        assert [(d.path, d.line, d.col) for d in ordered] == [
            ("a.py", 2, 1),
            ("a.py", 2, 5),
            ("a.py", 9, 1),
            ("b.py", 1, 1),
        ]


class TestLoadFile:
    def test_parse_error_becomes_rl100(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        file = load_file(bad, root=tmp_path)
        assert file.tree is None
        assert file.parse_error is not None
        assert file.parse_error.code == CODE_PARSE_ERROR
        report = run([bad], root=tmp_path)
        assert [d.code for d in report.diagnostics] == [CODE_PARSE_ERROR]

    def test_comments_are_tokenized_not_string_scanned(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text('text = "# repro-lint: disable=RL001"\n# a real comment\n')
        file = load_file(mod, root=tmp_path)
        assert file.suppressions == []  # the directive inside the string is data
        assert file.comment_on(2) == "# a real comment"
        assert file.comment_on(1) == ""

    def test_in_package_dir_matches_consecutive_segments(self):
        file = load_file(FIXTURES / "repro" / "core" / "rl005_bad.py")
        assert file.in_package_dir("repro", "core")
        assert file.in_package_dir("repro")
        assert not file.in_package_dir("core", "repro")
        assert not file.in_package_dir("repro", "serving")


class TestDiscovery:
    def test_fixture_tree_is_excluded_by_default(self, repo_root):
        found = discover([repo_root / "tests"])
        assert not [p for p in found if "fixtures" in p.as_posix()]

    def test_explicit_excludes_can_be_dropped(self):
        found = discover([FIXTURES], excludes=())
        names = {p.name for p in found}
        assert "rl001_bad.py" in names
        assert "rl005_clean.py" in names

    def test_duplicate_paths_collapse(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("x = 1\n")
        assert discover([mod, mod, tmp_path]) == [mod]


class TestRun:
    def test_checker_crash_is_rl199_not_an_exception(self, tmp_path):
        class Exploding(Checker):
            code = "RL001"
            name = "exploding"

            def check_file(self, file, project):
                raise RuntimeError("kaboom")

        mod = tmp_path / "m.py"
        mod.write_text("x = 1\n")
        report = run([mod], checkers=[Exploding()], root=tmp_path)
        assert [d.code for d in report.diagnostics] == [CODE_CHECKER_ERROR]
        assert "kaboom" in report.diagnostics[0].message

    def test_json_payload_counts_by_code(self, tmp_path):
        mod = tmp_path / "repro" / "core" / "m.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(
            textwrap.dedent(
                """
                import time


                def f():
                    return time.time()
                """
            ).lstrip()
        )
        report = run([mod], root=tmp_path)
        payload = report.to_json()
        assert payload["count"] == 1
        assert payload["by_code"] == {"RL005": 1}
        assert payload["files_checked"] == 1
        assert payload["checkers"] == ["RL001", "RL002", "RL003", "RL004", "RL005"]
        (record,) = payload["diagnostics"]
        assert record["code"] == "RL005"
        assert record["line"] == 5

    def test_human_rendering_has_count_trailer(self, tmp_path):
        mod = tmp_path / "m.py"
        mod.write_text("x = 1\n")
        report = run([mod], root=tmp_path)
        assert report.ok
        assert report.render_lines() == ["0 diagnostics"]


class TestHelpers:
    def test_import_aliases_resolve_asname_and_from(self):
        tree = ast.parse(
            "import numpy as np\n"
            "from time import sleep\n"
            "from concurrent.futures import ProcessPoolExecutor as PPE\n"
        )
        aliases = import_aliases(tree)
        assert aliases["np"] == "numpy"
        assert aliases["sleep"] == "time.sleep"
        assert aliases["PPE"] == "concurrent.futures.ProcessPoolExecutor"

    def test_dotted_name_translates_the_head(self):
        tree = ast.parse("import numpy as np\nx = np.random.rand()\n")
        aliases = import_aliases(tree)
        call = tree.body[1].value
        assert dotted_name(call.func, aliases) == "numpy.random.rand"
        assert dotted_name(ast.parse("f()").body[0].value) is None
