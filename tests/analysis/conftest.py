"""Shared helpers for the static-analysis suite tests.

The checker tests are fixture-driven: known-bad snippets under
``fixtures/`` mark each expected finding with a ``# BAD`` comment, so the
tests assert the exact diagnosed lines without hand-maintained line
numbers, and known-clean twins assert silence.  The fixture tree mirrors
the package layout (``fixtures/repro/core/...``) so path-scoped checkers
fire on it; the analyzer's default excludes keep the same tree out of the
real CI run.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable, List

import pytest

_FIXTURES = Path(__file__).parent / "fixtures"
_REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture
def fixtures_dir() -> Path:
    return _FIXTURES


@pytest.fixture
def repo_root() -> Path:
    return _REPO_ROOT


@pytest.fixture
def bad_lines() -> Callable[[Path], List[int]]:
    """1-indexed lines a fixture marks with ``# BAD`` -- the expected hits."""

    def collect(path: Path) -> List[int]:
        return [
            number
            for number, line in enumerate(
                path.read_text().splitlines(), start=1
            )
            if "# BAD" in line
        ]

    return collect
