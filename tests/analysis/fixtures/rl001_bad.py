"""Known-bad RL001 fixture: guarded fields touched outside their lock.

The ``EngineHolder`` class below reproduces the pre-existing bug the
checker's seed map was built to catch: a ``/stats``-style property reading
the ``_outcome``-guarded swap counter lock-free.
"""

import threading


class EngineHolder:
    """Class name matches the seed map: ``_swaps`` is guarded by ``_outcome``."""

    def __init__(self):
        self._outcome = threading.Lock()
        self._swaps = 0

    @property
    def swaps(self):
        return self._swaps  # BAD: seed-map field read without the lock


class Annotated:
    def __init__(self):
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._count = 0

    def bump(self):
        self._count += 1  # BAD: annotated field written without the lock

    def read(self):
        with self._lock:
            return self._count  # ok: inside the declared lock
