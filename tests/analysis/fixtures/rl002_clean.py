"""Known-clean RL002 fixture: async bodies that never block the loop."""

import asyncio
import time


async def handler():
    await asyncio.sleep(0.1)  # awaited asyncio sleep is fine
    lock = asyncio.Lock()
    await lock.acquire()  # awaited acquire is an asyncio primitive
    lock.release()

    def compute():
        time.sleep(0.1)  # nested sync def: the executor-target idiom
        return 1

    loop = asyncio.get_running_loop()
    return await loop.run_in_executor(None, compute)


def plain():
    time.sleep(0.1)  # sync function: out of RL002's scope
    return open  # referencing, not calling
