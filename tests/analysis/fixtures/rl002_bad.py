"""Known-bad RL002 fixture: blocking calls inside async bodies."""

import threading
import time
from time import sleep

LOCK = threading.Lock()


async def handler():
    time.sleep(0.1)  # BAD: blocks the event loop
    sleep(0.1)  # BAD: same call through a from-import
    LOCK.acquire()  # BAD: bare acquire, not awaited
    with open("data.txt") as fh:  # BAD: blocking file IO
        return fh.read()
