"""Known-clean RL003 fixture: module-level callables and plain data only."""

from concurrent.futures import ProcessPoolExecutor


def square(x):
    return x * x


def fit(batches):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(square, batch) for batch in batches]
        return [future.result() for future in futures]


def fit_map(batches):
    pool = ProcessPoolExecutor()
    try:
        return list(pool.map(square, batches))
    finally:
        pool.shutdown()
