"""Known-clean RL001 fixture: every guarded access holds the right lock."""

import threading


class EngineHolder:
    """Seed-map class, but disciplined: ``_swaps`` only under ``_outcome``."""

    def __init__(self):
        self._outcome = threading.Lock()
        self._swaps = 0

    @property
    def swaps(self):
        with self._outcome:
            return self._swaps

    def bump(self):
        with self._outcome:
            self._swaps += 1


class Annotated:
    def __init__(self):
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._count = 0

    def bump(self):
        with self._lock:
            self._count += 1
            self._apply()

    # repro-lint: requires-lock=_lock
    def _apply(self):
        self._count += 1  # ok: the annotation claims the caller holds _lock

    def unrelated(self):
        return id(self)  # no guarded fields touched at all
