"""Known-bad RL003 fixture: unpicklable values handed to a process pool."""

import threading
from concurrent.futures import ProcessPoolExecutor


class Plan:
    def __init__(self):
        self._lock = threading.Lock()

    def run(self):
        pool = ProcessPoolExecutor()
        pool.submit(self.execute, 1)  # BAD: bound method drags the lock along
        pool.submit(lambda x: x, 2)  # BAD: lambda
        pool.submit(probe, self)  # BAD: self as argument
        pool.shutdown()

    def execute(self, n):
        return n


def probe(plan):
    return plan


def fit():
    def job(x):  # nested: qualified name unresolvable from a worker
        return x

    with ProcessPoolExecutor() as pool:
        return list(pool.map(job, [1, 2]))  # BAD: nested function
