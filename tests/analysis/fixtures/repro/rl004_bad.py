"""Known-bad RL004 fixture: a site using a name the registry never declared.

Analyzed together with ``rl004_registry.py``: ``mystery.point`` is an
unknown-name finding here, and ``beta.point`` (registered, no site) is a
dead-entry finding at the registry.
"""

from repro.core import faults


def work():
    faults.fire("alpha.point")  # ok: registered
    faults.fire("mystery.point")  # BAD: not in FAULT_POINTS
