"""Known-clean RL004 fixture: every registered point has a matching site."""

from repro.core import faults


def work():
    faults.fire("alpha.point")
    action = faults.claim("beta.point")
    if action is not None:
        action.execute()
    dynamic = "alpha" + ".point"
    faults.fire(dynamic)  # non-literal names are out of static reach: skipped
