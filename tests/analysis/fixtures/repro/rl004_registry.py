"""Mini fault-point registry for RL004 fixtures (mirrors the real shape)."""

FAULT_POINTS = frozenset(
    {
        "alpha.point",
        "beta.point",
    }
)
