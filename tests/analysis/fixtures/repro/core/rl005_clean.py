"""Known-clean RL005 fixture: the sanctioned deterministic spellings."""

import random
import time

import numpy as np


def scores(tokens):
    total = 0.0
    for token in sorted(set(tokens)):  # sorted() fixes the order
        total += len(token)
    deduped = list(dict.fromkeys(tokens))  # order-preserving dedup
    rng = random.Random(42)  # seeded
    generator = np.random.default_rng(7)  # seeded
    started = time.monotonic()  # measurement, not score input
    unique = {token for token in tokens}
    if "anchor" in unique:  # membership tests are order-free
        total += 1
    return total, deduped, rng, generator, started
