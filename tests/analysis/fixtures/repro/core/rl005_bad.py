"""Known-bad RL005 fixture: nondeterminism inside a repro/core-shaped path."""

import random
import time

import numpy as np


def scores(tokens):
    total = 0.0
    for token in set(tokens):  # BAD: hash-order iteration
        total += random.random()  # BAD: unseeded global RNG
    rng = np.random.default_rng()  # BAD: unseeded generator factory
    stamp = time.time()  # BAD: wall clock feeding core computation
    pairs = {(token, token) for token in tokens}
    ordered = list(pairs)  # BAD: list() of a set-bound name
    return total, rng, stamp, ordered
