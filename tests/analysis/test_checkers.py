"""Fixture-driven tests for RL001-RL005: known-bad fires, known-clean is silent.

Every ``*_bad.py`` fixture marks each expected finding with ``# BAD``; the
tests assert the diagnosed lines match those marks exactly -- no more, no
fewer -- and that the clean twin produces nothing.
"""

import textwrap

from repro.analysis.checkers import (
    AsyncBlockingChecker,
    DeterminismChecker,
    FaultPointChecker,
    LockDisciplineChecker,
    PickleSafetyChecker,
)
from repro.analysis.framework import run


def run_one(checker, paths, root):
    return run(paths, checkers=[checker], excludes=(), root=root)


class TestLockDiscipline:
    def test_bad_fixture_fires_on_every_marked_line(self, fixtures_dir, bad_lines):
        path = fixtures_dir / "rl001_bad.py"
        report = run_one(LockDisciplineChecker(), [path], fixtures_dir)
        assert [d.line for d in report.diagnostics] == bad_lines(path)
        assert {d.code for d in report.diagnostics} == {"RL001"}

    def test_seed_map_catches_the_holder_stats_bug_shape(self, fixtures_dir):
        """The seed-map entry reproduces the pre-existing /stats finding."""
        path = fixtures_dir / "rl001_bad.py"
        report = run_one(LockDisciplineChecker(), [path], fixtures_dir)
        swaps = [d for d in report.diagnostics if "_swaps" in d.message]
        assert len(swaps) == 1
        assert "EngineHolder._swaps is declared guarded by self._outcome" in (
            swaps[0].message
        )

    def test_annotated_field_is_enforced_like_the_seed_map(self, fixtures_dir):
        path = fixtures_dir / "rl001_bad.py"
        report = run_one(LockDisciplineChecker(), [path], fixtures_dir)
        annotated = [d for d in report.diagnostics if "_count" in d.message]
        assert len(annotated) == 1
        assert "Annotated._count is declared guarded by self._lock" in (
            annotated[0].message
        )

    def test_clean_fixture_is_silent(self, fixtures_dir):
        report = run_one(
            LockDisciplineChecker(), [fixtures_dir / "rl001_clean.py"], fixtures_dir
        )
        assert report.ok, report.render_lines()

    def test_requires_lock_annotation_covers_the_body(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            textwrap.dedent(
                """
                import threading


                class Annotated:
                    def __init__(self):
                        self._lock = threading.Lock()
                        #: guarded-by: _lock
                        self._count = 0

                    # repro-lint: requires-lock=_lock
                    def _helper(self):
                        self._count += 1
                """
            ).lstrip()
        )
        report = run_one(LockDisciplineChecker(), [mod], tmp_path)
        assert report.ok, report.render_lines()

    def test_constructor_is_exempt(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            textwrap.dedent(
                """
                import threading


                class Annotated:
                    def __init__(self):
                        self._lock = threading.Lock()
                        #: guarded-by: _lock
                        self._count = 0
                        self._count += 1
                """
            ).lstrip()
        )
        report = run_one(LockDisciplineChecker(), [mod], tmp_path)
        assert report.ok, report.render_lines()


class TestAsyncBlocking:
    def test_bad_fixture_fires_on_every_marked_line(self, fixtures_dir, bad_lines):
        path = fixtures_dir / "rl002_bad.py"
        report = run_one(AsyncBlockingChecker(), [path], fixtures_dir)
        assert [d.line for d in report.diagnostics] == bad_lines(path)
        assert {d.code for d in report.diagnostics} == {"RL002"}

    def test_from_import_is_resolved(self, fixtures_dir):
        path = fixtures_dir / "rl002_bad.py"
        report = run_one(AsyncBlockingChecker(), [path], fixtures_dir)
        assert (
            sum("time.sleep()" in d.message for d in report.diagnostics) == 2
        ), "both `time.sleep(...)` and the from-imported `sleep(...)` must fire"

    def test_bare_acquire_is_named_explicitly(self, fixtures_dir):
        path = fixtures_dir / "rl002_bad.py"
        report = run_one(AsyncBlockingChecker(), [path], fixtures_dir)
        assert any("bare .acquire()" in d.message for d in report.diagnostics)

    def test_clean_fixture_is_silent(self, fixtures_dir):
        report = run_one(
            AsyncBlockingChecker(), [fixtures_dir / "rl002_clean.py"], fixtures_dir
        )
        assert report.ok, report.render_lines()


class TestPickleSafety:
    def test_bad_fixture_fires_on_every_marked_line(self, fixtures_dir, bad_lines):
        path = fixtures_dir / "rl003_bad.py"
        report = run_one(PickleSafetyChecker(), [path], fixtures_dir)
        assert [d.line for d in report.diagnostics] == bad_lines(path)
        assert {d.code for d in report.diagnostics} == {"RL003"}

    def test_bound_method_finding_names_the_lock_holder(self, fixtures_dir):
        path = fixtures_dir / "rl003_bad.py"
        report = run_one(PickleSafetyChecker(), [path], fixtures_dir)
        assert any(
            "bound method self.execute" in d.message
            and "threading.Lock" in d.message
            for d in report.diagnostics
        )

    def test_clean_fixture_is_silent(self, fixtures_dir):
        report = run_one(
            PickleSafetyChecker(), [fixtures_dir / "rl003_clean.py"], fixtures_dir
        )
        assert report.ok, report.render_lines()

    def test_thread_pools_are_out_of_scope(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text(
            textwrap.dedent(
                """
                from concurrent.futures import ThreadPoolExecutor

                with ThreadPoolExecutor() as pool:
                    pool.submit(lambda: 1)
                """
            ).lstrip()
        )
        report = run_one(PickleSafetyChecker(), [mod], tmp_path)
        assert report.ok, report.render_lines()


class TestFaultPoints:
    def test_unknown_name_and_dead_entry_are_both_reported(
        self, fixtures_dir, bad_lines
    ):
        registry = fixtures_dir / "repro" / "rl004_registry.py"
        sites = fixtures_dir / "repro" / "rl004_bad.py"
        report = run_one(FaultPointChecker(), [registry, sites], fixtures_dir)
        assert len(report.diagnostics) == 2
        unknown = [d for d in report.diagnostics if "mystery.point" in d.message]
        assert len(unknown) == 1
        assert unknown[0].line == bad_lines(sites)[0]
        assert unknown[0].path.endswith("rl004_bad.py")
        dead = [
            d
            for d in report.diagnostics
            if "no fire/claim/should_corrupt site" in d.message
        ]
        assert len(dead) == 1
        assert dead[0].path.endswith("rl004_registry.py")
        assert "'beta.point' is registered but" in dead[0].message

    def test_clean_fixture_is_silent(self, fixtures_dir):
        registry = fixtures_dir / "repro" / "rl004_registry.py"
        sites = fixtures_dir / "repro" / "rl004_clean.py"
        report = run_one(FaultPointChecker(), [registry, sites], fixtures_dir)
        assert report.ok, report.render_lines()

    def test_registry_import_fallback_validates_against_the_real_one(
        self, tmp_path
    ):
        site = tmp_path / "repro" / "mod.py"
        site.parent.mkdir()
        site.write_text(
            "from repro.core import faults\n\n\n"
            "def work():\n"
            '    faults.fire("snapshot.write")\n'
            '    faults.fire("definitely.not.registered")\n'
        )
        report = run_one(FaultPointChecker(), [site], tmp_path)
        assert len(report.diagnostics) == 1
        assert "definitely.not.registered" in report.diagnostics[0].message

    def test_sites_outside_the_repro_package_are_ignored(self, tmp_path):
        test_file = tmp_path / "test_faults.py"
        test_file.write_text(
            "from repro.core import faults\n\n"
            'faults.fire("scratch.name.for.a.test")\n'
        )
        report = run_one(FaultPointChecker(), [test_file], tmp_path)
        assert report.ok, report.render_lines()


class TestDeterminism:
    def test_bad_fixture_fires_on_every_marked_line(self, fixtures_dir, bad_lines):
        path = fixtures_dir / "repro" / "core" / "rl005_bad.py"
        report = run_one(DeterminismChecker(), [path], fixtures_dir)
        assert [d.line for d in report.diagnostics] == bad_lines(path)
        assert {d.code for d in report.diagnostics} == {"RL005"}

    def test_each_rule_contributes(self, fixtures_dir):
        path = fixtures_dir / "repro" / "core" / "rl005_bad.py"
        report = run_one(DeterminismChecker(), [path], fixtures_dir)
        messages = " | ".join(d.message for d in report.diagnostics)
        assert "unseeded global RNG" in messages
        assert "without a seed" in messages
        assert "wall-clock" in messages
        assert "hash order" in messages

    def test_clean_fixture_is_silent(self, fixtures_dir):
        path = fixtures_dir / "repro" / "core" / "rl005_clean.py"
        report = run_one(DeterminismChecker(), [path], fixtures_dir)
        assert report.ok, report.render_lines()

    def test_scope_is_repro_core_only(self, tmp_path, fixtures_dir):
        """The same nondeterministic code outside repro/core is not flagged."""
        source = (fixtures_dir / "repro" / "core" / "rl005_bad.py").read_text()
        elsewhere = tmp_path / "elsewhere.py"
        elsewhere.write_text(source)
        report = run_one(DeterminismChecker(), [elsewhere], tmp_path)
        assert report.ok, report.render_lines()

    def test_allowlist_exempts_fault_injection(self, tmp_path):
        mod = tmp_path / "repro" / "core" / "faults.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\n\nstamp = time.time()\n")
        report = run_one(DeterminismChecker(), [mod], tmp_path)
        assert report.ok, report.render_lines()
