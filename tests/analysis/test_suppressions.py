"""The suppression lifecycle: reason required, unknown codes, stale directives."""

import textwrap

from repro.analysis.framework import run


def core_module(tmp_path, body):
    """A file under a repro/core-shaped path (so RL005 applies to it)."""
    mod = tmp_path / "repro" / "core" / "mod.py"
    mod.parent.mkdir(parents=True, exist_ok=True)
    mod.write_text(textwrap.dedent(body).lstrip())
    return mod


class TestReasonedSuppression:
    def test_silences_the_finding_on_its_line(self, tmp_path):
        mod = core_module(
            tmp_path,
            """
            import time

            STAMP = time.time()  # repro-lint: disable=RL005 -- sanctioned: artifact timestamp, not a score input
            """,
        )
        report = run([mod], root=tmp_path)
        assert report.ok, report.render_lines()

    def test_only_applies_to_its_own_line(self, tmp_path):
        mod = core_module(
            tmp_path,
            """
            import time

            # repro-lint: disable=RL005 -- wrong place: not on the finding's line
            STAMP = time.time()
            """,
        )
        report = run([mod], root=tmp_path)
        codes = sorted(d.code for d in report.diagnostics)
        assert codes == ["RL005", "RL103"]  # finding kept, directive reported stale

    def test_multi_code_directive_reports_the_unused_half(self, tmp_path):
        mod = core_module(
            tmp_path,
            """
            import time

            STAMP = time.time()  # repro-lint: disable=RL005, RL001 -- RL005 is real here, RL001 is not
            """,
        )
        report = run([mod], root=tmp_path)
        assert [d.code for d in report.diagnostics] == ["RL103"]
        assert "RL001" in report.diagnostics[0].message


class TestReasonlessSuppression:
    def test_is_inert_and_reported(self, tmp_path):
        mod = core_module(
            tmp_path,
            """
            import time

            STAMP = time.time()  # repro-lint: disable=RL005
            """,
        )
        report = run([mod], root=tmp_path)
        codes = sorted(d.code for d in report.diagnostics)
        assert codes == ["RL005", "RL101"]  # suppresses nothing, and is flagged
        rl101 = next(d for d in report.diagnostics if d.code == "RL101")
        assert "missing its reason" in rl101.message


class TestUnknownCode:
    def test_is_rejected(self, tmp_path):
        mod = core_module(
            tmp_path,
            """
            X = 1  # repro-lint: disable=RL999 -- no such checker
            """,
        )
        report = run([mod], root=tmp_path)
        assert [d.code for d in report.diagnostics] == ["RL102"]
        assert "RL999" in report.diagnostics[0].message

    def test_meta_codes_are_not_suppressible(self, tmp_path):
        """Naming a meta code in disable= is itself an unknown-code finding."""
        mod = core_module(
            tmp_path,
            """
            X = 1  # repro-lint: disable=RL101 -- trying to silence the meta layer
            """,
        )
        report = run([mod], root=tmp_path)
        assert [d.code for d in report.diagnostics] == ["RL102"]


class TestUnusedSuppression:
    def test_is_reported_as_stale(self, tmp_path):
        mod = core_module(
            tmp_path,
            """
            X = 1  # repro-lint: disable=RL005 -- left behind after a fix
            """,
        )
        report = run([mod], root=tmp_path)
        assert [d.code for d in report.diagnostics] == ["RL103"]
        assert "unused suppression" in report.diagnostics[0].message
