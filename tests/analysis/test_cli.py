"""The repro-lint command line: exit codes, formats, reports, excludes."""

import json

import pytest

from repro.analysis.cli import main


@pytest.fixture
def clean_tree(tmp_path):
    (tmp_path / "mod.py").write_text("x = 1\n")
    return tmp_path


@pytest.fixture
def dirty_tree(tmp_path):
    mod = tmp_path / "repro" / "core" / "mod.py"
    mod.parent.mkdir(parents=True)
    mod.write_text("import time\n\nSTAMP = time.time()\n")
    return tmp_path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, clean_tree, capsys):
        assert main([str(clean_tree)]) == 0
        assert "0 diagnostics" in capsys.readouterr().out

    def test_findings_exit_one(self, dirty_tree, capsys):
        assert main([str(dirty_tree)]) == 1
        out = capsys.readouterr().out
        assert "RL005" in out
        assert "1 diagnostic" in out

    def test_missing_path_is_a_usage_error(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path / "no-such-dir")])
        assert excinfo.value.code == 2


class TestFixtureExclusion:
    def test_known_bad_fixtures_are_excluded_by_default(
        self, fixtures_dir, capsys
    ):
        assert main([str(fixtures_dir)]) == 0
        assert "0 diagnostics" in capsys.readouterr().out

    def test_no_default_excludes_reaches_them(self, fixtures_dir, capsys):
        assert main([str(fixtures_dir), "--no-default-excludes"]) == 1
        out = capsys.readouterr().out
        for code in ("RL001", "RL002", "RL003", "RL004", "RL005"):
            assert code in out, f"{code} missing from the fixture sweep"


class TestOutput:
    def test_json_format(self, dirty_tree, capsys):
        assert main([str(dirty_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] == 1
        assert payload["by_code"] == {"RL005": 1}

    def test_json_report_file_is_written_regardless_of_format(
        self, dirty_tree, tmp_path, capsys
    ):
        report_file = tmp_path / "analysis-report.json"
        assert main([str(dirty_tree), "--json-report", str(report_file)]) == 1
        payload = json.loads(report_file.read_text())
        assert payload["by_code"] == {"RL005": 1}
        assert payload["diagnostics"][0]["code"] == "RL005"
        capsys.readouterr()

    def test_list_checkers(self, capsys):
        assert main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        for expected in ("RL001", "lock-discipline", "RL005", "determinism"):
            assert expected in out
