"""The analyzer's own acceptance gate: the real tree is clean.

This is the same invariant CI's static-analysis job enforces
(``python -m repro.analysis src tests benchmarks``): zero diagnostics,
which by construction also means zero reasonless suppressions (RL101),
no unknown codes (RL102) and no stale directives (RL103) anywhere.
"""

from repro.analysis.framework import run


def test_repository_tree_is_clean(repo_root):
    report = run(
        [repo_root / "src", repo_root / "tests", repo_root / "benchmarks"],
        root=repo_root,
    )
    assert report.ok, "\n".join(report.render_lines())
    # Sanity: the sweep genuinely covered the tree, not an empty glob.
    assert report.files_checked > 100
    assert report.checker_codes == ["RL001", "RL002", "RL003", "RL004", "RL005"]
