"""Regression tests for the RL001 findings fixed in the serving holder.

The static analyzer's lock-discipline checker (RL001) found ``/stats``-path
reads of the swap bookkeeping (``swaps``, ``last_swap_seconds``,
``__repr__``) running without any lock while ``_publish``/``refresh`` wrote
the same fields.  The fix moved the swap counters under the ``_outcome``
ledger lock -- deliberately *not* ``_mutate``, so stats readers never block
behind an in-flight refit.  These tests pin both halves of that contract.
"""

import threading

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.serving.holder import EngineHolder


def build_engine(graph):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=10),
        bid_filtering=False,
    )
    return RewriteEngine.from_graph(graph, config).fit()


def read_stats_in_thread(holder, results):
    results["swaps"] = holder.swaps
    results["last_swap_seconds"] = holder.last_swap_seconds
    results["repr"] = repr(holder)


class TestStatsNeverBlockBehindTheSwapLock:
    def test_stats_reads_complete_while_mutate_is_held(self, small_weighted_graph):
        """A long refit holds ``_mutate``; /stats must still answer."""
        holder = EngineHolder(build_engine(small_weighted_graph))
        results = {}
        with holder._mutate:  # simulate an in-flight refresh holding the swap lock
            reader = threading.Thread(
                target=read_stats_in_thread, args=(holder, results)
            )
            reader.start()
            reader.join(timeout=5.0)
            assert not reader.is_alive(), (
                "stats reads blocked behind the swap lock -- they must use "
                "the _outcome ledger lock instead"
            )
        assert results["swaps"] == 0
        assert results["last_swap_seconds"] is None
        assert "swaps=0" in results["repr"]


class TestSwapCountersAreConsistentUnderConcurrency:
    def test_concurrent_swaps_and_reads_never_lose_a_count(
        self, small_weighted_graph
    ):
        engine = build_engine(small_weighted_graph)
        holder = EngineHolder(engine)
        swaps_per_thread = 25
        threads = 4
        observed = []

        def swapper():
            for _ in range(swaps_per_thread):
                holder.swap(engine.copy())

        def reader():
            for _ in range(200):
                observed.append(holder.swaps)

        workers = [threading.Thread(target=swapper) for _ in range(threads)]
        workers.append(threading.Thread(target=reader))
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()

        assert holder.swaps == threads * swaps_per_thread
        # Reads taken mid-swap are monotone snapshots, never torn values.
        assert all(0 <= value <= threads * swaps_per_thread for value in observed)
        assert observed == sorted(observed)

    def test_refresh_records_duration_under_the_ledger_lock(
        self, small_weighted_graph
    ):
        from repro.graph.delta import DeltaBuilder

        holder = EngineHolder(build_engine(small_weighted_graph))
        delta = (
            DeltaBuilder(holder.engine.graph)
            .set_edge("tablet", "bestbuy.com", impressions=150, clicks=15)
            .build()
        )
        holder.refresh(delta)
        assert holder.swaps == 1
        assert holder.last_swap_seconds is not None
        assert holder.last_swap_seconds >= 0.0
