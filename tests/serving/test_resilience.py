"""Resilience primitives: breaker transitions, backoff, health, fallback load."""

import os

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.snapshot import SnapshotError
from repro.core import faults
from repro.core.config import SimrankConfig
from repro.serving.resilience import (
    DEGRADED,
    DRAINING,
    HEALTHY,
    CircuitBreaker,
    RetryPolicy,
    classify_health,
    load_engine_with_fallback,
)


# load_engine_with_fallback is itself the deprecated shim under test here;
# its DeprecationWarning is expected, not a failure.
pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestCircuitBreaker:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="reset_s"):
            CircuitBreaker(reset_s=0)

    def test_opens_at_threshold_and_half_opens_after_reset(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=2, reset_s=5.0, clock=clock)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(5.0)
        assert breaker.state == "half_open"

    def test_half_open_admits_exactly_one_probe(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # concurrent caller refused
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_failed_probe_reopens_for_a_fresh_window(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock.advance(1.0)
        assert breaker.state == "half_open"

    def test_release_frees_the_probe_without_closing(self):
        clock = FakeClock()
        breaker = CircuitBreaker(threshold=1, reset_s=1.0, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow()
        breaker.release()  # e.g. the admitted call hit a client error
        assert breaker.state == "half_open"
        assert breaker.allow()  # a real probe can still run

    def test_success_resets_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        assert breaker.consecutive_failures == 0
        assert breaker.closed

    def test_describe_is_json_ready(self):
        breaker = CircuitBreaker(threshold=2, reset_s=3.0)
        described = breaker.describe()
        assert described == {
            "state": "closed",
            "consecutive_failures": 0,
            "threshold": 2,
            "reset_s": 3.0,
        }


class TestRetryPolicy:
    def test_validates_parameters(self):
        with pytest.raises(ValueError, match="retries"):
            RetryPolicy(retries=-1)
        with pytest.raises(ValueError, match="backoff"):
            RetryPolicy(backoff_s=-0.1)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.0)

    def test_delays_are_deterministic_and_exponential(self):
        policy = RetryPolicy(retries=3, backoff_s=0.1, max_backoff_s=10.0, seed=7)
        first = list(policy.delays())
        second = list(policy.delays())
        assert first == second
        assert len(first) == 3
        # Jitter scales within [1 - jitter, 1], so the exponential base
        # bounds each delay from above and the scaled base from below.
        for attempt, delay in enumerate(first):
            base = 0.1 * 2**attempt
            assert base * (1 - policy.jitter) <= delay <= base

    def test_backoff_caps_at_max(self):
        policy = RetryPolicy(retries=8, backoff_s=1.0, max_backoff_s=2.0, jitter=0.0)
        assert max(policy.delays()) <= 2.0

    def test_zero_retries_yields_nothing(self):
        assert list(RetryPolicy(retries=0).delays()) == []


class TestClassifyHealth:
    def test_states(self):
        assert (
            classify_health(
                draining=False, breaker_closed=True, consecutive_failures=0
            )
            == HEALTHY
        )
        assert (
            classify_health(
                draining=False, breaker_closed=False, consecutive_failures=0
            )
            == DEGRADED
        )
        assert (
            classify_health(
                draining=False, breaker_closed=True, consecutive_failures=2
            )
            == DEGRADED
        )
        # Draining dominates everything else.
        assert (
            classify_health(
                draining=True, breaker_closed=False, consecutive_failures=5
            )
            == DRAINING
        )


def _build_engine(graph):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=20, tolerance=1e-8),
        bid_filtering=False,
    )
    return RewriteEngine.from_graph(graph, config).fit()


class TestLoadEngineWithFallback:
    def test_loads_the_requested_snapshot_when_healthy(
        self, small_weighted_graph, tmp_path
    ):
        engine = _build_engine(small_weighted_graph)
        target = tmp_path / "good"
        engine.save(target)
        loaded, used = load_engine_with_fallback(target)
        assert used == target
        assert loaded.is_fitted

    def test_falls_back_to_newest_loadable_sibling(
        self, small_weighted_graph, tmp_path
    ):
        engine = _build_engine(small_weighted_graph)
        older = tmp_path / "older"
        newer = tmp_path / "newer"
        engine.save(older)
        engine.save(newer)
        # Force a visible mtime gap: back-to-back saves can land within the
        # filesystem's timestamp resolution.
        manifest = older / "manifest.json"
        stamp = manifest.stat().st_mtime - 100
        os.utime(manifest, (stamp, stamp))
        corrupt = tmp_path / "corrupt"
        with faults.FaultPlan(
            [faults.FaultSpec("snapshot.write", corrupt=True, times=1)]
        ):
            engine.save(corrupt)
        warnings = []
        loaded, used = load_engine_with_fallback(corrupt, warn=warnings.append)
        assert used == newer  # manifest mtime orders the candidates
        assert loaded.is_fitted
        assert any("failed to load" in message for message in warnings)
        assert any("fallback" in message for message in warnings)

    def test_reraises_original_error_when_no_sibling_loads(self, tmp_path):
        missing = tmp_path / "nothing-here"
        with pytest.raises(SnapshotError, match="no engine snapshot"):
            load_engine_with_fallback(missing)

    def test_skips_unloadable_siblings(self, small_weighted_graph, tmp_path):
        engine = _build_engine(small_weighted_graph)
        good = tmp_path / "good"
        engine.save(good)
        with faults.FaultPlan(
            [faults.FaultSpec("snapshot.write", corrupt=True, times=2)]
        ):
            engine.save(tmp_path / "torn-a")
            engine.save(tmp_path / "torn-b")
        warnings = []
        loaded, used = load_engine_with_fallback(
            tmp_path / "torn-b", warn=warnings.append
        )
        assert used == good
        assert loaded.is_fitted
