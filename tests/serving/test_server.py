"""RewriteServer: endpoints, micro-batching, refresh-under-traffic consistency.

The concurrency test here is the serving tier's acceptance contract: N
async clients hammer ``/rewrite`` while refresh and hot-reload cycles swap
the engine underneath them, and every single response must (a) succeed and
(b) exactly match the ground-truth ``rewrite()`` output of the one engine
version that served it -- pre- or post-swap, never a mixture.
"""

import asyncio

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.graph.delta import DeltaBuilder
from repro.serving import (
    EngineHolder,
    RewriteServer,
    ServerConfig,
    ZipfSchedule,
    delta_to_payload,
    request_once,
    run_load,
)


def build_engine(graph, cache_size=None, tolerance=1e-8):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=30, tolerance=tolerance),
        cache_size=cache_size,
        bid_filtering=False,
    )
    return RewriteEngine.from_graph(graph, config).fit()


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def engine(small_weighted_graph):
    return build_engine(small_weighted_graph)


class TestEndpoints:
    def test_healthz_reports_version_and_fitted(self, engine):
        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                return await request_once(*server.address, "GET", "/healthz")

        status, payload = run(scenario())
        assert status == 200
        assert payload["status"] == "healthy"
        assert payload["version"] == 1
        assert payload["fitted"] is True
        assert payload["breaker"] == "closed"
        assert payload["staleness_s"] >= 0.0

    def test_rewrite_matches_engine_ground_truth(self, engine):
        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                return await request_once(
                    *server.address, "POST", "/rewrite", {"query": "camera"}
                )

        status, payload = run(scenario())
        assert status == 200
        assert payload["version"] == 1
        expected = [
            {"rewrite": r.rewrite, "rank": r.rank, "score": r.score}
            for r in engine.rewrite("camera").rewrites
        ]
        assert payload["rewrites"] == expected

    def test_rewrite_batch_is_aligned_and_single_version(self, engine):
        queries = ["camera", "pc", "camera", "flower"]

        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                return await request_once(
                    *server.address, "POST", "/rewrite_batch", {"queries": queries}
                )

        status, payload = run(scenario())
        assert status == 200
        assert [row["query"] for row in payload["results"]] == queries
        # Duplicates in one batch serve byte-identical rewrites.
        assert payload["results"][0]["rewrites"] == payload["results"][2]["rewrites"]

    def test_refresh_swaps_version_and_serves_new_state(self, engine):
        delta = (
            DeltaBuilder(engine.graph)
            .set_edge("tablet", "bestbuy.com", impressions=150, clicks=15)
            .build()
        )

        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                address = server.address
                before = await request_once(
                    address[0], address[1], "POST", "/rewrite", {"query": "tablet"}
                )
                refreshed = await request_once(
                    address[0], address[1], "POST", "/refresh", delta_to_payload(delta)
                )
                after = await request_once(
                    address[0], address[1], "POST", "/rewrite", {"query": "tablet"}
                )
                return before, refreshed, after

        (status_b, before), (status_r, refreshed), (status_a, after) = run(scenario())
        assert (status_b, status_r, status_a) == (200, 200, 200)
        assert before["version"] == 1 and before["rewrites"] == []
        assert refreshed["version"] == 2
        assert refreshed["refresh"]["refit"] is True
        assert after["version"] == 2 and after["rewrites"]  # tablet now covered

    def test_reload_hot_swaps_a_snapshot(self, engine, small_weighted_graph, tmp_path):
        # Offline: a *different* fit (no flower cluster) snapshotted to disk.
        trimmed = small_weighted_graph.copy()
        trimmed.remove_edge("flower", "teleflora.com")
        trimmed.remove_edge("flower", "orchids.com")
        offline = build_engine(trimmed)
        offline.save(tmp_path / "snap")

        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                address = server.address
                reloaded = await request_once(
                    address[0],
                    address[1],
                    "POST",
                    "/reload",
                    {"path": str(tmp_path / "snap"), "precompute": True},
                )
                after = await request_once(
                    address[0], address[1], "POST", "/rewrite", {"query": "orchids"}
                )
                return reloaded, after

        (status_r, reloaded), (status_a, after) = run(scenario())
        assert status_r == 200 and reloaded["version"] == 2
        assert status_a == 200 and after["version"] == 2
        expected = [
            {"rewrite": r.rewrite, "rank": r.rank, "score": r.score}
            for r in offline.rewrite("orchids").rewrites
        ]
        assert after["rewrites"] == expected

    def test_stats_reports_batching_and_cache(self, engine):
        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                address = server.address
                for _ in range(3):
                    await request_once(
                        address[0], address[1], "POST", "/rewrite", {"query": "camera"}
                    )
                return await request_once(address[0], address[1], "GET", "/stats")

        status, stats = run(scenario())
        assert status == 200
        assert stats["requests"]["total"] == 4  # 3 rewrites + the /stats call itself
        assert stats["requests"]["by_endpoint"]["/rewrite"] == 3
        assert stats["batching"]["batches"] >= 1
        assert stats["engine"]["version"] == 1
        assert stats["engine"]["cache"]["size"] >= 1
        assert stats["latency_ms"]["count"] == 3


class TestErrors:
    def test_unknown_endpoint_404(self, engine):
        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                return await request_once(*server.address, "GET", "/nope")

        status, payload = run(scenario())
        assert status == 404 and "unknown endpoint" in payload["error"]

    def test_wrong_method_405(self, engine):
        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                return await request_once(*server.address, "GET", "/rewrite")

        status, payload = run(scenario())
        assert status == 405

    def test_missing_query_400(self, engine):
        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                return await request_once(*server.address, "POST", "/rewrite", {})

        status, payload = run(scenario())
        assert status == 400 and "query" in payload["error"]

    def test_invalid_json_400(self, engine):
        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                host, port = server.address
                reader, writer = await asyncio.open_connection(host, port)
                body = b"{not json"
                writer.write(
                    b"POST /rewrite HTTP/1.1\r\nHost: x\r\n"
                    + f"Content-Length: {len(body)}\r\n\r\n".encode()
                    + body
                )
                await writer.drain()
                line = await reader.readline()
                writer.close()
                return int(line.split()[1])

        assert run(scenario()) == 400

    def test_stale_delta_refresh_400_and_keeps_serving(self, engine):
        delta = DeltaBuilder(engine.graph).remove_edge("camera", "hp.com").build()

        async def scenario():
            async with RewriteServer(EngineHolder(engine)) as server:
                address = server.address
                first = await request_once(
                    address[0], address[1], "POST", "/refresh", delta_to_payload(delta)
                )
                second = await request_once(
                    address[0], address[1], "POST", "/refresh", delta_to_payload(delta)
                )
                health = await request_once(address[0], address[1], "GET", "/healthz")
                return first, second, health

        (s1, first), (s2, second), (s3, health) = run(scenario())
        assert s1 == 200 and first["version"] == 2
        assert s2 == 400  # the same removal again no longer matches the graph
        assert s3 == 200 and health["version"] == 2  # nothing was published


class TestShutdown:
    def test_stop_drains_and_refuses_new_connections(self, engine):
        async def scenario():
            server = RewriteServer(EngineHolder(engine))
            await server.start()
            host, port = server.address
            inflight = [
                asyncio.create_task(
                    request_once(host, port, "POST", "/rewrite", {"query": "camera"})
                )
                for _ in range(8)
            ]
            results = await asyncio.gather(*inflight)
            await server.stop()
            with pytest.raises(OSError):
                await asyncio.open_connection(host, port)
            return results

        results = run(scenario())
        assert all(status == 200 for status, _ in results)

    def test_stop_is_idempotent(self, engine):
        async def scenario():
            server = RewriteServer(EngineHolder(engine))
            await server.start()
            await server.stop()
            await server.stop()  # second stop is a no-op

        run(scenario())


class TestConcurrentServingWithRefreshCycles:
    """The satellite test: no errors, no torn reads, under swap churn."""

    def test_zipf_load_with_refresh_and_reload_cycles(
        self, small_weighted_graph, tmp_path
    ):
        engine = build_engine(small_weighted_graph)
        # A hot-reload candidate: an independently fitted snapshot.
        build_engine(small_weighted_graph.copy()).save(tmp_path / "snap")
        holder = EngineHolder(engine)
        # Record every published engine so responses can be verified
        # against the exact version that served them.
        engines_by_version = {holder.version: holder.engine}
        holder.add_swap_listener(
            lambda version, published: engines_by_version.setdefault(version, published)
        )
        queries = sorted(str(q) for q in small_weighted_graph.queries())
        schedule = ZipfSchedule(queries, alpha=1.2, seed=7).sample(300)

        async def refresh_cycles(server, rounds):
            # Incremental refreshes first (each needs the live click graph),
            # then a hot-reload, which swaps in the graphless snapshot engine.
            host, port = server.address
            for i in range(rounds):
                delta = (
                    DeltaBuilder(holder.engine.graph)
                    .set_edge(
                        f"hot-query-{i}", "bestbuy.com", impressions=100, clicks=10
                    )
                    .build()
                )
                status, _ = await request_once(
                    host, port, "POST", "/refresh", delta_to_payload(delta)
                )
                assert status == 200
                await asyncio.sleep(0.005)
            status, _ = await request_once(
                host, port, "POST", "/reload", {"path": str(tmp_path / "snap")}
            )
            assert status == 200

        async def scenario():
            config = ServerConfig(max_batch_size=8, batch_linger_ms=0.5)
            async with RewriteServer(holder, config) as server:
                refresher = asyncio.create_task(refresh_cycles(server, rounds=4))
                report = await run_load(
                    *server.address,
                    schedule,
                    concurrency=8,
                    record_responses=True,
                )
                await refresher
                return report

        report = run(scenario())
        assert report.failed == 0, report.errors[:3]
        assert report.succeeded == len(schedule)
        assert len(report.versions) >= 2  # swaps actually happened mid-load
        # Every response must equal the ground truth of the engine version
        # that served it -- the no-torn-reads guarantee.
        for response in report.responses:
            served_by = engines_by_version[response.version]
            expected = tuple(
                (r.rewrite, r.rank, r.score)
                for r in served_by.rewrite(response.query).rewrites
            )
            assert response.rewrites == expected, (
                f"torn read: {response.query!r} at version {response.version}"
            )
