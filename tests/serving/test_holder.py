"""EngineHolder: copy-on-write swap semantics and the no-torn-reads contract."""

import threading

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core.config import SimrankConfig
from repro.graph.delta import DeltaBuilder
from repro.serving.holder import EngineHolder


def build_engine(graph, tolerance=1e-8, cache_size=None):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=30, tolerance=tolerance),
        cache_size=cache_size,
        bid_filtering=False,
    )
    return RewriteEngine.from_graph(graph, config).fit()


def grow_delta(graph):
    """A delta that adds a new edge inside the electronics cluster."""
    return (
        DeltaBuilder(graph)
        .set_edge("tablet", "bestbuy.com", impressions=150, clicks=15)
        .build()
    )


def profile(engine, queries):
    return engine.serving_profile(queries)


class TestSwap:
    def test_current_returns_engine_and_version_atomically(self, small_weighted_graph):
        engine = build_engine(small_weighted_graph)
        holder = EngineHolder(engine)
        current, version = holder.current()
        assert current is engine
        assert version == 1
        assert holder.engine is engine
        assert holder.version == 1

    def test_swap_bumps_version_and_publishes(self, small_weighted_graph):
        first = build_engine(small_weighted_graph)
        second = build_engine(small_weighted_graph)
        holder = EngineHolder(first)
        assert holder.swap(second) == 2
        assert holder.engine is second
        assert holder.swaps == 1

    def test_swap_listener_sees_every_publish(self, small_weighted_graph):
        holder = EngineHolder(build_engine(small_weighted_graph))
        seen = []
        holder.add_swap_listener(lambda version, engine: seen.append(version))
        holder.swap(build_engine(small_weighted_graph))
        holder.refresh(grow_delta(holder.engine.graph))
        assert seen == [2, 3]


class TestRefreshIsCopyOnWrite:
    def test_refresh_publishes_a_new_engine_object(self, small_weighted_graph):
        holder = EngineHolder(build_engine(small_weighted_graph))
        old = holder.engine
        version = holder.refresh(grow_delta(small_weighted_graph))
        assert version == 2
        assert holder.engine is not old

    def test_reader_holding_old_engine_never_observes_refresh_state(
        self, small_weighted_graph
    ):
        """The satellite contract: the published refresh mutates only a copy.

        A reader that grabbed the engine before the refresh keeps seeing the
        complete pre-refresh state -- same graph edge set, same scores, same
        serving profile -- no matter how the refresh behind it went.
        """
        holder = EngineHolder(build_engine(small_weighted_graph))
        old_engine = holder.engine
        queries = sorted(str(q) for q in small_weighted_graph.queries())
        before_profile = profile(old_engine, queries)
        before_edges = {(q, a) for q, a, _ in old_engine.graph.edges()}
        before_refresh_info = old_engine.last_refresh

        holder.refresh(grow_delta(small_weighted_graph))

        assert {(q, a) for q, a, _ in old_engine.graph.edges()} == before_edges
        assert "tablet" not in set(old_engine.graph.queries())
        assert profile(old_engine, queries) == before_profile
        assert old_engine.last_refresh is before_refresh_info
        # ... while the published engine did move forward.
        new_engine = holder.engine
        assert "tablet" in set(new_engine.graph.queries())
        assert new_engine.last_refresh is not None
        assert new_engine.last_refresh.refit

    def test_failed_refresh_publishes_nothing(self, small_weighted_graph):
        holder = EngineHolder(build_engine(small_weighted_graph))
        old_engine, old_version = holder.current()
        bad_delta = (
            DeltaBuilder(small_weighted_graph)
            .remove_edge("camera", "hp.com")
            .build()
        )
        # Make the delta stale: apply it through a refresh first, then try
        # to apply the same removal again -- the second must be rejected.
        holder.refresh(bad_delta)
        with pytest.raises((KeyError, ValueError)):
            holder.refresh(bad_delta)
        engine_after, version_after = holder.current()
        assert version_after == old_version + 1  # only the first publish
        assert engine_after is not old_engine

    def test_concurrent_refreshes_serialize_and_lose_no_delta(
        self, small_weighted_graph
    ):
        holder = EngineHolder(build_engine(small_weighted_graph))
        deltas = [
            DeltaBuilder(small_weighted_graph)
            .set_edge(f"new-query-{i}", "bestbuy.com", impressions=100, clicks=10)
            .build()
            for i in range(4)
        ]
        threads = [
            threading.Thread(target=holder.refresh, args=(delta,)) for delta in deltas
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert holder.version == 1 + len(deltas)
        served_queries = set(holder.engine.graph.queries())
        assert {f"new-query-{i}" for i in range(4)} <= served_queries


class TestReload:
    def test_reload_swaps_in_a_snapshot_engine(self, small_weighted_graph, tmp_path):
        engine = build_engine(small_weighted_graph)
        queries = sorted(str(q) for q in small_weighted_graph.queries())
        engine.save(tmp_path / "snap")
        holder = EngineHolder(build_engine(small_weighted_graph))
        version = holder.reload(tmp_path / "snap", precompute=True)
        assert version == 2
        revived = holder.engine
        assert revived.graph is None  # snapshot engines carry no graph
        assert profile(revived, queries) == profile(engine, queries)
        assert revived.cache_info().size > 0  # precompute warmed it

    def test_last_swap_seconds_is_recorded(self, small_weighted_graph):
        holder = EngineHolder(build_engine(small_weighted_graph))
        assert holder.last_swap_seconds is None
        holder.refresh(grow_delta(small_weighted_graph))
        assert holder.last_swap_seconds is not None
        assert holder.last_swap_seconds >= 0
