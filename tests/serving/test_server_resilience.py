"""Serving resilience: deadlines, retried refresh, breaker, corrupt reload.

Every scenario here injects a real fault through :mod:`repro.core.faults`
and asserts the server's externally visible contract: traffic keeps being
served correctly from the published engine, failures surface as clean HTTP
errors, and health transitions follow healthy -> degraded -> healthy with
recovery within one successful refresh.
"""

import asyncio

import pytest

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.core import faults
from repro.core.config import SimrankConfig
from repro.graph.delta import DeltaBuilder
from repro.serving import (
    EngineHolder,
    RewriteServer,
    ServerConfig,
    delta_to_payload,
    request_once,
)
from repro.synth.scenarios import multi_component_graph


def build_engine(graph, **config_kwargs):
    config = EngineConfig(
        method="weighted_simrank",
        similarity=SimrankConfig(iterations=20, tolerance=1e-8),
        bid_filtering=False,
        **config_kwargs,
    )
    return RewriteEngine.from_graph(graph, config).fit()


def run(coro):
    return asyncio.run(coro)


def bump_edge(builder, graph, query, ad):
    stats = graph.edge(query, ad)
    if stats is None:
        builder.set_edge(query, ad, impressions=30, clicks=3)
    else:
        builder.set_edge(
            query, ad, impressions=stats.impressions + 10, clicks=stats.clicks + 1
        )


def simple_delta(graph):
    builder = DeltaBuilder(graph)
    query = str(next(iter(graph.queries())))
    ad = str(next(iter(graph.ads_of(query))))
    bump_edge(builder, graph, query, ad)
    return builder.build()


@pytest.fixture
def engine(small_weighted_graph):
    return build_engine(small_weighted_graph)


class TestServerConfigValidation:
    def test_rejects_bad_resilience_knobs(self):
        with pytest.raises(ValueError, match="request_timeout_s"):
            ServerConfig(request_timeout_s=0)
        with pytest.raises(ValueError, match="request_timeout_s"):
            ServerConfig(request_timeout_s=-1.5)
        with pytest.raises(ValueError, match="refresh_retries"):
            ServerConfig(refresh_retries=-1)
        with pytest.raises(ValueError, match="refresh_backoff"):
            ServerConfig(refresh_backoff_s=-0.1)
        with pytest.raises(ValueError, match="refresh_backoff"):
            ServerConfig(refresh_backoff_max_s=-1)
        with pytest.raises(ValueError, match="breaker_threshold"):
            ServerConfig(breaker_threshold=0)
        with pytest.raises(ValueError, match="breaker_reset_s"):
            ServerConfig(breaker_reset_s=0)

    def test_accepts_defaults_and_none_timeout(self):
        config = ServerConfig()
        assert config.request_timeout_s is None
        assert ServerConfig(request_timeout_s=2.5).request_timeout_s == 2.5


class TestRequestDeadline:
    def test_slow_compute_times_out_with_504(self, engine):
        config = ServerConfig(request_timeout_s=0.15, batch_linger_ms=0.0)
        query = str(next(iter(engine.graph.queries())))

        async def scenario():
            async with RewriteServer(EngineHolder(engine), config) as server:
                host, port = server.address
                with faults.FaultPlan(
                    [faults.FaultSpec("serving.compute", latency_s=1.0, times=1)]
                ):
                    slow = await request_once(
                        host, port, "POST", "/rewrite", {"query": query}
                    )
                fast = await request_once(
                    host, port, "POST", "/rewrite", {"query": query}
                )
                stats = await request_once(host, port, "GET", "/stats")
                return slow, fast, stats

        (slow_status, slow), (fast_status, _), (_, stats) = run(scenario())
        assert slow_status == 504
        assert "deadline" in slow["error"]
        assert fast_status == 200, "the deadline must not wedge later requests"
        assert stats["requests"]["timeouts"] == 1


class TestRefreshRetry:
    def test_transient_refresh_failure_is_retried_to_success(self, engine):
        config = ServerConfig(refresh_retries=2, refresh_backoff_s=0.01)
        holder = EngineHolder(engine)

        async def scenario():
            async with RewriteServer(holder, config) as server:
                host, port = server.address
                with faults.FaultPlan(
                    [faults.FaultSpec("engine.refresh", error="blip", times=1)]
                ) as plan:
                    status, payload = await request_once(
                        host,
                        port,
                        "POST",
                        "/refresh",
                        delta_to_payload(simple_delta(holder.engine.graph)),
                    )
                _, stats = await request_once(host, port, "GET", "/stats")
                _, health = await request_once(host, port, "GET", "/healthz")
                return status, payload, plan, stats, health

        status, payload, plan, stats, health = run(scenario())
        assert status == 200, payload
        assert payload["version"] == 2
        assert plan.fire_count("engine.refresh") == 1
        assert stats["health"]["publish"]["retries"] == 1
        assert stats["health"]["publish"]["failures"] == 1
        assert stats["health"]["publish"]["consecutive_failures"] == 0
        assert "blip" in stats["health"]["publish"]["last_error"]
        assert health["status"] == "healthy"

    def test_exhausted_retries_surface_500_and_publish_nothing(self, engine):
        config = ServerConfig(refresh_retries=1, refresh_backoff_s=0.01)
        holder = EngineHolder(engine)

        async def scenario():
            async with RewriteServer(holder, config) as server:
                host, port = server.address
                with faults.FaultPlan(
                    [faults.FaultSpec("engine.refresh", error="down", times=None)]
                ):
                    status, payload = await request_once(
                        host,
                        port,
                        "POST",
                        "/refresh",
                        delta_to_payload(simple_delta(holder.engine.graph)),
                    )
                    _, health = await request_once(host, port, "GET", "/healthz")
                return status, payload, health

        status, payload, health = run(scenario())
        assert status == 500
        assert "refresh failed" in payload["error"]
        assert holder.version == 1, "a failed refresh publishes nothing"
        assert health["status"] == "degraded"


class TestCircuitBreaker:
    def test_breaker_sheds_then_recovers_via_half_open_probe(self, engine):
        config = ServerConfig(
            refresh_retries=0,
            breaker_threshold=2,
            breaker_reset_s=0.2,
        )
        holder = EngineHolder(engine)
        query = str(next(iter(engine.graph.queries())))

        async def scenario():
            async with RewriteServer(holder, config) as server:
                host, port = server.address
                timeline = {}
                with faults.FaultPlan(
                    [faults.FaultSpec("engine.refresh", error="outage", times=None)]
                ):
                    delta_payload = delta_to_payload(
                        simple_delta(holder.engine.graph)
                    )
                    timeline["first"] = await request_once(
                        host, port, "POST", "/refresh", delta_payload
                    )
                    timeline["second"] = await request_once(
                        host, port, "POST", "/refresh", delta_payload
                    )
                    timeline["shed"] = await request_once(
                        host, port, "POST", "/refresh", delta_payload
                    )
                    timeline["health_open"] = await request_once(
                        host, port, "GET", "/healthz"
                    )
                    timeline["traffic"] = await request_once(
                        host, port, "POST", "/rewrite", {"query": query}
                    )
                # Faults cleared: wait out the reset window, then probe.
                await asyncio.sleep(config.breaker_reset_s + 0.1)
                timeline["probe"] = await request_once(
                    host,
                    port,
                    "POST",
                    "/refresh",
                    delta_to_payload(simple_delta(holder.engine.graph)),
                )
                timeline["health_after"] = await request_once(
                    host, port, "GET", "/healthz"
                )
                timeline["stats"] = await request_once(host, port, "GET", "/stats")
                return timeline

        timeline = run(scenario())
        assert timeline["first"][0] == 500
        assert timeline["second"][0] == 500
        shed_status, shed = timeline["shed"]
        assert shed_status == 503
        assert "breaker" in shed["error"]
        assert "version 1" in shed["error"], "the shed names the stale engine"
        assert timeline["health_open"][1]["status"] == "degraded"
        assert timeline["traffic"][0] == 200, "traffic survives an open breaker"
        probe_status, probe = timeline["probe"]
        assert probe_status == 200, f"half-open probe should publish: {probe}"
        assert timeline["health_after"][1]["status"] == "healthy"
        stats = timeline["stats"][1]
        assert stats["health"]["breaker"]["state"] == "closed"
        assert stats["health"]["publish"]["rejected_breaker_open"] == 1


class TestCorruptReload:
    def test_reload_of_torn_snapshot_is_clean_error_old_engine_serves(
        self, engine, tmp_path
    ):
        """Regression: a fault-injected partial snapshot write must not
        take down serving or dislodge the published engine."""
        holder = EngineHolder(engine)
        torn = tmp_path / "torn"
        with faults.FaultPlan(
            [faults.FaultSpec("snapshot.write", corrupt=True, times=1)]
        ):
            engine.save(torn)
        query = str(next(iter(engine.graph.queries())))
        expected = [
            {"rewrite": r.rewrite, "rank": r.rank, "score": r.score}
            for r in engine.rewrite(query).rewrites
        ]

        async def scenario():
            async with RewriteServer(holder, ServerConfig()) as server:
                host, port = server.address
                reload_result = await request_once(
                    host, port, "POST", "/reload", {"path": str(torn)}
                )
                serve_result = await request_once(
                    host, port, "POST", "/rewrite", {"query": query}
                )
                stats_result = await request_once(host, port, "GET", "/stats")
                return reload_result, serve_result, stats_result

        (reload_status, reload), (serve_status, serve), (_, stats) = run(scenario())
        assert reload_status == 500
        assert "snapshot" in reload["error"]
        assert holder.version == 1, "the corrupt reload must publish nothing"
        assert serve_status == 200
        assert serve["rewrites"] == expected, "old engine must serve unchanged"
        assert stats["health"]["publish"]["failures"] == 1, (
            "a corrupt snapshot is permanent for its input: never retried"
        )
        assert "SnapshotError" in stats["health"]["publish"]["last_error"]


class TestWorkerCrashDuringRefresh:
    @pytest.mark.timeout(120)
    def test_process_pool_worker_crash_is_retried_to_success(self):
        """A crash=True fault kills a real fit worker mid-/refresh; the
        parent sees BrokenProcessPool, restores the previous shard state
        (PR 7) and the server's retry publishes on the second attempt."""
        graph = multi_component_graph(
            num_components=2,
            queries_per_component=6,
            ads_per_component=4,
            extra_edges=4,
            seed=3,
        )
        engine = build_engine(
            graph, backend="sharded", n_jobs=2, executor="process"
        )
        holder = EngineHolder(engine)
        config = ServerConfig(refresh_retries=1, refresh_backoff_s=0.01)

        def two_component_delta():
            builder = DeltaBuilder(holder.engine.graph)
            bump_edge(builder, holder.engine.graph, "c0_q0", "c0_a0")
            bump_edge(builder, holder.engine.graph, "c1_q0", "c1_a0")
            return builder.build()

        async def scenario():
            async with RewriteServer(holder, config) as server:
                host, port = server.address
                with faults.FaultPlan(
                    [faults.FaultSpec("shard.fit.worker", crash=True, times=1)]
                ) as plan:
                    status, payload = await request_once(
                        host,
                        port,
                        "POST",
                        "/refresh",
                        delta_to_payload(two_component_delta()),
                    )
                _, health = await request_once(host, port, "GET", "/healthz")
                return status, payload, plan, health

        status, payload, plan, health = run(scenario())
        assert status == 200, f"refresh should survive the worker crash: {payload}"
        assert payload["version"] == 2
        assert plan.fire_count("shard.fit.worker") == 1, plan.describe()
        assert holder.publish_failures == 1, "the crash was recorded, then retried"
        assert health["status"] == "healthy"
