"""Load-generator pieces: Zipf schedules and latency summaries."""

import pytest

from repro.serving import LatencyWindow, ZipfSchedule, percentile, summarize_latencies


class TestPercentile:
    def test_empty_is_zero(self):
        assert percentile([], 50) == 0.0

    def test_single_value_is_every_percentile(self):
        assert percentile([7.0], 1) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_nearest_rank_on_known_data(self):
        values = [float(v) for v in range(1, 101)]  # 1..100
        assert percentile(values, 50) == 50.0
        assert percentile(values, 99) == 99.0
        assert percentile(values, 100) == 100.0

    def test_input_order_does_not_matter(self):
        assert percentile([5.0, 1.0, 3.0], 50) == percentile([1.0, 3.0, 5.0], 50)


class TestSummarizeLatencies:
    def test_summary_fields(self):
        summary = summarize_latencies([1.0, 2.0, 3.0, 4.0])
        assert summary["count"] == 4
        assert summary["mean"] == pytest.approx(2.5)
        assert summary["p50"] == 2.0
        assert summary["max"] == 4.0

    def test_empty_summary(self):
        summary = summarize_latencies([])
        assert summary["count"] == 0
        assert summary["p99"] == 0.0


class TestLatencyWindow:
    def test_window_is_bounded_but_counts_everything(self):
        window = LatencyWindow(maxlen=4)
        for value in range(10):
            window.record(float(value))
        assert window.total_recorded == 10
        summary = window.summary()
        assert summary["count"] == 4  # only the most recent four remain
        assert summary["max"] == 9.0


class TestZipfSchedule:
    def test_rejects_empty_queries(self):
        with pytest.raises(ValueError):
            ZipfSchedule([])

    def test_sample_is_deterministic_per_seed(self):
        queries = [f"q{i}" for i in range(20)]
        first = ZipfSchedule(queries, seed=3).sample(50)
        second = ZipfSchedule(queries, seed=3).sample(50)
        third = ZipfSchedule(queries, seed=4).sample(50)
        assert first == second
        assert first != third

    def test_samples_are_skewed_toward_the_head(self):
        queries = [f"q{i}" for i in range(50)]
        schedule = ZipfSchedule(queries, alpha=1.2, seed=0)
        sample = schedule.sample(2000)
        head_hits = sum(1 for q in sample if q in set(queries[:5]))
        tail_hits = sum(1 for q in sample if q in set(queries[-5:]))
        assert head_hits > 5 * max(tail_hits, 1)

    def test_hot_set_is_a_prefix(self):
        queries = [f"q{i}" for i in range(10)]
        schedule = ZipfSchedule(queries)
        assert schedule.hot_set(0.3) == ["q0", "q1", "q2"]
        assert schedule.hot_set(1.0) == queries
