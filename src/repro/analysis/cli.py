"""The ``repro-lint`` command line (also ``python -m repro.analysis``).

Exit codes follow compiler convention: 0 clean, 1 diagnostics found,
2 usage error.  ``--json-report`` writes the machine-readable report (the
CI artifact) regardless of the chosen terminal format.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis.framework import DEFAULT_EXCLUDES, run


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Repo-aware static analysis: lock discipline (RL001), "
            "async-blocking (RL002), pickle-safety (RL003), fault-point "
            "integrity (RL004), determinism (RL005)."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to analyze (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="terminal output format (default: human)",
    )
    parser.add_argument(
        "--json-report",
        metavar="FILE",
        default=None,
        help="also write the full JSON report to FILE",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="print the registered checkers and exit",
    )
    parser.add_argument(
        "--no-default-excludes",
        action="store_true",
        help=(
            "analyze paths the default excludes skip "
            f"({', '.join(DEFAULT_EXCLUDES)})"
        ),
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_checkers:
        from repro.analysis.checkers import all_checkers

        for checker in all_checkers():
            print(f"{checker.code}  {checker.name}: {checker.description}")
        return 0

    missing = [path for path in options.paths if not Path(path).exists()]
    if missing:
        parser.error(f"no such path: {', '.join(missing)}")  # exits 2

    excludes = () if options.no_default_excludes else DEFAULT_EXCLUDES
    report = run(options.paths, excludes=excludes)

    if options.json_report:
        Path(options.json_report).write_text(
            json.dumps(report.to_json(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if options.format == "json":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    else:
        for line in report.render_lines():
            print(line)

    return 0 if report.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
