"""Inline suppressions: ``# repro-lint: disable=CODE -- reason``.

A finding may be silenced on its own line with a trailing comment::

    risky_call()  # repro-lint: disable=RL002 -- sanctioned: runs pre-loop

The grammar is deliberately strict:

* the reason (everything after ``--``) is **mandatory** -- a suppression
  without one does not suppress anything and is itself reported (RL101),
  so "why is this exempt" is always answerable from the diff;
* the code list must name known checker codes (unknown ones are RL102);
* a suppression that silences nothing is dead weight and reported (RL103),
  so fixed findings cannot leave stale exemptions behind.

Comments are extracted with :mod:`tokenize`, never by string-scanning
source lines, so a ``#`` inside a string literal can never be mistaken for
a directive.  The same comment map serves the checkers' own annotations
(``#: guarded-by: <lock>``, ``# repro-lint: requires-lock=<lock>``).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set

from repro.analysis.diagnostics import Diagnostic

__all__ = [
    "Suppression",
    "comment_map",
    "parse_suppressions",
    "suppression_diagnostics",
    "CODE_BAD_SUPPRESSION",
    "CODE_UNKNOWN_CODE",
    "CODE_UNUSED_SUPPRESSION",
]

#: Meta-diagnostics about the suppression mechanism itself.  They are not
#: suppressible: a directive problem must be fixed, not waved through.
CODE_BAD_SUPPRESSION = "RL101"
CODE_UNKNOWN_CODE = "RL102"
CODE_UNUSED_SUPPRESSION = "RL103"

_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*disable=(?P<codes>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<reason>.*\S))?\s*$"
)


@dataclass
class Suppression:
    """One parsed ``disable=`` directive and its use tracking."""

    line: int
    col: int
    codes: List[str]
    reason: str
    #: Codes that actually silenced at least one diagnostic this run.
    used: Set[str] = field(default_factory=set)

    @property
    def has_reason(self) -> bool:
        return bool(self.reason)

    def covers(self, code: str) -> bool:
        """Whether this directive is entitled to silence ``code``.

        Reasonless directives cover nothing: the finding they point at is
        still reported, alongside the RL101 about the directive itself.
        """
        return self.has_reason and code in self.codes

    def mark_used(self, code: str) -> None:
        self.used.add(code)


def comment_map(text: str) -> Dict[int, str]:
    """``line -> comment text`` for every comment token in ``text``.

    Tokenization errors (the file may not even be valid Python -- the
    runner reports that separately) yield whatever comments were seen
    before the error.
    """
    comments: Dict[int, str] = {}
    reader = io.StringIO(text).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                comments[token.start[0]] = token.string
    except (tokenize.TokenError, SyntaxError, IndentationError):
        pass
    return comments


def parse_suppressions(comments: Dict[int, str]) -> List[Suppression]:
    """Extract every ``disable=`` directive from a file's comment map."""
    suppressions: List[Suppression] = []
    for line, comment in sorted(comments.items()):
        match = _DIRECTIVE.search(comment)
        if match is None:
            continue
        codes = [code.strip() for code in match.group("codes").split(",")]
        suppressions.append(
            Suppression(
                line=line,
                col=1,
                codes=[code for code in codes if code],
                reason=(match.group("reason") or "").strip(),
            )
        )
    return suppressions


def suppression_diagnostics(
    path: str,
    suppressions: Iterable[Suppression],
    known_codes: Sequence[str],
) -> List[Diagnostic]:
    """The meta-diagnostics for a file's directives, after checking ran.

    RL101 for a missing reason, RL102 per unknown code, RL103 per known
    code that silenced nothing (skipped when the directive is already
    RL101-flagged -- an inert directive is trivially "unused").
    """
    known = set(known_codes)
    diagnostics: List[Diagnostic] = []
    for suppression in suppressions:
        for code in suppression.codes:
            if code not in known:
                diagnostics.append(
                    Diagnostic(
                        path=path,
                        line=suppression.line,
                        col=suppression.col,
                        code=CODE_UNKNOWN_CODE,
                        message=(
                            f"suppression names unknown code {code!r}; "
                            f"known codes: {', '.join(sorted(known))}"
                        ),
                    )
                )
        if not suppression.has_reason:
            diagnostics.append(
                Diagnostic(
                    path=path,
                    line=suppression.line,
                    col=suppression.col,
                    code=CODE_BAD_SUPPRESSION,
                    message=(
                        "suppression is missing its reason; write "
                        "'# repro-lint: disable=CODE -- why this is exempt' "
                        "(a reasonless directive suppresses nothing)"
                    ),
                )
            )
            continue
        for code in suppression.codes:
            if code in known and code not in suppression.used:
                diagnostics.append(
                    Diagnostic(
                        path=path,
                        line=suppression.line,
                        col=suppression.col,
                        code=CODE_UNUSED_SUPPRESSION,
                        message=(
                            f"unused suppression: no {code} diagnostic is "
                            "raised on this line; delete the stale directive"
                        ),
                    )
                )
    return diagnostics
