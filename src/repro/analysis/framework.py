"""The checker framework: source loading, visitor registry, the run loop.

A :class:`Checker` sees one parsed :class:`SourceFile` at a time
(:meth:`Checker.check_file`) plus a :meth:`Checker.finalize` pass over the
whole :class:`Project` for cross-file invariants (RL004's "every registered
fault point has a site" lives there).  The :func:`run` loop owns everything
checkers should not re-implement: file discovery, AST parsing, the
suppression lifecycle (silence -> mark used -> report stale directives) and
deterministic ordering of the output.

Checkers are pure: they yield :class:`~repro.analysis.diagnostics.
Diagnostic` records and never mutate the tree, so one parse serves all of
them and a checker crash (reported as RL199, never raised) cannot poison
its neighbours.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.analysis.diagnostics import Diagnostic, render_human, report_payload
from repro.analysis.suppressions import (
    Suppression,
    comment_map,
    parse_suppressions,
    suppression_diagnostics,
)

__all__ = [
    "Checker",
    "Project",
    "Report",
    "SourceFile",
    "CODE_PARSE_ERROR",
    "CODE_CHECKER_ERROR",
    "DEFAULT_EXCLUDES",
    "dotted_name",
    "import_aliases",
    "load_file",
    "run",
]

#: A file the analyzer was pointed at but could not parse.
CODE_PARSE_ERROR = "RL100"
#: A checker raised instead of yielding diagnostics -- a bug in the checker,
#: surfaced as a finding so CI fails loudly instead of silently under-checking.
CODE_CHECKER_ERROR = "RL199"

#: Path fragments never analyzed by default: bytecode caches, and the
#: known-bad lint fixtures which exist precisely to contain violations.
DEFAULT_EXCLUDES: Tuple[str, ...] = ("__pycache__", "tests/analysis/fixtures")

PathLike = Union[str, Path]


@dataclass
class SourceFile:
    """One parsed source file plus the comment/suppression side channels."""

    path: Path
    display: str
    text: str
    tree: Optional[ast.Module]
    parse_error: Optional[Diagnostic]
    comments: Dict[int, str]
    suppressions: List[Suppression]

    @property
    def parts(self) -> Tuple[str, ...]:
        return self.path.parts

    def comment_on(self, line: int) -> str:
        """The comment on ``line`` (empty string when there is none)."""
        return self.comments.get(line, "")

    def in_package_dir(self, *segments: str) -> bool:
        """Whether consecutive ``segments`` appear in this file's path.

        The path-scoping primitive: ``file.in_package_dir("repro", "core")``
        is true for ``src/repro/core/simrank.py`` and for fixture trees that
        mirror the package layout (``tests/analysis/fixtures/repro/core/``
        -- which is how scoped checkers stay fixture-testable).
        """
        parts = self.parts
        span = len(segments)
        return any(
            parts[i : i + span] == segments for i in range(len(parts) - span + 1)
        )


@dataclass
class Project:
    """Everything one :func:`run` invocation analyzed, for cross-file passes."""

    root: Path
    files: List[SourceFile] = field(default_factory=list)
    #: Free-form scratch space keyed by checker code, carried from the
    #: per-file pass to :meth:`Checker.finalize`.
    scratch: Dict[str, Any] = field(default_factory=dict)


class Checker:
    """Base class: subclasses set ``code``/``name`` and override the hooks."""

    code: str = ""
    name: str = ""
    description: str = ""

    def check_file(self, file: SourceFile, project: Project) -> Iterable[Diagnostic]:
        return ()

    def finalize(self, project: Project) -> Iterable[Diagnostic]:
        return ()


@dataclass
class Report:
    """The outcome of one analysis run, renderable as text or JSON."""

    diagnostics: List[Diagnostic]
    files_checked: int
    checker_codes: List[str]

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def render_lines(self) -> List[str]:
        return render_human(self.diagnostics)

    def to_json(self) -> Dict[str, Any]:
        return report_payload(self.diagnostics, self.files_checked, self.checker_codes)


# ------------------------------------------------------------ shared helpers


def import_aliases(tree: ast.Module) -> Dict[str, str]:
    """Local name -> dotted origin for every import in the module.

    ``import numpy as np`` maps ``np -> numpy``; ``from time import sleep``
    maps ``sleep -> time.sleep``.  Relative imports keep their dots -- the
    checkers only match absolute stdlib/package names, so a relative origin
    simply never matches.
    """
    aliases: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for name in node.names:
                aliases[name.asname or name.name.split(".")[0]] = (
                    name.name if name.asname else name.name.split(".")[0]
                )
                if name.asname:
                    aliases[name.asname] = name.name
        elif isinstance(node, ast.ImportFrom):
            module = ("." * node.level) + (node.module or "")
            for name in node.names:
                if name.name == "*":
                    continue
                aliases[name.asname or name.name] = f"{module}.{name.name}"
    return aliases


def dotted_name(node: ast.AST, aliases: Optional[Dict[str, str]] = None) -> Optional[str]:
    """Resolve ``Name``/``Attribute`` chains to a dotted string.

    With an alias map, the leading segment is translated through the
    module's imports, so ``np.random.rand`` resolves to
    ``numpy.random.rand`` regardless of the local spelling.  Returns None
    for anything that is not a plain name chain (calls, subscripts).
    """
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    head = current.id
    if aliases and head in aliases:
        head = aliases[head]
    parts.append(head)
    return ".".join(reversed(parts))


# -------------------------------------------------------------- the run loop


def load_file(path: PathLike, root: Optional[PathLike] = None) -> SourceFile:
    """Read, tokenize and parse one file (parse failure becomes RL100)."""
    resolved = Path(path)
    display = _display_path(resolved, Path(root) if root is not None else Path.cwd())
    try:
        text = resolved.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return SourceFile(
            path=resolved,
            display=display,
            text="",
            tree=None,
            parse_error=Diagnostic(
                path=display,
                line=1,
                col=1,
                code=CODE_PARSE_ERROR,
                message=f"cannot read file: {exc}",
            ),
            comments={},
            suppressions=[],
        )
    tree: Optional[ast.Module] = None
    parse_error: Optional[Diagnostic] = None
    try:
        tree = ast.parse(text, filename=str(resolved))
    except SyntaxError as exc:
        parse_error = Diagnostic(
            path=display,
            line=exc.lineno or 1,
            col=(exc.offset or 1),
            code=CODE_PARSE_ERROR,
            message=f"syntax error: {exc.msg}",
        )
    comments = comment_map(text)
    return SourceFile(
        path=resolved,
        display=display,
        text=text,
        tree=tree,
        parse_error=parse_error,
        comments=comments,
        suppressions=parse_suppressions(comments),
    )


def _display_path(path: Path, root: Path) -> str:
    try:
        return os.path.relpath(path, root)
    except ValueError:  # different drive on windows
        return str(path)


def discover(
    paths: Sequence[PathLike], excludes: Sequence[str] = DEFAULT_EXCLUDES
) -> List[Path]:
    """Expand files/directories into the sorted list of ``.py`` files."""
    found: List[Path] = []
    for entry in paths:
        target = Path(entry)
        if target.is_dir():
            found.extend(sorted(target.rglob("*.py")))
        elif target.suffix == ".py":
            found.append(target)
    unique: List[Path] = []
    seen = set()
    for path in found:
        posix = path.as_posix()
        if any(exclude in posix for exclude in excludes):
            continue
        if posix not in seen:
            seen.add(posix)
            unique.append(path)
    return unique


def run(
    paths: Sequence[PathLike],
    checkers: Optional[Sequence[Checker]] = None,
    excludes: Sequence[str] = DEFAULT_EXCLUDES,
    root: Optional[PathLike] = None,
) -> Report:
    """Analyze ``paths`` with ``checkers`` (default: every registered checker).

    The pipeline per file: parse, run each checker, silence diagnostics a
    reasoned same-line ``disable=`` directive covers (marking it used), and
    keep the rest.  After every file: each checker's cross-file
    :meth:`~Checker.finalize`, then the suppression meta-diagnostics
    (missing reason / unknown code / unused), then one global sort.
    """
    if checkers is None:
        from repro.analysis.checkers import all_checkers

        checkers = all_checkers()
    base = Path(root) if root is not None else Path.cwd()
    project = Project(root=base)
    for path in discover(paths, excludes):
        project.files.append(load_file(path, root=base))

    known_codes = _known_codes(checkers)
    diagnostics: List[Diagnostic] = []
    for file in project.files:
        if file.parse_error is not None:
            diagnostics.append(file.parse_error)
        if file.tree is None:
            continue
        raw: List[Diagnostic] = []
        for checker in checkers:
            raw.extend(_guarded(checker, file, project))
        diagnostics.extend(_apply_suppressions(file, raw))
    for checker in checkers:
        try:
            finals = list(checker.finalize(project))
        except Exception as exc:  # pragma: no cover - checker bug surface
            finals = [_checker_crash(checker, "<finalize>", exc)]
        diagnostics.extend(finals)
    for file in project.files:
        diagnostics.extend(
            suppression_diagnostics(file.display, file.suppressions, known_codes)
        )
    diagnostics.sort()
    return Report(
        diagnostics=diagnostics,
        files_checked=len(project.files),
        checker_codes=[checker.code for checker in checkers],
    )


def _known_codes(checkers: Sequence[Checker]) -> List[str]:
    return [checker.code for checker in checkers]


def _guarded(
    checker: Checker, file: SourceFile, project: Project
) -> List[Diagnostic]:
    try:
        return list(checker.check_file(file, project))
    except Exception as exc:  # pragma: no cover - checker bug surface
        return [_checker_crash(checker, file.display, exc)]


def _checker_crash(checker: Checker, where: str, exc: Exception) -> Diagnostic:
    return Diagnostic(
        path=where,
        line=1,
        col=1,
        code=CODE_CHECKER_ERROR,
        message=f"checker {checker.code} ({checker.name}) crashed: "
        f"{type(exc).__name__}: {exc}",
    )


def _apply_suppressions(file: SourceFile, raw: List[Diagnostic]) -> List[Diagnostic]:
    """Drop diagnostics a reasoned same-line directive covers; mark it used."""
    kept: List[Diagnostic] = []
    by_line: Dict[int, List[Suppression]] = {}
    for suppression in file.suppressions:
        by_line.setdefault(suppression.line, []).append(suppression)
    for diagnostic in raw:
        silenced = False
        for suppression in by_line.get(diagnostic.line, ()):
            if suppression.covers(diagnostic.code):
                suppression.mark_used(diagnostic.code)
                silenced = True
                break
        if not silenced:
            kept.append(diagnostic)
    return kept
