"""RL005: score computation in ``repro/core`` stays deterministic.

The reproduction's headline claim is bit-identical scores for identical
inputs -- the regression suite diffs score matrices and the benchmark
gates compare against frozen baselines.  Three things silently break
that without failing a single test locally:

* **unseeded randomness** -- the module-level ``random.*`` functions,
  ``random.Random()`` with no seed, ``numpy.random.default_rng()`` with
  no seed, and the legacy ``numpy.random.*`` global generators all draw
  from interpreter-lifetime state;
* **wall-clock values** -- ``time.time()`` / ``time.time_ns()`` feeding
  anything that orders or scores (monotonic timing for *measurement* is
  fine and not flagged);
* **set-order iteration** -- iterating a ``set``/``frozenset``/set
  comprehension (directly, or via ``list``/``tuple``/``enumerate``/
  ``iter``) visits elements in hash order, which for strings varies with
  ``PYTHONHASHSEED``.  Two runs produce differently-ordered accumulations
  and, under floating-point addition, different scores.  ``sorted(...)``
  over a set is the sanctioned spelling; order-preserving dedup is
  ``dict.fromkeys(...)``.

Scope: files under ``repro/core`` only (the checker keys on path
segments, so fixture trees mirroring the package layout are checked
too), minus :data:`ALLOWLIST` -- fault injection deliberately deals in
wall-clock latencies.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Union

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.framework import (
    Checker,
    Project,
    SourceFile,
    dotted_name,
    import_aliases,
)

__all__ = ["ALLOWLIST", "UNSEEDED_RANDOM", "DeterminismChecker"]

#: Path suffixes (posix) exempt from the determinism rules.
ALLOWLIST = ("repro/core/faults.py",)

#: Module-level RNG entry points that draw from unseeded global state.
UNSEEDED_RANDOM = frozenset(
    {
        "random.random",
        "random.randrange",
        "random.randint",
        "random.choice",
        "random.choices",
        "random.shuffle",
        "random.sample",
        "random.uniform",
        "random.gauss",
        "random.normalvariate",
        "random.betavariate",
        "random.expovariate",
        "random.triangular",
        "numpy.random.rand",
        "numpy.random.randn",
        "numpy.random.randint",
        "numpy.random.random",
        "numpy.random.random_sample",
        "numpy.random.choice",
        "numpy.random.shuffle",
        "numpy.random.permutation",
        "numpy.random.uniform",
        "numpy.random.normal",
    }
)

_WALLCLOCK = frozenset({"time.time", "time.time_ns"})

#: Constructors that are unseeded only when called with no arguments.
_SEEDABLE_FACTORIES = frozenset({"random.Random", "numpy.random.default_rng"})

_ITER_WRAPPERS = frozenset({"list", "tuple", "enumerate", "iter"})

_Scope = Union[ast.Module, ast.FunctionDef, ast.AsyncFunctionDef]


class DeterminismChecker(Checker):
    code = "RL005"
    name = "determinism"
    description = (
        "repro/core must not use unseeded randomness, wall-clock values, or "
        "hash-order set iteration in score computation"
    )

    def check_file(self, file: SourceFile, project: Project) -> Iterator[Diagnostic]:
        assert file.tree is not None
        if not file.in_package_dir("repro", "core"):
            return
        posix = file.path.as_posix()
        if any(posix.endswith(suffix) for suffix in ALLOWLIST):
            return
        aliases = import_aliases(file.tree)
        for scope in _scopes(file.tree):
            yield from self._check_scope(file, scope, aliases)

    def _check_scope(
        self, file: SourceFile, scope: _Scope, aliases: Dict[str, str]
    ) -> Iterator[Diagnostic]:
        nodes = list(_scope_nodes(scope))
        set_names = _set_bound_names(nodes)
        for node in nodes:
            if isinstance(node, ast.Call):
                yield from self._check_call(file, node, aliases, set_names)
            elif isinstance(node, (ast.For, ast.AsyncFor)):
                yield from self._check_iteration(
                    file, node.iter, aliases, set_names, context="for-loop"
                )
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                for generator in node.generators:
                    yield from self._check_iteration(
                        file, generator.iter, aliases, set_names, context="comprehension"
                    )

    def _check_call(
        self,
        file: SourceFile,
        node: ast.Call,
        aliases: Dict[str, str],
        set_names: Set[str],
    ) -> Iterator[Diagnostic]:
        target = dotted_name(node.func, aliases)
        if target in UNSEEDED_RANDOM:
            yield self._diag(
                file,
                node,
                f"{target}() draws from the unseeded global RNG; construct a "
                "seeded generator (random.Random(seed) / "
                "numpy.random.default_rng(seed)) and thread it through",
            )
        elif target in _SEEDABLE_FACTORIES and not node.args and not node.keywords:
            yield self._diag(
                file,
                node,
                f"{target}() without a seed is nondeterministic; pass an "
                "explicit seed",
            )
        elif target in _WALLCLOCK:
            yield self._diag(
                file,
                node,
                f"{target}() feeds wall-clock state into core computation; "
                "results must be a function of the input graph only (use "
                "time.monotonic() in measurement code outside repro/core)",
            )
        elif target in _ITER_WRAPPERS and node.args:
            yield from self._check_iteration(
                file, node.args[0], aliases, set_names, context=f"{target}()"
            )

    def _check_iteration(
        self,
        file: SourceFile,
        iterable: ast.expr,
        aliases: Dict[str, str],
        set_names: Set[str],
        context: str,
    ) -> Iterator[Diagnostic]:
        described = _describe_set_expr(iterable, aliases, set_names)
        if described is not None:
            yield self._diag(
                file,
                iterable,
                f"{context} iterates {described} in hash order, which varies "
                "with PYTHONHASHSEED; iterate sorted(...) or dedup with "
                "dict.fromkeys(...) to fix the order",
            )

    def _diag(self, file: SourceFile, node: ast.AST, message: str) -> Diagnostic:
        return Diagnostic(
            path=file.display,
            line=node.lineno,
            col=node.col_offset + 1,
            code=self.code,
            message=message,
        )


# ------------------------------------------------------------- scope helpers


def _scopes(tree: ast.Module) -> Iterator[_Scope]:
    yield tree
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _scope_nodes(scope: _Scope) -> Iterator[ast.AST]:
    """Nodes belonging to ``scope``, not descending into nested functions."""

    def inner(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield child
            yield from inner(child)

    return inner(scope)


def _set_bound_names(nodes: List[ast.AST]) -> Set[str]:
    """Local names assigned a set expression anywhere in the scope."""
    names: Set[str] = set()
    for node in nodes:
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _is_set_expr(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    )


def _describe_set_expr(
    node: ast.expr, aliases: Dict[str, str], set_names: Set[str]
) -> Optional[str]:
    if isinstance(node, ast.Set):
        return "a set literal"
    if isinstance(node, ast.SetComp):
        return "a set comprehension"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return f"a {node.func.id}()"
    if isinstance(node, ast.Name) and node.id in set_names:
        return f"{node.id!r} (bound to a set in this scope)"
    return None
