"""RL004: fault-point names stay in sync with the central registry.

Fault points are strings compiled into hot paths (``faults.fire(
"engine.refresh")``) and armed by name in test plans.  A typo on either
side does not error -- it produces a fault point that can never fire or a
plan that never injects, and the chaos test quietly stops testing
anything.  This checker closes the loop against
``repro.core.faults.FAULT_POINTS``, the authoritative registry:

* every ``faults.fire/claim/should_corrupt("<name>")`` site inside the
  ``repro`` package must use a registered name (test/benchmark code is
  out of scope -- tests legitimately exercise :class:`FaultPlan` with
  scratch names);
* every registered name must have at least one site in the analyzed tree,
  so dead registry entries (an instrumented path that was deleted) are
  reported at the registry definition.

The registry is read statically -- an analyzed file assigning
``FAULT_POINTS = frozenset({...})`` of string literals -- falling back to
importing :data:`repro.core.faults.FAULT_POINTS` when the defining module
is outside the analyzed set.  The completeness pass needs both a parsed
registry and at least one observed site, so pointing the analyzer at the
registry file alone does not report every point as dead.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.framework import (
    Checker,
    Project,
    SourceFile,
    dotted_name,
    import_aliases,
)

__all__ = ["FaultPointChecker", "SITE_FUNCTIONS"]

#: The module-level fault-point entry functions, by dotted name.
SITE_FUNCTIONS = frozenset(
    {
        "repro.core.faults.fire",
        "repro.core.faults.claim",
        "repro.core.faults.should_corrupt",
    }
)

_SCRATCH_KEY = "RL004"


class FaultPointChecker(Checker):
    code = "RL004"
    name = "fault-points"
    description = (
        "fire/claim/should_corrupt sites in the repro package use names from "
        "repro.core.faults.FAULT_POINTS; every registered name has a site"
    )

    def check_file(self, file: SourceFile, project: Project) -> Iterator[Diagnostic]:
        assert file.tree is not None
        state = self._state(project)
        aliases = import_aliases(file.tree)
        in_scope = file.in_package_dir("repro")
        for node in ast.walk(file.tree):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func, aliases)
            if target not in SITE_FUNCTIONS:
                continue
            point = _literal_point(node)
            if point is None:
                continue
            state["sites"].add(point)
            if in_scope and state["registry"] and point not in state["registry"]:
                known = ", ".join(sorted(state["registry"]))
                yield Diagnostic(
                    path=file.display,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code=self.code,
                    message=(
                        f"fault point {point!r} is not registered in "
                        f"repro.core.faults.FAULT_POINTS (known points: "
                        f"{known}); register it or fix the name"
                    ),
                )

    def finalize(self, project: Project) -> Iterator[Diagnostic]:
        state = self._state(project)
        definitions: List[Tuple[str, int, Set[str]]] = state["definitions"]
        if not definitions or not state["sites"]:
            return
        for display, lineno, names in definitions:
            for point in sorted(names - state["sites"]):
                yield Diagnostic(
                    path=display,
                    line=lineno,
                    col=1,
                    code=self.code,
                    message=(
                        f"fault point {point!r} is registered but has no "
                        "fire/claim/should_corrupt site in the analyzed tree; "
                        "instrument a path or drop the registry entry"
                    ),
                )

    # --------------------------------------------------------------- registry

    def _state(self, project: Project) -> Dict[str, object]:
        """Lazily resolve the registry once per run, via project scratch."""
        state = project.scratch.get(_SCRATCH_KEY)
        if state is not None:
            return state
        definitions: List[Tuple[str, int, Set[str]]] = []
        registry: Set[str] = set()
        for file in project.files:
            if file.tree is None:
                continue
            parsed = _parse_registry(file.tree)
            if parsed is not None:
                lineno, names = parsed
                definitions.append((file.display, lineno, names))
                registry.update(names)
        if not registry:
            registry = _imported_registry()
        state = {"definitions": definitions, "registry": registry, "sites": set()}
        project.scratch[_SCRATCH_KEY] = state
        return state


def _parse_registry(tree: ast.Module) -> Optional[Tuple[int, Set[str]]]:
    """A module-level ``FAULT_POINTS = frozenset({...})`` literal, if any."""
    for node in tree.body:
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and node.targets[0].id == "FAULT_POINTS"
        ):
            names = _literal_strings(node.value)
            if names is not None:
                return node.lineno, names
    return None


def _literal_strings(node: ast.expr) -> Optional[Set[str]]:
    if isinstance(node, ast.Call) and not node.keywords and len(node.args) == 1:
        target = dotted_name(node.func)
        if target == "frozenset":
            return _literal_strings(node.args[0])
        return None
    if isinstance(node, (ast.Set, ast.List, ast.Tuple)):
        names: Set[str] = set()
        for element in node.elts:
            if not (isinstance(element, ast.Constant) and isinstance(element.value, str)):
                return None
            names.add(element.value)
        return names
    return None


def _imported_registry() -> Set[str]:
    """Fallback when ``repro.core.faults`` is outside the analyzed set."""
    try:
        from repro.core.faults import FAULT_POINTS
    except Exception:  # pragma: no cover - analysis of a foreign tree
        return set()
    return set(FAULT_POINTS)


def _literal_point(call: ast.Call) -> Optional[str]:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    return None
