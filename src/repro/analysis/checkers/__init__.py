"""The checker registry: one place that knows every shipped checker.

Order here is presentation order for ``repro-lint --list-checkers``;
diagnostic ordering is positional (path/line/col) regardless.
"""

from __future__ import annotations

from typing import List

from repro.analysis.framework import Checker
from repro.analysis.checkers.lock_discipline import LockDisciplineChecker
from repro.analysis.checkers.async_blocking import AsyncBlockingChecker
from repro.analysis.checkers.pickle_safety import PickleSafetyChecker
from repro.analysis.checkers.fault_points import FaultPointChecker
from repro.analysis.checkers.determinism import DeterminismChecker

__all__ = [
    "AsyncBlockingChecker",
    "DeterminismChecker",
    "FaultPointChecker",
    "LockDisciplineChecker",
    "PickleSafetyChecker",
    "all_checkers",
]


def all_checkers() -> List[Checker]:
    """Fresh instances of every registered checker, in RL-code order."""
    return [
        LockDisciplineChecker(),
        AsyncBlockingChecker(),
        PickleSafetyChecker(),
        FaultPointChecker(),
        DeterminismChecker(),
    ]
