"""RL002: no blocking calls on the event loop.

The serving tier is a single asyncio event loop; one blocking call in an
``async def`` stalls every in-flight request behind it (the micro-batcher,
the connection handlers, the health endpoint -- all of it).  The
convention since the serving tier landed is that blocking work goes
through ``loop.run_in_executor`` on the serve/admin thread pools.  This
checker enforces it inside every ``async def`` body:

* known blocking callables (``time.sleep``, socket construction/connect,
  ``urllib.request.urlopen``, ``subprocess`` helpers, builtin ``open``)
  are flagged outright -- resolved through the module's imports, so
  ``from time import sleep`` does not slip through;
* ``<lock>.acquire()`` is flagged when the call is *not* awaited: a bare
  ``.acquire()`` is either a blocking ``threading`` primitive or a
  forgotten ``await`` on an asyncio one -- both bugs.  ``await
  x.acquire()`` and non-blocking forms (``blocking=False`` / ``timeout=0``)
  pass.

Nested *sync* ``def``s inside an async function are skipped: they are the
executor-target idiom (defined on the loop, executed in a worker thread).
Nested async defs are checked like any other.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.framework import (
    Checker,
    Project,
    SourceFile,
    dotted_name,
    import_aliases,
)

__all__ = ["BLOCKING_CALLS", "AsyncBlockingChecker"]

#: Dotted names that block the calling thread.  ``asyncio.sleep`` and the
#: stream APIs are the sanctioned counterparts.
BLOCKING_CALLS: Dict[str, str] = {
    "time.sleep": "use `await asyncio.sleep(...)`",
    "socket.socket": "use asyncio streams (`asyncio.open_connection`)",
    "socket.create_connection": "use `asyncio.open_connection`",
    "urllib.request.urlopen": "run it in an executor",
    "subprocess.run": "use `asyncio.create_subprocess_exec`",
    "subprocess.call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_call": "use `asyncio.create_subprocess_exec`",
    "subprocess.check_output": "use `asyncio.create_subprocess_exec`",
    "open": "run file IO in an executor",
}


class AsyncBlockingChecker(Checker):
    code = "RL002"
    name = "async-blocking"
    description = (
        "no time.sleep, blocking socket/file IO or bare Lock.acquire inside "
        "`async def` bodies -- blocking work goes through executors"
    )

    def check_file(self, file: SourceFile, project: Project) -> Iterator[Diagnostic]:
        assert file.tree is not None
        aliases = import_aliases(file.tree)
        for node in ast.walk(file.tree):
            if isinstance(node, ast.AsyncFunctionDef):
                yield from self._check_async_body(file, node, aliases)

    def _check_async_body(
        self,
        file: SourceFile,
        func: ast.AsyncFunctionDef,
        aliases: Dict[str, str],
    ) -> Iterator[Diagnostic]:
        awaited = _directly_awaited_calls(func)
        for node in _walk_skipping_nested_defs(func):
            if not isinstance(node, ast.Call):
                continue
            target = dotted_name(node.func, aliases)
            if target in BLOCKING_CALLS:
                yield Diagnostic(
                    path=file.display,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code=self.code,
                    message=(
                        f"blocking call {target}() inside `async def "
                        f"{func.name}` stalls the event loop; "
                        f"{BLOCKING_CALLS[target]}"
                    ),
                )
                continue
            if (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "acquire"
                and id(node) not in awaited
                and not _non_blocking_acquire(node)
            ):
                yield Diagnostic(
                    path=file.display,
                    line=node.lineno,
                    col=node.col_offset + 1,
                    code=self.code,
                    message=(
                        f"bare .acquire() inside `async def {func.name}`: a "
                        "threading lock blocks the event loop and an asyncio "
                        "primitive must be awaited -- either way this call "
                        "is wrong (await it, or move the blocking section "
                        "into an executor)"
                    ),
                )


def _walk_skipping_nested_defs(func: ast.AsyncFunctionDef) -> Iterator[ast.AST]:
    """Walk the async body, not descending into nested function definitions."""

    def inner(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield child
            yield from inner(child)

    return inner(func)


def _directly_awaited_calls(func: ast.AsyncFunctionDef) -> Set[int]:
    """ids of Call nodes that sit immediately under an ``await``."""
    return {
        id(node.value)
        for node in ast.walk(func)
        if isinstance(node, ast.Await) and isinstance(node.value, ast.Call)
    }


def _non_blocking_acquire(call: ast.Call) -> bool:
    """``acquire(False)`` / ``blocking=False`` / ``timeout=0`` never block."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Constant) and first.value is False:
            return True
    for keyword in call.keywords:
        if keyword.arg == "blocking" and _is_const(keyword.value, False):
            return True
        if keyword.arg == "timeout" and _is_const(keyword.value, 0):
            return True
    return False


def _is_const(node: ast.expr, value: object) -> bool:
    return isinstance(node, ast.Constant) and node.value == value
