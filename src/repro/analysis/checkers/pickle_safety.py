"""RL003: everything shipped to a process pool must survive pickling.

The sharded fitter farms work out through ``ProcessPoolExecutor``; unlike
thread pools, every callable and argument crosses a process boundary via
pickle.  Three classes of value pass a type-check but explode (or worse,
silently misbehave) at submit time:

* **lambdas and nested functions** -- pickle serializes functions by
  qualified name, and ``fit.<locals>.job`` cannot be looked up from the
  worker.  This fails only at runtime, typically inside a future, where
  the traceback points at the pool rather than the definition site;

* **bound methods and instances of lock/handle-carrying classes** -- a
  bound method pickles ``self`` with it, so ``pool.submit(plan.fire)``
  drags a ``threading.Lock`` (unpicklable) or an open file handle (whose
  descriptor is meaningless in the child) across the boundary.

The checker resolves the executor by construction site (``pool =
ProcessPoolExecutor(...)`` or ``with ProcessPoolExecutor(...) as pool:``)
and inspects every ``pool.submit(...)`` / ``pool.map(...)`` in the file.
Classes are deemed lock/handle-carrying when any of their methods assigns
``self.<attr>`` from ``threading.{Lock,RLock,Condition,Semaphore,...}`` or
builtin ``open``.  Names it cannot resolve are given the benefit of the
doubt -- the point is to catch the local, obvious hazards the type system
cannot.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.framework import (
    Checker,
    Project,
    SourceFile,
    dotted_name,
    import_aliases,
)

__all__ = ["PickleSafetyChecker", "UNPICKLABLE_FACTORIES"]

#: Constructors whose result cannot cross a process boundary.
UNPICKLABLE_FACTORIES: Dict[str, str] = {
    "threading.Lock": "a threading.Lock",
    "threading.RLock": "a threading.RLock",
    "threading.Condition": "a threading.Condition",
    "threading.Semaphore": "a threading.Semaphore",
    "threading.BoundedSemaphore": "a threading.BoundedSemaphore",
    "threading.Event": "a threading.Event",
    "open": "an open file handle",
}

_EXECUTOR_NAMES = frozenset(
    {
        "concurrent.futures.ProcessPoolExecutor",
        "concurrent.futures.process.ProcessPoolExecutor",
    }
)

_SUBMIT_METHODS = frozenset({"submit", "map"})


class PickleSafetyChecker(Checker):
    code = "RL003"
    name = "pickle-safety"
    description = (
        "callables/arguments handed to ProcessPoolExecutor.submit/map must "
        "be picklable: no lambdas, nested functions, or lock/file-holding "
        "instances"
    )

    def check_file(self, file: SourceFile, project: Project) -> Iterator[Diagnostic]:
        assert file.tree is not None
        tree = file.tree
        aliases = import_aliases(tree)
        executors = _executor_names(tree, aliases)
        if not executors:
            return
        unsafe_classes = _unsafe_classes(tree, aliases)
        unpicklable_names = _unpicklable_local_names(tree)
        parents = _parent_map(tree)
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _SUBMIT_METHODS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in executors
            ):
                owner = _enclosing_class(node, parents)
                yield from self._check_submit(
                    file,
                    node,
                    aliases,
                    unsafe_classes,
                    unpicklable_names,
                    owner,
                )

    def _check_submit(
        self,
        file: SourceFile,
        call: ast.Call,
        aliases: Dict[str, str],
        unsafe_classes: Dict[str, str],
        unpicklable_names: Set[str],
        owner: Optional[str],
    ) -> Iterator[Diagnostic]:
        method = call.func.attr  # type: ignore[union-attr]
        values: List[ast.expr] = list(call.args)
        values.extend(k.value for k in call.keywords if k.value is not None)
        for index, value in enumerate(values):
            role = "callable" if index == 0 else "argument"
            problem = self._diagnose_value(
                value, aliases, unsafe_classes, unpicklable_names, owner
            )
            if problem is not None:
                yield Diagnostic(
                    path=file.display,
                    line=value.lineno,
                    col=value.col_offset + 1,
                    code=self.code,
                    message=(
                        f"{role} passed to ProcessPoolExecutor.{method}() "
                        f"{problem} -- it cannot cross the process boundary; "
                        "pass a module-level function and plain data instead"
                    ),
                )

    def _diagnose_value(
        self,
        value: ast.expr,
        aliases: Dict[str, str],
        unsafe_classes: Dict[str, str],
        unpicklable_names: Set[str],
        owner: Optional[str],
    ) -> Optional[str]:
        if isinstance(value, ast.Lambda):
            return "is a lambda (pickled by qualified name, which a worker cannot resolve)"
        if isinstance(value, ast.Name):
            if value.id in unpicklable_names:
                return (
                    f"is {value.id!r}, a nested function or lambda binding "
                    "(its qualified name cannot be resolved from a worker)"
                )
            if value.id == "self" and owner in unsafe_classes:
                return (
                    f"is `self`, an instance of {owner} which holds "
                    f"{unsafe_classes[owner]}"
                )
        if (
            isinstance(value, ast.Attribute)
            and isinstance(value.value, ast.Name)
            and value.value.id == "self"
            and owner in unsafe_classes
        ):
            return (
                f"is the bound method self.{value.attr} -- pickling it "
                f"pickles the whole {owner} instance, which holds "
                f"{unsafe_classes[owner]}"
            )
        if isinstance(value, ast.Call):
            target = dotted_name(value.func, aliases)
            if target is not None:
                tail = target.rsplit(".", 1)[-1]
                if tail in unsafe_classes:
                    return (
                        f"constructs a {tail} instance, which holds "
                        f"{unsafe_classes[tail]}"
                    )
        return None


# ------------------------------------------------------------ module scans


def _executor_names(tree: ast.Module, aliases: Dict[str, str]) -> Set[str]:
    """Names bound to a ``ProcessPoolExecutor(...)`` construction."""

    def is_executor_call(node: ast.expr) -> bool:
        return (
            isinstance(node, ast.Call)
            and dotted_name(node.func, aliases) in _EXECUTOR_NAMES
        )

    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and is_executor_call(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, (ast.With, ast.AsyncWith)):
            for item in node.items:
                if (
                    is_executor_call(item.context_expr)
                    and isinstance(item.optional_vars, ast.Name)
                ):
                    names.add(item.optional_vars.id)
    return names


def _unsafe_classes(tree: ast.Module, aliases: Dict[str, str]) -> Dict[str, str]:
    """Same-module classes whose instances hold a lock or file handle."""
    unsafe: Dict[str, str] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.ClassDef):
            continue
        for inner in ast.walk(node):
            if (
                isinstance(inner, ast.Assign)
                and isinstance(inner.value, ast.Call)
                and any(
                    isinstance(t, ast.Attribute)
                    and isinstance(t.value, ast.Name)
                    and t.value.id == "self"
                    for t in inner.targets
                )
            ):
                target = dotted_name(inner.value.func, aliases)
                if target in UNPICKLABLE_FACTORIES:
                    unsafe.setdefault(node.name, UNPICKLABLE_FACTORIES[target])
    return unsafe


def _unpicklable_local_names(tree: ast.Module) -> Set[str]:
    """Names of function-nested defs and lambda bindings, module-wide.

    A def nested inside any function gets a ``<locals>`` qualified name,
    and a name assigned a lambda gets ``<lambda>`` -- neither can be
    re-imported by a worker process.
    """
    names: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for inner in ast.walk(node):
                if inner is node:
                    continue
                if isinstance(inner, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    names.add(inner.name)
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Lambda):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
    return names


def _parent_map(tree: ast.Module) -> Dict[int, ast.AST]:
    parents: Dict[int, ast.AST] = {}
    for node in ast.walk(tree):
        for child in ast.iter_child_nodes(node):
            parents[id(child)] = node
    return parents


def _enclosing_class(node: ast.AST, parents: Dict[int, ast.AST]) -> Optional[str]:
    current: Optional[ast.AST] = parents.get(id(node))
    while current is not None:
        if isinstance(current, ast.ClassDef):
            return current.name
        current = parents.get(id(current))
    return None
