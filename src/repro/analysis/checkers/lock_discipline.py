"""RL001: attributes declared lock-guarded are only touched under their lock.

The concurrent pieces of this codebase (the serving holder, the circuit
breaker, the fault plan, the engine's serving cache) document which lock
guards which fields -- but documentation cannot fail a build.  This checker
makes the convention executable:

* A field is declared guarded either by an inline annotation on (or
  directly above) its assignment::

      #: guarded-by: _outcome
      self._publish_failures = 0

  or by an entry in :data:`GUARDED_BY`, the map seeded from the classes
  that established the convention (``repro/api/engine.py``,
  ``repro/serving/holder.py``, ``repro/serving/resilience.py``,
  ``repro/core/faults.py``).  Annotations and the seed map merge; an
  annotation wins on conflict.

* Inside the owning class, every read or write of a guarded field must be
  lexically within ``with self.<lock>:`` for the declared lock.  ``__init__``
  and ``__new__`` are exempt -- no other thread can hold a reference during
  construction.

* A helper that is documented as "caller holds the lock" declares it::

      # repro-lint: requires-lock=_lock
      def _maybe_half_open(self) -> None: ...

  and its whole body is treated as guarded (the Clang thread-safety
  ``REQUIRES()`` idiom; callers are not checked -- the annotation is an
  audited claim, kept visible at the definition).

Known limitations, by design: accesses from *outside* the owning class and
aliases (``cache = self._cache``) are not tracked; a nested function
defined inside a ``with`` block is treated as guarded even though it may
escape and run later.  The checker enforces the lexical discipline the
code actually uses, not a full may-happen-in-parallel analysis.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List, Optional, Set

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.framework import Checker, Project, SourceFile

__all__ = ["GUARDED_BY", "LockDisciplineChecker"]

#: The seed map: class name -> {guarded attribute -> lock attribute}.
#: Seeded from the classes that established the lock conventions this
#: checker enforces; new classes should prefer inline ``#: guarded-by:``
#: annotations, which merge with (and override) these entries.
GUARDED_BY: Dict[str, Dict[str, str]] = {
    # repro/serving/holder.py -- the publish-outcome ledger and the swap
    # bookkeeping /stats reads, all on the dedicated outcome lock so stats
    # readers never block behind an in-flight refit holding ``_mutate``.
    "EngineHolder": {
        "_publish_failures": "_outcome",
        "_consecutive_failures": "_outcome",
        "_last_error": "_outcome",
        "_last_failure_at": "_outcome",
        "_published_at": "_outcome",
        "_swaps": "_outcome",
        "_last_swap_seconds": "_outcome",
    },
    # repro/serving/resilience.py -- breaker state transitions.
    "CircuitBreaker": {
        "_state": "_lock",
        "_failures": "_lock",
        "_opened_at": "_lock",
        "_probing": "_lock",
    },
    # repro/core/faults.py -- central hit counting must stay exact under
    # multi-threaded fits.
    "FaultPlan": {
        "_hits": "_lock",
        "_spec_fired": "_lock",
        "fired": "_lock",
    },
    # repro/api/engine.py -- the serving cache and its counters.
    "RewriteEngine": {
        "_cache": "_cache_lock",
        "_hits": "_cache_lock",
        "_misses": "_cache_lock",
        "_evictions": "_cache_lock",
    },
    # repro/store/sqlite.py -- one shared connection, so every point
    # lookup (and the counters it bumps) serialises on the store lock.
    "SqliteServingStore": {
        "_connection": "_lock",
        "_lookups": "_lock",
        "_empty_lookups": "_lock",
        "_closed": "_lock",
    },
}

_GUARDED_ANNOTATION = re.compile(r"#:\s*guarded-by:\s*(?P<lock>\w+)")
_REQUIRES_LOCK = re.compile(r"#\s*repro-lint:\s*requires-lock=(?P<locks>[\w,\s]+)")

#: Methods exempt from the discipline: the object is not yet shared.
_CONSTRUCTORS = frozenset({"__init__", "__new__"})


class LockDisciplineChecker(Checker):
    code = "RL001"
    name = "lock-discipline"
    description = (
        "guarded attributes are only read/written inside `with self.<lock>:` "
        "in their owning class"
    )

    def check_file(self, file: SourceFile, project: Project) -> Iterator[Diagnostic]:
        assert file.tree is not None
        for node in ast.walk(file.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(file, node)

    # ------------------------------------------------------------- per class

    def _check_class(
        self, file: SourceFile, cls: ast.ClassDef
    ) -> Iterator[Diagnostic]:
        guarded = dict(GUARDED_BY.get(cls.name, {}))
        guarded.update(self._annotated_fields(file, cls))
        if not guarded:
            return
        for item in cls.body:
            if not isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if item.name in _CONSTRUCTORS:
                continue
            held = self._required_locks(file, item)
            yield from self._check_function(file, cls, item, guarded, held)

    def _annotated_fields(
        self, file: SourceFile, cls: ast.ClassDef
    ) -> Dict[str, str]:
        """``#: guarded-by:`` declarations on ``self.X = ...`` assignments."""
        fields: Dict[str, str] = {}
        for node in ast.walk(cls):
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                attr = _self_attribute(target)
                if attr is None:
                    continue
                lock = self._annotation_near(file, node.lineno)
                if lock is not None:
                    fields[attr] = lock
        return fields

    def _annotation_near(self, file: SourceFile, lineno: int) -> Optional[str]:
        """A ``guarded-by`` comment on the line, or directly above it."""
        for line in (lineno, lineno - 1):
            match = _GUARDED_ANNOTATION.search(file.comment_on(line))
            if match is not None:
                return match.group("lock")
        return None

    def _required_locks(
        self, file: SourceFile, func: ast.FunctionDef
    ) -> Set[str]:
        """Locks a ``requires-lock=`` annotation claims the caller holds."""
        lines = [func.lineno, func.lineno - 1]
        if func.decorator_list:
            first = min(d.lineno for d in func.decorator_list)
            lines.extend((first, first - 1))
        for line in lines:
            match = _REQUIRES_LOCK.search(file.comment_on(line))
            if match is not None:
                return {
                    lock.strip()
                    for lock in match.group("locks").split(",")
                    if lock.strip()
                }
        return set()

    # ---------------------------------------------------------- per function

    def _check_function(
        self,
        file: SourceFile,
        cls: ast.ClassDef,
        func: ast.FunctionDef,
        guarded: Dict[str, str],
        base_held: Set[str],
    ) -> Iterator[Diagnostic]:
        lock_names = set(guarded.values())

        def visit(node: ast.AST, held: Set[str]) -> Iterator[Diagnostic]:
            if isinstance(node, (ast.With, ast.AsyncWith)):
                acquired = set(held)
                for item in node.items:
                    lock = _self_attribute(item.context_expr)
                    if lock in lock_names:
                        acquired = acquired | {lock}
                    yield from visit(item.context_expr, held)
                for child in node.body:
                    yield from visit(child, acquired)
                return
            if isinstance(node, ast.Attribute):
                attr = _self_attribute(node)
                if attr is not None and attr in guarded:
                    lock = guarded[attr]
                    if lock not in held:
                        yield Diagnostic(
                            path=file.display,
                            line=node.lineno,
                            col=node.col_offset + 1,
                            code=self.code,
                            message=(
                                f"{cls.name}.{attr} is declared guarded by "
                                f"self.{lock} but is accessed in "
                                f"{func.name}() without holding it (wrap the "
                                f"access in `with self.{lock}:` or annotate "
                                f"the function `# repro-lint: "
                                f"requires-lock={lock}`)"
                            ),
                        )
            for child in ast.iter_child_nodes(node):
                yield from visit(child, held)

        for statement in func.body:
            yield from visit(statement, set(base_held))


def _self_attribute(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``"X"``; anything else -> None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None
