"""Diagnostic records and rendering for the static-analysis suite.

A :class:`Diagnostic` is one finding at one source location.  Rendering is
deliberately compiler-shaped -- ``path:line:col CODE message`` -- so editor
quickfix lists, CI log scanners and humans all parse the same line, and the
JSON form carries the identical fields for the uploaded CI artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence

__all__ = ["Diagnostic", "render_human", "report_payload"]


@dataclass(frozen=True, order=True)
class Diagnostic:
    """One finding: where (``path:line:col``), what (``code``), and why.

    Field order doubles as sort order, so a sorted diagnostic list reads
    file by file, top to bottom -- the order a reviewer fixes things in.
    """

    path: str
    line: int
    col: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line form: ``path:line:col CODE message``."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }


def render_human(diagnostics: Sequence[Diagnostic]) -> List[str]:
    """One rendered line per diagnostic plus a count trailer."""
    lines = [diagnostic.render() for diagnostic in diagnostics]
    noun = "diagnostic" if len(diagnostics) == 1 else "diagnostics"
    lines.append(f"{len(diagnostics)} {noun}")
    return lines


def report_payload(
    diagnostics: Sequence[Diagnostic],
    files_checked: int,
    checker_codes: Sequence[str],
) -> Dict[str, Any]:
    """The JSON report body written by ``repro-lint --json-report``."""
    by_code: Dict[str, int] = {}
    for diagnostic in diagnostics:
        by_code[diagnostic.code] = by_code.get(diagnostic.code, 0) + 1
    return {
        "files_checked": files_checked,
        "checkers": list(checker_codes),
        "diagnostics": [diagnostic.to_json() for diagnostic in diagnostics],
        "count": len(diagnostics),
        "by_code": {code: by_code[code] for code in sorted(by_code)},
    }
