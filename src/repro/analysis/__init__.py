"""Repo-aware static analysis for the SimRank++ reproduction.

Generic linters cannot see this codebase's conventions: which lock guards
which field, that the serving tier is one event loop, that fault-point
names are strings matched against a registry, that ``repro/core`` promises
bit-identical scores.  This package makes those conventions executable --
an AST-based checker suite with compiler-shaped diagnostics
(``path:line:col CODE message``), run as ``repro-lint`` (or ``python -m
repro.analysis``) and gating CI via the blocking ``static-analysis`` job.

Static analysis
===============

Checkers
--------

===== =============== =====================================================
RL001 lock-discipline  attributes declared lock-guarded (seed map +
                       ``#: guarded-by:`` annotations) are only read or
                       written inside ``with self.<lock>:`` in the owning
                       class; helpers called with the lock held declare
                       ``# repro-lint: requires-lock=<lock>``
RL002 async-blocking   no ``time.sleep``, blocking socket/file IO, or bare
                       ``.acquire()`` inside ``async def`` bodies
RL003 pickle-safety    callables/arguments handed to
                       ``ProcessPoolExecutor.submit/map`` must survive
                       pickling (no lambdas, nested functions, or
                       lock/file-holding instances)
RL004 fault-points     fault-point sites in the ``repro`` package use names
                       from ``repro.core.faults.FAULT_POINTS``; every
                       registered name has at least one site
RL005 determinism      ``repro/core`` avoids unseeded randomness,
                       wall-clock values and hash-order set iteration
===== =============== =====================================================

Meta codes: RL100 (file did not parse), RL101 (suppression missing its
reason), RL102 (suppression names an unknown code), RL103 (suppression
silences nothing), RL199 (a checker crashed).  Meta codes are never
suppressible.

Running locally
---------------

.. code-block:: console

   $ PYTHONPATH=src python -m repro.analysis src tests benchmarks
   $ repro-lint --list-checkers            # with the package installed
   $ repro-lint src --format json --json-report analysis-report.json

Exit code 0 means clean, 1 means diagnostics, 2 means usage error.

Annotating code
---------------

Declare a guarded field where it is first assigned::

    #: guarded-by: _outcome
    self._swaps = 0

Declare a lock-held helper at its definition::

    # repro-lint: requires-lock=_lock
    def _maybe_half_open(self) -> None: ...

Suppress a finding only on its own line, and only with a reason::

    risky()  # repro-lint: disable=RL002 -- sanctioned: runs before the loop

A reasonless suppression suppresses nothing and is itself reported.

Programmatic use: :func:`repro.analysis.run` returns a
:class:`~repro.analysis.framework.Report`; checkers subclass
:class:`~repro.analysis.framework.Checker` and register in
:func:`repro.analysis.checkers.all_checkers`.
"""

from __future__ import annotations

from repro.analysis.diagnostics import Diagnostic
from repro.analysis.framework import (
    Checker,
    Project,
    Report,
    SourceFile,
    load_file,
    run,
)

__all__ = [
    "Checker",
    "Diagnostic",
    "Project",
    "Report",
    "SourceFile",
    "load_file",
    "run",
]
