"""The online serving tier: asyncio rewrite server with zero-downtime refresh.

This package composes the offline/online split built up by the previous
layers -- snapshots (:mod:`repro.api.snapshot`), incremental deltas and
warm refits (:mod:`repro.graph.delta`, ``RewriteEngine.refresh``) -- into
an actual network service:

* :class:`~repro.serving.holder.EngineHolder` -- copy-on-write engine
  publication: readers serve from an immutable ``(engine, version)`` pair
  while ``refresh(delta)`` / ``reload(path)`` build a full replacement off
  to the side and publish it atomically.
* :class:`~repro.serving.server.RewriteServer` /
  :class:`~repro.serving.server.ServerConfig` -- stdlib-asyncio HTTP server
  with request micro-batching, bounded concurrency and graceful draining.
* :mod:`~repro.serving.loadgen` -- Zipf-skewed hot/cold load generator and
  latency reporting (:class:`~repro.serving.loadgen.ZipfSchedule`,
  :func:`~repro.serving.loadgen.run_load`).

Start one from the command line with ``simrankpp-experiments serve`` or
programmatically::

    holder = EngineHolder(engine)
    async with RewriteServer(holder, ServerConfig(port=8641)) as server:
        ...
"""

from repro.serving.holder import EngineHolder
from repro.serving.loadgen import (
    LoadReport,
    RecordedResponse,
    ZipfSchedule,
    http_request,
    request_once,
    run_load,
)
from repro.serving.metrics import LatencyWindow, percentile, summarize_latencies
from repro.serving.server import (
    RewriteServer,
    ServerConfig,
    delta_from_payload,
    delta_to_payload,
)

__all__ = [
    "EngineHolder",
    "RewriteServer",
    "ServerConfig",
    "ZipfSchedule",
    "LoadReport",
    "RecordedResponse",
    "LatencyWindow",
    "percentile",
    "summarize_latencies",
    "http_request",
    "request_once",
    "run_load",
    "delta_from_payload",
    "delta_to_payload",
]
