"""The online serving tier: asyncio rewrite server with zero-downtime refresh.

This package composes the offline/online split built up by the previous
layers -- snapshots (:mod:`repro.api.snapshot`), incremental deltas and
warm refits (:mod:`repro.graph.delta`, ``RewriteEngine.refresh``) -- into
an actual network service:

* :class:`~repro.serving.holder.EngineHolder` -- copy-on-write engine
  publication: readers serve from an immutable ``(engine, version)`` pair
  while ``refresh(delta)`` / ``reload(path)`` build a full replacement off
  to the side and publish it atomically.
* :class:`~repro.serving.server.RewriteServer` /
  :class:`~repro.serving.server.ServerConfig` -- stdlib-asyncio HTTP server
  with request micro-batching, bounded concurrency and graceful draining.
* :mod:`~repro.serving.loadgen` -- Zipf-skewed hot/cold load generator and
  latency reporting (:class:`~repro.serving.loadgen.ZipfSchedule`,
  :func:`~repro.serving.loadgen.run_load`).

Start one from the command line with ``simrankpp-experiments serve`` or
programmatically::

    holder = EngineHolder(engine)
    async with RewriteServer(holder, ServerConfig(port=8641)) as server:
        ...

Resilience guide
----------------

The serving tier is built to keep answering -- correctly, from the last
published engine -- while the analytical side misbehaves.  The moving
parts (:mod:`repro.serving.resilience`):

* **Deadlines.**  ``ServerConfig(request_timeout_s=...)`` bounds every
  ``/rewrite``/``/rewrite_batch`` request; past the budget the client gets
  HTTP 504.  Serving only ever *reads* the published engine, so a cut
  request never leaves state inconsistent.
* **Retried publishes.**  Transient ``/refresh``/``/reload`` failures (a
  crashed fit worker, an injected outage) are retried with exponential
  backoff and seeded jitter (``refresh_retries`` / ``refresh_backoff_s``);
  client errors (400) and corrupt snapshots or store files
  (:class:`~repro.api.snapshot.SnapshotError` /
  :class:`~repro.store.StoreError` -> 500) are never retried, and the
  old engine stays published either way.
* **Circuit breaker.**  After ``breaker_threshold`` consecutive transient
  publish failures the breaker opens: further publish requests are shed
  with 503 while rewrite traffic continues against the stale engine.
  After ``breaker_reset_s`` a single half-open probe decides between
  closing and re-opening.
* **Health states.**  ``/healthz`` reports ``healthy`` (serving, last
  publish succeeded), ``degraded`` (serving -- possibly stale -- but the
  publish path is struggling) or ``draining`` (shutting down), plus the
  served engine's staleness age; ``/stats`` adds the full publish ledger
  (:attr:`EngineHolder.last_error`, failure counts, breaker state).  One
  successful refresh returns a degraded server to healthy.
* **Crash-safe startup.**  ``serve --snapshot DIR`` falls back to the
  newest loadable sibling snapshot when ``DIR`` is corrupt
  (:func:`repro.api.sources.resolve_engine_source`, which the deprecated
  :func:`~repro.serving.resilience.load_engine_with_fallback` now wraps).

Engine sources
--------------

Every way the serving tier obtains an engine goes through
:func:`repro.api.sources.resolve_engine_source`:

====================  ====================================================
``snapshot=DIR``      revive a fitted engine from a snapshot directory,
                      with crash-safe sibling fallback (``serve
                      --snapshot``); hot-swap later via ``POST /reload``
``store=FILE``        serving-only engine over a materialized SQLite
                      serving store (``serve --store``): indexed point
                      lookups, O(cache) resident memory, no ``/refresh``
                      or ``/reload`` -- re-export and restart instead
``graph=ClickGraph``  fit fresh at startup (the ``serve --size`` synthetic
                      demo path)
====================  ====================================================

``/stats`` reports the store kind and lookup counters under
``engine.store`` when serving store-backed (``null`` otherwise).

All of it is exercised by deterministic fault injection
(:mod:`repro.core.faults`): named fault points in snapshot IO, shard-fit
workers, delta apply, engine refresh and request handling that are no-ops
until a ``FaultPlan`` is activated.  ``run_load(fault_schedule=...)``
replays scripted fault windows under live traffic -- the chaos gate
(``benchmarks/bench_chaos_serving.py``) asserts zero incorrect responses
and >= 99.9% availability under exactly that.
"""

from repro.serving.holder import EngineHolder
from repro.serving.loadgen import (
    LoadReport,
    RecordedResponse,
    ZipfSchedule,
    http_request,
    request_once,
    run_load,
)
from repro.serving.metrics import LatencyWindow, percentile, summarize_latencies
from repro.serving.resilience import (
    DEGRADED,
    DRAINING,
    HEALTHY,
    CircuitBreaker,
    RetryPolicy,
    classify_health,
    load_engine_with_fallback,
)
from repro.serving.server import (
    RewriteServer,
    ServerConfig,
    delta_from_payload,
    delta_to_payload,
)

__all__ = [
    "EngineHolder",
    "RewriteServer",
    "ServerConfig",
    "CircuitBreaker",
    "RetryPolicy",
    "classify_health",
    "load_engine_with_fallback",
    "HEALTHY",
    "DEGRADED",
    "DRAINING",
    "ZipfSchedule",
    "LoadReport",
    "RecordedResponse",
    "LatencyWindow",
    "percentile",
    "summarize_latencies",
    "http_request",
    "request_once",
    "run_load",
    "delta_from_payload",
    "delta_to_payload",
]
