"""Zipf-skewed load generator for the rewrite server.

Production query traffic is heavily skewed: a few hot queries dominate and
a long cold tail trickles.  Following the cold-start traffic-replay design
of the Adjacent experiment (SNIPPETS.md §3), :class:`ZipfSchedule` assigns
each query a power-law popularity (``weight(rank) = rank ** -alpha``,
alpha ~ 1.2) and samples a replayable request schedule from it, so a load
run exercises exactly the hot/cold mix the serving cache and micro-batcher
are built for.

:func:`run_load` replays a schedule against a running
:class:`~repro.serving.server.RewriteServer` over ``concurrency``
keep-alive connections, records per-request latency and the engine version
that answered, and returns a :class:`LoadReport` with p50/p95/p99
percentiles.  With ``record_responses=True`` every response body is kept
so a consistency checker can verify each one against the exact engine
version that served it -- the zero-downtime gate of
``benchmarks/bench_serving_load.py``.

Everything here is stdlib-only (``asyncio`` + ``json`` + ``random``); the
same minimal HTTP client (:func:`http_request` / :func:`request_once`) is
reused by the tests and the serve demo.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core import faults
from repro.serving.metrics import summarize_latencies

__all__ = [
    "ZipfSchedule",
    "LoadReport",
    "RecordedResponse",
    "http_request",
    "request_once",
    "run_load",
]


# ---------------------------------------------------------------- scheduling


class ZipfSchedule:
    """A replayable, Zipf-skewed query schedule over a fixed query universe.

    ``queries`` are ranked in the given order: the first entry is the
    hottest.  Rank ``r`` (1-based) gets sampling weight ``r ** -alpha``;
    with the default ``alpha=1.2`` (the Adjacent experiment's choice) the
    head of the distribution dominates while every cold-tail query still
    appears eventually -- the mix that makes bounded serving caches and
    duplicate-deduplicating micro-batches earn their keep.
    """

    def __init__(
        self, queries: Sequence[str], alpha: float = 1.2, seed: int = 0
    ) -> None:
        if not queries:
            raise ValueError("ZipfSchedule needs at least one query")
        if alpha < 0:
            raise ValueError(f"alpha must be >= 0, got {alpha}")
        self.queries = list(queries)
        self.alpha = alpha
        self.seed = seed
        self._weights = [
            (rank + 1) ** -alpha for rank in range(len(self.queries))
        ]

    def hot_set(self, fraction: float = 0.1) -> List[str]:
        """The hottest ``fraction`` of the query universe (at least one)."""
        count = max(1, int(len(self.queries) * fraction))
        return self.queries[:count]

    def sample(self, num_requests: int) -> List[str]:
        """A deterministic (seeded) request schedule of ``num_requests`` queries."""
        if num_requests < 0:
            raise ValueError(f"num_requests must be >= 0, got {num_requests}")
        rng = random.Random(self.seed)
        return rng.choices(self.queries, weights=self._weights, k=num_requests)


# -------------------------------------------------------------- HTTP client


async def http_request(
    reader: asyncio.StreamReader,
    writer: asyncio.StreamWriter,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Dict[str, Any]]:
    """One HTTP/1.1 request over an open keep-alive connection.

    Returns ``(status, decoded JSON body)``.  The connection stays usable
    for the next request unless the server answered ``Connection: close``.
    """
    body = json.dumps(payload).encode("utf-8") if payload is not None else b""
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        "Host: localhost\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "\r\n"
    ).encode("latin-1")
    writer.write(head + body)
    await writer.drain()
    status_line = await reader.readline()
    if not status_line:
        raise ConnectionError("server closed the connection")
    status = int(status_line.split()[1])
    content_length = 0
    while True:
        header = await reader.readline()
        if header in (b"\r\n", b"\n", b""):
            break
        name, _, value = header.decode("latin-1").partition(":")
        if name.strip().lower() == "content-length":
            content_length = int(value.strip())
    raw = await reader.readexactly(content_length) if content_length else b""
    return status, json.loads(raw) if raw else {}


async def request_once(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[Dict[str, Any]] = None,
) -> Tuple[int, Dict[str, Any]]:
    """Open a connection, run one request, close -- for admin/control calls."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        return await http_request(reader, writer, method, path, payload)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except Exception:  # noqa: BLE001 -- closing a dead socket is fine
            pass


# ------------------------------------------------------------------ the run


@dataclass(frozen=True)
class RecordedResponse:
    """One load-run response, attributable to a single engine version."""

    query: str
    version: int
    rewrites: Tuple[Tuple[str, int, float], ...]  # (rewrite, rank, score)


@dataclass
class LoadReport:
    """What a :func:`run_load` replay measured.

    Every request lands in exactly one outcome bucket:

    - ``succeeded``: HTTP 200.
    - ``shed``: HTTP 503 -- the server *chose* not to serve (queue full,
      draining, breaker open).  Deliberate load management, not a failure.
    - ``timed_out``: HTTP 504 -- the request exceeded its configured
      deadline budget.  Also deliberate: the server cut it, not lost it.
    - ``failed``: everything else -- 5xx/4xx errors, connection drops,
      malformed bodies.  The chaos gate's availability target counts only
      these against the server.
    """

    requests: int = 0
    succeeded: int = 0
    failed: int = 0
    shed: int = 0
    timed_out: int = 0
    duration_s: float = 0.0
    latencies_ms: List[float] = field(default_factory=list)
    #: engine version -> how many responses it served.
    versions: Dict[int, int] = field(default_factory=dict)
    errors: List[str] = field(default_factory=list)
    responses: List[RecordedResponse] = field(default_factory=list)

    @property
    def throughput_rps(self) -> float:
        return self.succeeded / self.duration_s if self.duration_s > 0 else 0.0

    @property
    def availability(self) -> float:
        """Fraction of *non-deliberate* outcomes that succeeded.

        Sheds (503) and deadline timeouts (504) are the server managing
        load on purpose, so they are excluded from the denominator; only
        genuine failures count against availability.  1.0 when nothing
        remains in the denominator.
        """
        denominator = self.succeeded + self.failed
        return self.succeeded / denominator if denominator else 1.0

    def latency_summary(self) -> Dict[str, float]:
        return summarize_latencies(self.latencies_ms)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready summary (individual responses are not included)."""
        return {
            "requests": self.requests,
            "succeeded": self.succeeded,
            "failed": self.failed,
            "shed": self.shed,
            "timed_out": self.timed_out,
            "availability": self.availability,
            "duration_s": self.duration_s,
            "throughput_rps": self.throughput_rps,
            "latency_ms": self.latency_summary(),
            "versions": {str(version): count for version, count in sorted(self.versions.items())},
            "errors": self.errors[:10],
        }


async def run_load(
    host: str,
    port: int,
    schedule: Sequence[str],
    concurrency: int = 8,
    record_responses: bool = False,
    fault_schedule: Optional[faults.FaultSchedule] = None,
) -> LoadReport:
    """Replay ``schedule`` against a rewrite server and measure latency.

    ``concurrency`` workers each hold one keep-alive connection and pull
    the next query from the shared schedule, so the offered load mirrors
    ``concurrency`` independent clients.  Every outcome is classified (see
    :class:`LoadReport`): 503s are sheds, 504s are deadline timeouts,
    anything else non-200 (or a dropped connection) is a failure, after
    which the worker reconnects and keeps going -- the zero-downtime gate
    asserts ``failed == 0``, the chaos gate asserts ``availability``.

    ``fault_schedule`` replays a scripted
    :class:`~repro.core.faults.FaultSchedule` while the load is in flight:
    each event (de)activates a process-wide fault plan at its ``at_s``
    offset from the start of the run.  Whatever plan was active before the
    run is restored afterwards, so fault windows never leak out of the
    replay.  This only injects into a server running in *this* process.
    """
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    report = LoadReport(requests=len(schedule))
    queue: "asyncio.Queue[str]" = asyncio.Queue()
    for query in schedule:
        queue.put_nowait(query)

    async def replay_faults(events: Sequence[faults.FaultEvent]) -> None:
        run_started = time.perf_counter()
        for event in events:
            delay = event.at_s - (time.perf_counter() - run_started)
            if delay > 0:
                await asyncio.sleep(delay)
            faults.activate(event.plan)

    async def worker() -> None:
        reader: Optional[asyncio.StreamReader] = None
        writer: Optional[asyncio.StreamWriter] = None

        async def close() -> None:
            nonlocal reader, writer
            if writer is not None:
                writer.close()
                try:
                    await writer.wait_closed()
                except Exception:  # noqa: BLE001
                    pass
            reader = writer = None

        try:
            while True:
                try:
                    query = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                started = time.perf_counter()
                try:
                    if reader is None or writer is None:
                        reader, writer = await asyncio.open_connection(host, port)
                    status, payload = await http_request(
                        reader, writer, "POST", "/rewrite", {"query": query}
                    )
                except Exception as exc:  # noqa: BLE001 -- recorded, not fatal
                    report.failed += 1
                    report.errors.append(f"{query!r}: {type(exc).__name__}: {exc}")
                    await close()
                    continue
                elapsed_ms = (time.perf_counter() - started) * 1000.0
                if status == 503:
                    report.shed += 1
                    continue
                if status == 504:
                    report.timed_out += 1
                    continue
                if status != 200:
                    report.failed += 1
                    report.errors.append(
                        f"{query!r}: HTTP {status}: {payload.get('error', '?')}"
                    )
                    continue
                report.succeeded += 1
                report.latencies_ms.append(elapsed_ms)
                version = int(payload["version"])
                report.versions[version] = report.versions.get(version, 0) + 1
                if record_responses:
                    report.responses.append(
                        RecordedResponse(
                            query=query,
                            version=version,
                            rewrites=tuple(
                                (row["rewrite"], row["rank"], row["score"])
                                for row in payload["rewrites"]
                            ),
                        )
                    )
        finally:
            await close()

    started = time.perf_counter()
    replay_task: Optional["asyncio.Task[None]"] = None
    previous_plan = faults.active_plan()
    if fault_schedule is not None and fault_schedule.events:
        replay_task = asyncio.get_running_loop().create_task(
            replay_faults(fault_schedule.events)
        )
    try:
        await asyncio.gather(*(worker() for _ in range(concurrency)))
    finally:
        if replay_task is not None:
            replay_task.cancel()
            try:
                await replay_task
            except asyncio.CancelledError:
                pass
            faults.activate(previous_plan)
    report.duration_s = time.perf_counter() - started
    return report
