"""Copy-on-write engine publication: the zero-downtime refresh primitive.

:class:`EngineHolder` owns the *current* :class:`~repro.api.engine.
RewriteEngine` of a serving process and the discipline for replacing it.
Readers grab an immutable ``(engine, version)`` pair with :meth:`current`
and serve an entire request/batch against that one engine; writers build a
fully refreshed replacement **off to the side** -- on a :meth:`~repro.api.
engine.RewriteEngine.copy`, or loaded from a snapshot -- and publish it
with a single reference assignment.  Traffic therefore never blocks on a
refit and never observes partial refresh state: every response is
consistent with exactly one engine version, pre- or post-swap.

This is the in-process half of the offline-fit / online-serve split the
paper deploys (Section 9.3) and the transactional/analytical isolation
argument of Polynesia (PAPERS.md): the analytical work (the SimRank
fixpoint) runs on its own copy of the data, and the serving side only ever
sees published, complete results.

The holder is thread-safe: reads are lock-free (a single attribute load),
and the mutating operations (:meth:`swap`, :meth:`refresh`, :meth:`reload`)
serialize on an internal lock so two concurrent refreshes cannot both
capture the same base engine and silently drop one delta.
"""

from __future__ import annotations

import threading
import time
from pathlib import Path
from typing import Callable, List, Optional, Tuple, Union

from repro.api.engine import RewriteEngine
from repro.graph.delta import ClickGraphDelta

__all__ = ["EngineHolder"]

PathLike = Union[str, Path]


class EngineHolder:
    """Atomic publication point for the engine a serving process reads.

    ``holder.current()`` is the serving-side API: it returns the engine and
    its monotonically increasing version number as one immutable tuple, so
    a reader can attribute every result it produces to a single engine
    state even while swaps happen concurrently.

    ``refresh(delta)`` is the writer-side API: it copies the current
    engine (:meth:`RewriteEngine.copy` -- graph, scores and cache all
    duplicated), applies :meth:`RewriteEngine.refresh` to the *copy* and
    publishes it.  The engine readers hold is never mutated; a failed
    refresh publishes nothing.  ``reload(path)`` swaps in an engine revived
    from a snapshot directory, the cross-process variant of the same move.

    Every *attempted* publish leaves a trace: failures increment
    :attr:`publish_failures` / :attr:`consecutive_failures` and record
    :attr:`last_error` + :attr:`last_failure_at`; successes reset the
    consecutive count and stamp :attr:`published_at`, from which
    :attr:`staleness_seconds` measures how old the served engine is.  The
    circuit breaker and ``/stats`` read this ledger instead of guessing.
    """

    def __init__(self, engine: RewriteEngine, version: int = 1) -> None:
        #: The one mutable cell: readers load it without locking, writers
        #: replace it wholesale.  Packing (engine, version) into a single
        #: tuple makes the pair itself atomic -- a reader can never see a
        #: new engine with a stale version or vice versa.
        self._current: Tuple[RewriteEngine, int] = (engine, version)
        self._mutate = threading.Lock()
        #: Swap listeners (version, engine) -> None, called after publish.
        self._listeners: List[Callable[[int, RewriteEngine], None]] = []
        #: Publish-outcome ledger.  Guarded by its own lock, not ``_mutate``:
        #: a *failed* reload records its outcome without ever taking the swap
        #: lock, and readers (/stats, the circuit breaker) must not block
        #: behind an in-flight refit.  The swap counters live here too, for
        #: the same reason: /stats reads them.
        self._outcome = threading.Lock()
        #: guarded-by: _outcome
        self._swaps = 0
        #: guarded-by: _outcome
        self._last_swap_seconds: Optional[float] = None
        #: guarded-by: _outcome
        self._publish_failures = 0
        #: guarded-by: _outcome
        self._consecutive_failures = 0
        #: guarded-by: _outcome
        self._last_error: Optional[str] = None
        #: guarded-by: _outcome
        self._last_failure_at: Optional[float] = None
        #: guarded-by: _outcome
        self._published_at: float = time.time()

    # ---------------------------------------------------------------- reading

    @property
    def engine(self) -> RewriteEngine:
        """The currently published engine (lock-free read)."""
        return self._current[0]

    @property
    def version(self) -> int:
        """Version number of the currently published engine."""
        return self._current[1]

    def current(self) -> Tuple[RewriteEngine, int]:
        """The published ``(engine, version)`` pair, read atomically.

        Serve a whole request (or micro-batch) against one ``current()``
        result: re-reading mid-request could cross a swap and mix two
        engine versions in one response.
        """
        return self._current

    # --------------------------------------------------------------- swapping

    def swap(self, engine: RewriteEngine) -> int:
        """Publish ``engine`` as the new current engine; returns its version.

        The replacement must be fully built before calling -- the whole
        point of the copy-on-write discipline is that a swap is one
        reference assignment, never an in-place mutation readers could
        observe halfway through.
        """
        with self._mutate:
            return self._publish(engine)

    def refresh(self, delta: ClickGraphDelta) -> int:
        """Refresh a *copy* of the current engine over ``delta`` and publish it.

        Returns the new version.  Concurrent ``refresh`` calls serialize:
        each captures the engine published by the previous one, so no delta
        is lost.  Readers keep serving the old engine for the entire
        duration of the copy + warm refit and switch only at the final
        atomic publish.  If the refit raises, nothing is published and the
        error propagates.
        """
        with self._mutate:
            started = time.perf_counter()
            try:
                candidate = self._current[0].copy()
                candidate.refresh(delta)
                version = self._publish(candidate)
            except Exception as exc:
                self._record_failure(exc)
                raise
            with self._outcome:
                self._last_swap_seconds = time.perf_counter() - started
            return version

    def reload(self, path: PathLike, precompute: bool = False) -> int:
        """Publish an engine revived from disk; returns its version.

        ``path`` may be a snapshot *directory* or a SQLite serving-store
        *file* (:meth:`~repro.api.engine.RewriteEngine.export_store`) --
        files open store-backed.  The engine is loaded (and optionally
        pre-warmed over its recorded query universe) entirely before the
        swap, so serving never reads a half-loaded engine.  The load
        itself runs outside the swap lock -- it touches no shared state --
        keeping concurrent ``refresh`` calls unblocked until the publish.
        """
        started = time.perf_counter()
        try:
            candidate = (
                RewriteEngine.from_store(path)
                if Path(path).is_file()
                else RewriteEngine.load(path)
            )
            if precompute:
                candidate.precompute()
        except Exception as exc:
            self._record_failure(exc)
            raise
        with self._mutate:
            version = self._publish(candidate)
            with self._outcome:
                self._last_swap_seconds = time.perf_counter() - started
            return version

    def _publish(self, engine: RewriteEngine) -> int:
        """Single point of publication (caller holds the mutate lock)."""
        version = self._current[1] + 1
        self._current = (engine, version)
        with self._outcome:
            self._swaps += 1
            self._consecutive_failures = 0
            self._published_at = time.time()
        for listener in self._listeners:
            listener(version, engine)
        return version

    def _record_failure(self, exc: BaseException) -> None:
        """Ledger entry for a publish attempt that raised instead of swapping."""
        with self._outcome:
            self._publish_failures += 1
            self._consecutive_failures += 1
            self._last_error = f"{type(exc).__name__}: {exc}"
            self._last_failure_at = time.time()

    # ------------------------------------------------------------------ hooks

    def add_swap_listener(
        self, listener: Callable[[int, RewriteEngine], None]
    ) -> None:
        """Register ``listener(version, engine)`` to run after each publish.

        Called synchronously under the swap lock, in registration order --
        keep listeners cheap (version bookkeeping, metrics).  The serving
        benchmark uses this to record every published engine so responses
        can later be verified against the exact version that served them.
        """
        self._listeners.append(listener)

    # ------------------------------------------------------------------ stats

    @property
    def swaps(self) -> int:
        """How many engines have been published after the initial one."""
        with self._outcome:
            return self._swaps

    @property
    def last_swap_seconds(self) -> Optional[float]:
        """Wall-clock duration of the most recent refresh/reload, if any."""
        with self._outcome:
            return self._last_swap_seconds

    @property
    def publish_failures(self) -> int:
        """Total publish attempts (refresh/reload) that raised."""
        with self._outcome:
            return self._publish_failures

    @property
    def consecutive_failures(self) -> int:
        """Failed publish attempts since the last successful publish."""
        with self._outcome:
            return self._consecutive_failures

    @property
    def last_error(self) -> Optional[str]:
        """``"ExcType: message"`` of the most recent publish failure, if any.

        Deliberately *not* cleared by a later success: /stats keeps showing
        what last went wrong, and ``consecutive_failures == 0`` already says
        the holder has recovered since.
        """
        with self._outcome:
            return self._last_error

    @property
    def last_failure_at(self) -> Optional[float]:
        """``time.time()`` of the most recent publish failure, if any."""
        with self._outcome:
            return self._last_failure_at

    @property
    def published_at(self) -> float:
        """``time.time()`` when the current engine was published."""
        with self._outcome:
            return self._published_at

    @property
    def staleness_seconds(self) -> float:
        """Age of the served engine: seconds since the last successful publish."""
        with self._outcome:
            return max(0.0, time.time() - self._published_at)

    def __repr__(self) -> str:
        engine, version = self._current
        return f"EngineHolder(version={version}, swaps={self.swaps}, engine={engine!r})"
