"""Asyncio HTTP server for online query rewriting with zero-downtime refresh.

The paper's deployment (Section 9.3) computes rewrites offline and serves
them per search request; this module is the online half as an actual
network service, stdlib-only (``asyncio`` streams plus a deliberately
minimal HTTP/1.1 implementation -- request line, headers, Content-Length
bodies, keep-alive).

Request flow::

    client -> POST /rewrite -> bounded queue -> micro-batcher
           -> (semaphore slot) -> executor thread: engine.rewrite_batch
           -> futures resolved -> JSON response (with the engine version)

Single-query requests arriving close together are coalesced into one
executor batch (``ServerConfig.max_batch_size`` / ``batch_linger_ms``), so
duplicate-heavy traffic hits the engine's per-batch dedup and the serving
cache instead of paying one executor hop per request.  Each request's
response is computed against **one** :class:`~repro.serving.holder.
EngineHolder` snapshot -- an ``(engine, version)`` pair read atomically --
so refreshes running concurrently can never produce a torn response that
mixes two engine versions.

Endpoints (all request/response bodies are JSON):

``POST /rewrite``
    ``{"query": "camera"}`` -> the filtered ranked rewrites + engine version.
``POST /rewrite_batch``
    ``{"queries": [...]}`` -> aligned results, all from one engine version.
``POST /refresh``
    A click-graph delta (see :func:`delta_from_payload`); applies it via
    the holder's copy-on-write refresh in a background executor -- traffic
    keeps being served by the old engine until the atomic swap.
``POST /reload``
    ``{"path": "engines/today"}`` -> hot-load a snapshot directory and swap.
``GET /healthz``
    Health state (``healthy`` / ``degraded`` / ``draining``), current
    engine version + staleness age, circuit-breaker state.
``GET /stats``
    Serving counters, queue/batch state, latency percentiles, cache info,
    and the resilience ledger (publish failures, retries, breaker).

Shutdown is graceful: :meth:`RewriteServer.stop` stops accepting, lets the
queued and in-flight requests finish (bounded by
``ServerConfig.drain_timeout_s``), then tears down the connections and
executors.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import json
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.api.engine import RewriteEngine
from repro.api.snapshot import SnapshotError
from repro.store import StoreError
from repro.core import faults
from repro.core.parallel import available_cpu_count
from repro.core.rewriter import RewriteList
from repro.graph.click_graph import EdgeStats
from repro.graph.delta import ClickGraphDelta
from repro.serving.holder import EngineHolder
from repro.serving.metrics import LatencyWindow
from repro.serving.resilience import CircuitBreaker, RetryPolicy, classify_health

__all__ = [
    "ServerConfig",
    "RewriteServer",
    "delta_from_payload",
    "delta_to_payload",
]

Node = Hashable


@dataclass(frozen=True)
class ServerConfig:
    """Knobs of the serving process.

    Attributes
    ----------
    host / port:
        Listen address; port ``0`` binds an ephemeral port (read the real
        one from :attr:`RewriteServer.address` -- the tests and benchmarks
        run this way so parallel runs never collide).
    max_batch_size:
        Most requests coalesced into one executor micro-batch.
    batch_linger_ms:
        How long the batcher waits for more requests after the first one
        before dispatching a partial batch.  ``0`` dispatches whatever is
        already queued without waiting (lowest latency, smallest batches).
    max_concurrency:
        Micro-batches allowed in executor threads at once (the semaphore
        bound); also sizes the serving thread pool.  ``None`` (the default)
        sizes the pool to the CPUs actually *available* to this process
        (cgroup/affinity-aware, never below 2), so containers pinned to a
        CPU subset are not oversubscribed.
    queue_size:
        Bound of the request queue; requests beyond it are rejected with
        HTTP 503 instead of growing an unbounded backlog.
    drain_timeout_s:
        How long :meth:`RewriteServer.stop` waits for queued + in-flight
        requests to finish before force-closing.
    max_request_bytes:
        Request bodies larger than this are rejected with HTTP 413.
    latency_window:
        How many recent rewrite requests the server-side latency
        percentiles in ``/stats`` are computed over.
    request_timeout_s:
        Per-request deadline for ``/rewrite`` and ``/rewrite_batch``.
        A request whose batch has not resolved within the budget gets
        HTTP 504 and its future is cancelled; the engine itself is only
        ever *read* by serving, so a timed-out request can never leave
        state inconsistent.  ``None`` (the default) disables deadlines.
    refresh_retries / refresh_backoff_s / refresh_backoff_max_s:
        Transient ``/refresh`` and ``/reload`` failures are retried this
        many times with exponential backoff (seeded jitter, see
        :class:`~repro.serving.resilience.RetryPolicy`) before the request
        fails.  Client errors (bad delta: 400) and corrupt snapshots or
        store files (:class:`SnapshotError` / :class:`StoreError`: 500)
        are never retried.
    breaker_threshold / breaker_reset_s:
        Circuit breaker over the publish path: after ``breaker_threshold``
        consecutive transient failures, further ``/refresh``/``/reload``
        requests are shed with 503 (the stale engine keeps serving) until
        ``breaker_reset_s`` elapses and a half-open probe succeeds.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch_size: int = 32
    batch_linger_ms: float = 1.0
    max_concurrency: Optional[int] = None
    queue_size: int = 1024
    drain_timeout_s: float = 10.0
    max_request_bytes: int = 1 << 20
    latency_window: int = 4096
    request_timeout_s: Optional[float] = None
    refresh_retries: int = 2
    refresh_backoff_s: float = 0.05
    refresh_backoff_max_s: float = 1.0
    breaker_threshold: int = 3
    breaker_reset_s: float = 5.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {self.max_batch_size}")
        if self.batch_linger_ms < 0:
            raise ValueError(f"batch_linger_ms must be >= 0, got {self.batch_linger_ms}")
        if self.max_concurrency is not None and self.max_concurrency < 1:
            raise ValueError(f"max_concurrency must be >= 1, got {self.max_concurrency}")
        if self.queue_size < 1:
            raise ValueError(f"queue_size must be >= 1, got {self.queue_size}")
        if self.drain_timeout_s < 0:
            raise ValueError(f"drain_timeout_s must be >= 0, got {self.drain_timeout_s}")
        if self.latency_window < 1:
            raise ValueError(f"latency_window must be >= 1, got {self.latency_window}")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0 or None, got {self.request_timeout_s}"
            )
        if self.refresh_retries < 0:
            raise ValueError(
                f"refresh_retries must be >= 0, got {self.refresh_retries}"
            )
        if self.refresh_backoff_s < 0 or self.refresh_backoff_max_s < 0:
            raise ValueError(
                "refresh_backoff_s and refresh_backoff_max_s must be >= 0, got "
                f"{self.refresh_backoff_s} / {self.refresh_backoff_max_s}"
            )
        if self.breaker_threshold < 1:
            raise ValueError(
                f"breaker_threshold must be >= 1, got {self.breaker_threshold}"
            )
        if self.breaker_reset_s <= 0:
            raise ValueError(
                f"breaker_reset_s must be > 0, got {self.breaker_reset_s}"
            )

    def resolved_concurrency(self) -> int:
        """The effective pool size: explicit, else sized from available CPUs."""
        if self.max_concurrency is not None:
            return self.max_concurrency
        return max(2, available_cpu_count())


# --------------------------------------------------------------- wire format


def _stats_from_payload(edge: Dict[str, Any]) -> EdgeStats:
    kwargs: Dict[str, Any] = {
        "impressions": int(edge["impressions"]),
        "clicks": int(edge["clicks"]),
    }
    if "expected_click_rate" in edge:
        kwargs["expected_click_rate"] = float(edge["expected_click_rate"])
    return EdgeStats(**kwargs)


def delta_from_payload(payload: Dict[str, Any]) -> ClickGraphDelta:
    """Decode the ``/refresh`` JSON body into a :class:`ClickGraphDelta`.

    Shape (all three groups optional)::

        {"added":   [{"query": q, "ad": a, "impressions": i, "clicks": c,
                      "expected_click_rate": r?}, ...],
         "updated": [... same shape, new statistics ...],
         "removed": [{"query": q, "ad": a}, ...]}
    """
    added = tuple(
        (edge["query"], edge["ad"], _stats_from_payload(edge))
        for edge in payload.get("added", ())
    )
    updated = tuple(
        (edge["query"], edge["ad"], _stats_from_payload(edge))
        for edge in payload.get("updated", ())
    )
    removed = tuple((edge["query"], edge["ad"]) for edge in payload.get("removed", ()))
    return ClickGraphDelta(added=added, updated=updated, removed=removed)


def delta_to_payload(delta: ClickGraphDelta) -> Dict[str, Any]:
    """Encode a delta as the ``/refresh`` JSON body (client-side helper)."""

    def edge_payload(query: Node, ad: Node, stats: EdgeStats) -> Dict[str, Any]:
        return {
            "query": query,
            "ad": ad,
            "impressions": stats.impressions,
            "clicks": stats.clicks,
            "expected_click_rate": stats.expected_click_rate,
        }

    return {
        "added": [edge_payload(*entry) for entry in delta.added],
        "updated": [edge_payload(*entry) for entry in delta.updated],
        "removed": [{"query": query, "ad": ad} for query, ad in delta.removed],
    }


def _rewrites_payload(result: RewriteList) -> List[Dict[str, Any]]:
    return [
        {"rewrite": rewrite.rewrite, "rank": rewrite.rank, "score": rewrite.score}
        for rewrite in result.rewrites
    ]


# ------------------------------------------------------------ HTTP plumbing


class _HttpError(Exception):
    """A request that maps directly to an HTTP error response."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


@dataclass
class _Request:
    method: str
    path: str
    headers: Dict[str, str]
    body: bytes

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "keep-alive").lower() != "close"

    def json(self) -> Dict[str, Any]:
        if not self.body:
            return {}
        try:
            payload = json.loads(self.body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise _HttpError(400, "request body must be a JSON object")
        return payload


@dataclass
class _WorkItem:
    """One request's queries, answered as a unit against one engine version."""

    queries: Tuple[Node, ...]
    future: "asyncio.Future[Tuple[int, List[List[Dict[str, Any]]]]]"
    enqueued_at: float = 0.0


@dataclass
class _Counters:
    requests: int = 0
    responses: Dict[int, int] = field(default_factory=dict)
    endpoints: Dict[str, int] = field(default_factory=dict)
    rewrites_served: int = 0
    batches: int = 0
    batched_requests: int = 0
    max_batch: int = 0
    rejected_queue_full: int = 0
    queue_high_water: int = 0
    refreshes: int = 0
    reloads: int = 0
    timeouts: int = 0
    publish_retries: int = 0
    rejected_breaker_open: int = 0


class RewriteServer:
    """The asyncio serving process around an :class:`EngineHolder`.

    Usage::

        holder = EngineHolder(engine)
        server = RewriteServer(holder, ServerConfig(port=0))
        await server.start()
        host, port = server.address
        ...
        await server.stop()        # graceful: drains in-flight requests

    or as an async context manager::

        async with RewriteServer(holder) as server:
            ...

    The server never blocks traffic on a refit: ``/refresh`` and
    ``/reload`` run in a single-worker admin executor and publish through
    the holder's copy-on-write swap, while rewrite micro-batches keep
    executing against the previously published engine.
    """

    def __init__(
        self, holder: EngineHolder, config: Optional[ServerConfig] = None
    ) -> None:
        self._holder = holder
        self._config = config or ServerConfig()
        self._server: Optional[asyncio.AbstractServer] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._queue: Optional["asyncio.Queue[_WorkItem]"] = None
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._dispatcher: Optional["asyncio.Task[None]"] = None
        self._serve_executor: Optional[ThreadPoolExecutor] = None
        self._admin_executor: Optional[ThreadPoolExecutor] = None
        self._batch_tasks: set = set()
        self._conn_tasks: set = set()
        self._pending: set = set()
        self._draining = False
        self._counters = _Counters()
        self._latency = LatencyWindow(self._config.latency_window)
        self._started_at: Optional[float] = None
        self._breaker = CircuitBreaker(
            threshold=self._config.breaker_threshold,
            reset_s=self._config.breaker_reset_s,
        )
        self._retry = RetryPolicy(
            retries=self._config.refresh_retries,
            backoff_s=self._config.refresh_backoff_s,
            max_backoff_s=self._config.refresh_backoff_max_s,
        )

    # -------------------------------------------------------------- lifecycle

    @property
    def config(self) -> ServerConfig:
        return self._config

    @property
    def holder(self) -> EngineHolder:
        return self._holder

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` -- the real port even when configured 0."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        name = self._server.sockets[0].getsockname()
        return name[0], name[1]

    async def start(self) -> "RewriteServer":
        """Bind the listen socket and start the micro-batch dispatcher."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._queue = asyncio.Queue(maxsize=self._config.queue_size)
        concurrency = self._config.resolved_concurrency()
        self._semaphore = asyncio.Semaphore(concurrency)
        self._serve_executor = ThreadPoolExecutor(
            max_workers=concurrency,
            thread_name_prefix="repro-serve",
        )
        # Refresh/reload get their own single worker: a long refit must not
        # occupy a serving slot, and a saturated serving pool must not
        # delay the swap that would relieve it.
        self._admin_executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-admin"
        )
        self._draining = False
        self._server = await asyncio.start_server(
            self._handle_connection, host=self._config.host, port=self._config.port
        )
        self._dispatcher = self._loop.create_task(self._dispatch_loop())
        self._started_at = self._loop.time()
        return self

    async def stop(self, drain_timeout_s: Optional[float] = None) -> None:
        """Graceful shutdown: stop accepting, drain, then tear down.

        New requests are rejected with 503 the moment draining starts;
        queued and in-flight requests are given ``drain_timeout_s``
        (default: the config's) to finish, after which any survivors are
        failed and the connections closed.
        """
        if self._server is None:
            return
        timeout = (
            self._config.drain_timeout_s if drain_timeout_s is None else drain_timeout_s
        )
        self._draining = True
        self._server.close()
        await self._server.wait_closed()
        assert self._loop is not None and self._queue is not None
        deadline = self._loop.time() + timeout
        while (
            not self._queue.empty() or self._batch_tasks or self._pending
        ) and self._loop.time() < deadline:
            await asyncio.sleep(0.005)
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._dispatcher
        # Fail whatever the drain window did not cover, so no client hangs.
        for fut in list(self._pending):
            if not fut.done():
                fut.set_exception(_HttpError(503, "server shutting down"))
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)
        if self._serve_executor is not None:
            self._serve_executor.shutdown(wait=True)
        if self._admin_executor is not None:
            self._admin_executor.shutdown(wait=True)
        self._server = None
        self._dispatcher = None

    async def __aenter__(self) -> "RewriteServer":
        return await self.start()

    async def __aexit__(self, *exc_info: object) -> None:
        await self.stop()

    # ---------------------------------------------------------- micro-batcher

    async def _submit(self, queries: Sequence[Node]) -> Tuple[int, List[List[Dict[str, Any]]]]:
        """Enqueue one request's queries; resolves to (version, per-query rows)."""
        assert self._loop is not None and self._queue is not None
        if self._draining:
            raise _HttpError(503, "server is draining")
        item = _WorkItem(
            queries=tuple(queries),
            future=self._loop.create_future(),
            enqueued_at=self._loop.time(),
        )
        try:
            self._queue.put_nowait(item)
        except asyncio.QueueFull:
            self._counters.rejected_queue_full += 1
            raise _HttpError(503, "request queue is full") from None
        self._counters.queue_high_water = max(
            self._counters.queue_high_water, self._queue.qsize()
        )
        self._pending.add(item.future)
        item.future.add_done_callback(self._pending.discard)
        timeout = self._config.request_timeout_s
        if timeout is None:
            return await item.future
        try:
            # wait_for cancels the future on timeout; _run_batch checks
            # ``future.done()`` before resolving, so a timed-out request is
            # simply skipped when its batch completes.  Serving only ever
            # *reads* the published engine -- a deadline can cut a response
            # short but never leave engine state inconsistent.
            return await asyncio.wait_for(item.future, timeout)
        except asyncio.TimeoutError:
            self._counters.timeouts += 1
            raise _HttpError(
                504, f"request deadline of {timeout}s exceeded"
            ) from None

    async def _dispatch_loop(self) -> None:
        """Coalesce queued requests into micro-batches and run them."""
        assert self._loop is not None and self._queue is not None
        assert self._semaphore is not None
        linger_s = self._config.batch_linger_ms / 1000.0
        while True:
            batch = [await self._queue.get()]
            if linger_s > 0:
                deadline = self._loop.time() + linger_s
                while len(batch) < self._config.max_batch_size:
                    remaining = deadline - self._loop.time()
                    if remaining <= 0:
                        break
                    try:
                        batch.append(
                            await asyncio.wait_for(self._queue.get(), remaining)
                        )
                    except asyncio.TimeoutError:
                        break
            else:
                while len(batch) < self._config.max_batch_size:
                    try:
                        batch.append(self._queue.get_nowait())
                    except asyncio.QueueEmpty:
                        break
            # The semaphore is the concurrency bound: at most
            # max_concurrency batches in executor threads at once; further
            # batches wait here, applying backpressure through the queue.
            await self._semaphore.acquire()
            task = self._loop.create_task(self._run_batch(batch))
            self._batch_tasks.add(task)
            task.add_done_callback(self._batch_tasks.discard)

    async def _run_batch(self, batch: List[_WorkItem]) -> None:
        assert self._loop is not None and self._semaphore is not None
        try:
            # One atomic holder read per batch: every request in the batch
            # is answered by this engine version, torn responses impossible.
            engine, version = self._holder.current()
            unique = list(
                dict.fromkeys(query for item in batch for query in item.queries)
            )
            try:
                rows = await self._loop.run_in_executor(
                    self._serve_executor, self._compute, engine, unique
                )
            except Exception as exc:  # noqa: BLE001 -- forwarded to clients
                for item in batch:
                    if not item.future.done():
                        item.future.set_exception(
                            _HttpError(500, f"rewrite failed: {exc}")
                        )
                return
            self._counters.batches += 1
            self._counters.batched_requests += len(batch)
            self._counters.max_batch = max(self._counters.max_batch, len(batch))
            self._counters.rewrites_served += len(unique)
            for item in batch:
                if not item.future.done():
                    item.future.set_result(
                        (version, [rows[query] for query in item.queries])
                    )
        finally:
            self._semaphore.release()

    @staticmethod
    def _compute(
        engine: RewriteEngine, unique: List[Node]
    ) -> Dict[Node, List[Dict[str, Any]]]:
        """Executor-thread body: serve the deduplicated batch off one engine."""
        faults.fire("serving.compute")
        results = engine.rewrite_batch(unique)
        return {
            query: _rewrites_payload(result) for query, result in zip(unique, results)
        }

    # ------------------------------------------------------------- connection

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except _HttpError as exc:
                    await self._write_response(
                        writer, exc.status, {"error": exc.message}, keep_alive=False
                    )
                    break
                if request is None:
                    break
                status, payload = await self._respond(request)
                keep_alive = request.keep_alive and not self._draining
                await self._write_response(writer, status, payload, keep_alive)
                if not keep_alive:
                    break
        except (
            asyncio.IncompleteReadError,
            ConnectionResetError,
            BrokenPipeError,
        ):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            writer.close()
            with contextlib.suppress(Exception):
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader) -> Optional[_Request]:
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _ = line.decode("latin-1").split()
        except ValueError:
            raise _HttpError(400, "malformed request line") from None
        headers: Dict[str, str] = {}
        while True:
            header = await reader.readline()
            if header in (b"\r\n", b"\n", b""):
                break
            name, _, value = header.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", "0") or 0)
        if length > self._config.max_request_bytes:
            raise _HttpError(413, "request body too large")
        body = await reader.readexactly(length) if length else b""
        return _Request(method=method, path=path, headers=headers, body=body)

    async def _respond(self, request: _Request) -> Tuple[int, Dict[str, Any]]:
        self._counters.requests += 1
        self._counters.endpoints[request.path] = (
            self._counters.endpoints.get(request.path, 0) + 1
        )
        assert self._loop is not None
        started = self._loop.time()
        try:
            payload = await self._route(request)
            status = 200
        except _HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        except Exception as exc:  # noqa: BLE001 -- the server must not die
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        if request.path in ("/rewrite", "/rewrite_batch") and status == 200:
            self._latency.record((self._loop.time() - started) * 1000.0)
        self._counters.responses[status] = self._counters.responses.get(status, 0) + 1
        return status, payload

    async def _route(self, request: _Request) -> Dict[str, Any]:
        faults.fire("serving.request")
        handlers = {
            ("POST", "/rewrite"): self._handle_rewrite,
            ("POST", "/rewrite_batch"): self._handle_rewrite_batch,
            ("POST", "/refresh"): self._handle_refresh,
            ("POST", "/reload"): self._handle_reload,
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/stats"): self._handle_stats,
        }
        handler = handlers.get((request.method, request.path))
        if handler is None:
            known_paths = {path for _, path in handlers}
            if request.path in known_paths:
                raise _HttpError(405, f"method {request.method} not allowed")
            raise _HttpError(404, f"unknown endpoint {request.path}")
        return await handler(request)

    # -------------------------------------------------------------- endpoints

    async def _handle_rewrite(self, request: _Request) -> Dict[str, Any]:
        payload = request.json()
        query = payload.get("query")
        if not isinstance(query, str) or not query:
            raise _HttpError(400, "body must carry a non-empty string 'query'")
        version, rows = await self._submit((query,))
        return {"version": version, "query": query, "rewrites": rows[0]}

    async def _handle_rewrite_batch(self, request: _Request) -> Dict[str, Any]:
        payload = request.json()
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise _HttpError(400, "body must carry a non-empty list 'queries'")
        if not all(isinstance(query, str) and query for query in queries):
            raise _HttpError(400, "every entry of 'queries' must be a non-empty string")
        version, rows = await self._submit(queries)
        return {
            "version": version,
            "results": [
                {"query": query, "rewrites": row} for query, row in zip(queries, rows)
            ],
        }

    async def _publish_with_resilience(
        self, kind: str, attempt: Callable[[], int]
    ) -> int:
        """Run a publish attempt in the admin executor, behind retry + breaker.

        ``attempt`` is a zero-argument callable (``holder.refresh``/
        ``holder.reload`` closure) whose failure taxonomy decides the
        response:

        - ``KeyError``/``ValueError``: the client's input does not match
          the served state -- 400, never retried, breaker untouched.
        - :class:`SnapshotError` / :class:`StoreError`: the pointed-at
          snapshot directory or serving-store file is corrupt or
          mid-write -- 500 with the old engine still published, never
          retried (the bytes will not get better on their own).
        - anything else is transient: each failed attempt is recorded
          against the breaker and retried after a backoff, aborting early
          if the breaker opens mid-request.

        When the breaker refuses the request outright, the client gets a
        503 that names the stale-but-serving engine version -- shed, not
        failed: traffic is unaffected.
        """
        assert self._loop is not None
        if not self._breaker.allow():
            self._counters.rejected_breaker_open += 1
            raise _HttpError(
                503,
                f"{kind} rejected: publish circuit breaker is "
                f"{self._breaker.state}; still serving engine version "
                f"{self._holder.version}",
            )
        delays = self._retry.delays()
        while True:
            try:
                version = await self._loop.run_in_executor(
                    self._admin_executor, attempt
                )
            except (KeyError, ValueError) as exc:
                # A delta that does not match the served graph state (edge
                # already present / absent) is a client error, not a crash.
                self._breaker.release()
                raise _HttpError(400, f"delta rejected: {exc}") from exc
            except SnapshotError as exc:
                self._breaker.release()
                raise _HttpError(500, f"snapshot rejected: {exc}") from exc
            except StoreError as exc:
                self._breaker.release()
                raise _HttpError(500, f"store rejected: {exc}") from exc
            except Exception as exc:  # noqa: BLE001 -- transient publish failure
                self._breaker.record_failure()
                delay = next(delays, None)
                if delay is None or not self._breaker.allow():
                    raise _HttpError(
                        500, f"{kind} failed: {type(exc).__name__}: {exc}"
                    ) from exc
                self._counters.publish_retries += 1
                await asyncio.sleep(delay)
            else:
                self._breaker.record_success()
                return version

    async def _handle_refresh(self, request: _Request) -> Dict[str, Any]:
        try:
            delta = delta_from_payload(request.json())
        except _HttpError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise _HttpError(400, f"invalid delta payload: {exc}") from exc
        assert self._loop is not None
        started = self._loop.time()
        version = await self._publish_with_resilience(
            "refresh", lambda: self._holder.refresh(delta)
        )
        self._counters.refreshes += 1
        info = self._holder.engine.last_refresh
        return {
            "version": version,
            "seconds": self._loop.time() - started,
            "refresh": dataclasses.asdict(info) if info is not None else None,
        }

    async def _handle_reload(self, request: _Request) -> Dict[str, Any]:
        payload = request.json()
        path = payload.get("path")
        if not isinstance(path, str) or not path:
            raise _HttpError(400, "body must carry a non-empty string 'path'")
        precompute = bool(payload.get("precompute", False))
        assert self._loop is not None
        started = self._loop.time()

        def _reload() -> int:
            return self._holder.reload(path, precompute=precompute)

        version = await self._publish_with_resilience("reload", _reload)
        self._counters.reloads += 1
        return {
            "version": version,
            "seconds": self._loop.time() - started,
            "path": path,
        }

    @property
    def health(self) -> str:
        """``healthy`` / ``degraded`` / ``draining`` (see :func:`classify_health`).

        Degraded means the stale engine is still answering but the refresh
        path is struggling (open/half-open breaker, or the last publish
        attempt failed); one successful refresh returns to healthy.
        """
        return classify_health(
            draining=self._draining,
            breaker_closed=self._breaker.closed,
            consecutive_failures=self._holder.consecutive_failures,
        )

    async def _handle_healthz(self, request: _Request) -> Dict[str, Any]:
        engine, version = self._holder.current()
        return {
            "status": self.health,
            "version": version,
            "fitted": engine.is_fitted,
            "staleness_s": self._holder.staleness_seconds,
            "breaker": self._breaker.state,
        }

    async def _handle_stats(self, request: _Request) -> Dict[str, Any]:
        assert self._loop is not None and self._queue is not None
        engine, version = self._holder.current()
        counters = self._counters
        return {
            "uptime_s": (
                self._loop.time() - self._started_at if self._started_at else 0.0
            ),
            "engine": {
                "version": version,
                "swaps": self._holder.swaps,
                "fitted": engine.is_fitted,
                "cache": dataclasses.asdict(engine.cache_info()),
                "last_swap_seconds": self._holder.last_swap_seconds,
                # Store-backed engines (serve --store) report their serving
                # source and lookup counters; None for direct serving.
                "store": (
                    store.describe()
                    if (store := getattr(engine, "serving_store", None)) is not None
                    else None
                ),
            },
            "requests": {
                "total": counters.requests,
                "by_endpoint": dict(counters.endpoints),
                "by_status": {
                    str(status): count
                    for status, count in sorted(counters.responses.items())
                },
                "rejected_queue_full": counters.rejected_queue_full,
                "timeouts": counters.timeouts,
            },
            "batching": {
                "batches": counters.batches,
                "batched_requests": counters.batched_requests,
                "mean_batch": (
                    counters.batched_requests / counters.batches
                    if counters.batches
                    else 0.0
                ),
                "max_batch": counters.max_batch,
                "unique_rewrites_served": counters.rewrites_served,
                "queue_depth": self._queue.qsize(),
                "queue_high_water": counters.queue_high_water,
                "in_flight_batches": len(self._batch_tasks),
            },
            "refreshes": counters.refreshes,
            "reloads": counters.reloads,
            "latency_ms": self._latency.summary(),
            "draining": self._draining,
            "health": {
                "state": self.health,
                "staleness_s": self._holder.staleness_seconds,
                "breaker": self._breaker.describe(),
                "publish": {
                    "failures": self._holder.publish_failures,
                    "consecutive_failures": self._holder.consecutive_failures,
                    "last_error": self._holder.last_error,
                    "last_failure_at": self._holder.last_failure_at,
                    "retries": counters.publish_retries,
                    "rejected_breaker_open": counters.rejected_breaker_open,
                },
            },
        }

    # ----------------------------------------------------------------- output

    @staticmethod
    async def _write_response(
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, Any],
        keep_alive: bool,
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        reason = _REASONS.get(status, "Unknown")
        connection = "keep-alive" if keep_alive else "close"
        head = (
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {connection}\r\n"
            "\r\n"
        ).encode("latin-1")
        writer.write(head + body)
        await writer.drain()
