"""The ``simrankpp-experiments serve`` subcommand: stand up a rewrite server.

Three ways to get a servable engine (all resolved through
:func:`repro.api.sources.resolve_engine_source`):

==================  ========================================================
``--snapshot DIR``  revive a fitted engine from an :mod:`~repro.api.snapshot`
                    directory (the production path: fit offline, snapshot,
                    serve online; hot-swap later via ``POST /reload``)
``--store FILE``    serve materialized rewrite lists from a SQLite serving
                    store (``RewriteEngine.export_store``): indexed point
                    lookups, resident memory O(cache) instead of O(score
                    matrix); ``/refresh`` and ``/reload`` are unavailable --
                    re-export and restart to pick up a new fit
``(neither)``       fit on a synthetic Yahoo!-like workload
                    (``--size/--seed/--method/--backend/--iterations/
                    --tolerance``), the self-contained demo path
==================  ========================================================

Examples::

    simrankpp-experiments serve --size small --port 8641
    simrankpp-experiments serve --snapshot engines/two-week-weighted --precompute
    simrankpp-experiments serve --store engines/two-week-weighted.sqlite
    simrankpp-experiments serve --size tiny --serve-seconds 5   # smoke run

The process serves until SIGINT/SIGTERM (or ``--serve-seconds``), then
drains in-flight requests and exits.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import dataclasses
import json
import signal
import sys
from typing import Optional, Sequence

from repro.api.config import EngineConfig
from repro.api.engine import RewriteEngine
from repro.api.sources import resolve_engine_source
from repro.core.config import SimrankConfig
from repro.serving.holder import EngineHolder
from repro.serving.server import RewriteServer, ServerConfig

__all__ = ["build_serve_parser", "build_engine", "serve_main"]


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simrankpp-experiments serve",
        description=(
            "Serve query rewrites over HTTP (JSON endpoints /rewrite, "
            "/rewrite_batch, /refresh, /reload, /healthz, /stats) with "
            "zero-downtime engine refresh."
        ),
    )
    source = parser.add_argument_group("engine source")
    source.add_argument(
        "--snapshot",
        metavar="DIR",
        default=None,
        help="serve an engine revived from this snapshot directory "
        "(otherwise a synthetic workload is fitted at startup)",
    )
    source.add_argument(
        "--store",
        metavar="FILE",
        default=None,
        help="serve materialized rewrite lists from this SQLite serving "
        "store (RewriteEngine.export_store); mutually exclusive with "
        "--snapshot, and /refresh and /reload are unavailable -- "
        "re-export and restart to pick up a new fit",
    )
    source.add_argument(
        "--size",
        default="small",
        choices=["tiny", "small", "medium"],
        help="synthetic workload size when fitting at startup",
    )
    source.add_argument("--seed", type=int, default=29, help="workload random seed")
    source.add_argument(
        "--method", default="weighted_simrank", help="registered similarity method"
    )
    source.add_argument(
        "--backend", default=None, help="method backend (default: the method's own)"
    )
    source.add_argument("--iterations", type=int, default=7, help="SimRank iterations")
    source.add_argument(
        "--tolerance",
        type=float,
        default=1e-8,
        help="early-exit tolerance; must stay > 0 for /refresh to warm-start "
        "instead of refitting cold",
    )
    source.add_argument(
        "--precompute",
        action="store_true",
        help="warm the serving cache over the full query universe before "
        "accepting traffic",
    )
    net = parser.add_argument_group("server")
    net.add_argument("--host", default="127.0.0.1", help="listen address")
    net.add_argument(
        "--port", type=int, default=8641, help="listen port (0 = ephemeral)"
    )
    net.add_argument(
        "--batch-size",
        type=int,
        default=32,
        help="max requests coalesced into one executor micro-batch",
    )
    net.add_argument(
        "--linger-ms",
        type=float,
        default=1.0,
        help="how long the batcher waits for more requests before dispatching",
    )
    net.add_argument(
        "--concurrency",
        type=int,
        default=None,
        help=(
            "micro-batches allowed in executor threads at once "
            "(default: sized to the CPUs available to this process)"
        ),
    )
    net.add_argument(
        "--queue-size",
        type=int,
        default=1024,
        help="request queue bound; beyond it requests get HTTP 503",
    )
    net.add_argument(
        "--serve-seconds",
        type=float,
        default=None,
        help="serve for this long and exit (default: until SIGINT/SIGTERM)",
    )
    net.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request deadline for /rewrite endpoints; exceeded "
        "requests get HTTP 504 (default: no deadline)",
    )
    return parser


def build_engine(args: argparse.Namespace) -> RewriteEngine:
    """The engine the server publishes first: store, snapshot or fresh fit.

    All three sources go through
    :func:`repro.api.sources.resolve_engine_source`.  A corrupt
    ``--snapshot`` (torn write, missing files) does not abort startup: the
    newest loadable sibling snapshot is served instead, with a warning on
    stderr -- crash-safe startup over refusing to serve.
    """
    if getattr(args, "store", None) and args.snapshot:
        raise ValueError("--store and --snapshot are mutually exclusive")

    def warn(message: str) -> None:
        print(f"warning: {message}", file=sys.stderr)

    if getattr(args, "store", None):
        resolved = resolve_engine_source(store=args.store)
    elif args.snapshot:
        resolved = resolve_engine_source(snapshot=args.snapshot, warn=warn)
        if resolved.degraded:
            print(
                f"warning: started degraded -- serving {resolved.origin} instead "
                f"of requested snapshot {args.snapshot}",
                file=sys.stderr,
            )
    else:
        from repro.synth.yahoo_like import yahoo_like_workload

        workload = yahoo_like_workload(args.size, seed=args.seed)
        config = EngineConfig(
            method=args.method,
            backend=args.backend,
            similarity=SimrankConfig(
                iterations=args.iterations, tolerance=args.tolerance
            ),
        )
        resolved = resolve_engine_source(
            graph=workload.click_graph, config=config, bid_terms=workload.bid_terms
        )
    engine = resolved.engine
    if args.precompute:
        engine.precompute()
    return engine


async def _serve(
    engine: RewriteEngine,
    config: ServerConfig,
    serve_seconds: Optional[float],
    out=sys.stdout,
) -> None:
    holder = EngineHolder(engine)
    server = RewriteServer(holder, config)
    await server.start()
    host, port = server.address
    print(
        f"serving rewrites on http://{host}:{port} "
        f"(engine version {holder.version}, "
        f"{'fitted' if engine.is_fitted else 'unfitted'}); "
        "endpoints: /rewrite /rewrite_batch /refresh /reload /healthz /stats",
        file=out,
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        # Signal handlers are a nicety, not a requirement (unavailable on
        # some platforms/loops); KeyboardInterrupt still unwinds cleanly.
        with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
            loop.add_signal_handler(signum, stop.set)
    try:
        if serve_seconds is not None:
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(stop.wait(), timeout=serve_seconds)
        else:
            await stop.wait()
    finally:
        await server.stop()
        engine_now, version = holder.current()
        print(
            "shut down after draining; final engine version "
            f"{version}, cache {json.dumps(dataclasses.asdict(engine_now.cache_info()))}",
            file=out,
            flush=True,
        )


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point of the ``serve`` subcommand; returns a process exit code."""
    parser = build_serve_parser()
    args = parser.parse_args(argv)
    try:
        engine = build_engine(args)
    except Exception as exc:  # noqa: BLE001 -- surfaced as a CLI error
        parser.error(f"could not build a servable engine: {exc}")
        return 2
    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_batch_size=args.batch_size,
        batch_linger_ms=args.linger_ms,
        max_concurrency=args.concurrency,
        queue_size=args.queue_size,
        request_timeout_s=args.request_timeout,
    )
    try:
        asyncio.run(_serve(engine, config, args.serve_seconds))
    except KeyboardInterrupt:
        pass
    return 0
