"""Tiny latency bookkeeping shared by the server, the load generator and tests.

Nothing here is statistical machinery -- just the nearest-rank percentile
definition used consistently across ``/stats``, the load reports and the
``bench_serving_load`` gate, so a "p99" means the same thing everywhere.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Iterable, List, Sequence

__all__ = ["percentile", "summarize_latencies", "LatencyWindow"]


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile of ``values`` (``q`` in [0, 100]).

    Returns 0.0 for an empty sequence -- callers report "no samples" via
    the accompanying count, not by special-casing here.
    """
    if not values:
        return 0.0
    if not 0 <= q <= 100:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    rank = max(1, math.ceil(q / 100.0 * len(ordered)))
    return ordered[min(rank, len(ordered)) - 1]


def summarize_latencies(values: Iterable[float]) -> Dict[str, float]:
    """The standard latency summary: count, mean, p50, p95, p99, max (ms in -> ms out)."""
    samples: List[float] = list(values)
    if not samples:
        return {"count": 0, "mean": 0.0, "p50": 0.0, "p95": 0.0, "p99": 0.0, "max": 0.0}
    return {
        "count": len(samples),
        "mean": sum(samples) / len(samples),
        "p50": percentile(samples, 50),
        "p95": percentile(samples, 95),
        "p99": percentile(samples, 99),
        "max": max(samples),
    }


class LatencyWindow:
    """A bounded window of recent latency samples (milliseconds).

    The server records per-request service times here; ``/stats`` reports
    the percentile summary of the most recent ``maxlen`` samples, so the
    numbers track current behaviour instead of averaging over the whole
    process lifetime.
    """

    def __init__(self, maxlen: int) -> None:
        self._samples: Deque[float] = deque(maxlen=maxlen)
        self._total = 0

    def record(self, latency_ms: float) -> None:
        self._samples.append(latency_ms)
        self._total += 1

    @property
    def total_recorded(self) -> int:
        """Samples ever recorded (the window only keeps the recent ones)."""
        return self._total

    def summary(self) -> Dict[str, float]:
        summary = summarize_latencies(self._samples)
        summary["recorded"] = self._total
        return summary
