"""Resilience primitives for the serving tier: keep answering, degrade loudly.

The serving loop (:mod:`repro.serving.server`) must keep returning correct
answers from the *published* engine even while the analytical side --
refits, snapshot IO, process-pool workers -- misbehaves.  This module
holds the mechanisms that make that survivable rather than accidental:

``CircuitBreaker``
    Stops hammering a failing refresh path.  After ``threshold``
    consecutive failures the breaker *opens* and publish attempts are
    refused outright (the server sheds them with a clean error while the
    stale engine keeps serving).  After ``reset_s`` it admits exactly one
    *half-open* probe; success closes the breaker, failure re-opens it.

``RetryPolicy``
    Exponential backoff with deterministic, seeded jitter for transient
    publish failures -- the first line of defence *before* the breaker
    trips.  ``delays()`` yields one sleep per retry so the caller stays in
    control of the loop (and can abort early when the breaker opens).

``classify_health``
    The ``healthy -> degraded -> draining`` state machine surfaced via
    ``/healthz`` and ``/stats``.  Degraded means "serving, but stale or
    struggling": the breaker is not closed, or the last publish attempt
    failed.  One successful refresh returns the server to healthy.

``load_engine_with_fallback``
    Deprecated shim over :func:`repro.api.sources.resolve_engine_source`,
    which now owns the crash-safe startup policy: when the requested
    snapshot is corrupt (torn write, missing files), fall back to the
    newest *loadable* sibling snapshot instead of refusing to start.

Everything here is synchronous, dependency-free and injectable-clock
testable; the asyncio server wraps these primitives in executor threads.
"""

from __future__ import annotations

import random
import threading
import time
import warnings
from pathlib import Path
from typing import Callable, Iterator, Optional, Tuple, Union

from repro.api.engine import RewriteEngine
from repro.api.sources import _sibling_snapshots, resolve_engine_source  # noqa: F401 -- back-compat re-export

__all__ = [
    "HEALTHY",
    "DEGRADED",
    "DRAINING",
    "CircuitBreaker",
    "RetryPolicy",
    "classify_health",
    "load_engine_with_fallback",
]

#: Health states, in order of decreasing wellness.  ``healthy``: serving and
#: last publish succeeded.  ``degraded``: still serving (possibly stale),
#: but the refresh path is struggling.  ``draining``: shutting down, new
#: work is shed.
HEALTHY = "healthy"
DEGRADED = "degraded"
DRAINING = "draining"


def classify_health(
    *, draining: bool, breaker_closed: bool, consecutive_failures: int
) -> str:
    """Fold server shutdown, breaker and publish-ledger state into one word.

    Draining dominates (the server is leaving, wellness is moot); any sign
    of refresh trouble -- a non-closed breaker or a publish failure not yet
    followed by a success -- reads as degraded.  The inverse transition is
    exactly "one successful refresh": a publish resets the holder's
    consecutive-failure count and closes the breaker, so the next health
    read is healthy again.
    """
    if draining:
        return DRAINING
    if not breaker_closed or consecutive_failures > 0:
        return DEGRADED
    return HEALTHY


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a single half-open probe.

    States: ``closed`` (normal -- every call admitted), ``open`` (refuse
    everything until ``reset_s`` has elapsed since the trip), ``half_open``
    (admit exactly one probe; its outcome decides between ``closed`` and a
    fresh ``open`` period).  The caller drives it manually::

        if not breaker.allow():
            ...shed the request, keep serving the stale engine...
        try:
            publish()
        except TransientError:
            breaker.record_failure()
        else:
            breaker.record_success()

    Thread-safe; ``clock`` is injectable (defaults to ``time.monotonic``)
    so tests can step time instead of sleeping.
    """

    def __init__(
        self,
        threshold: int = 3,
        reset_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_s <= 0:
            raise ValueError(f"reset_s must be > 0, got {reset_s}")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at: Optional[float] = None
        self._probing = False

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (recomputed against the clock)."""
        with self._lock:
            self._maybe_half_open()
            return self._state

    @property
    def closed(self) -> bool:
        return self.state == "closed"

    @property
    def consecutive_failures(self) -> int:
        with self._lock:
            return self._failures

    def allow(self) -> bool:
        """Admit or refuse one publish attempt.

        Closed admits everything; open refuses everything until the reset
        window elapses; half-open admits exactly one in-flight probe --
        concurrent callers are refused until that probe's outcome is
        recorded.
        """
        with self._lock:
            self._maybe_half_open()
            if self._state == "closed":
                return True
            if self._state == "half_open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        """A publish admitted by :meth:`allow` succeeded: close the breaker."""
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._opened_at = None
            self._probing = False

    def release(self) -> None:
        """An admitted call ended without a transient verdict.

        Client errors (a malformed delta) and permanent input errors (a
        corrupt snapshot path) say nothing about whether the publish path
        has recovered, so they neither close nor trip the breaker -- but a
        half-open probe slot they occupied must be freed, or no real probe
        could ever run again.
        """
        with self._lock:
            self._probing = False

    def record_failure(self) -> None:
        """A publish admitted by :meth:`allow` failed transiently.

        A failed half-open probe re-opens immediately (the window restarts);
        in closed state the trip happens at ``threshold`` consecutive
        failures.
        """
        with self._lock:
            self._failures += 1
            if self._state == "half_open" or (
                self._state == "closed" and self._failures >= self.threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False

    # repro-lint: requires-lock=_lock
    def _maybe_half_open(self) -> None:
        """Open -> half-open once the reset window has elapsed (lock held)."""
        if (
            self._state == "open"
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.reset_s
        ):
            self._state = "half_open"
            self._probing = False

    def describe(self) -> dict:
        """JSON-ready state for ``/stats``."""
        with self._lock:
            self._maybe_half_open()
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "threshold": self.threshold,
                "reset_s": self.reset_s,
            }

    def __repr__(self) -> str:
        return (
            f"CircuitBreaker(state={self.state!r}, "
            f"failures={self.consecutive_failures}/{self.threshold})"
        )


class RetryPolicy:
    """Exponential backoff with deterministic seeded jitter.

    ``delays()`` yields ``retries`` sleep durations: attempt ``i`` backs
    off ``backoff_s * 2**i`` (capped at ``max_backoff_s``), scaled by a
    jitter factor drawn uniformly from ``[1 - jitter, 1]``.  Jitter decays
    the thundering-herd risk of synchronized retries; seeding keeps the
    chaos benchmark and tests reproducible.

    The policy is stateless across calls -- each ``delays()`` starts a
    fresh, identically-seeded sequence -- so one instance can serve every
    request handler.
    """

    def __init__(
        self,
        retries: int = 2,
        backoff_s: float = 0.05,
        max_backoff_s: float = 1.0,
        jitter: float = 0.5,
        seed: Optional[int] = 0,
    ) -> None:
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0 or max_backoff_s < 0:
            raise ValueError("backoff_s and max_backoff_s must be >= 0")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.retries = retries
        self.backoff_s = backoff_s
        self.max_backoff_s = max_backoff_s
        self.jitter = jitter
        self.seed = seed

    def delays(self) -> Iterator[float]:
        """Yield the backoff sleep before each retry attempt."""
        rng = random.Random(self.seed)
        for attempt in range(self.retries):
            base = min(self.max_backoff_s, self.backoff_s * (2.0**attempt))
            scale = 1.0 - self.jitter * rng.random()
            yield base * scale

    def __repr__(self) -> str:
        return (
            f"RetryPolicy(retries={self.retries}, backoff_s={self.backoff_s}, "
            f"max_backoff_s={self.max_backoff_s}, jitter={self.jitter})"
        )


PathLike = Union[str, Path]


def load_engine_with_fallback(
    path: PathLike,
    warn: Optional[Callable[[str], None]] = None,
) -> Tuple[RewriteEngine, Path]:
    """Load the snapshot (or serving store) at ``path``, with sibling fallback.

    .. deprecated:: 1.2
        Thin shim over :func:`repro.api.sources.resolve_engine_source`,
        the one front door over snapshot / store / fresh-fit engine
        construction; will be removed in version 2.0.

    Returns ``(engine, path_actually_loaded)``.  A file path is opened as
    a SQLite serving store; a directory path as a snapshot, where only
    :class:`~repro.api.snapshot.SnapshotError` (corrupt manifest, torn
    score matrix, missing files) triggers the sibling-fallback scan --
    see :func:`~repro.api.sources.resolve_engine_source` for the policy.
    """
    warnings.warn(
        "repro.serving.load_engine_with_fallback is deprecated; use "
        "repro.api.sources.resolve_engine_source(snapshot=...) (or "
        "store=...) instead -- it will be removed in version 2.0",
        DeprecationWarning,
        stacklevel=2,
    )
    requested = Path(path)
    if requested.is_file():
        resolved = resolve_engine_source(store=requested)
    else:
        resolved = resolve_engine_source(snapshot=requested, warn=warn)
    return resolved.engine, resolved.origin or requested
