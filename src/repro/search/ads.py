"""The ad database of the sponsored-search back-end."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional

__all__ = ["Ad", "AdDatabase"]


@dataclass(frozen=True)
class Ad:
    """One advertisement.

    ``topic`` is the vertical the ad belongs to (ground truth used only by
    the simulated user model -- the serving system never ranks on it).
    """

    ad_id: str
    advertiser: str
    landing_page: str
    topic: Optional[str] = None
    text: str = ""

    def __post_init__(self) -> None:
        if not self.ad_id:
            raise ValueError("ad_id must be non-empty")


class AdDatabase:
    """In-memory store of ads indexed by id, advertiser and topic."""

    def __init__(self, ads: Iterable[Ad] = ()) -> None:
        self._by_id: Dict[str, Ad] = {}
        self._by_advertiser: Dict[str, List[str]] = {}
        self._by_topic: Dict[str, List[str]] = {}
        for ad in ads:
            self.add(ad)

    def add(self, ad: Ad) -> None:
        """Register an ad; re-adding an existing id raises ``ValueError``."""
        if ad.ad_id in self._by_id:
            raise ValueError(f"duplicate ad id {ad.ad_id!r}")
        self._by_id[ad.ad_id] = ad
        self._by_advertiser.setdefault(ad.advertiser, []).append(ad.ad_id)
        if ad.topic is not None:
            self._by_topic.setdefault(ad.topic, []).append(ad.ad_id)

    def get(self, ad_id: str) -> Ad:
        return self._by_id[ad_id]

    def __contains__(self, ad_id: str) -> bool:
        return ad_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def __iter__(self) -> Iterator[Ad]:
        return iter(self._by_id.values())

    def by_advertiser(self, advertiser: str) -> List[Ad]:
        return [self._by_id[ad_id] for ad_id in self._by_advertiser.get(advertiser, [])]

    def by_topic(self, topic: str) -> List[Ad]:
        return [self._by_id[ad_id] for ad_id in self._by_topic.get(topic, [])]

    @classmethod
    def from_workload_ads(cls, ad_topics: Dict[str, str]) -> "AdDatabase":
        """Build an ad database from the synthetic workload's ad -> topic map.

        The synthetic ad identifiers look like ``"brand.com/term-3"``; the
        advertiser is the part before the slash.
        """
        database = cls()
        for ad_id, topic in ad_topics.items():
            advertiser = str(ad_id).split("/", 1)[0]
            database.add(
                Ad(
                    ad_id=str(ad_id),
                    advertiser=advertiser,
                    landing_page=str(ad_id),
                    topic=topic,
                    text=str(ad_id).replace("/", " ").replace("-", " "),
                )
            )
        return database
