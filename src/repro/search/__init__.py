"""Sponsored-search serving simulator.

The paper's click graph is a by-product of a production serving system
(Figures 1 and 2): a *front-end* rewrites incoming queries, a *back-end*
selects and ranks ads with bids on the query or its rewrites, users click on
some of the displayed ads, and the logs of those impressions and clicks are
aggregated into the click graph.

This package simulates that whole loop so the library can exercise the same
data path end to end without Yahoo!'s infrastructure:

* :mod:`repro.search.ads` / :mod:`repro.search.bids` -- the ad and bid
  databases,
* :mod:`repro.search.click_model` -- a position-biased click model,
* :mod:`repro.search.user_model` -- topical users who decide which displayed
  ads are relevant,
* :mod:`repro.search.backend` -- ad selection, ranking and expected-click-rate
  estimation,
* :mod:`repro.search.frontend` -- query rewriting in front of the back-end,
* :mod:`repro.search.system` -- the full serving loop that turns a traffic
  stream into impression logs and a click graph.
"""

from repro.search.ads import Ad, AdDatabase
from repro.search.backend import AdPlacement, Backend, ServedPage
from repro.search.bids import Bid, BidDatabase
from repro.search.click_model import PositionBiasedClickModel
from repro.search.frontend import FrontEnd
from repro.search.query_log import ClickLogRecord, QueryLog
from repro.search.system import ServingReport, SponsoredSearchSystem
from repro.search.user_model import TopicalUserModel

__all__ = [
    "Ad",
    "AdDatabase",
    "AdPlacement",
    "Backend",
    "ServedPage",
    "Bid",
    "BidDatabase",
    "PositionBiasedClickModel",
    "FrontEnd",
    "ClickLogRecord",
    "QueryLog",
    "ServingReport",
    "SponsoredSearchSystem",
    "TopicalUserModel",
]
