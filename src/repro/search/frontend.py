"""The sponsored-search front-end.

The front-end receives an incoming query and produces a list of rewrites that
the back-end should also consider when looking for bids (paper Figure 2).
It wraps a :class:`repro.core.rewriter.QueryRewriter`; when no rewriter is
configured it passes queries through unchanged, which models the system
before click-graph-based rewriting is deployed (useful for bootstrapping the
first click graph).
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.rewriter import QueryRewriter

__all__ = ["FrontEnd"]


class FrontEnd:
    """Produces rewrites for incoming queries."""

    def __init__(self, rewriter: Optional[QueryRewriter] = None, max_rewrites: int = 5) -> None:
        self.rewriter = rewriter
        self.max_rewrites = max_rewrites

    def rewrites(self, query: str) -> List[str]:
        """Rewrites to forward to the back-end alongside the original query."""
        if self.rewriter is None:
            return []
        rewrite_list = self.rewriter.rewrites_for(query)
        return [str(rewrite.rewrite) for rewrite in rewrite_list.top(self.max_rewrites)]
