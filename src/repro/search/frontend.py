"""The sponsored-search front-end.

The front-end receives an incoming query and produces a list of rewrites that
the back-end should also consider when looking for bids (paper Figure 2).
It wraps either a :class:`repro.core.rewriter.QueryRewriter` or -- the
preferred serving setup -- a fitted :class:`repro.api.engine.RewriteEngine`,
whose per-query cache makes repeated traffic O(1) per query.  When neither is
configured it passes queries through unchanged, which models the system
before click-graph-based rewriting is deployed (useful for bootstrapping the
first click graph).
"""

from __future__ import annotations

from typing import List, Optional

from repro.api.engine import RewriteEngine
from repro.core.rewriter import QueryRewriter

__all__ = ["FrontEnd"]


class FrontEnd:
    """Produces rewrites for incoming queries."""

    def __init__(
        self,
        rewriter: Optional[QueryRewriter] = None,
        max_rewrites: int = 5,
        engine: Optional[RewriteEngine] = None,
    ) -> None:
        """``max_rewrites`` trims the provider's rewrite list per query; it
        cannot exceed what the provider generates (an engine never produces
        more than its ``config.max_rewrites``)."""
        if rewriter is not None and engine is not None:
            raise ValueError("configure either a rewriter or an engine, not both")
        self.rewriter = rewriter
        self.engine = engine
        self.max_rewrites = max_rewrites

    def rewrites(self, query: str) -> List[str]:
        """Rewrites to forward to the back-end alongside the original query."""
        if self.engine is not None:
            return [str(rewrite) for rewrite in self.engine.expansions(query, self.max_rewrites)]
        if self.rewriter is None:
            return []
        rewrite_list = self.rewriter.rewrites_for(query)
        return [str(rewrite.rewrite) for rewrite in rewrite_list.top(self.max_rewrites)]
