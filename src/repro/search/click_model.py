"""Position-biased click model.

An ad near the top of the sponsored results is more likely to be clicked
regardless of how relevant it is (paper Section 2) -- which is why the
back-end maintains a position-adjusted *expected click rate* instead of raw
clicks over impressions.  The examination model used here is the standard
cascade-free position model: the user examines position ``p`` with
probability ``examination(p)`` and clicks an examined ad with a probability
equal to its relevance to the user's intent.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Sequence

__all__ = ["PositionBiasedClickModel"]


class PositionBiasedClickModel:
    """Examination probabilities decaying with display position."""

    def __init__(self, decay: float = 0.65, max_positions: int = 8) -> None:
        """``examination(p) = decay ** (p - 1)`` for positions 1..max_positions."""
        if not 0 < decay <= 1:
            raise ValueError(f"decay must be in (0, 1], got {decay}")
        if max_positions < 1:
            raise ValueError("max_positions must be at least 1")
        self.decay = decay
        self.max_positions = max_positions

    def examination_probability(self, position: int) -> float:
        """Probability that the user even looks at the ad in this position."""
        if position < 1:
            raise ValueError("positions are 1-based")
        if position > self.max_positions:
            return 0.0
        return self.decay ** (position - 1)

    def examination_prior(self) -> Dict[int, float]:
        """Position -> examination probability, for the ECR estimator."""
        return {
            position: self.examination_probability(position)
            for position in range(1, self.max_positions + 1)
        }

    def click_probability(self, position: int, relevance: float) -> float:
        """Probability of a click: examination times relevance."""
        if not 0 <= relevance <= 1:
            raise ValueError(f"relevance must be in [0, 1], got {relevance}")
        return self.examination_probability(position) * relevance

    def simulate_click(
        self, position: int, relevance: float, rng: Optional[random.Random] = None
    ) -> bool:
        """Draw whether a displayed ad gets clicked."""
        rng = rng or random.Random()
        return rng.random() < self.click_probability(position, relevance)

    def expected_clicks(self, relevances_by_position: Sequence[float]) -> float:
        """Expected number of clicks on a whole result page."""
        return sum(
            self.click_probability(position, relevance)
            for position, relevance in enumerate(relevances_by_position, start=1)
        )
