"""The bid database of the sponsored-search back-end.

Conceptually each bid is a ``(query, ad, price)`` triple: the advertiser
offers to pay ``price`` if the ad is displayed for ``query`` and clicked
(paper Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Set

__all__ = ["Bid", "BidDatabase"]


@dataclass(frozen=True)
class Bid:
    """One bid: an advertiser offers ``price`` for a click on ``ad_id`` shown for ``query``."""

    query: str
    ad_id: str
    price: float

    def __post_init__(self) -> None:
        if self.price <= 0:
            raise ValueError(f"bid price must be positive, got {self.price}")


class BidDatabase:
    """Bids indexed by query, supporting the bid-term filter of Section 9.3."""

    def __init__(self, bids: Iterable[Bid] = ()) -> None:
        self._by_query: Dict[str, List[Bid]] = {}
        self._count = 0
        for bid in bids:
            self.add(bid)

    def add(self, bid: Bid) -> None:
        self._by_query.setdefault(bid.query, []).append(bid)
        self._count += 1

    def bids_for(self, query: str) -> List[Bid]:
        """All bids placed on a query (highest price first)."""
        return sorted(self._by_query.get(query, []), key=lambda bid: -bid.price)

    def has_bids(self, query: str) -> bool:
        return bool(self._by_query.get(query))

    def bid_terms(self) -> Set[str]:
        """The set of queries with at least one bid (the paper's bid-term list)."""
        return set(self._by_query)

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[Bid]:
        for bids in self._by_query.values():
            yield from bids
