"""Simulated users.

A user who issues a query has a topical intent (the query's ground-truth
topic).  The probability that a displayed ad is *relevant* to that intent
depends on how the ad's topic relates to the query's topic: same topic is
very likely relevant, a related topic sometimes is (a camera buyer may want a
spare battery), an unrelated topic almost never is.  The click model then
converts relevance and display position into clicks.
"""

from __future__ import annotations

import random
from typing import Dict, Optional

from repro.synth.topics import TopicModel, TopicRelation

__all__ = ["TopicalUserModel"]


class TopicalUserModel:
    """Relevance of ads to queries derived from the ground-truth topic model."""

    def __init__(
        self,
        topic_model: TopicModel,
        query_topics: Dict[str, str],
        ad_topics: Dict[str, str],
        same_topic_relevance: float = 0.65,
        related_topic_relevance: float = 0.25,
        unrelated_relevance: float = 0.02,
        noise: float = 0.05,
        seed: int = 17,
    ) -> None:
        self.topic_model = topic_model
        self.query_topics = query_topics
        self.ad_topics = ad_topics
        self.same_topic_relevance = same_topic_relevance
        self.related_topic_relevance = related_topic_relevance
        self.unrelated_relevance = unrelated_relevance
        self.noise = noise
        self._rng = random.Random(seed)

    def relevance(self, query: str, ad_id: str, rng: Optional[random.Random] = None) -> float:
        """Probability in [0, 1] that the ad satisfies the query's intent."""
        rng = rng or self._rng
        query_topic = self.query_topics.get(query)
        ad_topic = self.ad_topics.get(ad_id)
        if query_topic is None or ad_topic is None:
            base = self.unrelated_relevance
        else:
            relation = self.topic_model.relation(query_topic, ad_topic)
            if relation is TopicRelation.SAME:
                base = self.same_topic_relevance
            elif relation is TopicRelation.RELATED:
                base = self.related_topic_relevance
            else:
                base = self.unrelated_relevance
        jitter = rng.uniform(-self.noise, self.noise)
        return min(1.0, max(0.0, base + jitter))
