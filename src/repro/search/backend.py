"""The sponsored-search back-end: ad selection, ranking and ECR estimation.

Given a query and its rewrites, the back-end collects every bid placed on any
of them, ranks the candidate ads by (bid price x estimated click rate) and
fills the available ad slots.  It also maintains the per-(query, ad)
expected-click-rate estimate that becomes the third weight of each click
graph edge (Section 2): observed clicks divided by the examination mass of
the positions where the ad was shown.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.search.ads import AdDatabase
from repro.search.bids import Bid, BidDatabase
from repro.search.click_model import PositionBiasedClickModel

__all__ = ["AdPlacement", "ServedPage", "Backend"]


@dataclass(frozen=True)
class AdPlacement:
    """One ad slot on a served page."""

    ad_id: str
    position: int
    bid_price: float
    matched_query: str


@dataclass
class ServedPage:
    """The ads chosen for one incoming query."""

    query: str
    placements: List[AdPlacement] = field(default_factory=list)

    @property
    def num_ads(self) -> int:
        return len(self.placements)


class Backend:
    """Selects and ranks ads, and tracks click statistics for ECR estimates."""

    def __init__(
        self,
        ads: AdDatabase,
        bids: BidDatabase,
        click_model: Optional[PositionBiasedClickModel] = None,
        num_slots: int = 4,
        default_click_rate: float = 0.05,
    ) -> None:
        if num_slots < 1:
            raise ValueError("num_slots must be at least 1")
        self.ads = ads
        self.bids = bids
        self.click_model = click_model or PositionBiasedClickModel()
        self.num_slots = num_slots
        self.default_click_rate = default_click_rate
        # Per (query, ad): observed clicks and accumulated examination mass.
        self._clicks: Dict[Tuple[str, str], int] = defaultdict(int)
        self._examinations: Dict[Tuple[str, str], float] = defaultdict(float)
        self._impressions: Dict[Tuple[str, str], int] = defaultdict(int)

    # ----------------------------------------------------------------- serve

    def serve(self, query: str, rewrites: Sequence[str] = ()) -> ServedPage:
        """Choose ads for a query and its rewrites, best-ranked first.

        Candidate ads are everything with a bid on the query or any rewrite;
        they are ranked by bid price times the current expected click rate of
        the (incoming query, ad) pair, with each ad shown at most once.
        """
        candidates: List[Tuple[float, Bid, str]] = []
        for matched in [query, *rewrites]:
            for bid in self.bids.bids_for(matched):
                ecr = self.expected_click_rate(query, bid.ad_id)
                candidates.append((bid.price * ecr, bid, matched))
        candidates.sort(key=lambda item: (-item[0], item[1].ad_id))

        page = ServedPage(query=query)
        shown = set()
        for _, bid, matched in candidates:
            if bid.ad_id in shown:
                continue
            if bid.ad_id not in self.ads:
                continue
            shown.add(bid.ad_id)
            page.placements.append(
                AdPlacement(
                    ad_id=bid.ad_id,
                    position=len(page.placements) + 1,
                    bid_price=bid.price,
                    matched_query=matched,
                )
            )
            if len(page.placements) >= self.num_slots:
                break
        return page

    # ------------------------------------------------------------- feedback

    def record_impression(self, query: str, ad_id: str, position: int, clicked: bool) -> None:
        """Update click statistics after a page has been shown to a user."""
        key = (query, ad_id)
        self._impressions[key] += 1
        self._examinations[key] += self.click_model.examination_probability(position)
        if clicked:
            self._clicks[key] += 1

    def expected_click_rate(self, query: str, ad_id: str) -> float:
        """Position-debiased click-rate estimate for a (query, ad) pair.

        Falls back to ``default_click_rate`` before any data is observed so
        newly bid ads are not starved of impressions.
        """
        key = (query, ad_id)
        examinations = self._examinations.get(key, 0.0)
        if examinations <= 0:
            return self.default_click_rate
        return min(1.0, self._clicks.get(key, 0) / examinations)

    def impressions(self, query: str, ad_id: str) -> int:
        return self._impressions.get((query, ad_id), 0)

    def clicks(self, query: str, ad_id: str) -> int:
        return self._clicks.get((query, ad_id), 0)

    def observed_pairs(self) -> List[Tuple[str, str]]:
        """All (query, ad) pairs that received at least one impression."""
        return list(self._impressions)
