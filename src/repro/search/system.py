"""The full sponsored-search serving loop.

:class:`SponsoredSearchSystem` ties the front-end, back-end, user model and
click model together: it consumes a traffic stream of queries, serves ads for
each, simulates user clicks, logs every impression, and finally aggregates
the log into a click graph -- the same data path that produced the paper's
two-week Yahoo! graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.api.engine import RewriteEngine
from repro.graph.builders import build_click_graph_from_log
from repro.graph.click_graph import ClickGraph
from repro.search.backend import Backend
from repro.search.click_model import PositionBiasedClickModel
from repro.search.frontend import FrontEnd
from repro.search.query_log import ClickLogRecord, QueryLog
from repro.search.user_model import TopicalUserModel

__all__ = ["ServingReport", "SponsoredSearchSystem"]


@dataclass
class ServingReport:
    """Summary of one serving run."""

    queries_served: int
    impressions: int
    clicks: int
    #: Queries served with at least one rewrite expansion (0 when the system
    #: runs without a rewriter/engine, i.e. in bootstrap mode).
    expanded_queries: int = 0

    @property
    def click_through_rate(self) -> float:
        if self.impressions == 0:
            return 0.0
        return self.clicks / self.impressions

    @property
    def expansion_rate(self) -> float:
        if self.queries_served == 0:
            return 0.0
        return self.expanded_queries / self.queries_served


class SponsoredSearchSystem:
    """Front-end + back-end + simulated users, producing logs and click graphs."""

    def __init__(
        self,
        backend: Backend,
        user_model: TopicalUserModel,
        frontend: Optional[FrontEnd] = None,
        click_model: Optional[PositionBiasedClickModel] = None,
        seed: int = 23,
        engine: Optional[RewriteEngine] = None,
    ) -> None:
        if frontend is not None and engine is not None:
            raise ValueError("configure either a frontend or an engine, not both")
        self.backend = backend
        self.frontend = frontend or FrontEnd()
        self.user_model = user_model
        self.click_model = click_model or backend.click_model
        self.log = QueryLog()
        self._rng = random.Random(seed)
        self._expanded_queries = 0
        if engine is not None:
            self.attach_engine(engine)

    def attach_engine(
        self, engine: RewriteEngine, max_rewrites: Optional[int] = None
    ) -> "SponsoredSearchSystem":
        """Switch serving to rewrite-expansion mode backed by a fitted engine.

        This is the online half of the paper's deployment story: bootstrap
        traffic without rewriting, aggregate the log into a click graph, fit
        an engine offline, then attach it so the back-end serves ads for each
        query *and* its cached rewrites.
        """
        limit = max_rewrites if max_rewrites is not None else engine.config.max_rewrites
        self.frontend = FrontEnd(engine=engine, max_rewrites=limit)
        return self

    # ----------------------------------------------------------------- serve

    def serve_query(self, query: str) -> int:
        """Serve one query, simulate clicks, log everything; returns clicks."""
        rewrites = self.frontend.rewrites(query)
        if rewrites:
            self._expanded_queries += 1
        page = self.backend.serve(query, rewrites)
        clicks = 0
        for placement in page.placements:
            relevance = self.user_model.relevance(query, placement.ad_id, self._rng)
            clicked = self.click_model.simulate_click(placement.position, relevance, self._rng)
            clicks += int(clicked)
            self.backend.record_impression(query, placement.ad_id, placement.position, clicked)
            self.log.append(
                ClickLogRecord(
                    query=query,
                    ad_id=placement.ad_id,
                    position=placement.position,
                    clicked=clicked,
                    matched_query=placement.matched_query,
                )
            )
        return clicks

    def serve_traffic(self, traffic: Iterable[str]) -> ServingReport:
        """Serve a whole traffic stream."""
        queries_served = 0
        clicks = 0
        impressions_before = len(self.log)
        expanded_before = self._expanded_queries
        for query in traffic:
            queries_served += 1
            clicks += self.serve_query(query)
        return ServingReport(
            queries_served=queries_served,
            impressions=len(self.log) - impressions_before,
            clicks=clicks,
            expanded_queries=self._expanded_queries - expanded_before,
        )

    # ------------------------------------------------------------ aggregation

    def build_click_graph(self, min_clicks: int = 1) -> ClickGraph:
        """Aggregate the accumulated log into a click graph."""
        return build_click_graph_from_log(
            self.log.impressions(),
            position_prior=self.click_model.examination_prior(),
            min_clicks=min_clicks,
        )
