"""The full sponsored-search serving loop.

:class:`SponsoredSearchSystem` ties the front-end, back-end, user model and
click model together: it consumes a traffic stream of queries, serves ads for
each, simulates user clicks, logs every impression, and finally aggregates
the log into a click graph -- the same data path that produced the paper's
two-week Yahoo! graph.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.graph.builders import build_click_graph_from_log
from repro.graph.click_graph import ClickGraph
from repro.search.backend import Backend
from repro.search.click_model import PositionBiasedClickModel
from repro.search.frontend import FrontEnd
from repro.search.query_log import ClickLogRecord, QueryLog
from repro.search.user_model import TopicalUserModel

__all__ = ["ServingReport", "SponsoredSearchSystem"]


@dataclass
class ServingReport:
    """Summary of one serving run."""

    queries_served: int
    impressions: int
    clicks: int

    @property
    def click_through_rate(self) -> float:
        if self.impressions == 0:
            return 0.0
        return self.clicks / self.impressions


class SponsoredSearchSystem:
    """Front-end + back-end + simulated users, producing logs and click graphs."""

    def __init__(
        self,
        backend: Backend,
        user_model: TopicalUserModel,
        frontend: Optional[FrontEnd] = None,
        click_model: Optional[PositionBiasedClickModel] = None,
        seed: int = 23,
    ) -> None:
        self.backend = backend
        self.frontend = frontend or FrontEnd()
        self.user_model = user_model
        self.click_model = click_model or backend.click_model
        self.log = QueryLog()
        self._rng = random.Random(seed)

    # ----------------------------------------------------------------- serve

    def serve_query(self, query: str) -> int:
        """Serve one query, simulate clicks, log everything; returns clicks."""
        rewrites = self.frontend.rewrites(query)
        page = self.backend.serve(query, rewrites)
        clicks = 0
        for placement in page.placements:
            relevance = self.user_model.relevance(query, placement.ad_id, self._rng)
            clicked = self.click_model.simulate_click(placement.position, relevance, self._rng)
            clicks += int(clicked)
            self.backend.record_impression(query, placement.ad_id, placement.position, clicked)
            self.log.append(
                ClickLogRecord(
                    query=query,
                    ad_id=placement.ad_id,
                    position=placement.position,
                    clicked=clicked,
                    matched_query=placement.matched_query,
                )
            )
        return clicks

    def serve_traffic(self, traffic: Iterable[str]) -> ServingReport:
        """Serve a whole traffic stream."""
        queries_served = 0
        clicks = 0
        impressions_before = len(self.log)
        for query in traffic:
            queries_served += 1
            clicks += self.serve_query(query)
        return ServingReport(
            queries_served=queries_served,
            impressions=len(self.log) - impressions_before,
            clicks=clicks,
        )

    # ------------------------------------------------------------ aggregation

    def build_click_graph(self, min_clicks: int = 1) -> ClickGraph:
        """Aggregate the accumulated log into a click graph."""
        return build_click_graph_from_log(
            self.log.impressions(),
            position_prior=self.click_model.examination_prior(),
            min_clicks=min_clicks,
        )
