"""Serving logs: the raw material of the click graph."""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterator, List, Union

from repro.graph.builders import ImpressionRecord

__all__ = ["ClickLogRecord", "QueryLog"]

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ClickLogRecord:
    """One displayed ad: which query triggered it, where, and whether it was clicked."""

    query: str
    ad_id: str
    position: int
    clicked: bool
    #: Which query (the original or a rewrite) actually matched the bid.
    matched_query: str = ""

    def to_impression(self) -> ImpressionRecord:
        """Convert to the click-graph builder's impression record."""
        return ImpressionRecord(
            query=self.query, ad=self.ad_id, position=self.position, clicked=self.clicked
        )


class QueryLog:
    """Append-only impression/click log with JSONL persistence."""

    def __init__(self) -> None:
        self._records: List[ClickLogRecord] = []

    def append(self, record: ClickLogRecord) -> None:
        self._records.append(record)

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ClickLogRecord]:
        return iter(self._records)

    def impressions(self) -> Iterator[ImpressionRecord]:
        """Iterate the log as click-graph builder records."""
        for record in self._records:
            yield record.to_impression()

    def click_count(self) -> int:
        return sum(1 for record in self._records if record.clicked)

    # ----------------------------------------------------------- persistence

    def write_jsonl(self, path: PathLike) -> int:
        with open(path, "w", encoding="utf-8") as handle:
            for record in self._records:
                handle.write(json.dumps(asdict(record)) + "\n")
        return len(self._records)

    @classmethod
    def read_jsonl(cls, path: PathLike) -> "QueryLog":
        log = cls()
        with open(path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                log.append(ClickLogRecord(**payload))
        return log
