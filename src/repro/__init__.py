"""Simrank++: query rewriting through link analysis of the click graph.

A full reproduction of Antonellis, Garcia-Molina & Chang (VLDB 2008):
plain bipartite SimRank, evidence-based SimRank and weighted SimRank
("Simrank++") over weighted query-ad click graphs, plus every substrate the
paper's evaluation depends on -- click-graph construction and storage, local
graph partitioning, a sponsored-search serving simulator, a synthetic
Yahoo!-like workload generator, a simulated editorial judge and the complete
evaluation harness that regenerates the paper's tables and figures.

The serving front door is :class:`~repro.api.engine.RewriteEngine`: fit a
similarity method on a click graph once (offline), then serve cached,
filtered top-k rewrite lists (online).

Quickstart::

    from repro import ClickGraph, EngineConfig, RewriteEngine

    graph = ClickGraph()
    graph.add_edge("camera", "hp.com", impressions=500, clicks=40)
    graph.add_edge("digital camera", "hp.com", impressions=400, clicks=35)

    engine = RewriteEngine.from_graph(
        graph, EngineConfig(method="weighted_simrank")
    ).fit()
    for rewrite in engine.rewrite("camera").rewrites:
        print(rewrite.rewrite, rewrite.score)
    print(engine.explain("camera", "digital camera").reason)

Custom similarity methods plug into the registry without touching core::

    from repro import register_method

    @register_method("my_method", backends=("matrix",))
    def build_my_method(config, backend):
        return MyMethod(config=config)

    engine = RewriteEngine.from_graph(graph, EngineConfig(method="my_method")).fit()

Fitted engines also serve without the score matrix resident:
``engine.export_store(path)`` materializes the rewrite lists into a
single-file SQLite serving store and ``RewriteEngine.from_store(path)``
revives a serving-only engine answering byte-equal rewrites via indexed
point lookups (see :mod:`repro.store`);
:func:`~repro.api.sources.resolve_engine_source` is the one front door
over store / snapshot / fresh-fit engine construction.

The pre-registry entry point ``create_method(name, config, backend)`` still
works as a deprecation shim (removal planned for version 2.0); see
CHANGES.md for the migration note.
"""

from repro.api import (
    EngineConfig,
    EngineSnapshotStore,
    ResolvedEngine,
    RewriteEngine,
    available_methods,
    register_method,
    resolve_engine_source,
)
from repro.core import (
    BipartiteSimrank,
    EvidenceSimrank,
    MatrixSimrank,
    PearsonSimilarity,
    QueryRewriter,
    ShardedSimrank,
    SparseSimrank,
    SimilarityScores,
    ArraySimilarityScores,
    SimrankConfig,
    WeightedSimrank,
    create_method,
)
from repro.eval import EditorialJudge, ExperimentHarness
from repro.serving import EngineHolder, RewriteServer, ServerConfig
from repro.graph import (
    ClickGraph,
    ClickGraphDelta,
    ClickGraphStore,
    DeltaBuilder,
    EdgeStats,
    WeightSource,
)
from repro.store import (
    InMemoryServingStore,
    ServingOnlyEngineError,
    ServingStore,
    SqliteServingStore,
    StoreError,
)
from repro.synth import generate_workload, yahoo_like_workload

__version__ = "1.2.0"

__all__ = [
    "EngineConfig",
    "EngineSnapshotStore",
    "ResolvedEngine",
    "RewriteEngine",
    "available_methods",
    "register_method",
    "resolve_engine_source",
    "InMemoryServingStore",
    "ServingOnlyEngineError",
    "ServingStore",
    "SqliteServingStore",
    "StoreError",
    "BipartiteSimrank",
    "EvidenceSimrank",
    "MatrixSimrank",
    "PearsonSimilarity",
    "QueryRewriter",
    "ShardedSimrank",
    "SparseSimrank",
    "SimilarityScores",
    "ArraySimilarityScores",
    "SimrankConfig",
    "WeightedSimrank",
    "create_method",
    "EditorialJudge",
    "ExperimentHarness",
    "EngineHolder",
    "RewriteServer",
    "ServerConfig",
    "ClickGraph",
    "ClickGraphDelta",
    "ClickGraphStore",
    "DeltaBuilder",
    "EdgeStats",
    "WeightSource",
    "generate_workload",
    "yahoo_like_workload",
    "__version__",
]
