"""Simrank++: query rewriting through link analysis of the click graph.

A full reproduction of Antonellis, Garcia-Molina & Chang (VLDB 2008):
plain bipartite SimRank, evidence-based SimRank and weighted SimRank
("Simrank++") over weighted query-ad click graphs, plus every substrate the
paper's evaluation depends on -- click-graph construction and storage, local
graph partitioning, a sponsored-search serving simulator, a synthetic
Yahoo!-like workload generator, a simulated editorial judge and the complete
evaluation harness that regenerates the paper's tables and figures.

Quickstart::

    from repro import ClickGraph, SimrankConfig, WeightedSimrank

    graph = ClickGraph()
    graph.add_edge("camera", "hp.com", impressions=500, clicks=40)
    graph.add_edge("digital camera", "hp.com", impressions=400, clicks=35)

    method = WeightedSimrank(SimrankConfig(iterations=7)).fit(graph)
    print(method.query_similarity("camera", "digital camera"))
"""

from repro.core import (
    BipartiteSimrank,
    EvidenceSimrank,
    MatrixSimrank,
    PearsonSimilarity,
    QueryRewriter,
    SimilarityScores,
    SimrankConfig,
    WeightedSimrank,
    available_methods,
    create_method,
)
from repro.eval import EditorialJudge, ExperimentHarness
from repro.graph import ClickGraph, ClickGraphStore, EdgeStats, WeightSource
from repro.synth import generate_workload, yahoo_like_workload

__version__ = "1.0.0"

__all__ = [
    "BipartiteSimrank",
    "EvidenceSimrank",
    "MatrixSimrank",
    "PearsonSimilarity",
    "QueryRewriter",
    "SimilarityScores",
    "SimrankConfig",
    "WeightedSimrank",
    "available_methods",
    "create_method",
    "EditorialJudge",
    "ExperimentHarness",
    "ClickGraph",
    "ClickGraphStore",
    "EdgeStats",
    "WeightSource",
    "generate_workload",
    "yahoo_like_workload",
    "__version__",
]
