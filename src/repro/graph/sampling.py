"""Evaluation-query sampling.

The paper samples its evaluation queries "with uniform probability, from live
traffic" (Section 9.2): because popular queries appear many times in the
traffic stream, a uniform sample *of the stream* is a popularity-weighted
sample of distinct queries.  The sample is then intersected with the queries
present in the extracted subgraphs, yielding the final evaluation set.
"""

from __future__ import annotations

import random
from collections import Counter
from typing import Hashable, Iterable, List, Optional, Sequence

from repro.graph.click_graph import ClickGraph

__all__ = ["sample_queries_by_traffic", "intersect_with_graph"]

Node = Hashable


def sample_queries_by_traffic(
    traffic: Sequence[Node],
    sample_size: int,
    rng: Optional[random.Random] = None,
    unique: bool = True,
) -> List[Node]:
    """Sample queries uniformly from a traffic stream.

    ``traffic`` is the raw stream of issued queries (with repetitions); the
    returned sample is therefore popularity-weighted over distinct queries.
    With ``unique=True`` duplicates are removed while preserving the sampling
    order, so the result may be shorter than ``sample_size``.
    """
    if sample_size < 0:
        raise ValueError("sample_size must be non-negative")
    if not traffic:
        return []
    rng = rng or random.Random()
    draws = [traffic[rng.randrange(len(traffic))] for _ in range(sample_size)]
    if not unique:
        return draws
    seen = set()
    sample: List[Node] = []
    for query in draws:
        if query not in seen:
            seen.add(query)
            sample.append(query)
    return sample


def intersect_with_graph(queries: Iterable[Node], graph: ClickGraph) -> List[Node]:
    """Keep only the sampled queries that appear in the click graph.

    This mirrors the paper's reduction of the 1200-query benchmark sample to
    the 120 queries present in the five-subgraphs dataset.
    """
    return [query for query in queries if graph.has_query(query) and graph.query_degree(query) > 0]


def traffic_popularity(traffic: Sequence[Node]) -> Counter:
    """Frequency of each distinct query in the traffic stream."""
    return Counter(traffic)
