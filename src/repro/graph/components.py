"""Connected components of a click graph.

The Yahoo! click graph of the paper "consists of one huge connected component
and several smaller subgraphs" (Section 9.2).  These helpers find the
components so that the partitioning stage can focus on the giant one.
"""

from __future__ import annotations

from collections import deque
from typing import Hashable, List, Set, Tuple

from repro.graph.click_graph import ClickGraph

__all__ = [
    "connected_components",
    "largest_component",
    "component_of",
    "bfs_ball",
    "reachable_queries",
]

Node = Hashable


def connected_components(graph: ClickGraph) -> List[Tuple[Set[Node], Set[Node]]]:
    """Return the connected components as ``(queries, ads)`` pairs.

    Components are sorted by decreasing total node count so the giant
    component comes first.  Isolated nodes form singleton components.
    """
    seen_queries: Set[Node] = set()
    seen_ads: Set[Node] = set()
    components: List[Tuple[Set[Node], Set[Node]]] = []

    for start in graph.queries():
        if start in seen_queries:
            continue
        queries, ads = _bfs(graph, start_query=start)
        seen_queries |= queries
        seen_ads |= ads
        components.append((queries, ads))

    for start in graph.ads():
        if start in seen_ads:
            continue
        queries, ads = _bfs(graph, start_ad=start)
        seen_queries |= queries
        seen_ads |= ads
        components.append((queries, ads))

    components.sort(key=lambda pair: len(pair[0]) + len(pair[1]), reverse=True)
    return components


def largest_component(graph: ClickGraph) -> ClickGraph:
    """Induced subgraph on the largest connected component."""
    components = connected_components(graph)
    if not components:
        return ClickGraph()
    queries, ads = components[0]
    return graph.subgraph(queries=queries, ads=ads)


def component_of(graph: ClickGraph, query: Node) -> Tuple[Set[Node], Set[Node]]:
    """The connected component containing a given query node."""
    if not graph.has_query(query):
        raise KeyError(f"query {query!r} is not in the graph")
    return _bfs(graph, start_query=query)


def reachable_queries(
    graph: ClickGraph,
    queries: Set[Node] = frozenset(),
    ads: Set[Node] = frozenset(),
) -> Set[Node]:
    """All query nodes connected to any of the given seed nodes.

    One traversal over the union of the seeds' components (components
    reached from an earlier seed are not re-walked).  Seeds absent from the
    graph are ignored -- a delta's touched nodes may include endpoints that
    a removal left behind in a previous graph state.  This is the
    invalidation primitive of :meth:`repro.api.engine.RewriteEngine.refresh`:
    SimRank-family scores only change within components that contain a
    changed edge, so the queries whose rewrites could change are exactly the
    ones reachable from the delta's endpoints.
    """
    seen_queries: Set[Node] = set()
    seen_ads: Set[Node] = set()
    for query in queries:
        if graph.has_query(query) and query not in seen_queries:
            component_queries, component_ads = _bfs(graph, start_query=query)
            seen_queries |= component_queries
            seen_ads |= component_ads
    for ad in ads:
        if graph.has_ad(ad) and ad not in seen_ads:
            component_queries, component_ads = _bfs(graph, start_ad=ad)
            seen_queries |= component_queries
            seen_ads |= component_ads
    return seen_queries


def bfs_ball(graph: ClickGraph, query: Node, radius: int) -> Tuple[Set[Node], Set[Node]]:
    """Queries and ads within ``radius`` hops of a query node.

    Hop counts alternate sides (query -> ad is one hop).  SimRank scores after
    ``k`` iterations only depend on nodes within ``2k`` hops, so restricting a
    computation to such a ball is a sound locality optimization.
    """
    if not graph.has_query(query):
        raise KeyError(f"query {query!r} is not in the graph")
    if radius < 0:
        raise ValueError("radius must be non-negative")
    queries: Set[Node] = {query}
    ads: Set[Node] = set()
    frontier = deque([("query", query, 0)])
    while frontier:
        kind, node, depth = frontier.popleft()
        if depth >= radius:
            continue
        if kind == "query":
            for ad in graph.ads_of(node):
                if ad not in ads:
                    ads.add(ad)
                    frontier.append(("ad", ad, depth + 1))
        else:
            for neighbour in graph.queries_of(node):
                if neighbour not in queries:
                    queries.add(neighbour)
                    frontier.append(("query", neighbour, depth + 1))
    return queries, ads


def _bfs(
    graph: ClickGraph,
    start_query: Node = None,
    start_ad: Node = None,
) -> Tuple[Set[Node], Set[Node]]:
    """Breadth-first traversal from a query or ad node."""
    queries: Set[Node] = set()
    ads: Set[Node] = set()
    frontier = deque()
    if start_query is not None:
        queries.add(start_query)
        frontier.append(("query", start_query))
    if start_ad is not None:
        ads.add(start_ad)
        frontier.append(("ad", start_ad))

    while frontier:
        kind, node = frontier.popleft()
        if kind == "query":
            for ad in graph.ads_of(node):
                if ad not in ads:
                    ads.add(ad)
                    frontier.append(("ad", ad))
        else:
            for query in graph.queries_of(node):
                if query not in queries:
                    queries.add(query)
                    frontier.append(("query", query))
    return queries, ads
