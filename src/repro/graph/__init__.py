"""Click graph substrate.

This package implements the weighted bipartite *click graph* described in
Section 2 of the paper: queries on one side, ads on the other, and an edge
``(q, a)`` whenever ad ``a`` received at least one click for query ``q``.
Each edge carries three weights: the number of impressions, the number of
clicks and the (position-adjusted) expected click rate.

The main entry point is :class:`ClickGraph`.  Helpers cover construction from
raw click logs (:mod:`repro.graph.builders`), persistence
(:mod:`repro.graph.io`, :mod:`repro.graph.storage`), structural statistics
(:mod:`repro.graph.statistics`), connected components
(:mod:`repro.graph.components`), incremental updates between collection
periods (:mod:`repro.graph.delta`) and integrity validation
(:mod:`repro.graph.validation`).
"""

from repro.graph.click_graph import ClickGraph, EdgeStats, NodeKind, WeightSource
from repro.graph.builders import build_click_graph_from_log, merge_click_graphs
from repro.graph.components import connected_components, largest_component, reachable_queries
from repro.graph.delta import ClickGraphDelta, DeltaBuilder
from repro.graph.io import (
    read_edges_jsonl,
    read_edges_tsv,
    write_edges_jsonl,
    write_edges_tsv,
)
from repro.graph.sampling import sample_queries_by_traffic
from repro.graph.statistics import (
    DatasetStatistics,
    DegreeDistribution,
    dataset_statistics,
    degree_distribution,
    estimate_power_law_exponent,
)
from repro.graph.storage import ClickGraphStore
from repro.graph.validation import ValidationIssue, validate_click_graph

__all__ = [
    "ClickGraph",
    "EdgeStats",
    "NodeKind",
    "WeightSource",
    "build_click_graph_from_log",
    "merge_click_graphs",
    "connected_components",
    "largest_component",
    "reachable_queries",
    "ClickGraphDelta",
    "DeltaBuilder",
    "read_edges_jsonl",
    "read_edges_tsv",
    "write_edges_jsonl",
    "write_edges_tsv",
    "sample_queries_by_traffic",
    "DatasetStatistics",
    "DegreeDistribution",
    "dataset_statistics",
    "degree_distribution",
    "estimate_power_law_exponent",
    "ClickGraphStore",
    "ValidationIssue",
    "validate_click_graph",
]
