"""Build click graphs from raw serving logs.

The paper's click graph is derived from two weeks of sponsored-search serving
logs: every time an ad is displayed for a query the back-end records an
*impression*, and every click on a displayed ad records a *click*.  The
builders here aggregate such per-event records into the per-edge statistics
of :class:`repro.graph.ClickGraph`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Mapping, Optional, Tuple

from repro.graph.click_graph import ClickGraph, EdgeStats

__all__ = ["ImpressionRecord", "build_click_graph_from_log", "merge_click_graphs"]

Node = Hashable


@dataclass(frozen=True)
class ImpressionRecord:
    """One ad impression as logged by the serving back-end.

    ``position`` is the rank (1 = top) at which the ad was displayed; it is
    used by the expected-click-rate estimator to correct for position bias.
    """

    query: Node
    ad: Node
    position: int = 1
    clicked: bool = False


def build_click_graph_from_log(
    records: Iterable[ImpressionRecord],
    position_prior: Optional[Mapping[int, float]] = None,
    min_clicks: int = 1,
) -> ClickGraph:
    """Aggregate impression records into a click graph.

    Parameters
    ----------
    records:
        Impression / click events.
    position_prior:
        Estimated probability that *any* ad at a given position is examined
        by the user.  When provided, the expected click rate of an edge is
        the position-debiased ratio ``sum(click_i) / sum(prior(position_i))``
        clamped to ``[0, 1]``; otherwise the raw clicks/impressions ratio is
        used.
    min_clicks:
        Only query-ad pairs with at least this many clicks become edges.
        The paper requires at least one click (Section 2); raising the
        threshold is useful to denoise synthetic logs.
    """
    impressions: Dict[Tuple[Node, Node], int] = defaultdict(int)
    clicks: Dict[Tuple[Node, Node], int] = defaultdict(int)
    examine_mass: Dict[Tuple[Node, Node], float] = defaultdict(float)

    for record in records:
        key = (record.query, record.ad)
        impressions[key] += 1
        if record.clicked:
            clicks[key] += 1
        if position_prior is not None:
            examine_mass[key] += position_prior.get(record.position, 1.0)

    graph = ClickGraph()
    for key, impression_count in impressions.items():
        click_count = clicks.get(key, 0)
        if click_count < min_clicks:
            continue
        if position_prior is not None and examine_mass[key] > 0:
            ecr = min(1.0, click_count / examine_mass[key])
        else:
            ecr = click_count / impression_count if impression_count else 0.0
        query, ad = key
        graph.add_edge_stats(
            query,
            ad,
            EdgeStats(
                impressions=impression_count,
                clicks=click_count,
                expected_click_rate=ecr,
            ),
        )
    return graph


def merge_click_graphs(graphs: Iterable[ClickGraph]) -> ClickGraph:
    """Union several click graphs, merging statistics of shared edges.

    Useful for combining the per-day graphs of a multi-day log collection
    into the single two-week graph the paper operates on.
    """
    merged = ClickGraph()
    for graph in graphs:
        for query in graph.queries():
            merged.add_query(query)
        for ad in graph.ads():
            merged.add_ad(ad)
        for query, ad, stats in graph.edges():
            merged.add_edge_stats(query, ad, stats, merge=True)
    return merged
