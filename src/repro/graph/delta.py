"""Incremental click-graph updates: deltas between two collection periods.

A production click graph changes continuously -- new queries appear, click
counts shift, stale edges age out -- yet the similarity fixpoint is an
offline computation over the whole graph.  :class:`ClickGraphDelta` is the
unit of change between two graph states: the edges that were added, the
edges whose statistics changed and the edges that disappeared.  It is the
input of :meth:`ClickGraph.apply_delta` (bring a graph forward) and of
:meth:`repro.api.engine.RewriteEngine.refresh` (bring a *fitted engine*
forward with a warm-started refit instead of a cold fixpoint).

Deltas come from two places:

* **capture** -- :meth:`ClickGraphDelta.between` diffs two full graphs, the
  batch path when yesterday's and today's graphs both exist;
* **recording** -- :class:`DeltaBuilder` accumulates individual edge events
  (the streaming path) and builds the delta once per refresh interval.

A delta only carries *edges*.  Endpoints of added edges are created on
apply when missing; endpoints of removed edges stay behind (possibly
isolated), mirroring :meth:`ClickGraph.remove_edge` and the paper's
edge-removal experiment (Section 9.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional, Set, Tuple

from repro.graph.click_graph import ClickGraph, EdgeStats

__all__ = ["ClickGraphDelta", "DeltaBuilder"]

Node = Hashable
Edge = Tuple[Node, Node]


@dataclass(frozen=True)
class ClickGraphDelta:
    """The edge changes between two click-graph states.

    Attributes
    ----------
    added:
        Edges absent before and present after, with their statistics.
    updated:
        Edges present in both states whose statistics changed, with the
        *new* statistics.
    removed:
        Edges present before and absent after.

    The three groups must be disjoint; :meth:`ClickGraph.apply_delta`
    additionally validates each group against the graph it is applied to
    (added edges must be absent, updated/removed edges present), so a delta
    captured against one graph state cannot be silently applied to another.
    """

    added: Tuple[Tuple[Node, Node, EdgeStats], ...] = ()
    updated: Tuple[Tuple[Node, Node, EdgeStats], ...] = ()
    removed: Tuple[Edge, ...] = ()

    def __post_init__(self) -> None:
        groups = {
            "added": {(query, ad) for query, ad, _ in self.added},
            "updated": {(query, ad) for query, ad, _ in self.updated},
            "removed": set(self.removed),
        }
        for name, edges in groups.items():
            source = getattr(self, name)
            if len(edges) != len(source):
                raise ValueError(f"delta lists the same edge twice under {name!r}")
        for first, second in (("added", "updated"), ("added", "removed"), ("updated", "removed")):
            overlap = groups[first] & groups[second]
            if overlap:
                raise ValueError(
                    f"delta lists edge {next(iter(overlap))!r} under both "
                    f"{first!r} and {second!r}"
                )

    # ------------------------------------------------------------------ shape

    @property
    def is_empty(self) -> bool:
        """Whether the delta changes nothing (a no-op refresh)."""
        return not (self.added or self.updated or self.removed)

    def __len__(self) -> int:
        """Total number of edge changes."""
        return len(self.added) + len(self.updated) + len(self.removed)

    def __bool__(self) -> bool:
        return not self.is_empty

    def touched_queries(self) -> Set[Node]:
        """Query endpoints of every changed edge."""
        return (
            {query for query, _, _ in self.added}
            | {query for query, _, _ in self.updated}
            | {query for query, _ in self.removed}
        )

    def touched_ads(self) -> Set[Node]:
        """Ad endpoints of every changed edge."""
        return (
            {ad for _, ad, _ in self.added}
            | {ad for _, ad, _ in self.updated}
            | {ad for _, ad in self.removed}
        )

    # ---------------------------------------------------------------- capture

    @classmethod
    def between(cls, old: ClickGraph, new: ClickGraph) -> "ClickGraphDelta":
        """The delta that brings ``old`` to ``new``'s edge set.

        ``old.copy().apply_delta(ClickGraphDelta.between(old, new))`` has
        exactly ``new``'s edges.  Node-only differences (isolated nodes
        added or dropped) are not captured: deltas are about edges, and the
        similarity fixpoint never reads isolated nodes.
        """
        old_edges: Dict[Edge, EdgeStats] = {(q, a): s for q, a, s in old.edges()}
        added = []
        updated = []
        for query, ad, stats in new.edges():
            previous = old_edges.pop((query, ad), None)
            if previous is None:
                added.append((query, ad, stats))
            elif previous != stats:
                updated.append((query, ad, stats))
        removed = sorted(old_edges, key=repr)
        return cls(
            added=tuple(sorted(added, key=lambda edge: repr(edge[:2]))),
            updated=tuple(sorted(updated, key=lambda edge: repr(edge[:2]))),
            removed=tuple(removed),
        )

    def inverted(self, graph: ClickGraph) -> "ClickGraphDelta":
        """The delta that undoes this one, captured against ``graph``.

        ``graph`` must be the *pre-apply* state (updated/removed edges still
        present with their old statistics, added edges absent) -- applying
        this delta and then the returned inverse restores that state's
        *edge set* exactly.  Nodes are never deleted (deltas are about
        edges, and :meth:`ClickGraph.remove_edge` keeps endpoints), so
        endpoints introduced by this delta survive the round trip as
        isolated nodes -- invisible to the similarity fixpoint, which never
        reads zero-degree nodes.  This is the rollback primitive of
        :meth:`repro.api.engine.RewriteEngine.refresh`, which must not
        leave the bound graph's edges mutated when the refit after it
        fails.
        """
        inverse_removed = tuple((query, ad) for query, ad, _ in self.added)
        inverse_updated = []
        inverse_added = []
        for query, ad, _ in self.updated:
            stats = graph.edge(query, ad)
            if stats is None:
                raise ValueError(
                    f"cannot invert: updated edge ({query!r}, {ad!r}) is not "
                    "in the graph -- invert against the pre-apply state"
                )
            inverse_updated.append((query, ad, stats))
        for query, ad in self.removed:
            stats = graph.edge(query, ad)
            if stats is None:
                raise ValueError(
                    f"cannot invert: removed edge ({query!r}, {ad!r}) is not "
                    "in the graph -- invert against the pre-apply state"
                )
            inverse_added.append((query, ad, stats))
        return ClickGraphDelta(
            added=tuple(inverse_added),
            updated=tuple(inverse_updated),
            removed=inverse_removed,
        )

    # ------------------------------------------------------------------ apply

    def apply_to(self, graph: ClickGraph) -> ClickGraph:
        """Apply the delta to ``graph`` in place and return it.

        The whole delta is validated *before* the first mutation, so a
        mismatched delta (an "added" edge that already exists, an "updated"
        or "removed" edge that does not) raises :class:`ValueError` and
        leaves the graph untouched -- never half-applied.
        """
        for query, ad, _ in self.added:
            if graph.has_edge(query, ad):
                raise ValueError(
                    f"delta adds edge ({query!r}, {ad!r}) which already exists; "
                    "capture the delta against the graph it is applied to"
                )
        for group in (self.updated, ((q, a, None) for q, a in self.removed)):
            for query, ad, _ in group:
                if not graph.has_edge(query, ad):
                    raise ValueError(
                        f"delta changes edge ({query!r}, {ad!r}) which is not in "
                        "the graph; capture the delta against the graph it is "
                        "applied to"
                    )
        for query, ad, stats in self.added:
            graph.add_edge_stats(query, ad, stats)
        for query, ad, stats in self.updated:
            graph.add_edge_stats(query, ad, stats)
        for query, ad in self.removed:
            graph.remove_edge(query, ad)
        return graph

    def __repr__(self) -> str:
        return (
            f"ClickGraphDelta(added={len(self.added)}, "
            f"updated={len(self.updated)}, removed={len(self.removed)})"
        )


class DeltaBuilder:
    """Accumulate edge events against a base graph and build one delta.

    The streaming capture path: hold the graph the serving engine was fitted
    on, record click-log events as they arrive, and :meth:`build` the delta
    once per refresh interval::

        builder = DeltaBuilder(fitted_graph)
        builder.set_edge("camera", "hp.com", impressions=120, clicks=14)
        builder.remove_edge("flowers", "stale-ad.com")
        engine.refresh(builder.build())

    Events are reconciled against the base graph at build time: setting an
    edge back to its original statistics cancels out, a set followed by a
    remove collapses to a remove, and so on -- the built delta is always
    minimal and valid for the base graph.
    """

    def __init__(self, base: ClickGraph) -> None:
        self._base = base
        #: Target statistics per touched edge; ``None`` marks a removal.
        self._pending: Dict[Edge, Optional[EdgeStats]] = {}

    def set_edge(
        self,
        query: Node,
        ad: Node,
        impressions: int = 1,
        clicks: int = 1,
        expected_click_rate: Optional[float] = None,
    ) -> "DeltaBuilder":
        """Record that the edge's statistics are now these values."""
        stats = EdgeStats(
            impressions=impressions,
            clicks=clicks,
            expected_click_rate=-1.0 if expected_click_rate is None else expected_click_rate,
        )
        return self.set_edge_stats(query, ad, stats)

    def set_edge_stats(self, query: Node, ad: Node, stats: EdgeStats) -> "DeltaBuilder":
        """Record an edge's new statistics as an :class:`EdgeStats` instance."""
        self._pending[(query, ad)] = stats
        return self

    def merge_edge(self, query: Node, ad: Node, stats: EdgeStats) -> "DeltaBuilder":
        """Fold a new observation into the edge's pending (or base) statistics.

        Mirrors ``add_edge(..., merge=True)``: impressions and clicks add up,
        the expected click rate combines impression-weighted.  After a
        recorded :meth:`remove_edge`, the observation starts the edge fresh
        -- it must not merge with (and thereby resurrect) the removed
        statistics of the base graph.
        """
        if (query, ad) in self._pending:
            current = self._pending[(query, ad)]  # None after a removal
        else:
            current = self._base.edge(query, ad)
        if current is not None:
            stats = current.merged_with(stats)
        self._pending[(query, ad)] = stats
        return self

    def remove_edge(self, query: Node, ad: Node) -> "DeltaBuilder":
        """Record that the edge is gone."""
        self._pending[(query, ad)] = None
        return self

    def build(self) -> ClickGraphDelta:
        """The minimal delta for everything recorded since construction.

        Recorded events that end up matching the base graph (an edge set
        back to its original statistics, a removal of an edge the base never
        had) drop out entirely.
        """
        added = []
        updated = []
        removed = []
        for (query, ad), stats in self._pending.items():
            before = self._base.edge(query, ad)
            if stats is None:
                if before is not None:
                    removed.append((query, ad))
            elif before is None:
                added.append((query, ad, stats))
            elif before != stats:
                updated.append((query, ad, stats))
        return ClickGraphDelta(
            added=tuple(sorted(added, key=lambda edge: repr(edge[:2]))),
            updated=tuple(sorted(updated, key=lambda edge: repr(edge[:2]))),
            removed=tuple(sorted(removed, key=repr)),
        )

    def __repr__(self) -> str:
        return f"DeltaBuilder(pending={len(self._pending)})"
