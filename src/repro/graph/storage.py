"""SQLite-backed persistence for click graphs and bid lists.

The paper's pipeline keeps two durable artefacts around: the historical click
graph gathered by the back-end, and the list of queries that received at
least one bid during the collection period (used for bid-term filtering,
Section 9.3).  :class:`ClickGraphStore` persists both in a single SQLite
database so experiments can be re-run without regenerating the workload.
"""

from __future__ import annotations

import sqlite3
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, List, Set, Union

from repro.graph.click_graph import ClickGraph, EdgeStats

__all__ = ["ClickGraphStore"]

PathLike = Union[str, Path]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS graphs (
    name TEXT PRIMARY KEY,
    created_at TEXT DEFAULT CURRENT_TIMESTAMP
);
CREATE TABLE IF NOT EXISTS edges (
    graph_name TEXT NOT NULL,
    query TEXT NOT NULL,
    ad TEXT NOT NULL,
    impressions INTEGER NOT NULL,
    clicks INTEGER NOT NULL,
    expected_click_rate REAL NOT NULL,
    PRIMARY KEY (graph_name, query, ad),
    FOREIGN KEY (graph_name) REFERENCES graphs(name) ON DELETE CASCADE
);
CREATE INDEX IF NOT EXISTS idx_edges_query ON edges(graph_name, query);
CREATE INDEX IF NOT EXISTS idx_edges_ad ON edges(graph_name, ad);
CREATE TABLE IF NOT EXISTS bid_terms (
    list_name TEXT NOT NULL,
    query TEXT NOT NULL,
    PRIMARY KEY (list_name, query)
);
"""


class ClickGraphStore:
    """Store and retrieve named click graphs and bid-term lists in SQLite.

    The store can be used as a context manager::

        with ClickGraphStore("clicks.db") as store:
            store.save_graph("two-week", graph)
            later = store.load_graph("two-week")
    """

    def __init__(self, path: PathLike = ":memory:") -> None:
        self._path = str(path)
        self._connection = sqlite3.connect(self._path)
        self._connection.execute("PRAGMA foreign_keys = ON")
        self._connection.executescript(_SCHEMA)

    # ------------------------------------------------------------- lifecycle

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ClickGraphStore":
        return self

    def __exit__(self, exc_type, exc, traceback) -> None:
        self.close()

    @contextmanager
    def _transaction(self) -> Iterator[sqlite3.Cursor]:
        """All-or-nothing statement scope: commit on success, roll back on error.

        Without this, a failure between a ``DELETE`` and its replacing
        inserts leaves the delete pending on the connection, and any later
        unrelated ``commit`` silently persists the half-applied write.
        """
        cursor = self._connection.cursor()
        try:
            yield cursor
        except BaseException:
            self._connection.rollback()
            raise
        else:
            self._connection.commit()

    # ---------------------------------------------------------------- graphs

    def save_graph(self, name: str, graph: ClickGraph, replace: bool = True) -> int:
        """Persist a graph under ``name``; returns the number of edges stored.

        Node identifiers must be ``str``: SQLite stores them as text, so any
        other type would come back as ``str`` after a round trip and then
        silently miss every lookup against the original identifiers
        (``engine.rewrite(42)`` on a reloaded graph would never match the
        stored ``"42"``).  Non-string nodes raise ``TypeError`` before
        anything is written.  With ``replace=False`` saving over an existing
        name raises ``ValueError``.  The delete + insert pair runs in one
        transaction: a failed save leaves the previously stored graph intact.
        """
        exists = self._connection.execute(
            "SELECT 1 FROM graphs WHERE name = ?", (name,)
        ).fetchone()
        if exists and not replace:
            # Fail before touching graph.edges(): no row building, no writes.
            raise ValueError(f"graph {name!r} already exists")
        rows = []
        for query, ad, stats in graph.edges():
            if not isinstance(query, str) or not isinstance(ad, str):
                offender = query if not isinstance(query, str) else ad
                raise TypeError(
                    f"ClickGraphStore stores node ids as text; node {offender!r} "
                    f"({type(offender).__name__}) would come back as str after a "
                    "round trip and no longer match similarity lookups -- convert "
                    "node ids to str before saving"
                )
            rows.append(
                (name, query, ad, stats.impressions, stats.clicks, stats.expected_click_rate)
            )
        with self._transaction() as cursor:
            if exists:
                cursor.execute("DELETE FROM edges WHERE graph_name = ?", (name,))
            else:
                cursor.execute("INSERT INTO graphs (name) VALUES (?)", (name,))
            cursor.executemany(
                "INSERT INTO edges (graph_name, query, ad, impressions, clicks, expected_click_rate)"
                " VALUES (?, ?, ?, ?, ?, ?)",
                rows,
            )
        return len(rows)

    def load_graph(self, name: str) -> ClickGraph:
        """Load a previously saved graph.  Raises ``KeyError`` if unknown."""
        cursor = self._connection.cursor()
        exists = cursor.execute(
            "SELECT 1 FROM graphs WHERE name = ?", (name,)
        ).fetchone()
        if not exists:
            raise KeyError(f"no stored graph named {name!r}")
        graph = ClickGraph()
        rows = cursor.execute(
            "SELECT query, ad, impressions, clicks, expected_click_rate"
            " FROM edges WHERE graph_name = ?",
            (name,),
        )
        for query, ad, impressions, clicks, ecr in rows:
            graph.add_edge_stats(
                query,
                ad,
                EdgeStats(
                    impressions=impressions, clicks=clicks, expected_click_rate=ecr
                ),
            )
        return graph

    def delete_graph(self, name: str) -> None:
        """Remove a stored graph (no-op when absent)."""
        with self._transaction() as cursor:
            cursor.execute("DELETE FROM edges WHERE graph_name = ?", (name,))
            cursor.execute("DELETE FROM graphs WHERE name = ?", (name,))

    def list_graphs(self) -> List[str]:
        """Names of all stored graphs."""
        cursor = self._connection.cursor()
        return [row[0] for row in cursor.execute("SELECT name FROM graphs ORDER BY name")]

    def edge_count(self, name: str) -> int:
        """Number of edges stored for a graph."""
        cursor = self._connection.cursor()
        row = cursor.execute(
            "SELECT COUNT(*) FROM edges WHERE graph_name = ?", (name,)
        ).fetchone()
        return int(row[0])

    # ------------------------------------------------------------- bid terms

    def save_bid_terms(self, list_name: str, queries: Iterable[str], replace: bool = True) -> int:
        """Persist the set of queries that received bids during the period.

        Returns the number of rows actually inserted: with ``replace=False``,
        queries already stored under ``list_name`` are left in place by the
        ``INSERT OR IGNORE`` and do not count.  Like :meth:`save_graph`,
        non-``str`` queries raise ``TypeError`` -- a silently stringified
        term would come back as ``str`` and stop matching its node.
        """
        unique = set(queries)
        for query in unique:
            if not isinstance(query, str):
                raise TypeError(
                    f"bid terms are stored as text; term {query!r} "
                    f"({type(query).__name__}) would come back as str after a "
                    "round trip -- convert bid terms to str before saving"
                )
        rows = [(list_name, query) for query in unique]
        with self._transaction() as cursor:
            if replace:
                cursor.execute("DELETE FROM bid_terms WHERE list_name = ?", (list_name,))
            before = self._connection.total_changes
            cursor.executemany(
                "INSERT OR IGNORE INTO bid_terms (list_name, query) VALUES (?, ?)", rows
            )
            inserted = self._connection.total_changes - before
        return inserted

    def load_bid_terms(self, list_name: str) -> Set[str]:
        """Load a bid-term list (empty set when the list is unknown)."""
        cursor = self._connection.cursor()
        rows = cursor.execute(
            "SELECT query FROM bid_terms WHERE list_name = ?", (list_name,)
        )
        return {row[0] for row in rows}

    # ----------------------------------------------------------------- misc

    def query_neighbors(self, graph_name: str, query: str) -> List[str]:
        """Ads connected to ``query`` without materialising the whole graph."""
        cursor = self._connection.cursor()
        rows = cursor.execute(
            "SELECT ad FROM edges WHERE graph_name = ? AND query = ?",
            (graph_name, str(query)),
        )
        return [row[0] for row in rows]

    def vacuum(self) -> None:
        """Reclaim space after large deletions."""
        self._connection.execute("VACUUM")

    @property
    def path(self) -> str:
        return self._path
