"""Flat-file persistence of click graphs (TSV and JSON-lines)."""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.graph.click_graph import ClickGraph, EdgeStats

__all__ = ["write_edges_tsv", "read_edges_tsv", "write_edges_jsonl", "read_edges_jsonl"]

PathLike = Union[str, Path]

_TSV_HEADER = "query\tad\timpressions\tclicks\texpected_click_rate"


def write_edges_tsv(graph: ClickGraph, path: PathLike) -> int:
    """Write the graph's edge list as tab-separated values.

    Node identifiers are written with ``str()``; isolated nodes are not
    preserved.  Returns the number of edges written.
    """
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(_TSV_HEADER + "\n")
        for query, ad, stats in graph.edges():
            handle.write(
                f"{query}\t{ad}\t{stats.impressions}\t{stats.clicks}"
                f"\t{stats.expected_click_rate:.10g}\n"
            )
            count += 1
    return count


def read_edges_tsv(path: PathLike) -> ClickGraph:
    """Read a graph previously written by :func:`write_edges_tsv`."""
    graph = ClickGraph()
    with open(path, "r", encoding="utf-8") as handle:
        header = handle.readline().rstrip("\n")
        if header != _TSV_HEADER:
            raise ValueError(f"unexpected TSV header: {header!r}")
        for line_number, line in enumerate(handle, start=2):
            line = line.rstrip("\n")
            if not line:
                continue
            fields = line.split("\t")
            if len(fields) != 5:
                raise ValueError(f"line {line_number}: expected 5 fields, got {len(fields)}")
            query, ad, impressions, clicks, ecr = fields
            graph.add_edge_stats(
                query,
                ad,
                EdgeStats(
                    impressions=int(impressions),
                    clicks=int(clicks),
                    expected_click_rate=float(ecr),
                ),
            )
    return graph


def write_edges_jsonl(graph: ClickGraph, path: PathLike) -> int:
    """Write one JSON object per edge (preserves non-string identifiers that
    round-trip through JSON).  Returns the number of edges written."""
    count = 0
    with open(path, "w", encoding="utf-8") as handle:
        for query, ad, stats in graph.edges():
            record = {
                "query": query,
                "ad": ad,
                "impressions": stats.impressions,
                "clicks": stats.clicks,
                "expected_click_rate": stats.expected_click_rate,
            }
            handle.write(json.dumps(record) + "\n")
            count += 1
    return count


def read_edges_jsonl(path: PathLike) -> ClickGraph:
    """Read a graph previously written by :func:`write_edges_jsonl`."""
    graph = ClickGraph()
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            try:
                graph.add_edge_stats(
                    record["query"],
                    record["ad"],
                    EdgeStats(
                        impressions=int(record["impressions"]),
                        clicks=int(record["clicks"]),
                        expected_click_rate=float(record["expected_click_rate"]),
                    ),
                )
            except KeyError as exc:
                raise ValueError(f"line {line_number}: missing field {exc}") from exc
    return graph
