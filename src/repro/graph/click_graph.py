"""The weighted bipartite click graph (paper Section 2).

A click graph for a time period is an undirected, weighted, bipartite graph
``G = (Q, A, E)`` where ``Q`` is a set of queries, ``A`` a set of ads and
``E`` a set of edges connecting queries with ads.  ``G`` has an edge
``(q, a)`` if at least one user that issued ``q`` during the period also
clicked on ``a``.  Every edge carries three weights:

* ``impressions`` -- how many times the ad was displayed for the query,
* ``clicks`` -- how many of those displays were clicked (``<= impressions``),
* ``expected_click_rate`` -- a position-adjusted clicks/impressions ratio
  computed by the serving back-end.

The paper's similarity computations only ever need, for a node ``v``, the set
of neighbours ``E(v)`` and the per-edge weights, so the graph is stored as a
dict-of-dicts adjacency indexed from both sides.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, List, Mapping, Optional, Tuple

__all__ = ["ClickGraph", "EdgeStats", "NodeKind", "WeightSource"]

Node = Hashable


class NodeKind(str, enum.Enum):
    """Which side of the bipartite graph a node belongs to."""

    QUERY = "query"
    AD = "ad"


class WeightSource(str, enum.Enum):
    """Which edge statistic to use as the scalar edge weight ``w(q, a)``.

    The paper uses the expected click rate in all experiments that require an
    edge weight (Section 9.2); raw clicks and the clicks/impressions ratio
    are provided for the weight-source ablation.
    """

    EXPECTED_CLICK_RATE = "expected_click_rate"
    CLICKS = "clicks"
    CLICK_THROUGH_RATE = "click_through_rate"
    IMPRESSIONS = "impressions"


@dataclass(frozen=True)
class EdgeStats:
    """The three weights attached to a click-graph edge.

    ``expected_click_rate`` defaults to the raw clicks/impressions ratio when
    the serving back-end does not supply a position-adjusted estimate.
    """

    impressions: int
    clicks: int
    expected_click_rate: float = field(default=-1.0)

    def __post_init__(self) -> None:
        if self.impressions < 0:
            raise ValueError(f"impressions must be non-negative, got {self.impressions}")
        if self.clicks < 0:
            raise ValueError(f"clicks must be non-negative, got {self.clicks}")
        if self.clicks > self.impressions:
            raise ValueError(
                f"clicks ({self.clicks}) cannot exceed impressions ({self.impressions})"
            )
        if self.expected_click_rate < 0:
            object.__setattr__(self, "expected_click_rate", self.click_through_rate)
        if math.isnan(self.expected_click_rate) or self.expected_click_rate < 0:
            raise ValueError(
                f"expected_click_rate must be non-negative, got {self.expected_click_rate}"
            )

    @property
    def click_through_rate(self) -> float:
        """Raw clicks over impressions (0 when there were no impressions)."""
        if self.impressions == 0:
            return 0.0
        return self.clicks / self.impressions

    def weight(self, source: WeightSource = WeightSource.EXPECTED_CLICK_RATE) -> float:
        """Return the scalar weight selected by ``source``."""
        if source is WeightSource.EXPECTED_CLICK_RATE:
            return float(self.expected_click_rate)
        if source is WeightSource.CLICKS:
            return float(self.clicks)
        if source is WeightSource.CLICK_THROUGH_RATE:
            return self.click_through_rate
        if source is WeightSource.IMPRESSIONS:
            return float(self.impressions)
        raise ValueError(f"unknown weight source: {source!r}")

    def merged_with(self, other: "EdgeStats") -> "EdgeStats":
        """Combine two observations of the same edge (e.g. from two log shards).

        Impressions and clicks add up; the expected click rate is combined as
        an impression-weighted average, which is what re-estimating it over
        the union of the log shards would give.
        """
        impressions = self.impressions + other.impressions
        clicks = self.clicks + other.clicks
        if impressions > 0:
            ecr = (
                self.expected_click_rate * self.impressions
                + other.expected_click_rate * other.impressions
            ) / impressions
        else:
            ecr = max(self.expected_click_rate, other.expected_click_rate)
        return EdgeStats(impressions=impressions, clicks=clicks, expected_click_rate=ecr)


class ClickGraph:
    """Weighted bipartite query-ad click graph.

    Nodes on the two sides live in separate namespaces: the same string may be
    used both as a query and as an ad identifier without collision.

    >>> g = ClickGraph()
    >>> g.add_edge("camera", "hp.com", impressions=100, clicks=10)
    >>> g.ads_of("camera")
    {'hp.com': EdgeStats(impressions=100, clicks=10, expected_click_rate=0.1)}
    """

    def __init__(self) -> None:
        self._query_adj: Dict[Node, Dict[Node, EdgeStats]] = {}
        self._ad_adj: Dict[Node, Dict[Node, EdgeStats]] = {}

    # ------------------------------------------------------------------ nodes

    def add_query(self, query: Node) -> None:
        """Add an isolated query node (no-op if already present)."""
        self._query_adj.setdefault(query, {})

    def add_ad(self, ad: Node) -> None:
        """Add an isolated ad node (no-op if already present)."""
        self._ad_adj.setdefault(ad, {})

    def has_query(self, query: Node) -> bool:
        return query in self._query_adj

    def has_ad(self, ad: Node) -> bool:
        return ad in self._ad_adj

    def queries(self) -> Iterator[Node]:
        """Iterate over all query nodes."""
        return iter(self._query_adj)

    def ads(self) -> Iterator[Node]:
        """Iterate over all ad nodes."""
        return iter(self._ad_adj)

    @property
    def num_queries(self) -> int:
        return len(self._query_adj)

    @property
    def num_ads(self) -> int:
        return len(self._ad_adj)

    @property
    def num_nodes(self) -> int:
        return self.num_queries + self.num_ads

    # ------------------------------------------------------------------ edges

    def add_edge(
        self,
        query: Node,
        ad: Node,
        impressions: int = 1,
        clicks: int = 1,
        expected_click_rate: Optional[float] = None,
        merge: bool = False,
    ) -> None:
        """Add (or update) the edge between ``query`` and ``ad``.

        With ``merge=True`` an existing edge is combined with the new
        observation via :meth:`EdgeStats.merged_with`; otherwise the previous
        statistics are replaced.
        """
        stats = EdgeStats(
            impressions=impressions,
            clicks=clicks,
            expected_click_rate=-1.0 if expected_click_rate is None else expected_click_rate,
        )
        self.add_edge_stats(query, ad, stats, merge=merge)

    def add_edge_stats(self, query: Node, ad: Node, stats: EdgeStats, merge: bool = False) -> None:
        """Add an edge described by an :class:`EdgeStats` instance."""
        self.add_query(query)
        self.add_ad(ad)
        if merge and ad in self._query_adj[query]:
            stats = self._query_adj[query][ad].merged_with(stats)
        self._query_adj[query][ad] = stats
        self._ad_adj[ad][query] = stats

    def remove_edge(self, query: Node, ad: Node) -> EdgeStats:
        """Remove the edge and return its statistics.

        Raises ``KeyError`` if the edge does not exist.  The endpoints stay in
        the graph (possibly isolated) -- this mirrors the edge-removal
        desirability experiment of Section 9.3 where only edges are deleted.
        """
        stats = self._query_adj[query].pop(ad)
        self._ad_adj[ad].pop(query)
        return stats

    def edge(self, query: Node, ad: Node) -> Optional[EdgeStats]:
        """Return the edge statistics, or ``None`` when the edge is absent."""
        return self._query_adj.get(query, {}).get(ad)

    def has_edge(self, query: Node, ad: Node) -> bool:
        return ad in self._query_adj.get(query, {})

    @property
    def num_edges(self) -> int:
        return sum(len(neighbours) for neighbours in self._query_adj.values())

    def edges(self) -> Iterator[Tuple[Node, Node, EdgeStats]]:
        """Iterate over ``(query, ad, stats)`` triples."""
        for query, neighbours in self._query_adj.items():
            for ad, stats in neighbours.items():
                yield query, ad, stats

    # ------------------------------------------------------------- neighbours

    def ads_of(self, query: Node) -> Dict[Node, EdgeStats]:
        """Neighbour ads of a query, i.e. ``E(q)`` with edge statistics."""
        return dict(self._query_adj.get(query, {}))

    def queries_of(self, ad: Node) -> Dict[Node, EdgeStats]:
        """Neighbour queries of an ad, i.e. ``E(a)`` with edge statistics."""
        return dict(self._ad_adj.get(ad, {}))

    def neighbors(self, node: Node, kind: NodeKind) -> List[Node]:
        """Neighbours of ``node`` given which side it lives on."""
        if kind is NodeKind.QUERY:
            return list(self._query_adj.get(node, {}))
        return list(self._ad_adj.get(node, {}))

    def degree(self, node: Node, kind: NodeKind) -> int:
        """``N(v)``: the number of neighbours of ``v`` (paper Section 2)."""
        if kind is NodeKind.QUERY:
            return len(self._query_adj.get(node, {}))
        return len(self._ad_adj.get(node, {}))

    def query_degree(self, query: Node) -> int:
        return len(self._query_adj.get(query, {}))

    def ad_degree(self, ad: Node) -> int:
        return len(self._ad_adj.get(ad, {}))

    # --------------------------------------------------------------- weights

    def weight(
        self,
        query: Node,
        ad: Node,
        source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
    ) -> float:
        """Scalar weight ``w(q, a)`` of an edge under the chosen source.

        Missing edges have weight 0.
        """
        stats = self.edge(query, ad)
        if stats is None:
            return 0.0
        return stats.weight(source)

    def query_weights(
        self, query: Node, source: WeightSource = WeightSource.EXPECTED_CLICK_RATE
    ) -> Dict[Node, float]:
        """All edge weights incident to a query, keyed by ad."""
        return {
            ad: stats.weight(source) for ad, stats in self._query_adj.get(query, {}).items()
        }

    def ad_weights(
        self, ad: Node, source: WeightSource = WeightSource.EXPECTED_CLICK_RATE
    ) -> Dict[Node, float]:
        """All edge weights incident to an ad, keyed by query."""
        return {
            query: stats.weight(source) for query, stats in self._ad_adj.get(ad, {}).items()
        }

    def total_clicks(self) -> int:
        """Total number of clicks recorded on all edges."""
        return sum(stats.clicks for _, _, stats in self.edges())

    def total_impressions(self) -> int:
        """Total number of impressions recorded on all edges."""
        return sum(stats.impressions for _, _, stats in self.edges())

    # ------------------------------------------------------------ derivation

    def copy(self) -> "ClickGraph":
        """Deep-enough copy: edge stats are immutable, adjacency dicts are new."""
        clone = ClickGraph()
        for query in self._query_adj:
            clone.add_query(query)
        for ad in self._ad_adj:
            clone.add_ad(ad)
        for query, ad, stats in self.edges():
            clone.add_edge_stats(query, ad, stats)
        return clone

    def subgraph(
        self,
        queries: Optional[Iterable[Node]] = None,
        ads: Optional[Iterable[Node]] = None,
    ) -> "ClickGraph":
        """Induced subgraph on the given node subsets.

        When one side is omitted, all nodes on that side are kept; an edge
        survives only if both endpoints survive.
        """
        query_set = set(self._query_adj) if queries is None else set(queries)
        ad_set = set(self._ad_adj) if ads is None else set(ads)
        sub = ClickGraph()
        for query in query_set:
            if query in self._query_adj:
                sub.add_query(query)
        for ad in ad_set:
            if ad in self._ad_adj:
                sub.add_ad(ad)
        for query, ad, stats in self.edges():
            if query in query_set and ad in ad_set:
                sub.add_edge_stats(query, ad, stats)
        return sub

    def without_edges(self, edges: Iterable[Tuple[Node, Node]]) -> "ClickGraph":
        """Copy of the graph with the given ``(query, ad)`` edges removed.

        Unknown edges are ignored.  This is the primitive behind the paper's
        desirability edge-removal experiment (Section 9.3).
        """
        removed = set(edges)
        clone = ClickGraph()
        for query in self._query_adj:
            clone.add_query(query)
        for ad in self._ad_adj:
            clone.add_ad(ad)
        for query, ad, stats in self.edges():
            if (query, ad) not in removed:
                clone.add_edge_stats(query, ad, stats)
        return clone

    def apply_delta(self, delta) -> "ClickGraph":
        """Apply a :class:`~repro.graph.delta.ClickGraphDelta` in place.

        Adds, updates and removes the delta's edges and returns ``self``.
        The delta is validated against this graph before the first mutation
        (see :meth:`~repro.graph.delta.ClickGraphDelta.apply_to`), so a
        delta captured against a different graph state raises
        ``ValueError`` without half-applying.
        """
        return delta.apply_to(self)

    # ---------------------------------------------------------------- export

    def to_networkx(self):
        """Export to a ``networkx.Graph`` with bipartite node attributes."""
        import networkx as nx

        graph = nx.Graph()
        for query in self._query_adj:
            graph.add_node(("query", query), bipartite=0, kind="query", label=query)
        for ad in self._ad_adj:
            graph.add_node(("ad", ad), bipartite=1, kind="ad", label=ad)
        for query, ad, stats in self.edges():
            graph.add_edge(
                ("query", query),
                ("ad", ad),
                impressions=stats.impressions,
                clicks=stats.clicks,
                expected_click_rate=stats.expected_click_rate,
            )
        return graph

    def to_sparse_matrix(
        self,
        source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
        binary: bool = False,
    ) -> Tuple["object", List[Node], List[Node]]:
        """Export a query x ad ``scipy.sparse.csr_matrix`` of edge weights.

        Returns ``(matrix, query_index, ad_index)`` where the index lists map
        row/column positions back to node identifiers.  With ``binary=True``
        every edge exports as 1.0 regardless of its statistics (the adjacency
        indicator the SimRank engines iterate on); ``source`` is ignored.
        """
        import numpy as np
        from scipy import sparse

        query_index = sorted(self._query_adj, key=repr)
        ad_index = sorted(self._ad_adj, key=repr)
        query_pos = {query: i for i, query in enumerate(query_index)}
        ad_pos = {ad: j for j, ad in enumerate(ad_index)}

        rows: List[int] = []
        cols: List[int] = []
        data: List[float] = []
        for query, ad, stats in self.edges():
            rows.append(query_pos[query])
            cols.append(ad_pos[ad])
            data.append(1.0 if binary else stats.weight(source))
        matrix = sparse.csr_matrix(
            (np.array(data, dtype=float), (rows, cols)),
            shape=(len(query_index), len(ad_index)),
        )
        return matrix, query_index, ad_index

    @classmethod
    def from_edges(
        cls, edges: Iterable[Tuple[Node, Node, Mapping[str, float]]]
    ) -> "ClickGraph":
        """Build a graph from ``(query, ad, attrs)`` triples.

        ``attrs`` may contain ``impressions``, ``clicks`` and
        ``expected_click_rate``; missing counts default to one click / one
        impression (the unweighted graphs of the paper's Figures 3 and 4).
        """
        graph = cls()
        for query, ad, attrs in edges:
            graph.add_edge(
                query,
                ad,
                impressions=int(attrs.get("impressions", 1)),
                clicks=int(attrs.get("clicks", 1)),
                expected_click_rate=attrs.get("expected_click_rate"),
                merge=True,
            )
        return graph

    # ------------------------------------------------------------------ misc

    def __contains__(self, node: Node) -> bool:
        return node in self._query_adj or node in self._ad_adj

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ClickGraph):
            return NotImplemented
        return (
            set(self._query_adj) == set(other._query_adj)
            and set(self._ad_adj) == set(other._ad_adj)
            and {(q, a): s for q, a, s in self.edges()}
            == {(q, a): s for q, a, s in other.edges()}
        )

    def __repr__(self) -> str:
        return (
            f"ClickGraph(queries={self.num_queries}, ads={self.num_ads}, "
            f"edges={self.num_edges})"
        )
