"""Integrity validation of click graphs.

Before feeding a click graph to the similarity algorithms we check the
structural invariants the paper's definitions rely on: bipartiteness is
enforced by construction, but weights can still be inconsistent when graphs
are assembled from external files (clicks exceeding impressions, negative
expected click rates, self-inconsistent adjacency, dangling nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.graph.click_graph import ClickGraph

__all__ = ["ValidationIssue", "validate_click_graph"]


@dataclass(frozen=True)
class ValidationIssue:
    """One problem found in a click graph."""

    severity: str  # "error" or "warning"
    code: str
    message: str

    def __str__(self) -> str:
        return f"[{self.severity}] {self.code}: {self.message}"


def validate_click_graph(
    graph: ClickGraph,
    allow_isolated_nodes: bool = True,
    max_expected_click_rate: float = 1.0,
) -> List[ValidationIssue]:
    """Check a click graph and return the list of issues found.

    An empty list means the graph is clean.  ``EdgeStats`` already rejects
    locally inconsistent weights at construction time; this function covers
    graph-level issues and weight ranges.
    """
    issues: List[ValidationIssue] = []

    for query, ad, stats in graph.edges():
        if stats.clicks == 0:
            issues.append(
                ValidationIssue(
                    severity="error",
                    code="zero-click-edge",
                    message=(
                        f"edge ({query!r}, {ad!r}) has zero clicks; the click graph only "
                        "contains edges with at least one click"
                    ),
                )
            )
        if stats.expected_click_rate > max_expected_click_rate:
            issues.append(
                ValidationIssue(
                    severity="warning",
                    code="ecr-above-max",
                    message=(
                        f"edge ({query!r}, {ad!r}) has expected click rate "
                        f"{stats.expected_click_rate:.4f} > {max_expected_click_rate}"
                    ),
                )
            )
        if stats.impressions > 0 and stats.expected_click_rate == 0:
            issues.append(
                ValidationIssue(
                    severity="warning",
                    code="zero-ecr",
                    message=(
                        f"edge ({query!r}, {ad!r}) has clicks but a zero expected click "
                        "rate; weighted SimRank will ignore it"
                    ),
                )
            )

    if not allow_isolated_nodes:
        for query in graph.queries():
            if graph.query_degree(query) == 0:
                issues.append(
                    ValidationIssue(
                        severity="warning",
                        code="isolated-query",
                        message=f"query {query!r} has no incident edges",
                    )
                )
        for ad in graph.ads():
            if graph.ad_degree(ad) == 0:
                issues.append(
                    ValidationIssue(
                        severity="warning",
                        code="isolated-ad",
                        message=f"ad {ad!r} has no incident edges",
                    )
                )

    if graph.num_edges == 0 and graph.num_nodes > 0:
        issues.append(
            ValidationIssue(
                severity="warning",
                code="empty-edge-set",
                message="graph has nodes but no edges; similarity scores will all be zero",
            )
        )

    return issues
