"""Structural statistics of click graphs.

Section 9.2 of the paper reports, for the extracted dataset, the number of
queries, ads and edges per subgraph (Table 5) and observes power-law
distributions for ads-per-query, queries-per-ad and clicks per query-ad pair.
This module computes those statistics and fits power-law exponents so the
synthetic workload can be checked against the paper's qualitative claims.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from repro.graph.click_graph import ClickGraph

__all__ = [
    "DatasetStatistics",
    "DegreeDistribution",
    "dataset_statistics",
    "degree_distribution",
    "estimate_power_law_exponent",
]


@dataclass(frozen=True)
class DatasetStatistics:
    """Counts reported per subgraph in Table 5."""

    num_queries: int
    num_ads: int
    num_edges: int
    total_clicks: int = 0
    total_impressions: int = 0

    def as_row(self) -> Dict[str, int]:
        """Row in the shape of Table 5 (queries / ads / edges)."""
        return {
            "# of Queries": self.num_queries,
            "# of Ads": self.num_ads,
            "# of Edges": self.num_edges,
        }

    def __add__(self, other: "DatasetStatistics") -> "DatasetStatistics":
        return DatasetStatistics(
            num_queries=self.num_queries + other.num_queries,
            num_ads=self.num_ads + other.num_ads,
            num_edges=self.num_edges + other.num_edges,
            total_clicks=self.total_clicks + other.total_clicks,
            total_impressions=self.total_impressions + other.total_impressions,
        )


@dataclass(frozen=True)
class DegreeDistribution:
    """Histogram of a degree-like quantity plus a power-law exponent fit."""

    counts: Dict[int, int] = field(default_factory=dict)
    exponent: float = float("nan")

    @property
    def num_observations(self) -> int:
        return sum(self.counts.values())

    @property
    def mean(self) -> float:
        total = self.num_observations
        if total == 0:
            return 0.0
        return sum(value * count for value, count in self.counts.items()) / total

    @property
    def max(self) -> int:
        return max(self.counts) if self.counts else 0

    def fraction_at_least(self, threshold: int) -> float:
        """Fraction of observations with value >= ``threshold``."""
        total = self.num_observations
        if total == 0:
            return 0.0
        return sum(count for value, count in self.counts.items() if value >= threshold) / total


def dataset_statistics(graph: ClickGraph) -> DatasetStatistics:
    """Table-5 style statistics for one (sub)graph."""
    return DatasetStatistics(
        num_queries=graph.num_queries,
        num_ads=graph.num_ads,
        num_edges=graph.num_edges,
        total_clicks=graph.total_clicks(),
        total_impressions=graph.total_impressions(),
    )


def degree_distribution(graph: ClickGraph, side: str = "query") -> DegreeDistribution:
    """Distribution of ads-per-query (``side='query'``), queries-per-ad
    (``side='ad'``) or clicks-per-edge (``side='clicks'``)."""
    if side == "query":
        values = [graph.query_degree(query) for query in graph.queries()]
    elif side == "ad":
        values = [graph.ad_degree(ad) for ad in graph.ads()]
    elif side == "clicks":
        values = [stats.clicks for _, _, stats in graph.edges()]
    else:
        raise ValueError(f"side must be 'query', 'ad' or 'clicks', got {side!r}")
    values = [value for value in values if value > 0]
    counts = dict(Counter(values))
    exponent = estimate_power_law_exponent(values) if values else float("nan")
    return DegreeDistribution(counts=counts, exponent=exponent)


def estimate_power_law_exponent(values: Sequence[int], xmin: int = 1) -> float:
    """Maximum-likelihood estimate of a discrete power-law exponent.

    Uses the standard continuous approximation
    ``alpha = 1 + n / sum(log(x_i / (xmin - 0.5)))`` (Clauset et al.), which
    is adequate for the qualitative "is this heavy-tailed?" check the paper
    makes about its click graph.
    """
    filtered = [value for value in values if value >= xmin]
    if not filtered:
        raise ValueError("no observations at or above xmin")
    denominator = sum(math.log(value / (xmin - 0.5)) for value in filtered)
    if denominator <= 0:
        return float("inf")
    return 1.0 + len(filtered) / denominator


def statistics_table(subgraphs: Sequence[ClickGraph]) -> List[Dict[str, int]]:
    """Build the full Table 5: one row per subgraph plus a Total row."""
    rows: List[Dict[str, int]] = []
    total = DatasetStatistics(0, 0, 0)
    for index, subgraph in enumerate(subgraphs, start=1):
        stats = dataset_statistics(subgraph)
        row = {"subgraph": f"subgraph {index}"}
        row.update(stats.as_row())
        rows.append(row)
        total = total + stats
    total_row = {"subgraph": "Total"}
    total_row.update(total.as_row())
    rows.append(total_row)
    return rows
