"""The ``ServingStore`` protocol: anything that can serve rewrite lists.

A serving store answers exactly the questions the online side of the
paper's deployment asks -- "what are this query's filtered, ranked
rewrites?" and "which queries do you know?" -- without prescribing where
the answers live: resident score arrays
(:class:`~repro.store.memory.InMemoryServingStore`) or a materialized
SQLite ranking table (:class:`~repro.store.sqlite.SqliteServingStore`).
:class:`~repro.api.engine.RewriteEngine` serves any implementation through
its LRU cache, so the choice of store never changes served results, only
the resident-memory/latency trade-off.

Implementations must be thread-safe for concurrent :meth:`rewrites` calls:
the serving tier issues lookups from multiple executor threads against one
store instance.
"""

from __future__ import annotations

import abc
from typing import Dict, Hashable, List, Optional

from repro.core.rewriter import RewriteList

__all__ = ["Node", "ServingOnlyEngineError", "ServingStore", "StoreError"]

Node = Hashable


class StoreError(RuntimeError):
    """A serving store could not be written, opened or read.

    The store-layer sibling of :class:`repro.api.snapshot.SnapshotError`:
    raised for unexportable engines/node ids, missing or corrupt store
    files, foreign format versions, and lookups on a closed store.
    """


class ServingOnlyEngineError(RuntimeError):
    """A control-plane operation was called on a store-backed engine.

    Engines revived with :meth:`RewriteEngine.from_store` hold materialized
    rewrite lists, not the fitted score matrix, so ``fit`` / ``refresh`` /
    ``save`` / ``explain`` / ``export_store`` have nothing to operate on.
    Refit (or load) the original engine and re-export the store instead.
    """


class ServingStore(abc.ABC):
    """Abstract serving source: per-query filtered top-k rewrite lists.

    The contract every implementation must honour:

    * :meth:`rewrites` is **deterministic and pure** -- repeated calls for
      the same query return equal :class:`~repro.core.rewriter.RewriteList`
      values, byte-equal under ``RewriteList.as_tuples()`` to what the
      fitted engine the store was built from would serve.  Unknown queries
      get an *empty* rewrite list, never an error, matching the in-memory
      serving path.
    * :meth:`queries` is the precompute universe: the full query set of the
      fitted graph (isolated queries included), so warming a cache over it
      reproduces the paper's full offline pass.
    * Lookups are thread-safe; :attr:`lookups` counts them for ``/stats``.
    """

    #: Short implementation tag surfaced by ``/stats`` (``"memory"``,
    #: ``"sqlite"``).
    kind: str = "abstract"

    # ------------------------------------------------------------- protocol

    @abc.abstractmethod
    def rewrites(self, query: Node, k: Optional[int] = None) -> RewriteList:
        """The filtered, ranked rewrites of ``query`` (top ``k`` if given)."""

    @abc.abstractmethod
    def contains(self, query: Node) -> bool:
        """Whether ``query`` belongs to the store's query universe."""

    @abc.abstractmethod
    def queries(self) -> List[Node]:
        """The store's full query universe (the precompute set)."""

    @property
    @abc.abstractmethod
    def version(self) -> int:
        """Identifier of the fitted state the store serves.

        The fit generation for in-memory stores, the recorded store
        version for materialized ones; surfaced via ``/stats`` so operators
        can tell which export a serving node answers from.
        """

    @abc.abstractmethod
    def close(self) -> None:
        """Release held resources; lookups afterwards raise ``StoreError``."""

    # ----------------------------------------------------------- accounting

    @property
    @abc.abstractmethod
    def lookups(self) -> int:
        """How many :meth:`rewrites` lookups this store has answered."""

    def engine_config(self) -> Optional[Dict[str, object]]:
        """The exporting engine's serialized config, when recorded.

        ``RewriteEngine.from_store`` rebuilds the serving knobs
        (``cache_size``, ``max_rewrites``) from this; ``None`` means the
        store carries no config and the engine defaults apply.
        """
        return None

    def describe(self) -> Dict[str, object]:
        """JSON-ready store facts for ``/stats``."""
        return {
            "kind": self.kind,
            "version": self.version,
            "lookups": self.lookups,
        }

    # ---------------------------------------------------------- convenience

    def __enter__(self) -> "ServingStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def __contains__(self, query: Node) -> bool:
        return self.contains(query)
