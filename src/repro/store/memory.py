"""In-memory serving store: the classic resident-scores + rewriter path.

:class:`InMemoryServingStore` wraps a fitted
:class:`~repro.core.similarity_base.QuerySimilarityMethod` (its
:class:`~repro.core.scores_array.ArraySimilarityScores` or dict-backed
store) and a :class:`~repro.core.rewriter.QueryRewriter` behind the
:class:`~repro.store.base.ServingStore` protocol: each lookup runs the
similarity top-k and the Section 9.3 filter pipeline against the resident
score store.  This is exactly what a fitted engine serves today -- the
store exists so that the in-memory path and the SQL-materialized path
(:class:`~repro.store.sqlite.SqliteServingStore`) are interchangeable
behind one interface, and so the latency benchmark can compare the two
lookup paths directly.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional

from repro.core.rewriter import QueryRewriter, RewriteList
from repro.store.base import Node, ServingStore, StoreError

__all__ = ["InMemoryServingStore"]


class InMemoryServingStore(ServingStore):
    """Serve rewrite lists by recomputing them from resident fitted scores.

    Usually built with :meth:`from_engine`; constructing directly takes a
    rewriter over a *fitted* method plus the query universe.  The store
    does not memoize -- the engine's LRU cache is the single cache layer,
    exactly as with direct engine serving -- so ``rewrites`` always costs
    one similarity scan plus the filter pipeline.
    """

    kind = "memory"

    def __init__(
        self,
        rewriter: QueryRewriter,
        queries: Iterable[Node],
        engine_config: Optional[Dict[str, object]] = None,
    ) -> None:
        if not rewriter.method.is_fitted:
            raise StoreError(
                "InMemoryServingStore needs a fitted similarity method; "
                "fit (or snapshot-load) the engine first"
            )
        self._rewriter = rewriter
        self._universe = list(queries)
        self._universe_set = set(self._universe)
        self._engine_config = dict(engine_config) if engine_config else None
        self._version = getattr(rewriter.method, "_fit_generation", 0)
        #: Guards the lookup counter against concurrent serving threads.
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._lookups = 0
        #: guarded-by: _lock
        self._closed = False

    @classmethod
    def from_engine(cls, engine) -> "InMemoryServingStore":
        """Wrap a fitted :class:`~repro.api.engine.RewriteEngine`.

        The store shares the engine's rewriter (lookups are pure reads of
        the fitted scores), serves the engine's precompute universe and
        carries its config, so ``RewriteEngine.from_store(store)`` rebuilds
        an equivalent serving-only engine.
        """
        if not engine.method.is_fitted:
            raise StoreError(
                "cannot wrap an unfitted engine in a serving store; call "
                ".fit(graph) or load a snapshot first"
            )
        return cls(
            engine._rewriter,
            engine._serving_universe(),
            engine_config=engine.config.to_dict(),
        )

    # ------------------------------------------------------------- protocol

    def rewrites(self, query: Node, k: Optional[int] = None) -> RewriteList:
        with self._lock:
            if self._closed:
                raise StoreError("serving store is closed")
            self._lookups += 1
        result = self._rewriter.compute_rewrites(query)
        if k is not None and k < len(result.rewrites):
            result = RewriteList(query=result.query, rewrites=result.rewrites[:k])
        return result

    def contains(self, query: Node) -> bool:
        try:
            return query in self._universe_set
        except TypeError:
            return False  # unhashable identifiers are never graph nodes

    def queries(self) -> List[Node]:
        return list(self._universe)

    @property
    def version(self) -> int:
        return self._version

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def lookups(self) -> int:
        with self._lock:
            return self._lookups

    def engine_config(self) -> Optional[Dict[str, object]]:
        return dict(self._engine_config) if self._engine_config else None

    def __repr__(self) -> str:
        return (
            f"InMemoryServingStore(queries={len(self._universe)}, "
            f"version={self.version}, lookups={self.lookups})"
        )
