"""Interchangeable serving backends behind one ``ServingStore`` protocol.

Simrank++ is an offline fit that serves per-query top-k rewrite lists
online (paper Section 9.3) -- exactly the shape of a materialized ranking
table.  This package makes the *serving source* pluggable: the engine's
read path (``rewrite`` / ``rewrite_batch`` / ``expansions``) no longer
assumes the full score matrix is resident, only that *something* can
produce the filtered rewrite list of a query.

Two implementations of :class:`~repro.store.base.ServingStore`:

:class:`~repro.store.memory.InMemoryServingStore`
    Wraps today's fitted-scores + rewriter path: each lookup runs the
    similarity top-k and the Section 9.3 filter pipeline over the resident
    score store.  Resident memory is O(nnz).

:class:`~repro.store.sqlite.SqliteServingStore`
    A single-file SQLite database materialized at export time
    (:meth:`RewriteEngine.export_store`): per-query rewrite lists are
    ranked inside the storage engine with a window-function query and
    served back with indexed point lookups, so resident memory is
    O(serving cache), not O(nnz) -- click graphs bigger than serving RAM
    become servable.

``RewriteEngine.from_store(path)`` revives a serving-only engine from an
exported store; it serves through the usual LRU cache but cannot ``fit`` /
``refresh`` / ``save`` (those raise
:class:`~repro.store.base.ServingOnlyEngineError` -- refit the original
engine and re-export instead).  ``repro.api.sources.resolve_engine_source``
is the one front door over snapshot, store and fresh-fit construction.
"""

from repro.store.base import ServingOnlyEngineError, ServingStore, StoreError
from repro.store.memory import InMemoryServingStore
from repro.store.sqlite import (
    STORE_FORMAT_VERSION,
    SqliteServingStore,
    export_serving_store,
)

__all__ = [
    "STORE_FORMAT_VERSION",
    "InMemoryServingStore",
    "ServingOnlyEngineError",
    "ServingStore",
    "SqliteServingStore",
    "StoreError",
    "export_serving_store",
]
