"""SQL-backed rewrite serving: materialized per-query top-k ranking tables.

The motivation (ROADMAP: "SQL-backed rewrite serving for stores bigger than
RAM"): a fitted Simrank++ engine serves *static* per-query top-k rewrite
lists, yet the snapshot path rehydrates the full CSR score matrix into
resident memory just to answer point lookups.  This module pushes the
ranking into the storage engine instead.  At export time
(:func:`export_serving_store`, wired as ``RewriteEngine.export_store``) the
fitted scores are spilled into SQLite and ranked *inside the database* with
a window-function query::

    ROW_NUMBER() OVER (
        PARTITION BY query
        ORDER BY score DESC, rewrite_repr ASC
    )

whose ordering is exactly the serving tie-break the in-memory path uses
(``(-score, repr(node))`` -- see ``ArraySimilarityScores.top``), so the
per-query candidate pools come out byte-identical.  The Section 9.3 filter
pipeline (bid-term filtering, stemmed deduplication, the max-rewrites cap)
then runs once per query over its ranked pool -- reusing the actual
:class:`~repro.core.rewriter.QueryRewriter` so the filter semantics cannot
drift -- and the surviving lists land in a ``rewrites`` table clustered on
``(query, rank)``.

Serving (:class:`SqliteServingStore`) is then an indexed point lookup per
query: resident memory is O(connection + page cache + engine LRU cache),
not O(nnz), which is what lets a serving node answer from a store bigger
than its RAM.  The export is crash-safe via the shared staged-write
rename-publish discipline (:func:`repro.api.staging.staged_write`): a
killed export can never leave a half-written database discoverable.

On-disk layout (one SQLite file)::

    meta(key, value)             format/store version, engine config JSON,
                                 fit facts (method, counts)
    queries(query, position)     the precompute universe, in export order
    rewrites(query, rank,        the materialized serving lists, clustered
             rewrite, score)     on (query, rank) for point lookups

Node identifiers are JSON-encoded (the snapshot layer's exact-round-trip
types: str, int, float, bool); anything else raises :class:`StoreError` at
export time rather than coming back subtly changed.
"""

from __future__ import annotations

import json
import sqlite3
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.api.snapshot import _JSON_EXACT_NODE_TYPES
from repro.api.staging import staged_write
from repro.core.rewriter import QueryRewriter, Rewrite, RewriteList
from repro.store.base import Node, ServingStore, StoreError

__all__ = ["STORE_FORMAT_VERSION", "SqliteServingStore", "export_serving_store"]

PathLike = Union[str, Path]

#: Bumped whenever the database layout changes incompatibly; readers reject
#: stores written under a different version instead of misreading them.
STORE_FORMAT_VERSION = 1

#: Rows per executemany batch while spilling raw scores.
_INSERT_BATCH = 50_000

_SCHEMA = """
CREATE TABLE meta (key TEXT PRIMARY KEY, value TEXT NOT NULL) WITHOUT ROWID;
CREATE TABLE queries (
    query TEXT PRIMARY KEY,
    position INTEGER NOT NULL
) WITHOUT ROWID;
CREATE TABLE rewrites (
    query TEXT NOT NULL,
    rank INTEGER NOT NULL,
    rewrite TEXT NOT NULL,
    score REAL NOT NULL,
    PRIMARY KEY (query, rank)
) WITHOUT ROWID;
"""

#: The ranking pushed into the storage engine.  ``ORDER BY score DESC,
#: rewrite_repr ASC`` is byte-for-byte the in-memory tie-break: candidates
#: sort by ``(-score, repr(node))``, and ``rewrite_repr`` stores exactly
#: that ``repr`` (SQLite compares TEXT as UTF-8 bytes, which orders
#: identically to Python's code-point string comparison).  ``score >
#: :minimum`` mirrors the strict similarity floor of
#: ``ArraySimilarityScores.top``; ``rank <= :pool`` keeps the paper's
#: top-100 candidate pool per query.
_RANK_CANDIDATES = """
CREATE TABLE candidates AS
SELECT query, rewrite, score, rank
FROM (
    SELECT query, rewrite, score,
           ROW_NUMBER() OVER (
               PARTITION BY query
               ORDER BY score DESC, rewrite_repr ASC
           ) AS rank
    FROM raw_scores
    WHERE score > :minimum
)
WHERE rank <= :pool
"""


def _encode_node(node: Node) -> str:
    """A node id as its canonical JSON text (the database key)."""
    if not isinstance(node, _JSON_EXACT_NODE_TYPES):
        raise StoreError(
            f"node id {node!r} ({type(node).__name__}) does not round-trip "
            "through JSON; serving stores support str, int, float and bool "
            "node ids -- convert other identifier types before exporting"
        )
    return json.dumps(node)


def _decode_node(text: str) -> Node:
    return json.loads(text)


# ------------------------------------------------------------------ exporting


class _RankedCandidateSource:
    """Adapter feeding SQL-ranked candidate pools to the filter pipeline.

    Quacks like a fitted similarity method for the one call
    :class:`QueryRewriter` makes (``top_rewrites``), but answers from the
    ``candidates`` table the window-function query materialized -- so the
    exported rewrite lists are produced by the *actual* Section 9.3
    pipeline over the *database's* ranking, and any divergence between the
    SQL ordering and the in-memory ordering would surface as a test
    failure, not silent drift.
    """

    def __init__(self, connection: sqlite3.Connection) -> None:
        self._connection = connection

    def top_rewrites(
        self, query: Node, k: int, minimum: float = 0.0
    ) -> List[Tuple[Node, float]]:
        rows = self._connection.execute(
            "SELECT rewrite, score FROM candidates "
            "WHERE query = ? AND rank <= ? ORDER BY rank",
            (_encode_node(query), k),
        )
        return [(_decode_node(text), score) for text, score in rows]


def _raw_score_rows(scores) -> Iterator[Tuple[str, str, str, float]]:
    """Both directed orientations of every stored pair, ready to insert."""
    for first, second, value in scores.pairs():
        first_key = _encode_node(first)
        second_key = _encode_node(second)
        yield first_key, second_key, repr(second), value
        yield second_key, first_key, repr(first), value


def _insert_batched(connection: sqlite3.Connection, sql: str, rows) -> int:
    """executemany in bounded batches; returns the number of rows inserted."""
    total = 0
    batch: list = []
    for row in rows:
        batch.append(row)
        if len(batch) >= _INSERT_BATCH:
            connection.executemany(sql, batch)
            total += len(batch)
            batch.clear()
    if batch:
        connection.executemany(sql, batch)
        total += len(batch)
    return total


def export_serving_store(engine, path: PathLike) -> Path:
    """Materialize a fitted engine's serving lists into a SQLite store.

    Returns the store path.  Raises :class:`StoreError` for an unfitted
    engine or node identifiers that would not survive the JSON round trip.
    The write is staged and rename-published (the snapshot discipline, via
    :func:`repro.api.staging.staged_write`), so a crashed export can never
    leave a half-written database discoverable under ``path``.
    """
    if not engine.method.is_fitted:
        raise StoreError(
            "cannot export an unfitted engine to a serving store; call "
            ".fit(graph) or load a snapshot first"
        )
    scores = engine.method.similarities()
    rewriter: QueryRewriter = engine._rewriter
    universe = engine._serving_universe()
    universe_keys = [(_encode_node(query), position)
                     for position, query in enumerate(universe)]

    path = Path(path)
    with staged_write(path, directory=False, error=StoreError) as staging:
        connection = sqlite3.connect(str(staging))
        try:
            # The staging file is discarded wholesale on any failure (the
            # rename-publish discipline is the durability story), so
            # journaling and fsync buy nothing here but slow the export.
            connection.execute("PRAGMA journal_mode=OFF")
            connection.execute("PRAGMA synchronous=OFF")
            connection.executescript(_SCHEMA)
            connection.execute(
                "CREATE TABLE raw_scores ("
                "query TEXT NOT NULL, rewrite TEXT NOT NULL, "
                "rewrite_repr TEXT NOT NULL, score REAL NOT NULL)"
            )
            _insert_batched(
                connection,
                "INSERT INTO raw_scores VALUES (?, ?, ?, ?)",
                _raw_score_rows(scores),
            )
            connection.execute(
                _RANK_CANDIDATES,
                {"minimum": rewriter.min_score, "pool": rewriter.candidate_pool},
            )
            connection.execute(
                "CREATE INDEX candidates_by_query ON candidates (query, rank)"
            )
            # Every query the store must answer: the precompute universe
            # plus any score-store query outside it (an out-of-band restore
            # can leave the score index larger than the recorded universe).
            materialize = dict(universe_keys)
            for (key,) in connection.execute(
                "SELECT DISTINCT query FROM candidates"
            ).fetchall():
                materialize.setdefault(key, len(materialize))
            # The real filter pipeline over the database's ranking: same
            # bid-term signatures, stemmed dedup and max-rewrites cap as
            # live serving, fed by the window query's candidate pools.
            pipeline = QueryRewriter(
                _RankedCandidateSource(connection),
                bid_terms=rewriter.bid_terms,
                max_rewrites=rewriter.max_rewrites,
                candidate_pool=rewriter.candidate_pool,
                min_score=rewriter.min_score,
                deduplicate=rewriter.deduplicate,
            )
            _insert_batched(
                connection,
                "INSERT INTO rewrites VALUES (?, ?, ?, ?)",
                (
                    (key, accepted.rank, _encode_node(accepted.rewrite),
                     accepted.score)
                    for key in materialize
                    for accepted in pipeline.compute_rewrites(
                        _decode_node(key)
                    ).rewrites
                ),
            )
            connection.executemany(
                "INSERT INTO queries VALUES (?, ?)", universe_keys
            )
            row_count = connection.execute(
                "SELECT COUNT(*) FROM rewrites"
            ).fetchone()[0]
            meta = {
                "format_version": str(STORE_FORMAT_VERSION),
                "store_version": "1",
                "engine_config": json.dumps(engine.config.to_dict()),
                "method": engine.config.method,
                "num_queries": str(len(universe_keys)),
                "num_rewrites": str(row_count),
            }
            connection.executemany(
                "INSERT INTO meta VALUES (?, ?)", sorted(meta.items())
            )
            # The scratch tables dwarf the serving tables; drop and VACUUM
            # so the published file holds only what lookups need.
            connection.execute("DROP TABLE raw_scores")
            connection.execute("DROP TABLE candidates")
            connection.commit()
            connection.execute("VACUUM")
        finally:
            connection.close()
    return path


# ------------------------------------------------------------------- serving


class SqliteServingStore(ServingStore):
    """Indexed point lookups against an exported SQLite serving store.

    Opens the store read-only-by-convention (``PRAGMA query_only``) and
    answers each :meth:`rewrites` call with one clustered-index scan of the
    query's rows.  Thread-safe: the serving tier's executor threads share
    one connection, serialized by an internal lock -- lookups are
    microsecond-scale point reads, so the lock is not a throughput concern,
    and the engine's LRU cache absorbs repeats anyway.
    """

    kind = "sqlite"

    def __init__(self, path: PathLike) -> None:
        path = Path(path)
        if not path.is_file():
            raise StoreError(f"no serving store at {path} (not a file)")
        try:
            connection = sqlite3.connect(str(path), check_same_thread=False)
            rows = connection.execute("SELECT key, value FROM meta").fetchall()
        except sqlite3.Error as error:
            raise StoreError(
                f"{path} is not a readable serving store: {error}"
            ) from error
        meta = dict(rows)
        version_text = meta.get("format_version")
        if version_text != str(STORE_FORMAT_VERSION):
            connection.close()
            raise StoreError(
                f"serving store at {path} has format version {version_text!r}; "
                f"this build reads version {STORE_FORMAT_VERSION}"
            )
        connection.execute("PRAGMA query_only=ON")
        self._path = path
        self._meta = meta
        self._version = int(meta.get("store_version", "1"))
        #: Serializes connection use and guards the lookup counters; one
        #: store instance is shared by every serving thread.
        self._lock = threading.Lock()
        #: guarded-by: _lock
        self._connection = connection
        #: guarded-by: _lock
        self._lookups = 0
        #: guarded-by: _lock
        self._empty_lookups = 0
        #: guarded-by: _lock
        self._closed = False

    @property
    def path(self) -> Path:
        return self._path

    # ------------------------------------------------------------- protocol

    def rewrites(self, query: Node, k: Optional[int] = None) -> RewriteList:
        try:
            key = _encode_node(query)
        except StoreError:
            # Identifier types the store cannot hold are simply unknown
            # queries: serve the same empty list the in-memory path would.
            key = None
        with self._lock:
            if self._closed:
                raise StoreError(f"serving store at {self._path} is closed")
            self._lookups += 1
            if key is None:
                rows = []
            else:
                rows = self._connection.execute(
                    "SELECT rewrite, score, rank FROM rewrites "
                    "WHERE query = ? ORDER BY rank",
                    (key,),
                ).fetchall()
            if not rows:
                self._empty_lookups += 1
        if k is not None:
            rows = rows[:k]
        return RewriteList(
            query=query,
            rewrites=[
                Rewrite(
                    query=query,
                    rewrite=_decode_node(text),
                    score=score,
                    rank=rank,
                )
                for text, score, rank in rows
            ],
        )

    def contains(self, query: Node) -> bool:
        try:
            key = _encode_node(query)
        except StoreError:
            return False
        with self._lock:
            if self._closed:
                raise StoreError(f"serving store at {self._path} is closed")
            row = self._connection.execute(
                "SELECT 1 FROM queries WHERE query = ?", (key,)
            ).fetchone()
        return row is not None

    def queries(self) -> List[Node]:
        with self._lock:
            if self._closed:
                raise StoreError(f"serving store at {self._path} is closed")
            rows = self._connection.execute(
                "SELECT query FROM queries ORDER BY position"
            ).fetchall()
        return [_decode_node(text) for (text,) in rows]

    @property
    def version(self) -> int:
        return self._version

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._connection.close()
                self._closed = True

    # ----------------------------------------------------------- accounting

    @property
    def lookups(self) -> int:
        with self._lock:
            return self._lookups

    @property
    def empty_lookups(self) -> int:
        """Lookups that found no materialized rewrites (unknown/empty queries)."""
        with self._lock:
            return self._empty_lookups

    def engine_config(self) -> Optional[Dict[str, object]]:
        payload = self._meta.get("engine_config")
        if payload is None:
            return None
        try:
            config = json.loads(payload)
        except json.JSONDecodeError as error:
            raise StoreError(
                f"serving store at {self._path} holds a corrupt engine "
                f"config: {error}"
            ) from error
        return config if isinstance(config, dict) else None

    def describe(self) -> Dict[str, object]:
        facts = super().describe()
        facts["path"] = str(self._path)
        facts["empty_lookups"] = self.empty_lookups
        return facts

    def __repr__(self) -> str:
        return (
            f"SqliteServingStore(path={str(self._path)!r}, "
            f"version={self.version}, lookups={self.lookups})"
        )
