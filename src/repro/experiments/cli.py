"""Command-line interface: ``simrankpp-experiments``.

Examples::

    simrankpp-experiments --experiment table3
    simrankpp-experiments --experiment figure8 --size tiny
    simrankpp-experiments --experiment all --size small --seed 42
    simrankpp-experiments --experiment figure8 --backend reference
    simrankpp-experiments --experiment figure8 --backend sharded
    simrankpp-experiments --experiment figure8 --backend sparse --prune-threshold 1e-4
    simrankpp-experiments --experiment figure8 --save-engine engines/
    simrankpp-experiments --experiment figure8 --load-engine engines/
    simrankpp-experiments --experiment figure8 --tolerance 1e-8 --refresh-from engines/
    simrankpp-experiments --list-methods

The ``serve`` subcommand starts the online serving tier
(:mod:`repro.serving`) around a fitted or snapshot-revived engine::

    simrankpp-experiments serve --size small --port 8641
    simrankpp-experiments serve --snapshot engines/two-week-weighted --precompute
    simrankpp-experiments serve --help
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api.registry import (
    SIMRANK_BACKENDS,
    available_backends,
    available_methods,
    method_spec,
)
from repro.core.config import SimrankConfig
from repro.experiments.paper import PaperExperiments

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="simrankpp-experiments",
        description="Regenerate the tables and figures of the Simrank++ paper (VLDB 2008).",
        epilog=(
            "Run 'simrankpp-experiments serve --help' for the online "
            "rewrite-serving subcommand (asyncio HTTP server with "
            "zero-downtime engine refresh)."
        ),
    )
    parser.add_argument(
        "--experiment",
        default="all",
        help="which experiment to run: table1..table6, figure8..figure12, or 'all'",
    )
    parser.add_argument(
        "--size",
        default="small",
        choices=["tiny", "small", "medium"],
        help="synthetic workload size used for Table 5 and Figures 8-12",
    )
    parser.add_argument(
        "--backend",
        default="matrix",
        choices=sorted(SIMRANK_BACKENDS),
        help=(
            "similarity-method backend used by the harness experiments "
            "(sharded = per-connected-component dense blocks, sparse = "
            "pruned CSR fixpoint whose cost tracks the graph's nonzeros)"
        ),
    )
    parser.add_argument(
        "--n-jobs",
        type=int,
        default=1,
        help=(
            "sharded/auto backends: workers for parallel per-component fits "
            "(-1 = one per available CPU, affinity-aware)"
        ),
    )
    parser.add_argument(
        "--executor",
        default="auto",
        choices=["thread", "process", "auto"],
        help=(
            "pool flavour for parallel fits: thread (GIL-bound), process "
            "(true multi-core), or auto (processes only when the work "
            "amortises the fork/pickle overhead)"
        ),
    )
    parser.add_argument(
        "--prune-threshold",
        type=float,
        default=0.0,
        help=(
            "sparse backend only: drop score entries below this epsilon "
            "after every iteration (0 = exact, no truncation)"
        ),
    )
    parser.add_argument(
        "--prune-top-k",
        type=int,
        default=0,
        help=(
            "sparse backend only: keep only the k largest entries per score "
            "row after each iteration (0 = keep all)"
        ),
    )
    parser.add_argument(
        "--save-engine",
        metavar="DIR",
        default=None,
        help=(
            "write every fitted engine as a named snapshot under DIR "
            "(<method>-<backend>); the offline half of the paper's "
            "offline-compute / online-serve split"
        ),
    )
    parser.add_argument(
        "--load-engine",
        metavar="DIR",
        default=None,
        help=(
            "serve from engine snapshots under DIR instead of refitting "
            "(methods without a snapshot are fitted as usual); snapshots are "
            "keyed by method and backend, so reuse the same workload flags"
        ),
    )
    parser.add_argument(
        "--refresh-from",
        metavar="DIR",
        default=None,
        help=(
            "use config-matching engine snapshots under DIR as warm-start "
            "seeds: each engine is revived and refit on the current workload "
            "with the snapshot's scores seeding the fixpoint (the "
            "incremental path when the graph moved since the snapshot was "
            "saved; --load-engine wins for snapshots of the identical graph)"
        ),
    )
    parser.add_argument(
        "--list-methods",
        action="store_true",
        help="list the registered similarity methods and exit",
    )
    parser.add_argument("--iterations", type=int, default=7, help="SimRank iterations")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.0,
        help=(
            "early-exit threshold on the largest per-pair score change "
            "between iterations (0 = always run the full iteration count); "
            "required > 0 for --refresh-from to actually warm-start, since "
            "a seeded fixpoint without early exit would over-converge past "
            "the cold fit's defined result"
        ),
    )
    parser.add_argument("--decay", type=float, default=0.8, help="SimRank decay factors C1 = C2")
    parser.add_argument(
        "--desirability-cases", type=int, default=50, help="cases for the Figure 12 experiment"
    )
    parser.add_argument("--seed", type=int, default=29, help="random seed")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "serve":
        # The serving tier is a separate argument universe (network knobs,
        # engine source) -- dispatch before the experiments parser sees it.
        from repro.serving.app import serve_main

        return serve_main(argv[1:])
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_methods:
        for name in available_methods():
            spec = method_spec(name)
            backends = "/".join(available_backends(name))
            print(f"{name:20s} [{backends}]  {spec.description}")
        return 0
    config = SimrankConfig(
        c1=args.decay,
        c2=args.decay,
        iterations=args.iterations,
        tolerance=args.tolerance,
        prune_threshold=args.prune_threshold,
        prune_top_k=args.prune_top_k,
    )
    experiments = PaperExperiments(
        workload_size=args.size,
        config=config,
        desirability_cases=args.desirability_cases,
        seed=args.seed,
        backend=args.backend,
        n_jobs=args.n_jobs,
        executor=args.executor,
        save_engines_to=args.save_engine,
        load_engines_from=args.load_engine,
        refresh_engines_from=args.refresh_from,
    )
    if args.experiment == "all":
        output = experiments.render_all()
    else:
        try:
            output = experiments.render(args.experiment)
        except ValueError as exc:
            parser.error(str(exc))
            return 2
    print(output)
    if args.backend == "auto" and experiments._result is not None:
        # Surface the planner's decisions for the harness-backed experiments
        # (tables 1-4/6 never fit an engine, so there is nothing to report).
        plans = experiments._result.plan_reports
        if plans:
            print()
            print("Backend plans (--backend auto):")
            for method_name, plan in plans.items():
                print(f"  {method_name}: {plan.summary()}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
