"""Per-table / per-figure experiment drivers.

:mod:`repro.experiments.paper` exposes one function per table and figure of
the paper's evaluation; :mod:`repro.experiments.cli` wraps them in a small
command-line interface (``simrankpp-experiments``).
"""

from repro.experiments.paper import (
    PaperExperiments,
    figure8_query_coverage,
    figure9_precision_recall,
    figure10_precision_recall_strict,
    figure11_rewriting_depth,
    figure12_desirability,
    table1_common_ads,
    table2_simrank_sample,
    table3_simrank_iterations,
    table4_evidence_iterations,
    table5_dataset_statistics,
    table6_editorial_grades,
)

__all__ = [
    "PaperExperiments",
    "figure8_query_coverage",
    "figure9_precision_recall",
    "figure10_precision_recall_strict",
    "figure11_rewriting_depth",
    "figure12_desirability",
    "table1_common_ads",
    "table2_simrank_sample",
    "table3_simrank_iterations",
    "table4_evidence_iterations",
    "table5_dataset_statistics",
    "table6_editorial_grades",
]
