"""Regenerate every table and figure of the paper's evaluation.

Tables 1-4 and 6 are exact computations on the paper's small illustrative
graphs; Table 5 and Figures 8-12 run the full harness on a synthetic
Yahoo!-like workload (absolute numbers therefore differ from the paper, but
the shapes -- which method wins, and by roughly how much -- should match; see
EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.baselines import common_ad_count
from repro.core.config import SimrankConfig
from repro.core.evidence_simrank import EvidenceSimrank
from repro.core.simrank import BipartiteSimrank
from repro.eval.editorial import GRADE_DESCRIPTIONS, EditorialJudge
from repro.eval.harness import EvaluationResult, ExperimentHarness
from repro.eval.metrics import STANDARD_RECALL_LEVELS
from repro.eval.reporting import format_series, format_table
from repro.graph.statistics import dataset_statistics
from repro.synth.generator import SyntheticWorkload
from repro.synth.scenarios import FIGURE3_QUERIES, figure3_graph, figure4_graphs
from repro.synth.yahoo_like import yahoo_like_workload

__all__ = [
    "table1_common_ads",
    "table2_simrank_sample",
    "table3_simrank_iterations",
    "table4_evidence_iterations",
    "table5_dataset_statistics",
    "table6_editorial_grades",
    "figure8_query_coverage",
    "figure9_precision_recall",
    "figure10_precision_recall_strict",
    "figure11_rewriting_depth",
    "figure12_desirability",
    "PaperExperiments",
]


# --------------------------------------------------------------------- tables


def table1_common_ads() -> List[Dict[str, object]]:
    """Table 1: common-ad counts between the Figure 3 queries."""
    graph = figure3_graph()
    rows = []
    for first in FIGURE3_QUERIES:
        row: Dict[str, object] = {"query": first}
        for second in FIGURE3_QUERIES:
            row[second] = "-" if first == second else common_ad_count(graph, first, second)
        rows.append(row)
    return rows


def table2_simrank_sample(
    iterations: int = 20, c1: float = 0.8, c2: float = 0.8
) -> List[Dict[str, object]]:
    """Table 2: SimRank scores (C1 = C2 = 0.8) on the Figure 3 graph."""
    graph = figure3_graph()
    config = SimrankConfig(c1=c1, c2=c2, iterations=iterations)
    simrank = BipartiteSimrank(config=config).fit(graph)
    rows = []
    for first in FIGURE3_QUERIES:
        row: Dict[str, object] = {"query": first}
        for second in FIGURE3_QUERIES:
            row[second] = (
                "-" if first == second else round(simrank.query_similarity(first, second), 3)
            )
        rows.append(row)
    return rows


def table3_simrank_iterations(iterations: int = 7) -> List[Dict[str, object]]:
    """Table 3: per-iteration SimRank scores on the Figure 4 graphs.

    ``sim("camera", "digital camera")`` lives in the K2,2 graph and
    ``sim("pc", "camera")`` in the K1,2 graph.
    """
    k22, k12 = figure4_graphs()
    config = SimrankConfig(iterations=iterations)
    sim_k22 = BipartiteSimrank(config=config, track_history=True).fit(k22)
    sim_k12 = BipartiteSimrank(config=config, track_history=True).fit(k12)
    rows = []
    for index in range(iterations):
        rows.append(
            {
                "Iteration": index + 1,
                'sim("camera", "digital camera")': round(
                    sim_k22.result.query_history[index].score("camera", "digital camera"), 7
                ),
                'sim("pc", "camera")': round(
                    sim_k12.result.query_history[index].score("pc", "camera"), 7
                ),
            }
        )
    return rows


def table4_evidence_iterations(iterations: int = 7) -> List[Dict[str, object]]:
    """Table 4: per-iteration evidence-based SimRank scores on the Figure 4 graphs."""
    k22, k12 = figure4_graphs()
    config = SimrankConfig(iterations=iterations)
    sim_k22 = EvidenceSimrank(config=config, track_history=True).fit(k22)
    sim_k12 = EvidenceSimrank(config=config, track_history=True).fit(k12)
    rows = []
    for index in range(iterations):
        rows.append(
            {
                "Iteration": index + 1,
                'sim("camera", "digital camera")': round(
                    sim_k22.query_history[index].score("camera", "digital camera"), 7
                ),
                'sim("pc", "camera")': round(
                    sim_k12.query_history[index].score("pc", "camera"), 7
                ),
            }
        )
    return rows


def table5_dataset_statistics(result: EvaluationResult) -> List[Dict[str, object]]:
    """Table 5: per-subgraph query/ad/edge counts of the extracted dataset."""
    rows: List[Dict[str, object]] = []
    totals = {"# of Queries": 0, "# of Ads": 0, "# of Edges": 0}
    for index, subgraph in enumerate(result.subgraphs, start=1):
        stats = dataset_statistics(subgraph)
        row = {"subgraph": f"subgraph {index}"}
        row.update(stats.as_row())
        for key in totals:
            totals[key] += row[key]
        rows.append(row)
    rows.append({"subgraph": "Total", **totals})
    return rows


def table6_editorial_grades(workload: Optional[SyntheticWorkload] = None) -> List[Dict[str, object]]:
    """Table 6: the editorial scoring system, demonstrated on example pairs."""
    workload = workload or yahoo_like_workload("tiny")
    judge = EditorialJudge(workload)
    examples = _grade_examples(workload, judge)
    rows = []
    for score in (1, 2, 3, 4):
        example = examples.get(score, ("-", "-"))
        rows.append(
            {
                "Score": score,
                "Definition": GRADE_DESCRIPTIONS[score],
                "Example (query - re-write)": f"{example[0]} - {example[1]}",
            }
        )
    return rows


def _grade_examples(workload: SyntheticWorkload, judge: EditorialJudge) -> Dict[int, tuple]:
    """Find one example query-rewrite pair per grade from the workload."""
    examples: Dict[int, tuple] = {}
    queries = sorted(workload.query_topics)
    for first in queries:
        for second in queries:
            if first == second:
                continue
            grade = judge.grade(first, second)
            if grade not in examples:
                examples[grade] = (first, second)
            if len(examples) == 4:
                return examples
    return examples


# -------------------------------------------------------------------- figures


def figure8_query_coverage(result: EvaluationResult) -> Dict[str, float]:
    """Figure 8: query coverage percentage per method."""
    return result.coverage_by_method()


def figure9_precision_recall(result: EvaluationResult) -> Dict[str, Dict[str, List[float]]]:
    """Figure 9: 11-point PR curves and P@1..5 with grades {1,2} as positive."""
    return _precision_figure(result, threshold=2)


def figure10_precision_recall_strict(result: EvaluationResult) -> Dict[str, Dict[str, List[float]]]:
    """Figure 10: same as Figure 9 but only grade 1 counts as relevant."""
    return _precision_figure(result, threshold=1)


def _precision_figure(result: EvaluationResult, threshold: int) -> Dict[str, Dict[str, List[float]]]:
    curves = result.pr_curve_by_method(threshold)
    p_at_x = result.precision_at_x_by_method(threshold)
    return {
        "precision_recall": {name: list(curve.precisions) for name, curve in curves.items()},
        "precision_at_x": {
            name: [values.get(k, 0.0) for k in sorted(values)] for name, values in p_at_x.items()
        },
    }


def figure11_rewriting_depth(result: EvaluationResult) -> Dict[str, Dict[str, float]]:
    """Figure 11: percentage of queries at each rewriting depth per method."""
    return result.depth_by_method()


def figure12_desirability(result: EvaluationResult) -> Dict[str, float]:
    """Figure 12: correct desirability-ordering percentage per method."""
    return result.desirability_by_method()


# ----------------------------------------------------------------- aggregator


@dataclass
class PaperExperiments:
    """Runs everything once and renders each table/figure on demand."""

    workload_size: str = "small"
    config: Optional[SimrankConfig] = None
    desirability_cases: int = 50
    seed: int = 29
    backend: str = "matrix"
    #: Parallel-fitting knobs of the sharded/auto backends: worker count
    #: (-1 = all available CPUs) and pool flavour (thread/process/auto).
    n_jobs: int = 1
    executor: str = "auto"
    #: Engine-snapshot directories (offline -> online split): fitted engines
    #: are saved under ``save_engines_to`` and revived from
    #: ``load_engines_from`` instead of refitting; see ExperimentHarness.
    save_engines_to: Optional[str] = None
    load_engines_from: Optional[str] = None
    #: Warm-start directory: config-matching snapshots of a *different*
    #: graph state seed a warm refit instead of a cold fit (see
    #: ExperimentHarness.refresh_engines_from).
    refresh_engines_from: Optional[str] = None
    _result: Optional[EvaluationResult] = None

    def harness_result(self) -> EvaluationResult:
        """The (cached) harness run behind Table 5 and Figures 8-12."""
        if self._result is None:
            harness = ExperimentHarness(
                workload_size=self.workload_size,
                config=self.config,
                desirability_cases=self.desirability_cases,
                seed=self.seed,
                backend=self.backend,
                n_jobs=self.n_jobs,
                executor=self.executor,
                save_engines_to=self.save_engines_to,
                load_engines_from=self.load_engines_from,
                refresh_engines_from=self.refresh_engines_from,
            )
            self._result = harness.run()
        return self._result

    # --------------------------------------------------------- text rendering

    def render(self, experiment: str) -> str:
        """Render one experiment ("table1" ... "figure12") as text."""
        renderers = {
            "table1": lambda: format_table(table1_common_ads(), title="Table 1: common-ad similarity"),
            "table2": lambda: format_table(table2_simrank_sample(), title="Table 2: SimRank (C=0.8)"),
            "table3": lambda: format_table(table3_simrank_iterations(), title="Table 3: SimRank iterations"),
            "table4": lambda: format_table(
                table4_evidence_iterations(), title="Table 4: evidence-based SimRank iterations"
            ),
            "table5": lambda: format_table(
                table5_dataset_statistics(self.harness_result()), title="Table 5: dataset statistics"
            ),
            "table6": lambda: format_table(table6_editorial_grades(), title="Table 6: editorial scoring"),
            "figure8": lambda: format_table(
                [
                    {"method": name, "coverage (%)": value}
                    for name, value in figure8_query_coverage(self.harness_result()).items()
                ],
                title="Figure 8: query coverage",
            ),
            "figure9": lambda: self._render_precision_figure(2, "Figure 9"),
            "figure10": lambda: self._render_precision_figure(1, "Figure 10"),
            "figure11": lambda: format_table(
                [
                    {"method": name, **depths}
                    for name, depths in figure11_rewriting_depth(self.harness_result()).items()
                ],
                title="Figure 11: rewriting depth (% of queries)",
            ),
            "figure12": lambda: format_table(
                [
                    {"method": name, "correct ordering (%)": value}
                    for name, value in figure12_desirability(self.harness_result()).items()
                ],
                title="Figure 12: desirability prediction",
            ),
        }
        if experiment not in renderers:
            raise ValueError(f"unknown experiment {experiment!r}; choose from {sorted(renderers)}")
        return renderers[experiment]()

    def _render_precision_figure(self, threshold: int, title: str) -> str:
        data = _precision_figure(self.harness_result(), threshold)
        pr_text = format_series(
            data["precision_recall"],
            x_labels=[f"{level:.1f}" for level in STANDARD_RECALL_LEVELS],
            title=f"{title}: interpolated precision at 11 recall levels (threshold {threshold})",
            x_name="recall",
        )
        p_at_x_text = format_series(
            data["precision_at_x"],
            x_labels=[1, 2, 3, 4, 5],
            title=f"{title}: precision after X rewrites (threshold {threshold})",
            x_name="X",
        )
        return pr_text + "\n\n" + p_at_x_text

    def all_experiments(self) -> List[str]:
        return [
            "table1", "table2", "table3", "table4", "table5", "table6",
            "figure8", "figure9", "figure10", "figure11", "figure12",
        ]

    def render_all(self) -> str:
        return "\n\n".join(self.render(name) for name in self.all_experiments())
