"""Local graph partitioning (paper reference [1], Andersen-Chung-Lang 2006).

The paper decomposes the giant connected component of the Yahoo! click graph
into five manageable subgraphs using the local partitioning algorithm of
Andersen, Chung and Lang, which computes approximate personalized PageRank
vectors with the *push* procedure and then sweeps over them looking for a cut
of small conductance near the starting node.

This package implements that substrate from scratch:

* :mod:`repro.partition.pagerank` -- exact (power iteration) and approximate
  (push) personalized PageRank on the bipartite click graph,
* :mod:`repro.partition.conductance` -- cut conductance and sweep cuts,
* :mod:`repro.partition.nibble` -- the PageRank-Nibble local partitioner,
* :mod:`repro.partition.extraction` -- iterative extraction of several
  disjoint subgraphs as done for Table 5.
"""

from repro.partition.conductance import conductance, sweep_cut, volume
from repro.partition.extraction import ExtractionResult, extract_subgraphs
from repro.partition.nibble import NibbleResult, pagerank_nibble
from repro.partition.pagerank import (
    approximate_personalized_pagerank,
    personalized_pagerank,
)

__all__ = [
    "conductance",
    "sweep_cut",
    "volume",
    "ExtractionResult",
    "extract_subgraphs",
    "NibbleResult",
    "pagerank_nibble",
    "approximate_personalized_pagerank",
    "personalized_pagerank",
]
