"""Cut conductance and sweep cuts over PageRank vectors.

The conductance of a node set ``S`` measures how hard it is for a random walk
to leave ``S`` (paper Section 9.2, footnote 1): it is the number of edges
crossing the cut divided by the smaller of the volumes (sum of degrees) on
either side.  The *sweep cut* procedure orders nodes by degree-normalized
PageRank and returns the prefix with the smallest conductance, which is the
set the ACL partitioner extracts.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set, Tuple

from repro.graph.click_graph import ClickGraph
from repro.partition.pagerank import GraphNode, node_degree, node_neighbors

__all__ = ["volume", "cut_size", "conductance", "sweep_cut"]


def volume(graph: ClickGraph, nodes: Iterable[GraphNode]) -> int:
    """Sum of degrees of the given node set."""
    return sum(node_degree(graph, node) for node in nodes)


def cut_size(graph: ClickGraph, nodes: Set[GraphNode]) -> int:
    """Number of edges with exactly one endpoint inside the node set."""
    crossing = 0
    for node in nodes:
        for neighbour in node_neighbors(graph, node):
            if neighbour not in nodes:
                crossing += 1
    return crossing


def conductance(graph: ClickGraph, nodes: Set[GraphNode]) -> float:
    """Conductance of the cut ``(S, V \\ S)``.

    Returns ``float('inf')`` for empty or total cuts (no meaningful cut).
    """
    if not nodes:
        return float("inf")
    total_volume = 2 * graph.num_edges
    set_volume = volume(graph, nodes)
    complement_volume = total_volume - set_volume
    denominator = min(set_volume, complement_volume)
    if denominator == 0:
        return float("inf")
    return cut_size(graph, nodes) / denominator


def sweep_cut(
    graph: ClickGraph,
    scores: Dict[GraphNode, float],
    max_size: int = 0,
) -> Tuple[Set[GraphNode], float]:
    """Find the lowest-conductance prefix of the degree-normalized sweep order.

    Nodes with a positive score are sorted by ``score / degree`` in decreasing
    order; each prefix of that order is a candidate set and the one with the
    smallest conductance is returned together with its conductance.
    ``max_size`` (when positive) caps the number of prefixes considered.

    The incremental computation keeps the sweep ``O(edges touched)`` instead
    of recomputing the cut from scratch at every prefix.
    """
    ranked = [
        (node, score / max(node_degree(graph, node), 1))
        for node, score in scores.items()
        if score > 0 and node_degree(graph, node) > 0
    ]
    ranked.sort(key=lambda pair: pair[1], reverse=True)
    if max_size > 0:
        ranked = ranked[:max_size]
    if not ranked:
        return set(), float("inf")

    total_volume = 2 * graph.num_edges
    in_set: Set[GraphNode] = set()
    set_volume = 0
    crossing = 0
    best_set: Set[GraphNode] = set()
    best_conductance = float("inf")

    for node, _ in ranked:
        degree = node_degree(graph, node)
        inside_neighbors = sum(1 for neighbour in node_neighbors(graph, node) if neighbour in in_set)
        in_set.add(node)
        set_volume += degree
        # Edges to nodes already inside stop crossing; the rest start crossing.
        crossing += degree - 2 * inside_neighbors
        denominator = min(set_volume, total_volume - set_volume)
        if denominator <= 0:
            continue
        current = crossing / denominator
        if current < best_conductance:
            best_conductance = current
            best_set = set(in_set)

    return best_set, best_conductance
