"""Personalized PageRank on the (unweighted view of the) click graph.

Two computations are provided:

* :func:`personalized_pagerank` -- exact power iteration, convenient for
  small graphs and for validating the approximate computation in tests.
* :func:`approximate_personalized_pagerank` -- the *push* algorithm of
  Andersen, Chung and Lang (FOCS 2006), which touches only the neighbourhood
  of the seed node and is what makes local partitioning of a large click
  graph feasible.

Both operate on the undirected bipartite graph: a step from a query goes to a
uniformly random neighbouring ad and vice versa.  Nodes are addressed by
``("query", q)`` / ``("ad", a)`` pairs so the two namespaces cannot collide.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, List, Tuple

from repro.graph.click_graph import ClickGraph

__all__ = [
    "GraphNode",
    "node_degree",
    "node_neighbors",
    "personalized_pagerank",
    "approximate_personalized_pagerank",
]

GraphNode = Tuple[str, Hashable]


def node_neighbors(graph: ClickGraph, node: GraphNode) -> List[GraphNode]:
    """Neighbours of a tagged node in the bipartite graph."""
    kind, name = node
    if kind == "query":
        return [("ad", ad) for ad in graph.ads_of(name)]
    if kind == "ad":
        return [("query", query) for query in graph.queries_of(name)]
    raise ValueError(f"unknown node kind {kind!r}")


def node_degree(graph: ClickGraph, node: GraphNode) -> int:
    """Degree of a tagged node."""
    kind, name = node
    if kind == "query":
        return graph.query_degree(name)
    if kind == "ad":
        return graph.ad_degree(name)
    raise ValueError(f"unknown node kind {kind!r}")


def all_nodes(graph: ClickGraph) -> List[GraphNode]:
    """All tagged nodes of the graph (queries first, then ads)."""
    nodes: List[GraphNode] = [("query", query) for query in graph.queries()]
    nodes.extend(("ad", ad) for ad in graph.ads())
    return nodes


def personalized_pagerank(
    graph: ClickGraph,
    seed: GraphNode,
    alpha: float = 0.15,
    tolerance: float = 1e-10,
    max_iterations: int = 1000,
) -> Dict[GraphNode, float]:
    """Exact personalized PageRank by power iteration.

    ``alpha`` is the teleport (restart) probability back to the seed node.
    Dangling nodes send their mass back to the seed.  The result sums to one
    over the nodes reachable from the seed.
    """
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    nodes = all_nodes(graph)
    if seed not in nodes:
        raise KeyError(f"seed node {seed!r} is not in the graph")

    scores: Dict[GraphNode, float] = {node: 0.0 for node in nodes}
    scores[seed] = 1.0
    for _ in range(max_iterations):
        next_scores: Dict[GraphNode, float] = {node: 0.0 for node in nodes}
        next_scores[seed] += alpha
        for node, score in scores.items():
            if score == 0.0:
                continue
            neighbours = node_neighbors(graph, node)
            if not neighbours:
                next_scores[seed] += (1 - alpha) * score
                continue
            share = (1 - alpha) * score / len(neighbours)
            for neighbour in neighbours:
                next_scores[neighbour] += share
        delta = sum(abs(next_scores[node] - scores[node]) for node in nodes)
        scores = next_scores
        if delta < tolerance:
            break
    return scores


def approximate_personalized_pagerank(
    graph: ClickGraph,
    seed: GraphNode,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
    max_pushes: int = 10_000_000,
) -> Dict[GraphNode, float]:
    """Approximate personalized PageRank via the ACL push procedure.

    Maintains a pair of vectors ``(p, r)`` with the invariant
    ``p + pr_alpha(r) = pr_alpha(seed)`` and repeatedly *pushes* mass from any
    node ``u`` whose residual satisfies ``r[u] >= epsilon * degree(u)``.  The
    returned ``p`` is non-zero only near the seed, with per-node error at
    most ``epsilon * degree(u)``.
    """
    if not 0 < alpha < 1:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if epsilon <= 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if node_degree(graph, seed) == 0:
        # An isolated seed keeps all the mass on itself.
        return {seed: 1.0}

    estimate: Dict[GraphNode, float] = {}
    residual: Dict[GraphNode, float] = {seed: 1.0}
    queue = deque([seed])
    queued = {seed}
    pushes = 0

    while queue and pushes < max_pushes:
        node = queue.popleft()
        queued.discard(node)
        degree = node_degree(graph, node)
        if degree == 0:
            continue
        r_u = residual.get(node, 0.0)
        if r_u < epsilon * degree:
            continue
        pushes += 1
        estimate[node] = estimate.get(node, 0.0) + alpha * r_u
        # Lazy random walk push: half the leftover stays, half spreads.
        residual[node] = (1 - alpha) * r_u / 2
        share = (1 - alpha) * r_u / (2 * degree)
        for neighbour in node_neighbors(graph, node):
            residual[neighbour] = residual.get(neighbour, 0.0) + share
            neighbour_degree = node_degree(graph, neighbour)
            if (
                neighbour_degree > 0
                and residual[neighbour] >= epsilon * neighbour_degree
                and neighbour not in queued
            ):
                queue.append(neighbour)
                queued.add(neighbour)
        if residual[node] >= epsilon * degree and node not in queued:
            queue.append(node)
            queued.add(node)

    return estimate
