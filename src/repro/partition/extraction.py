"""Iterative extraction of several disjoint subgraphs from a click graph.

The paper starts from the giant connected component of the two-week Yahoo!
click graph, repeatedly runs the ACL local partitioner from different seed
nodes, and keeps five "big enough, distinct" subgraphs (Section 9.2,
Table 5).  :func:`extract_subgraphs` reproduces that procedure: it picks
high-degree seeds, nibbles a cluster around each, removes the claimed nodes
and repeats until the requested number of subgraphs is found.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.graph.click_graph import ClickGraph
from repro.partition.nibble import NibbleResult, pagerank_nibble
from repro.partition.pagerank import GraphNode

__all__ = ["ExtractionResult", "extract_subgraphs"]


@dataclass
class ExtractionResult:
    """The subgraphs produced by the iterative extraction."""

    subgraphs: List[ClickGraph] = field(default_factory=list)
    nibbles: List[NibbleResult] = field(default_factory=list)

    @property
    def num_subgraphs(self) -> int:
        return len(self.subgraphs)

    def combined(self) -> ClickGraph:
        """Union of all extracted subgraphs (the paper's five-subgraphs dataset)."""
        combined = ClickGraph()
        for subgraph in self.subgraphs:
            for query in subgraph.queries():
                combined.add_query(query)
            for ad in subgraph.ads():
                combined.add_ad(ad)
            for query, ad, stats in subgraph.edges():
                combined.add_edge_stats(query, ad, stats)
        return combined


def extract_subgraphs(
    graph: ClickGraph,
    num_subgraphs: int = 5,
    min_queries: int = 2,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
    max_size: int = 0,
    rng: Optional[random.Random] = None,
    seeds: Optional[List[GraphNode]] = None,
) -> ExtractionResult:
    """Extract up to ``num_subgraphs`` disjoint low-conductance subgraphs.

    Parameters
    ----------
    graph:
        The input click graph (typically its largest connected component).
    num_subgraphs:
        How many subgraphs to extract (the paper uses five).
    min_queries:
        Clusters with fewer queries than this are discarded; the partitioner
        then retries from a different seed.
    seeds:
        Optional explicit seed nodes; by default high-degree queries are used,
        with ties broken by the supplied ``rng``.
    """
    if num_subgraphs < 1:
        raise ValueError("num_subgraphs must be at least 1")
    rng = rng or random.Random(0)
    working = graph.copy()
    result = ExtractionResult()
    provided_seeds = list(seeds) if seeds else []
    attempts_left = max(10 * num_subgraphs, 20)

    while result.num_subgraphs < num_subgraphs and attempts_left > 0:
        attempts_left -= 1
        seed = _next_seed(working, provided_seeds, rng)
        if seed is None:
            break
        nibble = pagerank_nibble(working, seed, alpha=alpha, epsilon=epsilon, max_size=max_size)
        queries = nibble.queries
        ads = nibble.ads
        if len(queries) < min_queries or not ads:
            # Remove the seed from future consideration and retry elsewhere.
            _drop_node(working, seed)
            continue
        subgraph = working.subgraph(queries=queries, ads=ads)
        if subgraph.num_edges == 0:
            _drop_node(working, seed)
            continue
        result.subgraphs.append(subgraph)
        result.nibbles.append(nibble)
        # Claimed nodes leave the working graph so subgraphs stay disjoint.
        remaining_queries = set(working.queries()) - queries
        remaining_ads = set(working.ads()) - ads
        working = working.subgraph(queries=remaining_queries, ads=remaining_ads)

    result.subgraphs.sort(key=lambda sub: sub.num_nodes, reverse=True)
    return result


def _next_seed(
    graph: ClickGraph, provided: List[GraphNode], rng: random.Random
) -> Optional[GraphNode]:
    """Pick the next seed: explicit seeds first, then the highest-degree query."""
    while provided:
        seed = provided.pop(0)
        kind, name = seed
        if kind == "query" and graph.has_query(name) and graph.query_degree(name) > 0:
            return seed
        if kind == "ad" and graph.has_ad(name) and graph.ad_degree(name) > 0:
            return seed
    candidates = [
        (graph.query_degree(query), repr(query), query)
        for query in graph.queries()
        if graph.query_degree(query) > 0
    ]
    if not candidates:
        return None
    candidates.sort(reverse=True)
    top_degree = candidates[0][0]
    top = [entry for entry in candidates if entry[0] == top_degree]
    _, _, chosen = top[rng.randrange(len(top))]
    return ("query", chosen)


def _drop_node(graph: ClickGraph, node: GraphNode) -> None:
    """Disconnect a node in place by deleting all its incident edges."""
    kind, name = node
    if kind == "query":
        for ad in list(graph.ads_of(name)):
            graph.remove_edge(name, ad)
    else:
        for query in list(graph.queries_of(name)):
            graph.remove_edge(query, name)
