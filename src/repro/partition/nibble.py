"""PageRank-Nibble: local partitioning around a seed node.

Combines the approximate personalized PageRank push procedure with a sweep
cut to find a low-conductance set of nodes near a starting node, exactly as
the paper's subgraph-extraction step does (Section 9.2, reference [1]).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Set

from repro.graph.click_graph import ClickGraph
from repro.partition.conductance import sweep_cut
from repro.partition.pagerank import GraphNode, approximate_personalized_pagerank

__all__ = ["NibbleResult", "pagerank_nibble"]


@dataclass(frozen=True)
class NibbleResult:
    """Outcome of one local partitioning run."""

    seed: GraphNode
    nodes: Set[GraphNode] = field(default_factory=set)
    conductance: float = float("inf")

    @property
    def queries(self) -> Set:
        """Query identifiers in the extracted set."""
        return {name for kind, name in self.nodes if kind == "query"}

    @property
    def ads(self) -> Set:
        """Ad identifiers in the extracted set."""
        return {name for kind, name in self.nodes if kind == "ad"}

    @property
    def size(self) -> int:
        return len(self.nodes)


def pagerank_nibble(
    graph: ClickGraph,
    seed: GraphNode,
    alpha: float = 0.15,
    epsilon: float = 1e-4,
    max_size: int = 0,
) -> NibbleResult:
    """Run PageRank-Nibble from ``seed`` and return the best local cluster.

    ``epsilon`` controls the accuracy/locality trade-off of the push
    procedure: smaller values explore a larger neighbourhood of the seed and
    can return bigger clusters.  ``max_size`` caps the sweep prefix length.
    """
    scores = approximate_personalized_pagerank(
        graph, seed, alpha=alpha, epsilon=epsilon
    )
    nodes, phi = sweep_cut(graph, scores, max_size=max_size)
    if not nodes:
        nodes = {seed}
        phi = float("inf")
    return NibbleResult(seed=seed, nodes=nodes, conductance=phi)
