"""Ground-truth topic model behind the synthetic workload.

Every synthetic query and ad belongs to a *topic* (e.g. photography,
computers, flowers).  Topics may be *related* to each other (photography and
computers are both consumer electronics), which is what the editorial grade 3
("categorical relationship / complementary product") keys off.  The topic
model is the ground truth the simulated editorial judge uses; the similarity
methods never see it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

__all__ = ["Topic", "TopicModel", "TopicRelation"]


class TopicRelation(enum.Enum):
    """Relationship between the topics of two queries."""

    SAME = "same"
    RELATED = "related"
    UNRELATED = "unrelated"


@dataclass(frozen=True)
class Topic:
    """One topic: a name, its vocabulary and a few advertiser brand names."""

    name: str
    terms: Tuple[str, ...]
    brands: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.terms:
            raise ValueError(f"topic {self.name!r} needs at least one term")
        if not self.brands:
            raise ValueError(f"topic {self.name!r} needs at least one brand")


class TopicModel:
    """A set of topics plus a symmetric related-topics relation."""

    def __init__(
        self,
        topics: Iterable[Topic],
        related: Optional[Iterable[Tuple[str, str]]] = None,
    ) -> None:
        self._topics: Dict[str, Topic] = {}
        for topic in topics:
            if topic.name in self._topics:
                raise ValueError(f"duplicate topic name {topic.name!r}")
            self._topics[topic.name] = topic
        self._related: Set[FrozenSet[str]] = set()
        for first, second in related or []:
            self.add_relation(first, second)

    # ---------------------------------------------------------------- topics

    def topic(self, name: str) -> Topic:
        return self._topics[name]

    def topic_names(self) -> List[str]:
        return list(self._topics)

    def __len__(self) -> int:
        return len(self._topics)

    def __contains__(self, name: str) -> bool:
        return name in self._topics

    # ------------------------------------------------------------- relations

    def add_relation(self, first: str, second: str) -> None:
        """Mark two (distinct, existing) topics as related."""
        if first not in self._topics or second not in self._topics:
            raise KeyError(f"unknown topic in relation ({first!r}, {second!r})")
        if first == second:
            raise ValueError("a topic cannot be related to itself; it already is the same topic")
        self._related.add(frozenset((first, second)))

    def are_related(self, first: str, second: str) -> bool:
        return frozenset((first, second)) in self._related

    def related_topics(self, name: str) -> List[str]:
        """All topics marked as related to ``name``."""
        result = []
        for pair in self._related:
            if name in pair:
                other = next(iter(pair - {name}))
                result.append(other)
        return sorted(result)

    def relation(self, first: str, second: str) -> TopicRelation:
        """SAME / RELATED / UNRELATED for two topic names."""
        if first == second:
            return TopicRelation.SAME
        if self.are_related(first, second):
            return TopicRelation.RELATED
        return TopicRelation.UNRELATED

    def __repr__(self) -> str:
        return f"TopicModel(topics={len(self._topics)}, relations={len(self._related)})"
