"""Preset configurations for Yahoo!-like synthetic datasets.

The paper's raw graph (15M queries, 14M ads, 28M edges) is far beyond what a
laptop-scale pure-Python reproduction needs; the presets here keep the same
qualitative structure (many topics, power-law degrees, one dominant connected
component, weighted edges) at three sizes:

* ``TINY_WORKLOAD`` -- seconds to analyse; used by the test suite.
* ``SMALL_WORKLOAD`` -- the default for examples and benchmark runs.
* ``MEDIUM_WORKLOAD`` -- a heavier run for the full experiment driver.
"""

from __future__ import annotations

from typing import Optional

from repro.synth.generator import SyntheticWorkload, WorkloadConfig, generate_workload

__all__ = ["TINY_WORKLOAD", "SMALL_WORKLOAD", "MEDIUM_WORKLOAD", "yahoo_like_workload"]

TINY_WORKLOAD = WorkloadConfig(
    topic_names=("photography", "computers", "television", "flowers"),
    queries_per_topic=18,
    ads_per_topic=9,
    subtopics_per_topic=3,
    ads_per_query_exponent=1.5,
    max_ads_per_query=8,
    traffic_length=2_000,
    seed=7,
)

SMALL_WORKLOAD = WorkloadConfig(
    topic_names=(
        "photography",
        "computers",
        "television",
        "flowers",
        "music",
        "travel",
        "hotels",
        "shoes",
    ),
    queries_per_topic=45,
    ads_per_topic=24,
    subtopics_per_topic=4,
    ads_per_query_exponent=1.2,
    max_ads_per_query=10,
    same_subtopic_probability=0.65,
    same_topic_probability=0.18,
    related_topic_probability=0.10,
    same_topic_affinity=0.45,
    traffic_length=12_000,
    seed=11,
)

MEDIUM_WORKLOAD = WorkloadConfig(
    topic_names=None,  # all built-in topics
    queries_per_topic=80,
    ads_per_topic=32,
    subtopics_per_topic=4,
    ads_per_query_exponent=1.2,
    max_ads_per_query=12,
    same_subtopic_probability=0.65,
    same_topic_probability=0.18,
    related_topic_probability=0.10,
    same_topic_affinity=0.45,
    traffic_length=30_000,
    seed=13,
)


def yahoo_like_workload(size: str = "small", seed: Optional[int] = None) -> SyntheticWorkload:
    """Generate a preset workload by size name (``tiny`` / ``small`` / ``medium``)."""
    presets = {"tiny": TINY_WORKLOAD, "small": SMALL_WORKLOAD, "medium": MEDIUM_WORKLOAD}
    if size not in presets:
        raise ValueError(f"size must be one of {sorted(presets)}, got {size!r}")
    config = presets[size]
    if seed is not None:
        config = WorkloadConfig(**{**config.__dict__, "seed": seed})
    return generate_workload(config)
