"""Synthetic workload generation.

The paper's evaluation uses a proprietary two-week Yahoo! click graph and a
standardized query sample.  This package provides the substitute: a
generator that produces a click graph with the same structural properties
(bipartite, power-law degree and click distributions, a giant component plus
smaller ones, impressions / clicks / expected-click-rate edge weights)
*together with the ground truth* (a topic model over queries and ads) that
the simulated editorial judge needs to grade rewrites.

:mod:`repro.synth.scenarios` additionally builds the small illustrative
graphs from the paper's figures (Figure 3, the complete bipartite graphs of
Figure 4 and the weighted examples of Figures 5/6), which the tests and the
table benchmarks use directly.
"""

from repro.synth.generator import (
    SyntheticWorkload,
    WorkloadConfig,
    generate_workload,
)
from repro.synth.scenarios import (
    complete_bipartite_graph,
    figure3_graph,
    figure4_graphs,
    figure5_graphs,
    figure6_graphs,
)
from repro.synth.topics import Topic, TopicModel, TopicRelation
from repro.synth.vocabulary import DEFAULT_TOPIC_SPECS, build_topic_model
from repro.synth.yahoo_like import (
    SMALL_WORKLOAD,
    MEDIUM_WORKLOAD,
    TINY_WORKLOAD,
    yahoo_like_workload,
)

__all__ = [
    "SyntheticWorkload",
    "WorkloadConfig",
    "generate_workload",
    "complete_bipartite_graph",
    "figure3_graph",
    "figure4_graphs",
    "figure5_graphs",
    "figure6_graphs",
    "Topic",
    "TopicModel",
    "TopicRelation",
    "DEFAULT_TOPIC_SPECS",
    "build_topic_model",
    "SMALL_WORKLOAD",
    "MEDIUM_WORKLOAD",
    "TINY_WORKLOAD",
    "yahoo_like_workload",
]
