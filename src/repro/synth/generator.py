"""Synthetic sponsored-search workload generator.

Substitutes for the proprietary Yahoo! click graph of Section 9.2.  The
generator produces, from a ground-truth topic model:

* a population of queries (1-3 topic terms each) with Zipf-like popularity,
* a population of ads (advertiser landing pages per topic),
* a weighted click graph whose edges mostly connect queries to ads of the
  same *subtopic* (a fine-grained cluster inside the topic), sometimes to
  ads of the same broad topic or a related topic, and occasionally to random
  ads (noise),
* a simulated traffic stream (queries with repetition, including some queries
  that never produced clicks, mirroring the paper's 1200-query sample of
  which only 120 appear in the graph),
* the set of bid terms (queries that received at least one bid).

Two modelling choices make the synthetic graph behave like the paper's real
click graph:

1. **Clustered structure.**  Each topic is split into a handful of subtopics
   and queries click mostly inside their subtopic.  Real click graphs are
   strongly clustered at a finer granularity than advertising verticals; this
   is also what lets the indirect structure recover information after the
   desirability experiment removes a query's direct edges (Figure 12).
2. **Structured weights.**  Every ad has an intrinsic quality, and an edge's
   expected click rate is ``base_click_rate * quality(ad) *
   affinity(query, ad)`` with small multiplicative noise.  Click rates in
   real data reflect ad quality and topical relevance, and this is the
   signal weighted SimRank exploits while unweighted SimRank cannot.

Degree and click-count distributions are drawn from discrete power laws, in
line with the paper's observation that ads-per-query, queries-per-ad and
clicks per query-ad pair are power-law distributed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.graph.click_graph import ClickGraph, EdgeStats
from repro.synth.topics import TopicModel, TopicRelation
from repro.synth.vocabulary import build_topic_model

__all__ = ["WorkloadConfig", "SyntheticWorkload", "generate_workload"]


@dataclass(frozen=True)
class WorkloadConfig:
    """Knobs of the synthetic workload generator."""

    #: Topics to draw from (``None`` = all built-in topics).
    topic_names: Optional[Tuple[str, ...]] = None
    #: Queries generated per topic.
    queries_per_topic: int = 60
    #: Ads generated per topic.
    ads_per_topic: int = 40
    #: Fine-grained clusters inside each topic (e.g. "dslr cameras" inside
    #: "photography").  Queries and ads are assigned to subtopics uniformly.
    subtopics_per_topic: int = 4
    #: Power-law exponent for the number of distinct ads clicked per query.
    ads_per_query_exponent: float = 2.2
    #: Maximum number of distinct ads clicked for a single query.
    max_ads_per_query: int = 12
    #: Power-law exponent for clicks per query-ad pair.
    clicks_exponent: float = 2.0
    #: Maximum clicks on a single query-ad pair.
    max_clicks: int = 200
    #: Probability that a click edge goes to an ad of the query's subtopic.
    same_subtopic_probability: float = 0.55
    #: Probability that it goes to another subtopic of the same topic.
    same_topic_probability: float = 0.22
    #: Probability that it goes to an ad of a related topic.
    related_topic_probability: float = 0.13
    #: (Remaining probability goes to a uniformly random ad: noise.)
    #:
    #: Edge weights are structured: expected click rate =
    #: ``base_click_rate * quality(ad) * affinity(query, ad) * noise``.
    ad_quality_range: Tuple[float, float] = (0.3, 1.0)
    base_click_rate: float = 0.4
    same_topic_affinity: float = 0.55
    related_topic_affinity: float = 0.3
    unrelated_topic_affinity: float = 0.1
    #: Multiplicative noise on the expected click rate, uniform in
    #: ``[1 - ecr_noise, 1 + ecr_noise]``.
    ecr_noise: float = 0.2
    #: Fraction of generated queries that receive at least one bid.
    bid_fraction: float = 0.75
    #: Length of the simulated traffic stream.
    traffic_length: int = 20_000
    #: Fraction of traffic going to "tail" queries that never clicked an ad.
    unclicked_traffic_fraction: float = 0.25
    #: Zipf exponent of query popularity in the traffic stream.
    popularity_exponent: float = 1.1
    #: Random seed.
    seed: int = 7

    def __post_init__(self) -> None:
        if self.queries_per_topic < 1 or self.ads_per_topic < 1:
            raise ValueError("queries_per_topic and ads_per_topic must be positive")
        if self.subtopics_per_topic < 1:
            raise ValueError("subtopics_per_topic must be positive")
        total = (
            self.same_subtopic_probability
            + self.same_topic_probability
            + self.related_topic_probability
        )
        if not 0 <= total <= 1:
            raise ValueError("edge-destination probabilities must sum to at most 1")
        if not 0 <= self.bid_fraction <= 1:
            raise ValueError("bid_fraction must be in [0, 1]")


@dataclass
class SyntheticWorkload:
    """Everything the experiments need: the graph plus its ground truth."""

    click_graph: ClickGraph
    topic_model: TopicModel
    query_topics: Dict[str, str]
    ad_topics: Dict[str, str]
    bid_terms: Set[str]
    traffic: List[str]
    #: Queries that appear in the traffic stream but have no click-graph edges.
    unclicked_queries: List[str] = field(default_factory=list)
    #: Fine-grained cluster assignments (topic, subtopic index).
    query_subtopics: Dict[str, Tuple[str, int]] = field(default_factory=dict)
    ad_subtopics: Dict[str, Tuple[str, int]] = field(default_factory=dict)

    def topic_of_query(self, query: str) -> Optional[str]:
        return self.query_topics.get(query)

    def topic_of_ad(self, ad: str) -> Optional[str]:
        return self.ad_topics.get(ad)

    def relation_between(self, first_query: str, second_query: str) -> TopicRelation:
        """Ground-truth topical relation between two queries."""
        first = self.query_topics.get(first_query)
        second = self.query_topics.get(second_query)
        if first is None or second is None:
            return TopicRelation.UNRELATED
        return self.topic_model.relation(first, second)


def generate_workload(config: Optional[WorkloadConfig] = None) -> SyntheticWorkload:
    """Generate a complete synthetic sponsored-search workload."""
    config = config or WorkloadConfig()
    rng = random.Random(config.seed)
    topic_model = build_topic_model(config.topic_names)
    topic_names = topic_model.topic_names()

    query_topics, query_subtopics = _generate_queries(topic_model, config, rng)
    ad_topics, ad_subtopics = _generate_ads(topic_model, config, rng)
    ads_by_subtopic: Dict[Tuple[str, int], List[str]] = {}
    ads_by_topic: Dict[str, List[str]] = {name: [] for name in topic_names}
    for ad, (topic, subtopic) in ad_subtopics.items():
        ads_by_topic[topic].append(ad)
        ads_by_subtopic.setdefault((topic, subtopic), []).append(ad)

    graph = _generate_click_graph(
        query_subtopics, ads_by_topic, ads_by_subtopic, topic_model, config, rng
    )

    queries = list(query_topics)
    bid_count = int(round(config.bid_fraction * len(queries)))
    bid_terms = set(rng.sample(queries, bid_count)) if bid_count else set()

    unclicked_queries = _generate_unclicked_queries(topic_model, config, rng, query_topics)
    traffic = _generate_traffic(queries, unclicked_queries, config, rng)

    return SyntheticWorkload(
        click_graph=graph,
        topic_model=topic_model,
        query_topics=query_topics,
        ad_topics=ad_topics,
        bid_terms=bid_terms,
        traffic=traffic,
        unclicked_queries=unclicked_queries,
        query_subtopics=query_subtopics,
        ad_subtopics=ad_subtopics,
    )


# ----------------------------------------------------------------- internals


def _generate_queries(
    topic_model: TopicModel, config: WorkloadConfig, rng: random.Random
) -> Tuple[Dict[str, str], Dict[str, Tuple[str, int]]]:
    """Query string -> topic, and query string -> (topic, subtopic index)."""
    query_topics: Dict[str, str] = {}
    query_subtopics: Dict[str, Tuple[str, int]] = {}
    for topic_name in topic_model.topic_names():
        terms = list(topic_model.topic(topic_name).terms)
        produced = 0
        attempts = 0
        while produced < config.queries_per_topic and attempts < config.queries_per_topic * 20:
            attempts += 1
            length = rng.choices([1, 2, 3], weights=[0.3, 0.5, 0.2])[0]
            length = min(length, len(terms))
            chosen = rng.sample(terms, length)
            query = " ".join(chosen)
            if query in query_topics:
                continue
            query_topics[query] = topic_name
            query_subtopics[query] = (topic_name, rng.randrange(config.subtopics_per_topic))
            produced += 1
    return query_topics, query_subtopics


def _generate_ads(
    topic_model: TopicModel, config: WorkloadConfig, rng: random.Random
) -> Tuple[Dict[str, str], Dict[str, Tuple[str, int]]]:
    """Ad identifier -> topic, and ad identifier -> (topic, subtopic index)."""
    ad_topics: Dict[str, str] = {}
    ad_subtopics: Dict[str, Tuple[str, int]] = {}
    for topic_name in topic_model.topic_names():
        topic = topic_model.topic(topic_name)
        for index in range(config.ads_per_topic):
            brand = topic.brands[index % len(topic.brands)]
            term = topic.terms[index % len(topic.terms)]
            ad = f"{brand}/{term}-{index}"
            ad_topics[ad] = topic_name
            ad_subtopics[ad] = (topic_name, index % config.subtopics_per_topic)
    return ad_topics, ad_subtopics


def _power_law_int(rng: random.Random, exponent: float, maximum: int) -> int:
    """Draw an integer >= 1 from a truncated discrete power law ``P(k) ~ k^-exponent``."""
    weights = [k ** (-exponent) for k in range(1, maximum + 1)]
    return rng.choices(range(1, maximum + 1), weights=weights)[0]


def _generate_click_graph(
    query_subtopics: Dict[str, Tuple[str, int]],
    ads_by_topic: Dict[str, List[str]],
    ads_by_subtopic: Dict[Tuple[str, int], List[str]],
    topic_model: TopicModel,
    config: WorkloadConfig,
    rng: random.Random,
) -> ClickGraph:
    graph = ClickGraph()
    all_ads = [ad for ads in ads_by_topic.values() for ad in ads]
    quality_low, quality_high = config.ad_quality_range
    ad_quality = {ad: rng.uniform(quality_low, quality_high) for ad in all_ads}
    ad_subtopic = {
        ad: key for key, ads in ads_by_subtopic.items() for ad in ads
    }

    for query, (topic_name, subtopic) in query_subtopics.items():
        num_ads = _power_law_int(rng, config.ads_per_query_exponent, config.max_ads_per_query)
        chosen: Set[str] = set()
        for _ in range(num_ads):
            ad = _pick_ad(
                topic_name, subtopic, ads_by_topic, ads_by_subtopic, topic_model, all_ads, config, rng
            )
            if ad in chosen:
                continue
            chosen.add(ad)
            affinity = _affinity(
                topic_model, (topic_name, subtopic), ad_subtopic[ad], config
            )
            ecr = config.base_click_rate * ad_quality[ad] * affinity
            ecr *= rng.uniform(1 - config.ecr_noise, 1 + config.ecr_noise)
            ecr = min(0.95, max(0.005, ecr))
            raw_clicks = _power_law_int(rng, config.clicks_exponent, config.max_clicks)
            clicks = max(1, int(round(raw_clicks * ad_quality[ad] * affinity)))
            impressions = max(clicks, int(round(clicks / max(ecr, 1e-6))))
            graph.add_edge_stats(
                query,
                ad,
                EdgeStats(impressions=impressions, clicks=clicks, expected_click_rate=ecr),
                merge=True,
            )
    return graph


def _affinity(
    topic_model: TopicModel,
    query_subtopic: Tuple[str, int],
    ad_subtopic: Tuple[str, int],
    config: WorkloadConfig,
) -> float:
    """Ground-truth affinity driving click rates (subtopic > topic > related)."""
    query_topic, query_cluster = query_subtopic
    ad_topic, ad_cluster = ad_subtopic
    if query_topic == ad_topic:
        if query_cluster == ad_cluster:
            return 1.0
        return config.same_topic_affinity
    relation = topic_model.relation(query_topic, ad_topic)
    if relation is TopicRelation.RELATED:
        return config.related_topic_affinity
    return config.unrelated_topic_affinity


def _pick_ad(
    topic_name: str,
    subtopic: int,
    ads_by_topic: Dict[str, List[str]],
    ads_by_subtopic: Dict[Tuple[str, int], List[str]],
    topic_model: TopicModel,
    all_ads: List[str],
    config: WorkloadConfig,
    rng: random.Random,
) -> str:
    """Choose an ad for a query of ``(topic_name, subtopic)``."""
    draw = rng.random()
    same_subtopic = ads_by_subtopic.get((topic_name, subtopic), [])
    if draw < config.same_subtopic_probability and same_subtopic:
        return rng.choice(same_subtopic)
    threshold = config.same_subtopic_probability + config.same_topic_probability
    if draw < threshold and ads_by_topic[topic_name]:
        return rng.choice(ads_by_topic[topic_name])
    related = topic_model.related_topics(topic_name)
    if draw < threshold + config.related_topic_probability and related:
        related_topic = rng.choice(related)
        if ads_by_topic[related_topic]:
            return rng.choice(ads_by_topic[related_topic])
    return rng.choice(all_ads)


def _generate_unclicked_queries(
    topic_model: TopicModel,
    config: WorkloadConfig,
    rng: random.Random,
    existing: Dict[str, str],
) -> List[str]:
    """Tail queries that appear in traffic but never clicked a sponsored ad."""
    unclicked: List[str] = []
    names = topic_model.topic_names()
    target = max(1, int(len(existing) * config.unclicked_traffic_fraction))
    attempts = 0
    while len(unclicked) < target and attempts < target * 50:
        attempts += 1
        topic = topic_model.topic(rng.choice(names))
        terms = rng.sample(list(topic.terms), min(3, len(topic.terms)))
        query = " ".join(terms) + f" {rng.randrange(1000, 9999)}"
        if query not in existing:
            unclicked.append(query)
    return unclicked


def _generate_traffic(
    queries: Sequence[str],
    unclicked: Sequence[str],
    config: WorkloadConfig,
    rng: random.Random,
) -> List[str]:
    """Popularity-weighted traffic stream over clicked + unclicked queries."""
    if not queries:
        return []
    ranked = list(queries)
    rng.shuffle(ranked)
    weights = [1.0 / (rank + 1) ** config.popularity_exponent for rank in range(len(ranked))]
    clicked_share = 1.0 - config.unclicked_traffic_fraction
    traffic: List[str] = []
    for _ in range(config.traffic_length):
        if unclicked and rng.random() > clicked_share:
            traffic.append(rng.choice(list(unclicked)))
        else:
            traffic.append(rng.choices(ranked, weights=weights)[0])
    return traffic
