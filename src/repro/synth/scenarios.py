"""The paper's illustrative click graphs as ready-made fixtures.

* :func:`figure3_graph` -- the unweighted sample graph of Figure 3 ("pc",
  "camera", "digital camera", "tv", "flower" and their ads), used for
  Tables 1 and 2.
* :func:`figure4_graphs` -- the complete bipartite fragments of Figure 4
  (``K_{2,2}`` for "camera"/"digital camera" and ``K_{1,2}`` for
  "pc"/"camera"), used for Tables 3 and 4.
* :func:`figure5_graphs` / :func:`figure6_graphs` -- the weighted examples
  motivating the consistency rules of Section 8.
* :func:`complete_bipartite_graph` -- an arbitrary ``K_{m,n}`` click graph
  for the theorem-checking property tests.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.graph.click_graph import ClickGraph

__all__ = [
    "figure3_graph",
    "figure4_graphs",
    "figure5_graphs",
    "figure6_graphs",
    "complete_bipartite_graph",
]

#: Node names used by the Figure 3 sample graph.
FIGURE3_QUERIES = ("pc", "camera", "digital camera", "tv", "flower")
FIGURE3_ADS = ("hp.com", "bestbuy.com", "teleflora.com", "orchids.com")


def figure3_graph() -> ClickGraph:
    """The unweighted sample click graph of Figure 3.

    Edges are chosen so that the similarity scores the paper reports in
    Tables 1 and 2 are reproduced exactly:

    * "pc" and "camera" share one ad (hp.com);
    * "camera" and "digital camera" share two ads (hp.com, bestbuy.com);
    * "tv" connects to bestbuy.com only, so it shares an ad with "camera" and
      "digital camera" but not with "pc";
    * "flower" connects to the two florist ads and shares nothing with the
      electronics queries.
    """
    graph = ClickGraph()
    edges = [
        ("pc", "hp.com"),
        ("camera", "hp.com"),
        ("camera", "bestbuy.com"),
        ("digital camera", "hp.com"),
        ("digital camera", "bestbuy.com"),
        ("tv", "bestbuy.com"),
        ("flower", "teleflora.com"),
        ("flower", "orchids.com"),
    ]
    for query, ad in edges:
        graph.add_edge(query, ad, impressions=1, clicks=1)
    return graph


def figure4_graphs() -> Tuple[ClickGraph, ClickGraph]:
    """The two complete bipartite fragments of Figure 4.

    Returns ``(k22, k12)`` where ``k22`` connects "camera" and
    "digital camera" to both "hp.com" and "bestbuy.com", and ``k12``
    connects "pc" and "camera" to the single ad "hp.com".
    """
    k22 = ClickGraph()
    for query in ("camera", "digital camera"):
        for ad in ("hp.com", "bestbuy.com"):
            k22.add_edge(query, ad, impressions=1, clicks=1)
    k12 = ClickGraph()
    for query in ("pc", "camera"):
        k12.add_edge(query, "hp.com", impressions=1, clicks=1)
    return k22, k12


def figure5_graphs() -> Tuple[ClickGraph, ClickGraph]:
    """The weighted graphs of Figure 5 (equal vs very unequal click counts).

    In the left graph "flower" and "orchids" both bring 100 clicks to the
    same ad; in the right graph "flower" brings 100 clicks but "teleflora"
    only 1.  A consistent similarity measure must score the first pair
    higher (Definition 8.1(ii): smaller weight variance at the common ad).
    """
    balanced = ClickGraph()
    balanced.add_edge("flower", "flowers-ad", impressions=1000, clicks=100)
    balanced.add_edge("orchids", "flowers-ad", impressions=1000, clicks=100)

    skewed = ClickGraph()
    skewed.add_edge("flower", "flowers-ad", impressions=1000, clicks=100)
    skewed.add_edge("teleflora", "flowers-ad", impressions=1000, clicks=1)
    return balanced, skewed


def figure6_graphs() -> Tuple[ClickGraph, ClickGraph]:
    """The weighted graphs of Figure 6 (many vs few clicks, equal spread).

    Both graphs have zero weight variance at the shared ad, but the first
    pair brings far more clicks; a consistent measure must score it higher
    (Definition 8.1(i): larger absolute weight at equal variance).
    """
    heavy = ClickGraph()
    heavy.add_edge("flower", "flowers-ad", impressions=1000, clicks=100)
    heavy.add_edge("orchids", "flowers-ad", impressions=1000, clicks=100)

    light = ClickGraph()
    light.add_edge("flower", "flowers-ad", impressions=1000, clicks=1)
    light.add_edge("teleflora", "flowers-ad", impressions=1000, clicks=1)
    return heavy, light


def complete_bipartite_graph(
    num_queries: int,
    num_ads: int,
    impressions: int = 1,
    clicks: int = 1,
    query_prefix: str = "q",
    ad_prefix: str = "a",
) -> ClickGraph:
    """A ``K_{num_queries, num_ads}`` click graph with uniform edge weights."""
    if num_queries < 1 or num_ads < 1:
        raise ValueError("complete bipartite graphs need at least one node per side")
    graph = ClickGraph()
    for i in range(num_queries):
        for j in range(num_ads):
            graph.add_edge(
                f"{query_prefix}{i}", f"{ad_prefix}{j}", impressions=impressions, clicks=clicks
            )
    return graph
