"""The paper's illustrative click graphs as ready-made fixtures.

* :func:`figure3_graph` -- the unweighted sample graph of Figure 3 ("pc",
  "camera", "digital camera", "tv", "flower" and their ads), used for
  Tables 1 and 2.
* :func:`figure4_graphs` -- the complete bipartite fragments of Figure 4
  (``K_{2,2}`` for "camera"/"digital camera" and ``K_{1,2}`` for
  "pc"/"camera"), used for Tables 3 and 4.
* :func:`figure5_graphs` / :func:`figure6_graphs` -- the weighted examples
  motivating the consistency rules of Section 8.
* :func:`complete_bipartite_graph` -- an arbitrary ``K_{m,n}`` click graph
  for the theorem-checking property tests.
* :func:`multi_component_graph` -- a deterministic weighted click graph with
  a chosen number of connected components, mirroring the disconnected shape
  of real click graphs (Section 9.2); the workhorse of the cross-backend
  equivalence harness and the sharded-backend benchmark.
* :func:`equivalence_scenarios` -- the named scenario graphs every similarity
  backend must agree on (``tests/equivalence/``).
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Tuple

from repro.graph.click_graph import ClickGraph

__all__ = [
    "figure3_graph",
    "figure4_graphs",
    "figure5_graphs",
    "figure6_graphs",
    "complete_bipartite_graph",
    "multi_component_graph",
    "equivalence_scenarios",
]

#: Node names used by the Figure 3 sample graph.
FIGURE3_QUERIES = ("pc", "camera", "digital camera", "tv", "flower")
FIGURE3_ADS = ("hp.com", "bestbuy.com", "teleflora.com", "orchids.com")


def figure3_graph() -> ClickGraph:
    """The unweighted sample click graph of Figure 3.

    Edges are chosen so that the similarity scores the paper reports in
    Tables 1 and 2 are reproduced exactly:

    * "pc" and "camera" share one ad (hp.com);
    * "camera" and "digital camera" share two ads (hp.com, bestbuy.com);
    * "tv" connects to bestbuy.com only, so it shares an ad with "camera" and
      "digital camera" but not with "pc";
    * "flower" connects to the two florist ads and shares nothing with the
      electronics queries.
    """
    graph = ClickGraph()
    edges = [
        ("pc", "hp.com"),
        ("camera", "hp.com"),
        ("camera", "bestbuy.com"),
        ("digital camera", "hp.com"),
        ("digital camera", "bestbuy.com"),
        ("tv", "bestbuy.com"),
        ("flower", "teleflora.com"),
        ("flower", "orchids.com"),
    ]
    for query, ad in edges:
        graph.add_edge(query, ad, impressions=1, clicks=1)
    return graph


def figure4_graphs() -> Tuple[ClickGraph, ClickGraph]:
    """The two complete bipartite fragments of Figure 4.

    Returns ``(k22, k12)`` where ``k22`` connects "camera" and
    "digital camera" to both "hp.com" and "bestbuy.com", and ``k12``
    connects "pc" and "camera" to the single ad "hp.com".
    """
    k22 = ClickGraph()
    for query in ("camera", "digital camera"):
        for ad in ("hp.com", "bestbuy.com"):
            k22.add_edge(query, ad, impressions=1, clicks=1)
    k12 = ClickGraph()
    for query in ("pc", "camera"):
        k12.add_edge(query, "hp.com", impressions=1, clicks=1)
    return k22, k12


def figure5_graphs() -> Tuple[ClickGraph, ClickGraph]:
    """The weighted graphs of Figure 5 (equal vs very unequal click counts).

    In the left graph "flower" and "orchids" both bring 100 clicks to the
    same ad; in the right graph "flower" brings 100 clicks but "teleflora"
    only 1.  A consistent similarity measure must score the first pair
    higher (Definition 8.1(ii): smaller weight variance at the common ad).
    """
    balanced = ClickGraph()
    balanced.add_edge("flower", "flowers-ad", impressions=1000, clicks=100)
    balanced.add_edge("orchids", "flowers-ad", impressions=1000, clicks=100)

    skewed = ClickGraph()
    skewed.add_edge("flower", "flowers-ad", impressions=1000, clicks=100)
    skewed.add_edge("teleflora", "flowers-ad", impressions=1000, clicks=1)
    return balanced, skewed


def figure6_graphs() -> Tuple[ClickGraph, ClickGraph]:
    """The weighted graphs of Figure 6 (many vs few clicks, equal spread).

    Both graphs have zero weight variance at the shared ad, but the first
    pair brings far more clicks; a consistent measure must score it higher
    (Definition 8.1(i): larger absolute weight at equal variance).
    """
    heavy = ClickGraph()
    heavy.add_edge("flower", "flowers-ad", impressions=1000, clicks=100)
    heavy.add_edge("orchids", "flowers-ad", impressions=1000, clicks=100)

    light = ClickGraph()
    light.add_edge("flower", "flowers-ad", impressions=1000, clicks=1)
    light.add_edge("teleflora", "flowers-ad", impressions=1000, clicks=1)
    return heavy, light


def multi_component_graph(
    num_components: int = 4,
    queries_per_component: int = 4,
    ads_per_component: int = 3,
    extra_edges: int = 3,
    seed: int = 13,
    with_isolates: bool = False,
) -> ClickGraph:
    """A weighted click graph made of several disjoint connected components.

    Component ``k`` owns queries ``c{k}_q{i}`` and ads ``c{k}_a{j}``.  Inside
    each component a query-ad zig-zag chain guarantees connectivity, and
    ``extra_edges`` additional random edges thicken it; all edge statistics
    are drawn from a seeded RNG so the graph is fully deterministic.  With
    ``with_isolates`` one zero-degree query and ad are added per component's
    namespace (isolated nodes form their own singleton components).
    """
    if num_components < 1 or queries_per_component < 1 or ads_per_component < 1:
        raise ValueError("multi_component_graph needs at least one of everything")
    rng = random.Random(seed)
    graph = ClickGraph()
    for k in range(num_components):
        queries = [f"c{k}_q{i}" for i in range(queries_per_component)]
        ads = [f"c{k}_a{j}" for j in range(ads_per_component)]

        def add(query: str, ad: str) -> None:
            clicks = rng.randint(1, 80)
            impressions = clicks + rng.randint(0, 400)
            graph.add_edge(
                query,
                ad,
                impressions=impressions,
                clicks=clicks,
                expected_click_rate=round(rng.uniform(0.01, 0.5), 4),
                merge=True,
            )

        # Zig-zag chain query0 - ad0 - query1 - ad1 - ... keeps the component
        # connected whatever the random extras do.
        chain_length = max(queries_per_component, ads_per_component)
        for step in range(chain_length):
            query = queries[min(step, queries_per_component - 1)]
            add(query, ads[min(step, ads_per_component - 1)])
            if step + 1 < queries_per_component:
                add(queries[step + 1], ads[min(step, ads_per_component - 1)])
        for _ in range(extra_edges):
            add(rng.choice(queries), rng.choice(ads))
        if with_isolates:
            graph.add_query(f"c{k}_isolated_query")
            graph.add_ad(f"c{k}_isolated_ad")
    return graph


def equivalence_scenarios() -> Dict[str, Callable[[], ClickGraph]]:
    """Named scenario graphs the cross-backend equivalence harness runs on.

    Every similarity backend (reference node-pair, dense matrix, sharded)
    must produce the same scores on each of these; ``tests/equivalence/``
    parametrizes over this registry, so new scenarios added here are picked
    up by the safety net automatically.
    """
    return {
        "figure3": figure3_graph,
        "k22_fragment": lambda: figure4_graphs()[0],
        "two_components_tiny": lambda: multi_component_graph(
            num_components=2, queries_per_component=2, ads_per_component=2, seed=3
        ),
        "five_components_weighted": lambda: multi_component_graph(
            num_components=5, queries_per_component=4, ads_per_component=3, seed=11
        ),
        "uneven_components_with_isolates": lambda: multi_component_graph(
            num_components=3,
            queries_per_component=5,
            ads_per_component=2,
            extra_edges=5,
            seed=29,
            with_isolates=True,
        ),
    }


def complete_bipartite_graph(
    num_queries: int,
    num_ads: int,
    impressions: int = 1,
    clicks: int = 1,
    query_prefix: str = "q",
    ad_prefix: str = "a",
) -> ClickGraph:
    """A ``K_{num_queries, num_ads}`` click graph with uniform edge weights."""
    if num_queries < 1 or num_ads < 1:
        raise ValueError("complete bipartite graphs need at least one node per side")
    graph = ClickGraph()
    for i in range(num_queries):
        for j in range(num_ads):
            graph.add_edge(
                f"{query_prefix}{i}", f"{ad_prefix}{j}", impressions=impressions, clicks=clicks
            )
    return graph
