"""Built-in topic vocabularies for the synthetic sponsored-search workload.

The topics are chosen to resemble commercial sponsored-search verticals
(consumer electronics, flowers, travel, ...) including the examples the paper
itself uses ("camera", "digital camera", "pc", "tv", "flower").  Each topic
has query terms and advertiser brands; related-topic pairs connect verticals
whose users plausibly overlap (cameras and computers, flights and hotels).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.synth.topics import Topic, TopicModel

__all__ = ["DEFAULT_TOPIC_SPECS", "DEFAULT_RELATED_TOPICS", "build_topic_model"]

#: name -> (query terms, advertiser brands)
DEFAULT_TOPIC_SPECS: Dict[str, Tuple[Tuple[str, ...], Tuple[str, ...]]] = {
    "photography": (
        ("camera", "digital", "lens", "photo", "tripod", "dslr", "zoom", "flash"),
        ("hp.com", "bestbuy.com", "canonstore.com", "nikonshop.com", "photopro.com"),
    ),
    "computers": (
        ("pc", "laptop", "desktop", "monitor", "keyboard", "memory", "printer", "notebook"),
        ("dell.com", "bestbuy.com", "newegg.com", "lenovoshop.com", "microcenter.com"),
    ),
    "television": (
        ("tv", "hdtv", "plasma", "lcd", "screen", "remote", "antenna", "projector"),
        ("sonystyle.com", "bestbuy.com", "samsungshop.com", "vizio.com", "circuitcity.com"),
    ),
    "flowers": (
        ("flower", "orchid", "rose", "bouquet", "florist", "tulip", "delivery", "arrangement"),
        ("teleflora.com", "orchids.com", "ftd.com", "proflowers.com", "1800flowers.com"),
    ),
    "music": (
        ("mp3", "itunes", "ipod", "music", "song", "player", "headphones", "album"),
        ("apple.com", "amazonmusic.com", "napster.com", "rhapsody.com", "sandisk.com"),
    ),
    "travel": (
        ("flight", "airfare", "ticket", "airline", "vacation", "trip", "cruise", "travel"),
        ("expedia.com", "orbitz.com", "travelocity.com", "kayak.com", "priceline.com"),
    ),
    "hotels": (
        ("hotel", "motel", "resort", "lodging", "suite", "inn", "reservation", "hostel"),
        ("hotels.com", "marriott.com", "hilton.com", "expedia.com", "booking.com"),
    ),
    "shoes": (
        ("shoe", "sneaker", "boot", "sandal", "running", "heel", "loafer", "slipper"),
        ("zappos.com", "footlocker.com", "nike.com", "shoebuy.com", "adidasshop.com"),
    ),
    "cars": (
        ("car", "sedan", "truck", "suv", "corvette", "chevrolet", "hybrid", "convertible"),
        ("cars.com", "autotrader.com", "edmunds.com", "carmax.com", "chevydealer.com"),
    ),
    "insurance": (
        ("insurance", "quote", "policy", "premium", "auto", "coverage", "claim", "liability"),
        ("geico.com", "progressive.com", "allstate.com", "statefarm.com", "esurance.com"),
    ),
    "pets": (
        ("dog", "cat", "puppy", "kitten", "petfood", "leash", "aquarium", "grooming"),
        ("petsmart.com", "petco.com", "chewy.com", "petfooddirect.com", "dogtoys.com"),
    ),
    "gardening": (
        ("garden", "seed", "soil", "planter", "shovel", "lawn", "fertilizer", "greenhouse"),
        ("burpee.com", "homedepot.com", "lowes.com", "gardeners.com", "springhill.com"),
    ),
}

#: Pairs of topics whose users plausibly overlap (grade-3 "related" topics).
DEFAULT_RELATED_TOPICS: Tuple[Tuple[str, str], ...] = (
    ("photography", "computers"),
    ("photography", "television"),
    ("computers", "television"),
    ("computers", "music"),
    ("music", "television"),
    ("travel", "hotels"),
    ("flowers", "gardening"),
    ("cars", "insurance"),
    ("shoes", "pets"),
)


def build_topic_model(
    topic_names: Optional[Iterable[str]] = None,
    related: Optional[Iterable[Tuple[str, str]]] = None,
) -> TopicModel:
    """Build a :class:`TopicModel` from the built-in vocabularies.

    ``topic_names`` selects a subset of :data:`DEFAULT_TOPIC_SPECS` (all
    topics by default); ``related`` overrides the default related pairs
    (pairs mentioning unselected topics are silently dropped).
    """
    names: List[str] = list(topic_names) if topic_names is not None else list(DEFAULT_TOPIC_SPECS)
    unknown = [name for name in names if name not in DEFAULT_TOPIC_SPECS]
    if unknown:
        raise KeyError(f"unknown topics requested: {unknown}")
    topics = [
        Topic(name=name, terms=DEFAULT_TOPIC_SPECS[name][0], brands=DEFAULT_TOPIC_SPECS[name][1])
        for name in names
    ]
    selected = set(names)
    relation_pairs = [
        (first, second)
        for first, second in (related if related is not None else DEFAULT_RELATED_TOPICS)
        if first in selected and second in selected
    ]
    return TopicModel(topics, related=relation_pairs)
