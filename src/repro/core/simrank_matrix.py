"""Dense-matrix SimRank engine.

The node-pair implementations in :mod:`repro.core.simrank`,
:mod:`repro.core.evidence_simrank` and :mod:`repro.core.weighted_simrank`
follow the paper's equations literally and are convenient for small graphs
and per-iteration traces, but their Python-level double loops are too slow
for the subgraph-scale experiments (hundreds to thousands of queries).

:class:`MatrixSimrank` computes the same fixpoints with numpy linear algebra.
With ``P_Q`` the query-to-ad transition matrix (row-normalized adjacency for
plain SimRank, the ``W(q, i)`` factors for weighted SimRank) and ``P_A`` the
ad-to-query matrix, the Jacobi iteration is::

    S_Q <- C1 * P_Q @ S_A @ P_Q.T   (diagonal reset to 1)
    S_A <- C2 * P_A @ S_Q @ P_A.T   (diagonal reset to 1)

Evidence is applied either after the final iteration (``mode='evidence'``,
Equations 7.5/7.6) or inside every iteration (``mode='weighted'``, Section 8).
"""

from __future__ import annotations

from typing import Hashable, List, Optional, Tuple

import numpy as np

from repro.core.config import EvidenceKind, SimrankConfig
from repro.core.scores_array import ArraySimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.warm_start import seed_dense
from repro.graph.click_graph import ClickGraph

__all__ = ["MatrixSimrank"]

Node = Hashable

_MODES = ("simrank", "evidence", "weighted")


class MatrixSimrank(QuerySimilarityMethod):
    """Fast SimRank / evidence-based SimRank / weighted SimRank in one engine."""

    def __init__(
        self,
        config: Optional[SimrankConfig] = None,
        mode: str = "simrank",
        min_score: float = 1e-9,
    ) -> None:
        super().__init__()
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.config = config or SimrankConfig()
        self.mode = mode
        self.min_score = min_score
        # Report under the same name as the corresponding reference method so
        # experiment tables read like the paper's.
        self.name = {"simrank": "simrank", "evidence": "evidence_simrank", "weighted": "weighted_simrank"}[mode]
        #: Iterations actually executed by the last fit (early exit included).
        self.iterations_run: Optional[int] = None
        #: Whether the last fit started from a warm seed instead of identity.
        self.warm_started: bool = False
        self._query_index: List[Node] = []
        self._ad_index: List[Node] = []
        self._query_matrix: Optional[np.ndarray] = None
        self._ad_matrix: Optional[np.ndarray] = None

    # -------------------------------------------------------------- fit path

    def _compute_query_scores(self, graph: ClickGraph) -> ArraySimilarityScores:
        self.warm_started = False
        # Zero-degree nodes can only self-score (implicitly 1), so carrying
        # them through the dense iteration would only inflate the matrices.
        self._query_index = sorted(
            (query for query in graph.queries() if graph.query_degree(query) > 0), key=repr
        )
        self._ad_index = sorted(
            (ad for ad in graph.ads() if graph.ad_degree(ad) > 0), key=repr
        )
        query_pos = {query: i for i, query in enumerate(self._query_index)}
        ad_pos = {ad: j for j, ad in enumerate(self._ad_index)}
        n_q, n_a = len(self._query_index), len(self._ad_index)
        if n_q == 0 or n_a == 0:
            self._query_matrix = np.zeros((n_q, n_q))
            self._ad_matrix = np.zeros((n_a, n_a))
            self.iterations_run = 0
            return self._matrix_to_scores(self._query_matrix, self._query_index)

        binary = np.zeros((n_q, n_a))
        weights = np.zeros((n_q, n_a))
        for query, ad, stats in graph.edges():
            i, j = query_pos[query], ad_pos[ad]
            binary[i, j] = 1.0
            weights[i, j] = stats.weight(self.config.weight_source)

        if self.mode == "weighted":
            p_query, p_ad = _weighted_transitions(binary, weights)
        else:
            p_query = _row_normalize(binary)
            p_ad = _row_normalize(binary.T)

        # The evidence factors only depend on the graph, so they are computed
        # exactly once per fit (never inside the iteration) and skipped
        # entirely for plain SimRank, which never reads them.
        if self.mode == "simrank":
            evidence_query = evidence_ad = None
        else:
            evidence_query = _evidence_matrix(
                binary, self.config.evidence, self.config.zero_evidence_floor
            )
            evidence_ad = _evidence_matrix(
                binary.T, self.config.evidence, self.config.zero_evidence_floor
            )

        seed = self._warm_start_scores
        self.warm_started = seed is not None
        if seed is not None:
            # Warm start: previous query scores seed the iteration, and the
            # ad side is derived by one application of the ad update so both
            # sides start near the fixpoint together (an identity ad side
            # would wash the query seed out on the first Jacobi step).  For
            # mode='evidence' the seed is post-evidence-scaled and therefore
            # farther from the (pre-evidence) iteration state -- still a
            # valid starting point, just a less warm one.
            sim_query = seed_dense(seed, self._query_index)
            sim_ad = self.config.c2 * (p_ad @ sim_query @ p_ad.T)
            if self.mode == "weighted":
                sim_ad *= evidence_ad
            np.fill_diagonal(sim_ad, 1.0)
        else:
            sim_query = np.eye(n_q)
            sim_ad = np.eye(n_a)
        self.iterations_run = 0
        for _ in range(self.config.iterations):
            new_query = self.config.c1 * (p_query @ sim_ad @ p_query.T)
            new_ad = self.config.c2 * (p_ad @ sim_query @ p_ad.T)
            if self.mode == "weighted":
                new_query *= evidence_query
                new_ad *= evidence_ad
            np.fill_diagonal(new_query, 1.0)
            np.fill_diagonal(new_ad, 1.0)
            delta = 0.0
            if self.config.tolerance > 0:
                delta = max(
                    float(np.max(np.abs(new_query - sim_query))) if n_q else 0.0,
                    float(np.max(np.abs(new_ad - sim_ad))) if n_a else 0.0,
                )
            sim_query, sim_ad = new_query, new_ad
            self.iterations_run += 1
            if self.config.tolerance > 0 and delta < self.config.tolerance:
                break

        if self.mode == "evidence":
            sim_query = sim_query * evidence_query
            sim_ad = sim_ad * evidence_ad
            np.fill_diagonal(sim_query, 1.0)
            np.fill_diagonal(sim_ad, 1.0)

        self._query_matrix = sim_query
        self._ad_matrix = sim_ad
        return self._matrix_to_scores(sim_query, self._query_index)

    # ---------------------------------------------------------------- access

    def restore(self, scores, graph=None) -> "MatrixSimrank":
        """Adopt precomputed query scores; matrices and indexes are fit-only.

        Clearing them keeps a re-restored instance honest: the ad-side
        accessors fail loudly instead of serving a previous fit's values
        alongside the adopted query scores.
        """
        super().restore(scores, graph)
        self.iterations_run = None
        self.warm_started = False
        self._query_index = []
        self._ad_index = []
        self._query_matrix = None
        self._ad_matrix = None
        return self

    def ad_similarity(self, first: Node, second: Node) -> float:
        """Similarity of two ads under the same fixpoint."""
        self._require_fitted()
        self._require_fit_extra(self._ad_matrix, "ad-side scores")
        if first == second:
            return 1.0
        try:
            i = self._ad_index.index(first)
            j = self._ad_index.index(second)
        except ValueError:
            return 0.0
        return float(self._ad_matrix[i, j])

    def query_matrix(self) -> Tuple[np.ndarray, List[Node]]:
        """The raw dense query-query similarity matrix and its index.

        The index only covers queries with at least one click edge; isolated
        queries never enter the iteration (they can only self-score).
        """
        self._require_fitted()
        matrix = self._require_fit_extra(self._query_matrix, "raw query matrix")
        return matrix, list(self._query_index)

    # ------------------------------------------------------------- internals

    def _matrix_to_scores(
        self, matrix: np.ndarray, index: List[Node]
    ) -> ArraySimilarityScores:
        # Wrap the final matrix directly instead of materializing a dict
        # entry per pair -- on large components the eager dict copy used to
        # dominate fit time well before the linear algebra did.
        return ArraySimilarityScores.from_dense(matrix, index, min_score=self.min_score)


def _row_normalize(matrix: np.ndarray) -> np.ndarray:
    """Divide each row by its sum (rows that sum to zero stay zero)."""
    sums = matrix.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        normalized = np.where(sums > 0, matrix / np.where(sums > 0, sums, 1.0), 0.0)
    return normalized


def _weighted_transitions(binary: np.ndarray, weights: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """The ``W(q, a)`` and ``W(a, q)`` factor matrices of weighted SimRank."""
    ad_spread = _spread_vector(weights, axis=0)   # one value per ad (column)
    query_spread = _spread_vector(weights, axis=1)  # one value per query (row)

    query_row_sums = weights.sum(axis=1, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        normalized_q = np.where(query_row_sums > 0, weights / np.where(query_row_sums > 0, query_row_sums, 1.0), 0.0)
    p_query = normalized_q * ad_spread[np.newaxis, :]

    ad_col_sums = weights.sum(axis=0, keepdims=True)
    with np.errstate(divide="ignore", invalid="ignore"):
        normalized_a = np.where(ad_col_sums > 0, weights / np.where(ad_col_sums > 0, ad_col_sums, 1.0), 0.0)
    p_ad = (normalized_a * query_spread[:, np.newaxis]).T
    return p_query, p_ad


def _spread_vector(weights: np.ndarray, axis: int) -> np.ndarray:
    """``exp(-variance)`` of the non-zero weights along the given axis.

    ``axis=0`` computes one spread per column (ad), ``axis=1`` one per row
    (query).  Variance is the population variance of the weights of *incident
    edges only* (zeros in the matrix are absent edges, not observations).
    """
    mask = weights != 0
    counts = mask.sum(axis=axis)
    safe_counts = np.where(counts > 0, counts, 1)
    sums = weights.sum(axis=axis)
    means = sums / safe_counts
    if axis == 0:
        deviations = (weights - means[np.newaxis, :]) * mask
    else:
        deviations = (weights - means[:, np.newaxis]) * mask
    variances = (deviations ** 2).sum(axis=axis) / safe_counts
    spreads = np.exp(-variances)
    return np.where(counts > 0, spreads, 1.0)


def _evidence_matrix(
    binary: np.ndarray, kind: EvidenceKind, zero_evidence_floor: float = 0.0
) -> np.ndarray:
    """Pairwise evidence factors from a binary adjacency matrix.

    Entry ``(i, j)`` is the evidence of rows ``i`` and ``j`` based on their
    number of common columns; pairs with no common column get
    ``zero_evidence_floor`` (0 is the paper's Equation 7.3).
    """
    common = binary @ binary.T
    if kind is EvidenceKind.GEOMETRIC:
        evidence = 1.0 - np.power(0.5, common)
    elif kind is EvidenceKind.EXPONENTIAL:
        evidence = 1.0 - np.exp(-common)
    else:
        raise ValueError(f"unknown evidence kind: {kind!r}")
    evidence[common <= 0] = zero_evidence_floor
    np.fill_diagonal(evidence, 1.0)
    return evidence
