"""Weighted SimRank -- "Simrank++" (paper Section 8).

Weighted SimRank changes the underlying random walk so the resulting scores
are *consistent* with the click graph's weights (Definition 8.1).  The
transition factor from a node ``α`` to a neighbour ``i`` combines two pieces:

* ``spread(i) = exp(-variance(i))`` -- how concentrated the weights of the
  edges incident to ``i`` are (a "reliable" ad whose clicks are spread evenly
  over its queries passes more similarity), and
* ``normalized_weight(α, i) = w(α, i) / sum_{j in E(α)} w(α, j)`` -- the share
  of ``α``'s weight that goes to ``i``.

The similarity equations then read (with the evidence factor of Section 7):

.. math::

   s_w(q, q') = evidence(q, q') \\cdot C_1
       \\sum_{i \\in E(q)} \\sum_{j \\in E(q')} W(q, i) W(q', j) s_w(i, j)

and symmetrically for ads, with ``s_w(v, v) = 1``.  The fixpoint is computed
by Jacobi iteration from the identity, like plain SimRank.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.config import SimrankConfig
from repro.core.evidence import evidence_score
from repro.core.scores import SimilarityScores
from repro.core.similarity_base import QuerySimilarityMethod
from repro.core.simrank import _component_pairs, _max_delta, _to_scores
from repro.core.warm_start import seed_pair_scores
from repro.graph.click_graph import ClickGraph, WeightSource

__all__ = ["WeightedSimrank", "WeightedSimrankResult", "spread", "transition_factors"]

Node = Hashable
Pair = Tuple[Node, Node]


def spread(
    graph: ClickGraph,
    node: Node,
    side: str,
    source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
) -> float:
    """``spread(i) = exp(-variance(i))`` of the weights incident to ``i``.

    ``side`` says which side of the bipartite graph ``node`` lives on
    (``'query'`` or ``'ad'``).  Population variance is used; a node with a
    single incident edge has zero variance and spread 1.
    """
    if side == "query":
        weights = list(graph.query_weights(node, source).values())
    elif side == "ad":
        weights = list(graph.ad_weights(node, source).values())
    else:
        raise ValueError(f"side must be 'query' or 'ad', got {side!r}")
    if not weights:
        return 1.0
    mean = sum(weights) / len(weights)
    variance = sum((weight - mean) ** 2 for weight in weights) / len(weights)
    return math.exp(-variance)


def transition_factors(
    graph: ClickGraph,
    source: WeightSource = WeightSource.EXPECTED_CLICK_RATE,
) -> Tuple[Dict[Tuple[Node, Node], float], Dict[Tuple[Node, Node], float]]:
    """The ``W(q, i)`` and ``W(α, i)`` factors of the weighted random walk.

    Returns ``(query_factors, ad_factors)`` where ``query_factors[(q, a)]``
    is ``W(q, a) = spread(a) * normalized_weight(q, a)`` and
    ``ad_factors[(a, q)] = W(a, q) = spread(q) * normalized_weight(a, q)``.
    """
    ad_spread = {ad: spread(graph, ad, "ad", source) for ad in graph.ads()}
    query_spread = {query: spread(graph, query, "query", source) for query in graph.queries()}

    query_factors: Dict[Tuple[Node, Node], float] = {}
    for query in graph.queries():
        weights = graph.query_weights(query, source)
        total = sum(weights.values())
        if total <= 0:
            continue
        for ad, weight in weights.items():
            query_factors[(query, ad)] = ad_spread[ad] * weight / total

    ad_factors: Dict[Tuple[Node, Node], float] = {}
    for ad in graph.ads():
        weights = graph.ad_weights(ad, source)
        total = sum(weights.values())
        if total <= 0:
            continue
        for query, weight in weights.items():
            ad_factors[(ad, query)] = query_spread[query] * weight / total

    return query_factors, ad_factors


@dataclass
class WeightedSimrankResult:
    """Both-side weighted SimRank scores plus the iteration trace."""

    query_scores: SimilarityScores
    ad_scores: SimilarityScores
    iterations_run: int
    converged: bool = False
    query_history: List[SimilarityScores] = field(default_factory=list)
    ad_history: List[SimilarityScores] = field(default_factory=list)


class WeightedSimrank(QuerySimilarityMethod):
    """Weighted, evidence-scaled SimRank over a weighted click graph."""

    name = "weighted_simrank"

    def __init__(
        self,
        config: Optional[SimrankConfig] = None,
        track_history: bool = False,
        use_evidence: bool = True,
        max_pairs: int = 2_000_000,
    ) -> None:
        super().__init__()
        self.config = config or SimrankConfig()
        self.track_history = track_history
        #: The paper's weighted SimRank includes the evidence factor; setting
        #: this to False gives the "weights only" ablation.
        self.use_evidence = use_evidence
        self.max_pairs = max_pairs
        self._result: Optional[WeightedSimrankResult] = None

    # -------------------------------------------------------------- fit path

    def _compute_query_scores(self, graph: ClickGraph) -> SimilarityScores:
        self._result = self._run(graph)
        return self._result.query_scores

    def restore(self, scores, graph=None) -> "WeightedSimrank":
        """Adopt precomputed query scores; the full result object is fit-only."""
        super().restore(scores, graph)
        self._result = None
        return self

    @property
    def result(self) -> WeightedSimrankResult:
        self._require_fitted()
        return self._require_fit_extra(self._result, "WeightedSimrankResult")

    @property
    def query_history(self) -> List[SimilarityScores]:
        """Per-iteration query scores (only when history tracking is on)."""
        self._require_fitted()
        return list(
            self._require_fit_extra(self._result, "iteration history").query_history
        )

    def ad_similarity(self, first: Node, second: Node) -> float:
        """Weighted similarity of two ads."""
        self._require_fitted()
        return self._require_fit_extra(self._result, "ad-side scores").ad_scores.score(
            first, second
        )

    # ------------------------------------------------------------- iteration

    def _run(self, graph: ClickGraph) -> WeightedSimrankResult:
        source = self.config.weight_source
        query_pairs, ad_pairs = _component_pairs(graph, self.max_pairs)
        query_neighbors = {query: list(graph.ads_of(query)) for query in graph.queries()}
        ad_neighbors = {ad: list(graph.queries_of(ad)) for ad in graph.ads()}
        query_factors, ad_factors = transition_factors(graph, source)

        query_evidence = self._pair_evidence(graph, query_pairs, side="query")
        ad_evidence = self._pair_evidence(graph, ad_pairs, side="ad")

        seed = self._warm_start_scores
        if seed is not None:
            # Warm start (see BipartiteSimrank._run): query side from the
            # previous scores, ad side derived by one update application.
            sim_q = seed_pair_scores(seed, query_pairs)
            sim_a = self._update_side(
                pairs=ad_pairs,
                neighbors=ad_neighbors,
                factors=ad_factors,
                evidence=ad_evidence,
                other_scores=sim_q,
                decay=self.config.c2,
            )
        else:
            sim_q: Dict[Pair, float] = {pair: 0.0 for pair in query_pairs}
            sim_a: Dict[Pair, float] = {pair: 0.0 for pair in ad_pairs}
        history_q: List[SimilarityScores] = []
        history_a: List[SimilarityScores] = []
        converged = False
        iterations_run = 0

        for _ in range(self.config.iterations):
            iterations_run += 1
            new_q = self._update_side(
                pairs=query_pairs,
                neighbors=query_neighbors,
                factors=query_factors,
                evidence=query_evidence,
                other_scores=sim_a,
                decay=self.config.c1,
            )
            new_a = self._update_side(
                pairs=ad_pairs,
                neighbors=ad_neighbors,
                factors=ad_factors,
                evidence=ad_evidence,
                other_scores=sim_q,
                decay=self.config.c2,
            )
            delta = max(_max_delta(sim_q, new_q), _max_delta(sim_a, new_a))
            sim_q, sim_a = new_q, new_a
            if self.track_history:
                history_q.append(_to_scores(sim_q))
                history_a.append(_to_scores(sim_a))
            if self.config.tolerance > 0 and delta < self.config.tolerance:
                converged = True
                break

        return WeightedSimrankResult(
            query_scores=_to_scores(sim_q),
            ad_scores=_to_scores(sim_a),
            iterations_run=iterations_run,
            converged=converged,
            query_history=history_q,
            ad_history=history_a,
        )

    def _update_side(
        self,
        pairs: List[Pair],
        neighbors: Dict[Node, List[Node]],
        factors: Dict[Tuple[Node, Node], float],
        evidence: Dict[Pair, float],
        other_scores: Dict[Pair, float],
        decay: float,
    ) -> Dict[Pair, float]:
        updated: Dict[Pair, float] = {}
        floor = self.config.zero_evidence_floor
        for first, second in pairs:
            evidence_factor = evidence.get((first, second), 0.0) if self.use_evidence else 1.0
            if self.use_evidence and evidence_factor == 0.0:
                evidence_factor = floor
            if evidence_factor == 0.0:
                updated[(first, second)] = 0.0
                continue
            total = 0.0
            for i in neighbors[first]:
                w_first = factors.get((first, i), 0.0)
                if w_first == 0.0:
                    continue
                for j in neighbors[second]:
                    w_second = factors.get((second, j), 0.0)
                    if w_second == 0.0:
                        continue
                    if i == j:
                        score = 1.0
                    else:
                        score = other_scores.get((i, j), other_scores.get((j, i), 0.0))
                    if score != 0.0:
                        total += w_first * w_second * score
            updated[(first, second)] = evidence_factor * decay * total
        return updated

    def _pair_evidence(
        self, graph: ClickGraph, pairs: List[Pair], side: str
    ) -> Dict[Pair, float]:
        evidence: Dict[Pair, float] = {}
        if side == "query":
            neighbor_sets = {query: set(graph.ads_of(query)) for query in graph.queries()}
        else:
            neighbor_sets = {ad: set(graph.queries_of(ad)) for ad in graph.ads()}
        for first, second in pairs:
            common = len(neighbor_sets[first] & neighbor_sets[second])
            evidence[(first, second)] = evidence_score(common, self.config.evidence)
        return evidence
