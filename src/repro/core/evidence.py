"""Evidence of similarity (paper Section 7).

The evidence score of two nodes on the same side of the bipartite graph is a
function of the number of their common neighbours.  It grows with that count
and approaches 1, so multiplying SimRank scores by it rewards pairs whose
similarity is supported by many common ads (or queries).

Two definitions are given in the paper:

* Equation 7.3 (geometric): ``evidence(a, b) = sum_{i=1..n} 2^-i = 1 - 2^-n``
* Equation 7.4 (exponential): ``evidence(a, b) = 1 - e^-n``

where ``n = |E(a) ∩ E(b)|``.  The paper uses the geometric form in its
experiments and reports no substantial difference between the two.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Tuple

from repro.core.config import EvidenceKind
from repro.graph.click_graph import ClickGraph

__all__ = [
    "evidence_geometric",
    "evidence_exponential",
    "evidence_score",
    "common_neighbor_count",
    "query_evidence_factors",
    "ad_evidence_factors",
]

Node = Hashable


def evidence_geometric(common_neighbors: int) -> float:
    """Equation 7.3: ``sum_{i=1}^{n} 1/2^i``, i.e. ``1 - 2^-n``."""
    if common_neighbors < 0:
        raise ValueError("common_neighbors must be non-negative")
    if common_neighbors == 0:
        return 0.0
    return 1.0 - 0.5 ** common_neighbors


def evidence_exponential(common_neighbors: int) -> float:
    """Equation 7.4: ``1 - e^-n``."""
    if common_neighbors < 0:
        raise ValueError("common_neighbors must be non-negative")
    if common_neighbors == 0:
        return 0.0
    return 1.0 - math.exp(-common_neighbors)


def evidence_score(common_neighbors: int, kind: EvidenceKind = EvidenceKind.GEOMETRIC) -> float:
    """Evidence value for a given common-neighbour count under either definition."""
    if kind is EvidenceKind.GEOMETRIC:
        return evidence_geometric(common_neighbors)
    if kind is EvidenceKind.EXPONENTIAL:
        return evidence_exponential(common_neighbors)
    raise ValueError(f"unknown evidence kind: {kind!r}")


def common_neighbor_count(graph: ClickGraph, first: Node, second: Node, side: str = "query") -> int:
    """``|E(a) ∩ E(b)|`` for two queries (``side='query'``) or two ads."""
    if side == "query":
        return len(set(graph.ads_of(first)) & set(graph.ads_of(second)))
    if side == "ad":
        return len(set(graph.queries_of(first)) & set(graph.queries_of(second)))
    raise ValueError(f"side must be 'query' or 'ad', got {side!r}")


def query_evidence_factors(
    graph: ClickGraph, kind: EvidenceKind = EvidenceKind.GEOMETRIC
) -> Dict[Tuple[Node, Node], float]:
    """Evidence factors for every query pair that shares at least one ad.

    Pairs that share no ad have evidence 0 and are omitted; callers treat
    missing pairs as zero.
    """
    factors: Dict[Tuple[Node, Node], float] = {}
    queries = list(graph.queries())
    ad_sets = {query: set(graph.ads_of(query)) for query in queries}
    for i, first in enumerate(queries):
        for second in queries[i + 1:]:
            common = len(ad_sets[first] & ad_sets[second])
            if common > 0:
                factors[(first, second)] = evidence_score(common, kind)
    return factors


def ad_evidence_factors(
    graph: ClickGraph, kind: EvidenceKind = EvidenceKind.GEOMETRIC
) -> Dict[Tuple[Node, Node], float]:
    """Evidence factors for every ad pair that shares at least one query."""
    factors: Dict[Tuple[Node, Node], float] = {}
    ads = list(graph.ads())
    query_sets = {ad: set(graph.queries_of(ad)) for ad in ads}
    for i, first in enumerate(ads):
        for second in ads[i + 1:]:
            common = len(query_sets[first] & query_sets[second])
            if common > 0:
                factors[(first, second)] = evidence_score(common, kind)
    return factors
